// Convergence study (the paper's Fig. 4 up close): per-iteration upper
// bound (restricted master objective), Theorem-1 lower bound, and the most
// negative reduced cost Phi, printed as the algorithm closes the gap.
//
//   ./examples/convergence_demo [--links=8] [--channels=3] [--seed=3]
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/column_generation.h"
#include "video/demand.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 8));
  const int channels = static_cast<int>(flags.get_int("channels", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 3));

  common::Rng rng(seed);
  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = channels;
  params.sinr_thresholds = {0.1, 0.2, 0.3};  // Q=3 keeps exact pricing quick
  net::Network net = net::Network::table_i(params, rng);

  video::DemandConfig demand_cfg;
  demand_cfg.demand_scale = 1e-4;
  common::Rng demand_rng = rng.fork(1);
  const auto demands = video::make_link_demands(links, demand_cfg, demand_rng);

  core::CgOptions opts;
  opts.pricing = core::PricingMode::ExactAlways;  // exact Phi per iteration
  const auto result = core::solve_column_generation(net, demands, opts);

  common::Table table({"iter", "upper bound (slots)", "lower bound",
                       "best LB", "Phi", "columns"});
  for (const auto& it : result.history) {
    table.new_row()
        .add(it.iteration)
        .add(it.master_objective, 1)
        .add(std::isnan(it.lower_bound) ? std::string("-")
                                        : common::format_double(
                                              it.lower_bound, 1))
        .add(std::isnan(it.best_lower_bound)
                 ? std::string("-")
                 : common::format_double(it.best_lower_bound, 1))
        .add(it.phi, 6)
        .add(it.num_columns);
  }
  table.print(std::cout);

  std::printf(
      "\n%s after %d iterations: optimum %.1f slots, certified gap %.2e\n",
      result.converged ? "Converged" : "Stopped", result.iterations,
      result.total_slots, result.gap());
  std::printf("Phi rose to %.3g (0 means no schedule can price out).\n",
              result.history.back().phi);
  return 0;
}
