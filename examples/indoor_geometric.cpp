// Indoor geometric scenario: instead of the paper's i.i.d. uniform gains,
// place transmitter/receiver pairs in a room, derive 60 GHz path loss and
// directional antenna cross-gains from the geometry, and solve the same
// resource-allocation problem.  Shows the library working on a physically-
// motivated channel model and how beamwidth changes spatial reuse.
//
//   ./examples/indoor_geometric [--links=8] [--channels=3] [--seed=5]
//                               [--beamwidth=0.6]
#include <cstdio>
#include <iostream>
#include <memory>

#include "common/cli.h"
#include "common/table.h"
#include "core/column_generation.h"
#include "sched/timeline.h"
#include "video/demand.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 8));
  const int channels = static_cast<int>(flags.get_int("channels", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const double beamwidth = flags.get_double("beamwidth", 0.6);

  common::Rng rng(seed);
  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = channels;
  params.noise_watts = 1e-4;  // realistic link margin for path-loss gains

  net::GeometricChannelConfig gcfg;
  gcfg.beamwidth_rad = beamwidth;
  auto model = std::make_unique<net::GeometricChannelModel>(
      links, channels, params.noise_watts, gcfg, rng);
  const net::Placement& placement = model->placement();
  net::Network net(params, std::move(model));

  std::printf("Indoor room %.0fm x %.0fm, beamwidth %.2f rad:\n",
              gcfg.room_size_m, gcfg.room_size_m, beamwidth);
  for (const net::Link& l : placement.links) {
    const auto& tx = placement.node_pos[l.tx_node];
    const auto& rx = placement.node_pos[l.rx_node];
    std::printf("  link %2d: tx(%.1f, %.1f) -> rx(%.1f, %.1f)  |d|=%.1fm\n",
                l.id, tx.x, tx.y, rx.x, rx.y, net::distance(tx, rx));
  }

  video::DemandConfig demand_cfg;
  demand_cfg.demand_scale = 1e-4;
  common::Rng demand_rng = rng.fork(1);
  const auto demands = video::make_link_demands(links, demand_cfg, demand_rng);

  const auto result = core::solve_column_generation(net, demands);
  const auto exec = sched::execute_timeline(net, result.timeline, demands);

  std::printf("\nOptimal scheduling time: %.1f slots | demands met: %s\n",
              result.total_slots, exec.all_demands_met ? "yes" : "NO");

  // How much spatial reuse did the optimizer find?
  double reuse_weighted = 0.0;
  for (const auto& ts : result.timeline)
    reuse_weighted += ts.slots * static_cast<double>(ts.schedule.size());
  std::printf("Average concurrent transmissions: %.2f\n",
              result.total_slots > 0 ? reuse_weighted / result.total_slots
                                     : 0.0);

  common::Table table({"schedule", "tau (slots)", "active links"});
  int idx = 0;
  for (const auto& ts : result.timeline) {
    std::string who;
    for (const auto& tx : ts.schedule.transmissions()) {
      who += "L" + std::to_string(tx.link) + "/ch" +
             std::to_string(tx.channel) + " ";
    }
    table.new_row().add(idx++).add(ts.slots, 1).add(who);
  }
  table.print(std::cout);
  return 0;
}
