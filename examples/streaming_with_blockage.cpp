// Streaming under dynamic link blockage.
//
// Runs a multi-GOP streaming horizon on a mmWave piconet where links are
// intermittently blocked (two-state Markov, -13 dB partial blockage), and
// compares three PNC policies:
//   * per-period re-optimization (column generation on the current gains);
//   * blockage-oblivious scheduling (solve once on clear-air gains;
//     blocked transmissions silently deliver nothing);
//   * TDMA re-solved per period.
//
//   ./examples/streaming_with_blockage [--links=8] [--channels=3]
//       [--gops=12] [--p-block=0.25] [--seed=9]
#include <cstdio>
#include <iostream>
#include <memory>

#include "common/cli.h"
#include "common/table.h"
#include "stream/blockage_session.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 8));
  const int channels = static_cast<int>(flags.get_int("channels", 3));
  const int gops = static_cast<int>(flags.get_int("gops", 12));
  const double p_block = flags.get_double("p-block", 0.25);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 9));

  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = channels;
  common::Rng model_rng(seed);
  net::TableIChannelModel base(links, channels, params.noise_watts,
                               model_rng);

  stream::BlockageSessionConfig cfg;
  cfg.session.num_gops = gops;
  cfg.session.demand_scale = 2e-3;  // keeps periods near their budgets
  cfg.blockage.p_block = p_block;
  cfg.blockage.p_recover = 0.5;
  cfg.blockage.attenuation = 0.05;  // -13 dB: partial blockage

  std::printf(
      "Streaming %d GOPs over %d links / %d channels, blockage p=%.2f "
      "(-13 dB when blocked)\n\n",
      gops, links, channels, p_block);

  common::Table table({"policy", "on-time GOPs", "stall (slots)",
                       "mean PSNR (dB)", "blocked frac",
                       "invalidated periods"});
  auto run = [&](const char* name, const stream::Scheduler& sched,
                 bool reschedule) {
    stream::BlockageSessionConfig run_cfg = cfg;
    run_cfg.reschedule_each_period = reschedule;
    common::Rng rng(seed + 1);
    const auto m =
        stream::run_blockage_session(base, params, run_cfg, sched, rng);
    table.new_row()
        .add(name)
        .add(common::format_double(100.0 * m.base.on_time_ratio, 1) + "%")
        .add(m.base.total_stall_slots, 0)
        .add(m.base.mean_psnr_db, 2)
        .add(m.mean_blocked_fraction, 3)
        .add(m.invalidated_periods);
  };

  run("CG, re-solve each period", stream::make_cg_scheduler({}), true);
  run("CG, blockage-oblivious", stream::make_cg_scheduler({}), false);
  run("TDMA, re-solve each period", stream::make_tdma_scheduler(), true);
  table.print(std::cout);

  std::printf(
      "\nRe-solving each period adapts rate levels and spatial reuse to the "
      "current blockage\nstate; the oblivious policy keeps transmitting "
      "schedules whose SINR no longer holds.\n");
  return 0;
}
