// Quickstart: build a small mmWave network, attach video demands, solve the
// minimum-scheduling-time problem with column generation, and inspect the
// resulting transmission schedule.
//
//   ./examples/quickstart [--links=8] [--channels=3] [--seed=1]
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "core/column_generation.h"
#include "mmwave/network.h"
#include "sched/timeline.h"
#include "video/demand.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 8));
  const int channels = static_cast<int>(flags.get_int("channels", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));

  // 1. A network instance: Table I parameters, random channel gains.
  common::Rng rng(seed);
  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = channels;
  net::Network net = net::Network::table_i(params, rng);

  // 2. Per-link video demands: one GOP of a scalable H.264-like session.
  video::DemandConfig demand_cfg;
  demand_cfg.demand_scale = 1e-3;  // keep the toy example fast
  common::Rng demand_rng = rng.fork(1);
  const auto demands = video::make_link_demands(links, demand_cfg, demand_rng);

  // 3. Solve: column generation with greedy + exact pricing.
  const core::CgResult result = core::solve_column_generation(net, demands);

  std::printf("Instance: %d links, %d channels, %d rate levels\n", links,
              channels, net.num_rate_levels());
  std::printf("Column generation: %d iterations, %zu schedules in use\n",
              result.iterations, result.timeline.size());
  std::printf("Minimum scheduling time: %.1f slots (%.3f ms)\n",
              result.total_slots,
              result.total_slots * params.slot_seconds * 1e3);
  if (!std::isnan(result.lower_bound)) {
    std::printf("Theorem-1 lower bound:   %.1f slots (gap %.2e)\n",
                result.lower_bound, result.gap());
  }

  // 4. Execute the timeline and report per-link delays.
  const auto exec = sched::execute_timeline(net, result.timeline, demands);
  std::printf("\nAll demands met: %s | avg delay %.1f slots | fairness %.4f\n",
              exec.all_demands_met ? "yes" : "NO", exec.average_delay(),
              exec.delay_fairness());

  std::printf("\nSchedules (tau > 0):\n");
  for (const auto& ts : result.timeline) {
    std::printf("  tau = %9.1f slots |", ts.slots);
    for (const auto& tx : ts.schedule.transmissions()) {
      std::printf(" L%d:%s@q%d/ch%d(%.2gW)", tx.link,
                  net::to_string(tx.layer), tx.rate_level, tx.channel,
                  tx.power_watts);
    }
    std::printf("\n");
  }
  return 0;
}
