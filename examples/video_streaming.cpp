// Multi-user video streaming scenario (the paper's motivating workload):
// several uncompressed-quality HD sessions share a 5-channel 60 GHz piconet.
// Compares the column-generation PNC scheduler against the paper's two
// benchmarks and plain TDMA, reporting scheduling time, delay, fairness and
// the PSNR each session sustains.
//
//   ./examples/video_streaming [--links=12] [--channels=5] [--seed=7]
//                              [--demand-scale=2e-4]
#include <cstdio>
#include <iostream>

#include "baselines/baselines.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/column_generation.h"
#include "sched/timeline.h"
#include "video/demand.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 12));
  const int channels = static_cast<int>(flags.get_int("channels", 5));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const double scale = flags.get_double("demand-scale", 2e-4);

  common::Rng rng(seed);
  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = channels;
  net::Network net = net::Network::table_i(params, rng);

  video::DemandConfig demand_cfg;
  demand_cfg.demand_scale = scale;
  common::Rng demand_rng = rng.fork(1);
  const auto demands = video::make_link_demands(links, demand_cfg, demand_rng);

  std::printf(
      "Multi-user video streaming: %d sessions (~%.1f Mbit per GOP period, "
      "simulated at %.0e scale), %d channels\n\n",
      links, demands[0].total() / 1e6 / scale, scale, channels);

  core::CgOptions cg_opts;
  cg_opts.pricing = core::PricingMode::HeuristicOnly;
  const auto cg = core::solve_column_generation(net, demands, cg_opts);
  const auto b1 = baselines::benchmark1(net, demands);
  const auto b2 = baselines::benchmark2(net, demands);
  const auto td = baselines::tdma(net, demands);

  video::PsnrModel psnr;
  const double gop_seconds = 0.5;  // 12-frame GOP at 24 fps

  common::Table table({"algorithm", "sched time (slots)", "avg delay",
                       "fairness", "served", "mean PSNR (dB)"});
  auto report = [&](const char* name,
                    const std::vector<sched::TimedSchedule>& timeline,
                    bool served, sched::ExecutionOrder order) {
    const auto exec = sched::execute_timeline(net, timeline, demands, order);
    double psnr_sum = 0.0;
    for (int l = 0; l < links; ++l) {
      const double rate =
          (exec.hp_delivered_bits[l] + exec.lp_delivered_bits[l]) /
          gop_seconds / scale;  // undo the demo down-scaling
      psnr_sum += psnr.psnr(rate);
    }
    table.new_row()
        .add(name)
        .add(exec.total_slots, 1)
        .add(exec.all_demands_met ? exec.average_delay() : -1.0, 1)
        .add(exec.delay_fairness(), 4)
        .add(served && exec.all_demands_met ? "yes" : "NO")
        .add(psnr_sum / links, 2);
  };

  report("column generation", cg.timeline, true,
         sched::ExecutionOrder::DenseFirst);
  report("benchmark 1 [17]", b1.timeline, b1.served_all,
         sched::ExecutionOrder::AsGiven);
  report("benchmark 2 [9,10]+[8]", b2.timeline, b2.served_all,
         sched::ExecutionOrder::AsGiven);
  report("TDMA", td.timeline, td.served_all,
         sched::ExecutionOrder::AsGiven);
  table.print(std::cout);

  std::printf("\nColumn generation used %d iterations and %zu concurrent "
              "transmission patterns.\n",
              cg.iterations, cg.timeline.size());
  return 0;
}
