#include "sched/timeline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.h"

namespace mmwave::sched {

double ExecutionResult::average_delay() const {
  return common::mean_of(finish_slot);
}

double ExecutionResult::delay_fairness() const {
  return common::jain_index(finish_slot);
}

double ExecutionResult::makespan() const {
  double m = 0.0;
  for (double f : finish_slot) m = std::max(m, f);
  return m;
}

std::vector<TimedSchedule> order_timeline(
    const net::Network& net, std::vector<TimedSchedule> timeline,
    const std::vector<video::LinkDemand>& demands, ExecutionOrder order) {
  const int num_links = net.num_links();
  if (order == ExecutionOrder::DenseFirst) {
    std::stable_sort(timeline.begin(), timeline.end(),
                     [&net](const TimedSchedule& a, const TimedSchedule& b) {
                       return a.schedule.aggregate_rate_bps(net) >
                              b.schedule.aggregate_rate_bps(net);
                     });
  } else if (order == ExecutionOrder::CompletionAware) {
    // Greedy dispatch: always run next the schedule finishing the most
    // remaining (link, layer) work per slot; ties to higher useful
    // throughput.  O(n^2 L) on the (small) schedule count.
    std::vector<double> hp_rem(num_links), lp_rem(num_links);
    for (int l = 0; l < num_links; ++l) {
      hp_rem[l] = demands[l].hp_bits;
      lp_rem[l] = demands[l].lp_bits;
    }
    std::vector<TimedSchedule> ordered;
    std::vector<bool> used(timeline.size(), false);
    std::vector<std::vector<double>> hp_rates, lp_rates;
    hp_rates.reserve(timeline.size());
    for (const TimedSchedule& ts : timeline) {
      hp_rates.push_back(
          ts.schedule.rate_column_bits_per_slot(net, net::Layer::Hp));
      lp_rates.push_back(
          ts.schedule.rate_column_bits_per_slot(net, net::Layer::Lp));
    }
    for (std::size_t step = 0; step < timeline.size(); ++step) {
      int best = -1;
      double best_completions = -1.0, best_throughput = -1.0;
      for (std::size_t s = 0; s < timeline.size(); ++s) {
        if (used[s] || timeline[s].slots <= 0.0) continue;
        const double tau = timeline[s].slots;
        double completions = 0.0, useful = 0.0;
        for (int l = 0; l < num_links; ++l) {
          const double hp_bits = std::min(hp_rem[l], hp_rates[s][l] * tau);
          const double lp_bits = std::min(lp_rem[l], lp_rates[s][l] * tau);
          useful += hp_bits + lp_bits;
          if ((hp_rem[l] > 0.0 || lp_rem[l] > 0.0) &&
              hp_rem[l] - hp_bits <= 1e-9 && lp_rem[l] - lp_bits <= 1e-9) {
            completions += 1.0;
          }
        }
        const double comp_rate = completions / tau;
        const double thr_rate = useful / tau;
        if (comp_rate > best_completions + 1e-12 ||
            (comp_rate > best_completions - 1e-12 &&
             thr_rate > best_throughput)) {
          best = static_cast<int>(s);
          best_completions = std::max(best_completions, comp_rate);
          best_throughput = thr_rate;
        }
      }
      if (best < 0) break;
      used[best] = true;
      for (int l = 0; l < num_links; ++l) {
        hp_rem[l] = std::max(
            0.0, hp_rem[l] - hp_rates[best][l] * timeline[best].slots);
        lp_rem[l] = std::max(
            0.0, lp_rem[l] - lp_rates[best][l] * timeline[best].slots);
      }
      ordered.push_back(timeline[best]);
    }
    // Keep any zero-duration leftovers at the end (harmless).
    for (std::size_t s = 0; s < timeline.size(); ++s)
      if (!used[s]) ordered.push_back(timeline[s]);
    timeline = std::move(ordered);
  }
  return timeline;
}

ExecutionResult execute_timeline(const net::Network& net,
                                 std::vector<TimedSchedule> timeline,
                                 const std::vector<video::LinkDemand>& demands,
                                 ExecutionOrder order) {
  const int num_links = net.num_links();
  ExecutionResult out;
  out.finish_slot.assign(num_links,
                         std::numeric_limits<double>::infinity());
  out.hp_delivered_bits.assign(num_links, 0.0);
  out.lp_delivered_bits.assign(num_links, 0.0);

  timeline = order_timeline(net, std::move(timeline), demands, order);

  // Remaining demand per link/layer; completion tolerances are relative to
  // the demand magnitude so float dust from long timelines cannot leave a
  // "met" demand without a finish time.
  std::vector<double> hp_left(num_links), lp_left(num_links);
  std::vector<double> tol(num_links);
  for (int l = 0; l < num_links; ++l) {
    hp_left[l] = demands[l].hp_bits;
    lp_left[l] = demands[l].lp_bits;
    tol[l] = 1e-6 * (1.0 + demands[l].hp_bits + demands[l].lp_bits);
    if (hp_left[l] <= 0.0 && lp_left[l] <= 0.0) out.finish_slot[l] = 0.0;
  }

  double clock = 0.0;
  for (const TimedSchedule& ts : timeline) {
    if (ts.slots <= 0.0) continue;
    const std::vector<double> hp_rate =
        ts.schedule.rate_column_bits_per_slot(net, net::Layer::Hp);
    const std::vector<double> lp_rate =
        ts.schedule.rate_column_bits_per_slot(net, net::Layer::Lp);

    for (int l = 0; l < num_links; ++l) {
      if (hp_rate[l] <= 0.0 && lp_rate[l] <= 0.0) continue;

      // Time within this schedule at which each layer empties; leftovers
      // below the link tolerance count as already done.
      auto finish_within = [&](double left, double rate) {
        if (left <= tol[l]) return 0.0;
        if (rate <= 0.0) return std::numeric_limits<double>::infinity();
        return left / rate;
      };
      const double t_hp = finish_within(hp_left[l], hp_rate[l]);
      const double t_lp = finish_within(lp_left[l], lp_rate[l]);

      const double hp_bits = std::min(hp_left[l], hp_rate[l] * ts.slots);
      const double lp_bits = std::min(lp_left[l], lp_rate[l] * ts.slots);
      hp_left[l] -= hp_bits;
      lp_left[l] -= lp_bits;
      out.hp_delivered_bits[l] += hp_bits;
      out.lp_delivered_bits[l] += lp_bits;

      if (hp_left[l] <= tol[l] && lp_left[l] <= tol[l] &&
          !std::isfinite(out.finish_slot[l])) {
        // Finished inside this schedule at the later of the two layers'
        // completion instants.
        const double t_done = std::max(t_hp, t_lp);
        if (t_done <= ts.slots + 1e-9) {
          out.finish_slot[l] = clock + std::min(t_done, ts.slots);
        }
      }
    }
    clock += ts.slots;
  }
  out.total_slots = clock;

  out.all_demands_met = true;
  for (int l = 0; l < num_links; ++l) {
    if (hp_left[l] > tol[l] || lp_left[l] > tol[l]) {
      out.all_demands_met = false;
      break;
    }
  }
  return out;
}

}  // namespace mmwave::sched
