// Timeline execution of a solved allocation.
//
// The optimization outputs pairs (schedule s, duration tau^s).  Schedules
// run sequentially (the paper: "only after one schedule is finished then
// another schedule can be executed"), so per-link *delay* — Fig. 2/3's
// metric — depends on the execution order.  The paper does not fix an
// order; we default to executing denser schedules (higher aggregate rate)
// first, which is the natural PNC policy, and apply the same rule to every
// algorithm compared.
#pragma once

#include <vector>

#include "mmwave/network.h"
#include "sched/schedule.h"
#include "video/demand.h"

namespace mmwave::sched {

struct TimedSchedule {
  Schedule schedule;
  double slots = 0.0;  ///< tau^s (fractional slots allowed)
};

enum class ExecutionOrder {
  AsGiven,
  DenseFirst,       ///< descending aggregate rate
  /// Greedy completion-aware order: repeatedly run the schedule that
  /// completes the most remaining link demand per slot.  This is the
  /// natural PNC dispatch rule for an unordered (schedule, tau) set from
  /// the optimizer — it minimizes average delay far better than a static
  /// sort, without changing total time.
  CompletionAware,
};

struct ExecutionResult {
  /// Sum of all schedule durations (the objective of P1), in slots.
  double total_slots = 0.0;
  /// Slot at which each link's HP+LP demand is fully served; infinity if
  /// never served.
  std::vector<double> finish_slot;
  /// Bits delivered per link per layer over the whole timeline.
  std::vector<double> hp_delivered_bits;
  std::vector<double> lp_delivered_bits;
  bool all_demands_met = false;

  /// Mean of finish_slot (the paper's "average delay").
  double average_delay() const;
  /// Jain fairness index over per-link delays (Fig. 3).
  double delay_fairness() const;
  /// Largest finish slot.
  double makespan() const;
};

/// Applies the requested execution order to the timeline (see
/// ExecutionOrder); AsGiven returns it untouched.  Exposed so other
/// consumers (e.g. slot quantization) dispatch in the same order the
/// executor would.
std::vector<TimedSchedule> order_timeline(
    const net::Network& net, std::vector<TimedSchedule> timeline,
    const std::vector<video::LinkDemand>& demands, ExecutionOrder order);

/// Plays the timed schedules in the requested order against the demands.
/// Delivery stops counting toward a layer once its demand is met (the PNC
/// would reallocate; the surplus is simply ignored, conservatively).
ExecutionResult execute_timeline(const net::Network& net,
                                 std::vector<TimedSchedule> timeline,
                                 const std::vector<video::LinkDemand>& demands,
                                 ExecutionOrder order =
                                     ExecutionOrder::DenseFirst);

}  // namespace mmwave::sched
