#include "sched/schedule.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "mmwave/power_control.h"

namespace mmwave::sched {

double Schedule::rate_bps(const net::Network& net, int link,
                          net::Layer layer) const {
  for (const Transmission& tx : txs_) {
    if (tx.link == link && tx.layer == layer)
      return net.rate_level(tx.rate_level).rate_bps;
  }
  return 0.0;
}

std::vector<double> Schedule::rate_column_bits_per_slot(
    const net::Network& net, net::Layer layer) const {
  std::vector<double> col(net.num_links(), 0.0);
  for (const Transmission& tx : txs_) {
    if (tx.layer != layer) continue;
    col[tx.link] = net.rate_level(tx.rate_level).rate_bps *
                   net.params().slot_seconds;
  }
  return col;
}

double Schedule::aggregate_rate_bps(const net::Network& net) const {
  double sum = 0.0;
  for (const Transmission& tx : txs_)
    sum += net.rate_level(tx.rate_level).rate_bps;
  return sum;
}

std::string Schedule::key() const {
  std::vector<std::tuple<int, int, int, int>> items;
  items.reserve(txs_.size());
  for (const Transmission& tx : txs_) {
    items.emplace_back(tx.link, static_cast<int>(tx.layer), tx.rate_level,
                       tx.channel);
  }
  std::sort(items.begin(), items.end());
  std::ostringstream ss;
  for (const auto& [l, lay, q, k] : items)
    ss << l << ':' << lay << ':' << q << ':' << k << ';';
  return ss.str();
}

ValidationResult validate_schedule(const net::Network& net,
                                   const Schedule& schedule,
                                   double sinr_slack,
                                   bool allow_layer_split) {
  ValidationResult out;
  auto fail = [&out](std::string reason) {
    out.ok = false;
    out.reason = std::move(reason);
    return out;
  };

  std::set<int> seen_links;
  std::set<std::pair<int, int>> seen_link_layer;
  std::set<std::pair<int, int>> seen_link_channel;
  std::map<int, int> node_owner;  // node -> link using it
  std::map<int, double> link_power;
  for (const Transmission& tx : schedule.transmissions()) {
    if (tx.link < 0 || tx.link >= net.num_links())
      return fail("link id out of range");
    if (tx.channel < 0 || tx.channel >= net.num_channels())
      return fail("channel out of range");
    if (tx.rate_level < 0 || tx.rate_level >= net.num_rate_levels())
      return fail("rate level out of range");
    if (tx.power_watts < -1e-12 ||
        tx.power_watts > net.params().p_max_watts * (1.0 + 1e-9))
      return fail("power outside [0, Pmax]");

    if (allow_layer_split) {
      if (!seen_link_layer.insert({tx.link, static_cast<int>(tx.layer)})
               .second) {
        return fail("layer scheduled twice for a link");
      }
      if (!seen_link_channel.insert({tx.link, tx.channel}).second)
        return fail("layer-split layers must use distinct channels");
    } else if (!seen_links.insert(tx.link).second) {
      return fail("link scheduled twice (violates constraint (30))");
    }
    link_power[tx.link] += tx.power_watts;
    if (link_power[tx.link] > net.params().p_max_watts * (1.0 + 1e-9))
      return fail("summed link power exceeds Pmax");

    const net::Link& link = net.link(tx.link);
    for (int node : {link.tx_node, link.rx_node}) {
      auto [it, inserted] = node_owner.try_emplace(node, tx.link);
      if (!inserted && it->second != tx.link)
        return fail("node half-duplex violated (two links share a node)");
    }
  }

  // SINR per channel under the schedule's actual powers.
  std::map<int, std::vector<const Transmission*>> by_channel;
  for (const Transmission& tx : schedule.transmissions())
    by_channel[tx.channel].push_back(&tx);

  for (const auto& [k, txs] : by_channel) {
    std::vector<int> links;
    std::vector<double> powers;
    for (const Transmission* tx : txs) {
      links.push_back(tx->link);
      powers.push_back(tx->power_watts);
    }
    const std::vector<double> sinr =
        net::achieved_sinr(net, k, links, powers);
    for (std::size_t i = 0; i < txs.size(); ++i) {
      const double threshold =
          net.rate_level(txs[i]->rate_level).sinr_threshold;
      if (sinr[i] < threshold * (1.0 - sinr_slack)) {
        std::ostringstream ss;
        ss << "SINR violated on channel " << k << " for link "
           << txs[i]->link << ": " << sinr[i] << " < " << threshold;
        return fail(ss.str());
      }
    }
  }
  return out;
}

}  // namespace mmwave::sched
