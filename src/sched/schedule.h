// Schedule data model.
//
// A Schedule is one "feasible schedule" s of the paper: a set of concurrent
// transmissions, each fixing (link, layer, rate level q, channel k, power),
// that can be sustained simultaneously.  The column it contributes to the
// master problem is the per-link rate vector (r_l^s(hp), r_l^s(lp)).
#pragma once

#include <string>
#include <vector>

#include "mmwave/network.h"
#include "mmwave/types.h"

namespace mmwave::sched {

struct Transmission {
  int link = 0;
  net::Layer layer = net::Layer::Hp;
  int rate_level = 0;  ///< index into the network's rate ladder (q)
  int channel = 0;     ///< k
  double power_watts = 0.0;
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<Transmission> txs) : txs_(std::move(txs)) {}

  const std::vector<Transmission>& transmissions() const { return txs_; }
  bool empty() const { return txs_.empty(); }
  std::size_t size() const { return txs_.size(); }
  void add(const Transmission& tx) { txs_.push_back(tx); }

  /// r_l^s(layer) in bits/s; 0 when the link/layer is inactive in s.
  double rate_bps(const net::Network& net, int link, net::Layer layer) const;

  /// Per-link rate vectors for both layers, in bits per *slot* — the column
  /// entries of the master problem.
  std::vector<double> rate_column_bits_per_slot(const net::Network& net,
                                                net::Layer layer) const;

  /// Sum of all active rates (bits/s) — used to order schedules for the
  /// delay metric (denser schedules first).
  double aggregate_rate_bps(const net::Network& net) const;

  /// Stable identity for de-duplication in the column pool: sorted
  /// (link, layer, q, k) tuples.  Power is excluded (it is implied).
  std::string key() const;

 private:
  std::vector<Transmission> txs_;
};

struct ValidationResult {
  bool ok = true;
  std::string reason;
};

/// Checks every feasibility requirement of Section III/IV:
///  * each link appears at most once (constraint (30): one layer, one rate,
///    one channel per link per schedule) — unless `allow_layer_split`, in
///    which case a link may appear once per layer on distinct channels with
///    its summed power within Pmax (the Section III remark that HP and LP
///    may ride different channels);
///  * node half-duplex / single-beam: at most one active link per node
///    (constraints (31)-(32));
///  * powers within [0, Pmax], per link in total;
///  * per channel, every receiver's SINR meets its rate level's threshold
///    under the schedule's actual powers (constraint (3)).
ValidationResult validate_schedule(const net::Network& net,
                                   const Schedule& schedule,
                                   double sinr_slack = 1e-7,
                                   bool allow_layer_split = false);

}  // namespace mmwave::sched
