#include "sched/quantize.h"

#include <algorithm>
#include <cmath>

namespace mmwave::sched {

QuantizeResult quantize_timeline(const net::Network& net,
                                 std::vector<TimedSchedule> timeline,
                                 const std::vector<video::LinkDemand>& demands,
                                 ExecutionOrder order) {
  QuantizeResult out;
  const int num_links = net.num_links();
  timeline = order_timeline(net, std::move(timeline), demands, order);
  for (const TimedSchedule& ts : timeline) out.fluid_slots += ts.slots;

  // Per-schedule per-layer rate columns (bits/slot).
  const std::size_t n = timeline.size();
  std::vector<std::vector<double>> hp_rate(n), lp_rate(n);
  for (std::size_t s = 0; s < n; ++s) {
    hp_rate[s] =
        timeline[s].schedule.rate_column_bits_per_slot(net, net::Layer::Hp);
    lp_rate[s] =
        timeline[s].schedule.rate_column_bits_per_slot(net, net::Layer::Lp);
  }

  // Start from floors; residual demand is judged on total capacity, which
  // is order-independent.
  std::vector<double> slots(n);
  std::vector<double> hp_cap(num_links, 0.0), lp_cap(num_links, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    slots[s] = std::floor(timeline[s].slots);
    for (int l = 0; l < num_links; ++l) {
      hp_cap[l] += hp_rate[s][l] * slots[s];
      lp_cap[l] += lp_rate[s][l] * slots[s];
    }
  }

  auto residual = [&](int l, net::Layer layer) {
    const double d =
        layer == net::Layer::Hp ? demands[l].hp_bits : demands[l].lp_bits;
    const double c = layer == net::Layer::Hp ? hp_cap[l] : lp_cap[l];
    const double tol = 1e-9 * (1.0 + d);
    return std::max(0.0, d - c - tol);
  };
  auto any_residual = [&]() {
    for (int l = 0; l < num_links; ++l) {
      if (residual(l, net::Layer::Hp) > 0.0 ||
          residual(l, net::Layer::Lp) > 0.0) {
        return true;
      }
    }
    return false;
  };

  // Greedy top-up: grant one extra slot at a time to the schedule that
  // covers the most residual demand per slot.  Terminates because every
  // granted slot strictly reduces some residual (the fluid plan proves a
  // covering set of schedules exists).
  int guard = 0;
  while (any_residual()) {
    int best = -1;
    double best_score = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      double score = 0.0;
      for (int l = 0; l < num_links; ++l) {
        score += std::min(residual(l, net::Layer::Hp), hp_rate[s][l]);
        score += std::min(residual(l, net::Layer::Lp), lp_rate[s][l]);
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;  // nothing can cover the residual (fluid plan
                          // did not serve it either)
    slots[best] += 1.0;
    for (int l = 0; l < num_links; ++l) {
      hp_cap[l] += hp_rate[best][l];
      lp_cap[l] += lp_rate[best][l];
    }
    if (++guard > 1000000) break;  // paranoia against numeric stagnation
  }

  for (std::size_t s = 0; s < n; ++s) {
    if (slots[s] <= 0.0) continue;
    out.timeline.push_back({timeline[s].schedule, slots[s]});
    out.quantized_slots += slots[s];
  }
  return out;
}

}  // namespace mmwave::sched
