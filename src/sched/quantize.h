// Slot quantization of fractional allocations.
//
// P1's durations tau^s are fractional ("Note that tau^s can be
// fractional"), but a real PNC grants whole slots.  This module rounds a
// fluid timeline to integer slot counts while STILL meeting every demand,
// and quantifies the overhead — the price of the paper's fluid relaxation.
//
// Rounding rule: process schedules in execution order, tracking the
// remaining demand; each schedule's duration is the smallest integer slot
// count that delivers at least what the fluid plan delivered (never more
// than ceil(tau), possibly less when earlier rounding over-delivered).  A
// final top-up pass appends whole-slot TDMA service for any residual demand
// left by degenerate cases, so the quantized plan always serves everything
// the fluid plan served.
#pragma once

#include <vector>

#include "sched/timeline.h"

namespace mmwave::sched {

struct QuantizeResult {
  std::vector<TimedSchedule> timeline;  ///< integer .slots entries
  double fluid_slots = 0.0;             ///< sum tau of the input
  double quantized_slots = 0.0;         ///< sum of integer slots
  /// (quantized - fluid) / fluid; 0 when the input was already integral.
  double overhead() const {
    return fluid_slots > 0.0 ? (quantized_slots - fluid_slots) / fluid_slots
                             : 0.0;
  }
};

/// Quantizes `timeline` (in the given execution order) against `demands`.
/// The result's timeline, executed AsGiven, meets every demand the fluid
/// plan met.
QuantizeResult quantize_timeline(const net::Network& net,
                                 std::vector<TimedSchedule> timeline,
                                 const std::vector<video::LinkDemand>& demands,
                                 ExecutionOrder order =
                                     ExecutionOrder::CompletionAware);

}  // namespace mmwave::sched
