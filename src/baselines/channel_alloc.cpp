#include "baselines/channel_alloc.h"

#include <algorithm>
#include <numeric>

namespace mmwave::baselines {

std::vector<int> allocate_channels_yiu_singh(
    const net::Network& net, const std::vector<video::LinkDemand>& demands) {
  const int L = net.num_links();
  const int K = net.num_channels();

  std::vector<int> order(L);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return demands[a].total() > demands[b].total();
  });

  std::vector<int> assignment(L, 0);
  std::vector<std::vector<int>> members(K);
  std::vector<double> load(K, 0.0);

  for (int l : order) {
    int best_k = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (int k = 0; k < K; ++k) {
      // Never park a link on a channel it cannot close a solo link budget
      // on; it would starve there no matter the schedule.
      if (net.best_solo_level(l, k) < 0) continue;
      // Conflict: mutual cross-gain with links already on k, weighted by
      // 1/direct gain (a weak link suffers more from the same interference).
      double conflict = 0.0;
      for (int other : members[k]) {
        conflict += net.cross_gain(other, l, k) / net.direct_gain(l, k);
        conflict +=
            net.cross_gain(l, other, k) / net.direct_gain(other, k);
      }
      // Secondary criterion: balance traffic load across channels.
      const double score = conflict + 0.1 * load[k] /
                                          (1.0 + demands[l].total());
      if (score < best_score) {
        best_score = score;
        best_k = k;
      }
    }
    if (best_k < 0) best_k = net.best_channel(l);  // hopeless link: best gain
    assignment[l] = best_k;
    members[best_k].push_back(l);
    load[best_k] += demands[l].total();
  }
  return assignment;
}

}  // namespace mmwave::baselines
