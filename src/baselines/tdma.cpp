#include "baselines/baselines.h"

#include "core/column_generation.h"

namespace mmwave::baselines {

BaselineResult tdma(const net::Network& net,
                    const std::vector<video::LinkDemand>& demands) {
  BaselineResult out;
  for (const sched::Schedule& s : core::tdma_initial_columns(net)) {
    // Each TDMA column serves exactly one (link, layer).
    const sched::Transmission& tx = s.transmissions().front();
    const double demand_bits = tx.layer == net::Layer::Hp
                                   ? demands[tx.link].hp_bits
                                   : demands[tx.link].lp_bits;
    if (demand_bits <= 0.0) continue;
    const double rate = net.bits_per_slot(tx.rate_level);
    out.timeline.push_back({s, demand_bits / rate});
    out.total_slots += demand_bits / rate;
  }
  // A link with demand but no TDMA column cannot be served at all.
  for (int l = 0; l < net.num_links(); ++l) {
    if (demands[l].total() <= 0.0) continue;
    bool has_column = false;
    for (const auto& ts : out.timeline) {
      if (ts.schedule.transmissions().front().link == l) {
        has_column = true;
        break;
      }
    }
    if (!has_column) out.served_all = false;
  }
  return out;
}

}  // namespace mmwave::baselines
