#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mmwave::baselines {
namespace {

/// Highest ladder level whose threshold the SINR meets; -1 if below all.
int level_for_sinr(const net::Network& net, double sinr) {
  int q = -1;
  for (int i = 0; i < net.num_rate_levels(); ++i) {
    if (sinr >= net.rate_level(i).sinr_threshold) q = i;
  }
  return q;
}

}  // namespace

BaselineResult benchmark1(const net::Network& net,
                          const std::vector<video::LinkDemand>& demands) {
  BaselineResult out;
  const int L = net.num_links();
  const double pmax = net.params().p_max_watts;

  // Each link permanently camps on its own best-gain channel ([17]-style
  // selfish choice; no coordination with other links).
  std::vector<int> chan(L);
  for (int l = 0; l < L; ++l) chan[l] = net.best_channel(l);

  std::vector<double> hp_left(L), lp_left(L);
  for (int l = 0; l < L; ++l) {
    hp_left[l] = demands[l].hp_bits;
    lp_left[l] = demands[l].lp_bits;
  }

  auto unfinished = [&](int l) { return hp_left[l] > 1e-9 || lp_left[l] > 1e-9; };

  // Each epoch ends when some link finishes its current layer; the active
  // set (and hence everyone's SINR) changes there.  At most 2L epochs.
  for (int epoch = 0; epoch < 2 * L + 4; ++epoch) {
    std::vector<int> active;
    for (int l = 0; l < L; ++l)
      if (unfinished(l)) active.push_back(l);
    if (active.empty()) return out;

    // Realized SINR with every unfinished link radiating at Pmax on its
    // chosen channel (blocked links included — they still interfere).
    sched::Schedule schedule;
    double dt = std::numeric_limits<double>::infinity();
    bool any_progress = false;
    for (int l : active) {
      double interference = net.noise(l);
      for (int o : active) {
        if (o == l || chan[o] != chan[l]) continue;
        interference += net.cross_gain(o, l, chan[l]) * pmax;
      }
      const double sinr = net.direct_gain(l, chan[l]) * pmax / interference;
      const int q = level_for_sinr(net, sinr);
      if (q < 0) continue;  // blocked this epoch
      const net::Layer layer =
          hp_left[l] > 1e-9 ? net::Layer::Hp : net::Layer::Lp;
      schedule.add({l, layer, q, chan[l], pmax});
      const double left = layer == net::Layer::Hp ? hp_left[l] : lp_left[l];
      dt = std::min(dt, left / net.bits_per_slot(q));
      any_progress = true;
    }

    if (!any_progress) {
      // Everyone is mutually blocked: the uncoordinated scheme deadlocks.
      out.served_all = false;
      return out;
    }

    out.timeline.push_back({schedule, dt});
    out.total_slots += dt;
    for (const sched::Transmission& tx : schedule.transmissions()) {
      const double bits = net.bits_per_slot(tx.rate_level) * dt;
      if (tx.layer == net::Layer::Hp) {
        hp_left[tx.link] = std::max(0.0, hp_left[tx.link] - bits);
      } else {
        lp_left[tx.link] = std::max(0.0, lp_left[tx.link] - bits);
      }
    }
  }

  // Loop guard exceeded (numerical dust); report what remains.
  for (int l = 0; l < L; ++l)
    if (unfinished(l)) out.served_all = false;
  return out;
}

}  // namespace mmwave::baselines
