#include "baselines/baselines.h"

#include <map>

#include "core/master.h"
#include "mmwave/power_control.h"

namespace mmwave::baselines {
namespace {

/// Recursive enumeration state: per-channel active sets with SINR targets.
struct Enumerator {
  const net::Network& net;
  const std::vector<video::LinkDemand>& demands;
  std::size_t max_schedules;

  std::vector<std::vector<int>> chan_links;
  std::vector<std::vector<double>> chan_gammas;
  std::vector<bool> node_busy;
  std::vector<sched::Transmission> current;
  std::vector<sched::Schedule> feasible;
  bool truncated = false;

  Enumerator(const net::Network& n,
             const std::vector<video::LinkDemand>& d, std::size_t cap)
      : net(n), demands(d), max_schedules(cap) {
    chan_links.resize(net.num_channels());
    chan_gammas.resize(net.num_channels());
    node_busy.assign(net.num_nodes(), false);
  }

  /// Adding a link to a channel only ever shrinks the feasible power region,
  /// so an infeasible partial assignment can be pruned outright.
  bool channel_feasible(int k) const {
    return net::min_power_assignment(net, k, chan_links[k], chan_gammas[k])
        .feasible;
  }

  void emit() {
    if (feasible.size() >= max_schedules) {
      truncated = true;
      return;
    }
    // Recompute minimal powers per channel for the stored schedule.
    sched::Schedule s;
    for (int k = 0; k < net.num_channels(); ++k) {
      if (chan_links[k].empty()) continue;
      const auto pc =
          net::min_power_assignment(net, k, chan_links[k], chan_gammas[k]);
      for (std::size_t i = 0; i < chan_links[k].size(); ++i) {
        for (const sched::Transmission& tx : current) {
          if (tx.link == chan_links[k][i] && tx.channel == k) {
            sched::Transmission copy = tx;
            copy.power_watts = pc.powers[i];
            s.add(copy);
          }
        }
      }
    }
    if (!s.empty()) feasible.push_back(std::move(s));
  }

  void recurse(int l) {
    if (truncated) return;
    if (l == net.num_links()) {
      emit();
      return;
    }
    // Option 1: link silent.
    recurse(l + 1);
    if (truncated) return;

    const net::Link& link = net.link(l);
    if (node_busy[link.tx_node] || node_busy[link.rx_node]) return;
    node_busy[link.tx_node] = node_busy[link.rx_node] = true;

    for (int layer = 0; layer < 2; ++layer) {
      const double demand = layer == 0 ? demands[l].hp_bits
                                       : demands[l].lp_bits;
      if (demand <= 0.0) continue;  // a zero-demand layer never helps
      for (int k = 0; k < net.num_channels(); ++k) {
        for (int q = 0; q < net.num_rate_levels(); ++q) {
          chan_links[k].push_back(l);
          chan_gammas[k].push_back(net.rate_level(q).sinr_threshold);
          if (channel_feasible(k)) {
            current.push_back({l, static_cast<net::Layer>(layer), q, k, 0.0});
            recurse(l + 1);
            current.pop_back();
          }
          chan_links[k].pop_back();
          chan_gammas[k].pop_back();
          if (truncated) break;
        }
        if (truncated) break;
      }
      if (truncated) break;
    }
    node_busy[link.tx_node] = node_busy[link.rx_node] = false;
  }
};

}  // namespace

ExhaustiveResult exhaustive_optimal(
    const net::Network& net, const std::vector<video::LinkDemand>& demands,
    std::size_t max_schedules) {
  ExhaustiveResult out;
  Enumerator en(net, demands, max_schedules);
  en.recurse(0);
  if (en.truncated) return out;  // ok = false
  out.num_feasible_schedules = en.feasible.size();

  core::MasterProblem master(net, demands);
  for (const sched::Schedule& s : en.feasible) master.add_column(s);
  const core::MasterSolution sol = master.solve();
  if (!sol.ok) return out;
  out.ok = true;
  out.total_slots = sol.objective_slots;
  for (std::size_t s = 0; s < master.num_columns(); ++s) {
    if (sol.tau[s] > 1e-9)
      out.timeline.push_back({master.columns()[s], sol.tau[s]});
  }
  return out;
}

}  // namespace mmwave::baselines
