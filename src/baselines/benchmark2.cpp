#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/channel_alloc.h"
#include "mmwave/power_control.h"

namespace mmwave::baselines {
namespace {

struct Segment {
  sched::Schedule schedule;  // transmissions on one channel
  double slots = 0.0;
};

/// Highest ladder level whose threshold `sinr` meets; -1 if below all.
int level_for_sinr(const net::Network& net, double sinr) {
  int q = -1;
  for (int i = 0; i < net.num_rate_levels(); ++i) {
    if (sinr >= net.rate_level(i).sinr_threshold) q = i;
  }
  return q;
}

/// Frame-based greedy STDMA on a single channel at fixed power Pmax
/// ([9][10]: priority by remaining demand, concurrent group formation, no
/// power adaptation).  Returns the channel's segment sequence; sets
/// `served_all` false if some member can never be scheduled.
std::vector<Segment> schedule_channel(const net::Network& net, int k,
                                      const std::vector<int>& members,
                                      std::vector<double>& hp_left,
                                      std::vector<double>& lp_left,
                                      bool& served_all) {
  std::vector<Segment> segments;
  const double pmax = net.params().p_max_watts;

  auto unfinished = [&](int l) {
    return hp_left[l] > 1e-9 || lp_left[l] > 1e-9;
  };

  // Links that cannot clear even the lowest level alone on this channel can
  // never be scheduled here; drop them up front rather than starving the
  // rest of the channel.
  std::vector<int> servable;
  for (int l : members) {
    if (net.best_solo_level(l, k) >= 0) {
      servable.push_back(l);
    } else if (unfinished(l)) {
      served_all = false;
    }
  }

  const int max_rounds = 2 * static_cast<int>(servable.size()) + 4;
  for (int round = 0; round < max_rounds; ++round) {
    std::vector<int> pending;
    for (int l : servable)
      if (unfinished(l)) pending.push_back(l);
    if (pending.empty()) return segments;

    // Priority: descending remaining demand.
    std::sort(pending.begin(), pending.end(), [&](int a, int b) {
      return hp_left[a] + lp_left[a] > hp_left[b] + lp_left[b];
    });

    // Greedy group formation: admit while everyone still clears the lowest
    // rate level at fixed Pmax.
    std::vector<int> group;
    const double gamma_min = net.rate_level(0).sinr_threshold;
    for (int l : pending) {
      std::vector<int> trial = group;
      trial.push_back(l);
      std::vector<double> powers(trial.size(), pmax);
      const std::vector<double> sinr =
          net::achieved_sinr(net, k, trial, powers);
      bool ok = true;
      for (double s : sinr) {
        if (s < gamma_min) {
          ok = false;
          break;
        }
      }
      if (ok) group = std::move(trial);
    }
    if (group.empty()) {
      // Highest-priority link cannot transmit even alone on this channel.
      served_all = false;
      return segments;
    }

    // Rate levels from the group's realized SINR; duration until the first
    // member finishes its current layer.
    std::vector<double> powers(group.size(), pmax);
    const std::vector<double> sinr =
        net::achieved_sinr(net, k, group, powers);
    Segment seg;
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < group.size(); ++i) {
      const int l = group[i];
      const int q = level_for_sinr(net, sinr[i]);
      const net::Layer layer =
          hp_left[l] > 1e-9 ? net::Layer::Hp : net::Layer::Lp;
      seg.schedule.add({l, layer, q, k, pmax});
      const double left = layer == net::Layer::Hp ? hp_left[l] : lp_left[l];
      dt = std::min(dt, left / net.bits_per_slot(q));
    }
    seg.slots = dt;
    for (const sched::Transmission& tx : seg.schedule.transmissions()) {
      const double bits = net.bits_per_slot(tx.rate_level) * dt;
      if (tx.layer == net::Layer::Hp) {
        hp_left[tx.link] = std::max(0.0, hp_left[tx.link] - bits);
      } else {
        lp_left[tx.link] = std::max(0.0, lp_left[tx.link] - bits);
      }
    }
    segments.push_back(std::move(seg));
  }
  for (int l : servable)
    if (unfinished(l)) served_all = false;
  return segments;
}

}  // namespace

BaselineResult benchmark2(const net::Network& net,
                          const std::vector<video::LinkDemand>& demands) {
  BaselineResult out;
  const int L = net.num_links();
  const int K = net.num_channels();

  const std::vector<int> assignment =
      allocate_channels_yiu_singh(net, demands);
  std::vector<std::vector<int>> members(K);
  for (int l = 0; l < L; ++l) members[assignment[l]].push_back(l);

  std::vector<double> hp_left(L), lp_left(L);
  for (int l = 0; l < L; ++l) {
    hp_left[l] = demands[l].hp_bits;
    lp_left[l] = demands[l].lp_bits;
  }

  // Channels run concurrently; merge the per-channel segment sequences into
  // global timeline slices at every group boundary.
  std::vector<std::vector<Segment>> per_channel(K);
  for (int k = 0; k < K; ++k) {
    per_channel[k] =
        schedule_channel(net, k, members[k], hp_left, lp_left,
                         out.served_all);
  }

  std::vector<std::size_t> idx(K, 0);
  std::vector<double> remaining(K, 0.0);
  for (int k = 0; k < K; ++k) {
    remaining[k] =
        per_channel[k].empty() ? 0.0 : per_channel[k][0].slots;
  }

  while (true) {
    double dt = std::numeric_limits<double>::infinity();
    for (int k = 0; k < K; ++k) {
      if (idx[k] < per_channel[k].size() && remaining[k] > 1e-12)
        dt = std::min(dt, remaining[k]);
    }
    if (!std::isfinite(dt)) break;

    sched::Schedule combined;
    for (int k = 0; k < K; ++k) {
      if (idx[k] >= per_channel[k].size() || remaining[k] <= 1e-12) continue;
      for (const sched::Transmission& tx :
           per_channel[k][idx[k]].schedule.transmissions()) {
        combined.add(tx);
      }
    }
    out.timeline.push_back({std::move(combined), dt});
    for (int k = 0; k < K; ++k) {
      if (idx[k] >= per_channel[k].size() || remaining[k] <= 1e-12) continue;
      remaining[k] -= dt;
      if (remaining[k] <= 1e-12) {
        ++idx[k];
        remaining[k] = idx[k] < per_channel[k].size()
                           ? per_channel[k][idx[k]].slots
                           : 0.0;
      }
    }
  }

  // Total scheduling time is the makespan across concurrent channels.
  for (const auto& ts : out.timeline) out.total_slots += ts.slots;
  return out;
}

}  // namespace mmwave::baselines
