// Benchmark schemes the paper compares against, plus plain TDMA and an
// exhaustive exact solver for ground truth on small instances.
//
// All baselines emit the same artifact as the column-generation solver — a
// timeline of (Schedule, slots) — so the sched::execute_timeline metrics
// (total time, per-link delay, Jain fairness) are computed identically for
// every algorithm.  Baselines' timelines are *simulation orders*; execute
// them with ExecutionOrder::AsGiven.
#pragma once

#include <vector>

#include "mmwave/network.h"
#include "sched/timeline.h"
#include "video/demand.h"

namespace mmwave::baselines {

struct BaselineResult {
  std::vector<sched::TimedSchedule> timeline;
  /// Sum of timeline durations (slots).
  double total_slots = 0.0;
  /// False if the scheme could not serve every demand (e.g. a link blocked
  /// forever); total_slots is then meaningless.
  bool served_all = true;
};

/// Plain TDMA (the master-problem initialization, Section IV-B): every link
/// transmits alone on its best channel, HP then LP.
BaselineResult tdma(const net::Network& net,
                    const std::vector<video::LinkDemand>& demands);

/// Benchmark 1 [17]: uncoordinated distortion-greedy transmission.  Every
/// link with remaining traffic transmits concurrently at Pmax on the channel
/// with its own best direct gain (HP first, then LP).  No coordination:
/// links achieve whatever rate level their realized SINR supports — possibly
/// none, in which case they stay blocked (still radiating) until interferers
/// finish.  The simulation advances to the next per-link completion.
BaselineResult benchmark1(const net::Network& net,
                          const std::vector<video::LinkDemand>& demands);

/// Benchmark 2 [9][10] + channel allocation [8]: links are first assigned
/// to channels by allocate_channels_yiu_singh; within each channel a
/// frame-based greedy STDMA scheduler forms concurrent groups (descending
/// remaining demand, admitted while everyone's SINR at fixed power Pmax
/// stays above their rate level's threshold).  No power adaptation and no
/// per-link channel diversity, matching the paper's description.
BaselineResult benchmark2(const net::Network& net,
                          const std::vector<video::LinkDemand>& demands);

/// Exact P1 via exhaustive feasible-schedule enumeration + one LP solve.
/// Exponential in links: use only for small instances (L <= ~6).
/// `max_schedules` guards against runaway enumeration.
struct ExhaustiveResult {
  bool ok = false;
  double total_slots = 0.0;
  std::vector<sched::TimedSchedule> timeline;
  std::size_t num_feasible_schedules = 0;
};
ExhaustiveResult exhaustive_optimal(
    const net::Network& net, const std::vector<video::LinkDemand>& demands,
    std::size_t max_schedules = 2'000'000);

}  // namespace mmwave::baselines
