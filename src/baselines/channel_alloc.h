// SDMA-style channel allocation in the spirit of Yiu & Singh [8].
//
// Reference [8] proposes assigning 60 GHz links to channels so that links
// far enough apart reuse a channel while nearby (high cross-gain) links are
// separated; the paper combines this allocator with both benchmark schemes
// "for a fair comparison".  [8] gives no concrete optimization, so we
// implement the natural greedy version of its idea: process links in
// descending traffic demand and place each on the channel where it sees the
// least total cross-gain conflict with already-placed links, breaking ties
// toward the emptier channel.
#pragma once

#include <vector>

#include "mmwave/network.h"
#include "video/demand.h"

namespace mmwave::baselines {

/// Returns channel index per link.
std::vector<int> allocate_channels_yiu_singh(
    const net::Network& net, const std::vector<video::LinkDemand>& demands);

}  // namespace mmwave::baselines
