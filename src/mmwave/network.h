// Network: the immutable problem instance consumed by every scheduler.
//
// Bundles the parameter set (Table I), a channel model, and the discrete
// rate ladder derived from the SINR threshold set via the Shannon capacity
// formula (eq. (2)):  u^q = W log2(1 + gamma^q).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "mmwave/channel.h"
#include "mmwave/types.h"

namespace mmwave::net {

class Network {
 public:
  /// Takes ownership of the channel model.  The rate ladder is computed
  /// from params.sinr_thresholds (ascending thresholds required).
  Network(NetworkParams params, std::unique_ptr<ChannelModel> channel);

  /// Convenience factory: the paper's simulation setup (Table I gains).
  static Network table_i(NetworkParams params, common::Rng& rng);

  const NetworkParams& params() const { return params_; }
  int num_links() const { return params_.num_links; }
  int num_channels() const { return params_.num_channels; }
  int num_rate_levels() const { return static_cast<int>(ladder_.size()); }
  int num_nodes() const { return num_nodes_; }

  const std::vector<Link>& links() const { return channel_->links(); }
  const Link& link(int l) const { return channel_->links()[l]; }

  /// Rate level q (0-based).  rate_bps = W log2(1 + threshold).
  const RateLevel& rate_level(int q) const { return ladder_[q]; }
  const std::vector<RateLevel>& rate_ladder() const { return ladder_; }

  /// Bits delivered per time slot at ladder level q.
  double bits_per_slot(int q) const {
    return ladder_[q].rate_bps * params_.slot_seconds;
  }

  double direct_gain(int l, int k) const {
    return channel_->direct_gain(l, k);
  }
  double cross_gain(int from, int to, int k) const {
    return channel_->cross_gain(from, to, k);
  }
  double noise(int l) const { return channel_->noise(l); }

  const ChannelModel& channel() const { return *channel_; }

  /// Highest ladder level link l can sustain alone (no interference) on
  /// channel k at P_max; -1 if even level 0 is infeasible.
  int best_solo_level(int l, int k) const;

  /// Channel with the largest direct gain for link l.
  int best_channel(int l) const;

 private:
  NetworkParams params_;
  std::unique_ptr<ChannelModel> channel_;
  std::vector<RateLevel> ladder_;
  int num_nodes_ = 0;
};

}  // namespace mmwave::net
