#include "mmwave/power_control.h"

#include <cassert>
#include <cmath>

#include "common/matrix.h"

namespace mmwave::net {

PowerControlResult min_power_assignment(const Network& net, int k,
                                        const std::vector<int>& links,
                                        const std::vector<double>& gammas) {
  assert(links.size() == gammas.size());
  PowerControlResult out;
  const int n = static_cast<int>(links.size());
  if (n == 0) {
    out.feasible = true;
    return out;
  }
  const double pmax = net.params().p_max_watts;

  // Build (I - D F) and D nu.
  common::Matrix a(n, n);
  std::vector<double> rhs(n);
  for (int i = 0; i < n; ++i) {
    const int li = links[i];
    const double h = net.direct_gain(li, k);
    if (h <= 0.0) return out;  // cannot serve at all
    const double scale = gammas[i] / h;
    a(i, i) = 1.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      a(i, j) = -scale * net.cross_gain(links[j], li, k);
    }
    rhs[i] = scale * net.noise(li);
  }

  std::vector<double> p = common::solve_linear_system(a, rhs);
  if (p.empty()) return out;  // singular: at/beyond the feasibility boundary
  for (int i = 0; i < n; ++i) {
    if (!(p[i] >= -1e-12) || p[i] > pmax * (1.0 + 1e-9)) return out;
  }
  // A nonnegative solution of (I - DF) P = D nu is only the Perron fixed
  // point when rho(DF) < 1; beyond the boundary the solve can produce a
  // spurious nonnegative vector.  Verify the SINR constraints directly.
  std::vector<double> clipped(n);
  for (int i = 0; i < n; ++i)
    clipped[i] = std::min(std::max(p[i], 0.0), pmax);
  const std::vector<double> sinr = achieved_sinr(net, k, links, clipped);
  for (int i = 0; i < n; ++i) {
    if (sinr[i] < gammas[i] * (1.0 - 1e-7)) return out;
  }
  out.feasible = true;
  out.powers = std::move(clipped);
  return out;
}

PowerControlResult iterative_power_control(const Network& net, int k,
                                           const std::vector<int>& links,
                                           const std::vector<double>& gammas,
                                           int max_iters, double tol) {
  assert(links.size() == gammas.size());
  PowerControlResult out;
  const int n = static_cast<int>(links.size());
  if (n == 0) {
    out.feasible = true;
    return out;
  }
  const double pmax = net.params().p_max_watts;

  std::vector<double> p(n, 0.0), next(n);
  for (int it = 0; it < max_iters; ++it) {
    double delta = 0.0;
    for (int i = 0; i < n; ++i) {
      const int li = links[i];
      double interference = net.noise(li);
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        interference += net.cross_gain(links[j], li, k) * p[j];
      }
      const double target =
          gammas[i] * interference / net.direct_gain(li, k);
      next[i] = std::min(target, pmax);
      delta = std::max(delta, std::abs(next[i] - p[i]));
    }
    p.swap(next);
    if (delta < tol) break;
  }

  const std::vector<double> sinr = achieved_sinr(net, k, links, p);
  for (int i = 0; i < n; ++i) {
    if (sinr[i] < gammas[i] * (1.0 - 1e-6)) return out;
  }
  out.feasible = true;
  out.powers = std::move(p);
  return out;
}

std::vector<double> achieved_sinr(const Network& net, int k,
                                  const std::vector<int>& links,
                                  const std::vector<double>& powers) {
  assert(links.size() == powers.size());
  const int n = static_cast<int>(links.size());
  std::vector<double> sinr(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const int li = links[i];
    double interference = net.noise(li);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      interference += net.cross_gain(links[j], li, k) * powers[j];
    }
    sinr[i] = net.direct_gain(li, k) * powers[i] / interference;
  }
  return sinr;
}

}  // namespace mmwave::net
