#include "mmwave/network.h"

#include <cassert>
#include <cmath>

namespace mmwave::net {

Network::Network(NetworkParams params, std::unique_ptr<ChannelModel> channel)
    : params_(std::move(params)), channel_(std::move(channel)) {
  assert(channel_ != nullptr);
  assert(channel_->num_links() == params_.num_links);
  assert(channel_->num_channels() == params_.num_channels);

  ladder_.reserve(params_.sinr_thresholds.size());
  [[maybe_unused]] double prev = 0.0;
  for (double gamma : params_.sinr_thresholds) {
    assert(gamma > prev);  // ladder must be strictly ascending
    prev = gamma;
    ladder_.push_back(
        {gamma, params_.bandwidth_hz * std::log2(1.0 + gamma)});
  }

  for (const Link& l : channel_->links()) {
    num_nodes_ = std::max(num_nodes_, std::max(l.tx_node, l.rx_node) + 1);
  }
}

Network Network::table_i(NetworkParams params, common::Rng& rng) {
  auto model = std::make_unique<TableIChannelModel>(
      params.num_links, params.num_channels, params.noise_watts, rng);
  return Network(std::move(params), std::move(model));
}

int Network::best_solo_level(int l, int k) const {
  const double sinr =
      direct_gain(l, k) * params_.p_max_watts / noise(l);
  int best = -1;
  for (int q = 0; q < num_rate_levels(); ++q) {
    if (sinr >= ladder_[q].sinr_threshold) best = q;
  }
  return best;
}

int Network::best_channel(int l) const {
  int best = 0;
  double best_gain = direct_gain(l, 0);
  for (int k = 1; k < num_channels(); ++k) {
    const double g = direct_gain(l, k);
    if (g > best_gain) {
      best_gain = g;
      best = k;
    }
  }
  return best;
}

}  // namespace mmwave::net
