// 2-D placement geometry for the indoor (geometric) channel model.
#pragma once

#include <vector>

#include "common/rng.h"
#include "mmwave/types.h"

namespace mmwave::net {

struct Point2D {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Point2D& a, const Point2D& b);

/// Angle of the ray a -> b in radians, in (-pi, pi].
double bearing(const Point2D& a, const Point2D& b);

/// Absolute angular offset between two bearings, folded into [0, pi].
double angle_offset(double bearing_a, double bearing_b);

/// Node positions for a set of links placed uniformly in a `room_size` x
/// `room_size` square; each link's receiver is placed uniformly within
/// [min_link_len, max_link_len] of its transmitter (re-drawn until it falls
/// inside the room).
struct Placement {
  std::vector<Point2D> node_pos;  ///< indexed by node id
  std::vector<Link> links;
};

Placement random_placement(int num_links, double room_size,
                           double min_link_len, double max_link_len,
                           common::Rng& rng);

}  // namespace mmwave::net
