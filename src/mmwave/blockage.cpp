#include "mmwave/blockage.h"

#include <cassert>

namespace mmwave::net {

BlockageProcess::BlockageProcess(int num_links, const BlockageConfig& config,
                                 common::Rng& rng)
    : config_(config), blocked_(num_links, false) {
  assert(config.p_block >= 0.0 && config.p_block <= 1.0);
  assert(config.p_recover >= 0.0 && config.p_recover <= 1.0);
  assert(config.attenuation > 0.0 && config.attenuation <= 1.0);
  for (int l = 0; l < num_links; ++l)
    blocked_[l] = rng.bernoulli(config.initial_blocked);
}

void BlockageProcess::advance(common::Rng& rng) {
  for (std::size_t l = 0; l < blocked_.size(); ++l) {
    if (blocked_[l]) {
      if (rng.bernoulli(config_.p_recover)) blocked_[l] = false;
    } else {
      if (rng.bernoulli(config_.p_block)) blocked_[l] = true;
    }
  }
}

int BlockageProcess::num_blocked() const {
  int n = 0;
  for (bool b : blocked_)
    if (b) ++n;
  return n;
}

RxScaledChannelModel::RxScaledChannelModel(const ChannelModel* base,
                                           std::vector<double> rx_scale)
    : base_(base), rx_scale_(std::move(rx_scale)) {
  assert(base_ != nullptr);
  assert(static_cast<int>(rx_scale_.size()) == base_->num_links());
}

}  // namespace mmwave::net
