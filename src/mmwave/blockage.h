// Two-state Markov link blockage.
//
// The paper's companion works ([4]-[6]) model a 60 GHz link as alternating
// between line-of-sight and blocked states (a person walks through the
// beam).  We implement that process so the streaming simulator can replay
// the paper's static optimization in a dynamic environment: per scheduling
// period, each link is either LoS or blocked; a blocked link's receiver
// sees every incoming path attenuated by a fixed factor (obstruction near
// the receiver attenuates the direct beam and incoming interference alike).
#pragma once

#include <vector>

#include "common/rng.h"
#include "mmwave/channel.h"

namespace mmwave::net {

struct BlockageConfig {
  /// P(LoS -> blocked) per period.
  double p_block = 0.15;
  /// P(blocked -> LoS) per period.
  double p_recover = 0.5;
  /// Linear attenuation applied to all paths into a blocked receiver
  /// (0.01 = -20 dB, typical for a human blocker at 60 GHz).
  double attenuation = 0.01;
  /// Fraction of links initially blocked.
  double initial_blocked = 0.0;
};

/// Per-link two-state Markov chain advanced once per scheduling period.
class BlockageProcess {
 public:
  BlockageProcess(int num_links, const BlockageConfig& config,
                  common::Rng& rng);

  /// Advances every link's chain by one period.
  void advance(common::Rng& rng);

  bool blocked(int link) const { return blocked_[link]; }
  /// Gain multiplier for paths into link `link`'s receiver.
  double rx_attenuation(int link) const {
    return blocked_[link] ? config_.attenuation : 1.0;
  }
  int num_blocked() const;
  int num_links() const { return static_cast<int>(blocked_.size()); }

 private:
  BlockageConfig config_;
  std::vector<bool> blocked_;
};

/// Channel-model decorator scaling all paths into each receiver by a
/// per-link factor (the blockage state).  Non-owning: `base` must outlive
/// the decorator.
class RxScaledChannelModel : public ChannelModel {
 public:
  RxScaledChannelModel(const ChannelModel* base,
                       std::vector<double> rx_scale);

  int num_links() const override { return base_->num_links(); }
  int num_channels() const override { return base_->num_channels(); }
  double direct_gain(int link, int channel) const override {
    return base_->direct_gain(link, channel) * rx_scale_[link];
  }
  double cross_gain(int from_link, int to_link, int channel) const override {
    return base_->cross_gain(from_link, to_link, channel) *
           rx_scale_[to_link];
  }
  double noise(int link) const override { return base_->noise(link); }
  const std::vector<Link>& links() const override { return base_->links(); }

 private:
  const ChannelModel* base_;
  std::vector<double> rx_scale_;
};

}  // namespace mmwave::net
