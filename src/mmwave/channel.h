// Channel gain providers.
//
// The optimization layers only ever query three quantities:
//   direct_gain(l, k)        = H_l^k      (tx_l -> rx_l on channel k)
//   cross_gain(l', l, k)     = H_{l'l}^k  (tx_l' -> rx_l on channel k,
//                                          already including Delta(theta))
//   noise(l)                 = rho_l
// so a channel model is an immutable table of those values.  Two providers:
//
//  * TableIChannelModel — exactly the paper's simulation setup (Table I):
//    every H_l^k and every G_{l'l}^k, Delta(theta(l',l)) drawn i.i.d.
//    uniform [0,1].  All headline figures are reproduced with this model.
//
//  * GeometricChannelModel — a physically-motivated indoor 60 GHz model
//    (free-space path loss, directional antennas via AntennaPattern,
//    per-channel frequency-selective fading) used in ablations to show that
//    conclusions are not an artifact of the i.i.d. uniform assumption.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "mmwave/antenna.h"
#include "mmwave/geometry.h"
#include "mmwave/types.h"

namespace mmwave::net {

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;
  virtual int num_links() const = 0;
  virtual int num_channels() const = 0;
  /// H_l^k in [0, 1]-ish units (relative power gain).
  virtual double direct_gain(int link, int channel) const = 0;
  /// H_{l'l}^k: interference gain from `from_link`'s transmitter to
  /// `to_link`'s receiver.  Callers never ask for from_link == to_link.
  virtual double cross_gain(int from_link, int to_link, int channel) const = 0;
  /// Per-receiver noise power rho_l (watts).
  virtual double noise(int link) const = 0;
  /// The links (node incidence is needed for the half-duplex constraints).
  virtual const std::vector<Link>& links() const = 0;
};

/// Table I of the paper: i.i.d. uniform [0,1] gains, common noise floor.
/// Each link l connects its own dedicated node pair (2l, 2l+1), matching the
/// paper's "each link contains one transmitter and one receiver".
class TableIChannelModel : public ChannelModel {
 public:
  TableIChannelModel(int num_links, int num_channels, double noise_watts,
                     common::Rng& rng);

  int num_links() const override { return num_links_; }
  int num_channels() const override { return num_channels_; }
  double direct_gain(int link, int channel) const override;
  double cross_gain(int from_link, int to_link, int channel) const override;
  double noise(int) const override { return noise_watts_; }
  const std::vector<Link>& links() const override { return links_; }

 private:
  int num_links_;
  int num_channels_;
  double noise_watts_;
  std::vector<Link> links_;
  std::vector<double> direct_;  // [l * K + k]
  std::vector<double> cross_;   // [(from * L + to) * K + k]
};

struct GeometricChannelConfig {
  double room_size_m = 10.0;
  double min_link_len_m = 1.0;
  double max_link_len_m = 5.0;
  double carrier_hz = 60e9;
  /// Path-loss exponent (LoS indoor 60 GHz is ~2).
  double path_loss_exponent = 2.0;
  /// Transmit/receive beamwidth; the indoor case of the paper motivates a
  /// fairly wide beam (interference not negligible).
  double beamwidth_rad = 0.6;
  double sidelobe_gain = 0.05;
  /// Std-dev (dB) of the per-(link, channel) lognormal fading term that
  /// models frequency selectivity across the K channels.
  double channel_fading_db = 4.0;
};

class GeometricChannelModel : public ChannelModel {
 public:
  GeometricChannelModel(int num_links, int num_channels, double noise_watts,
                        const GeometricChannelConfig& config,
                        common::Rng& rng);

  int num_links() const override { return num_links_; }
  int num_channels() const override { return num_channels_; }
  double direct_gain(int link, int channel) const override;
  double cross_gain(int from_link, int to_link, int channel) const override;
  double noise(int) const override { return noise_watts_; }
  const std::vector<Link>& links() const override { return placement_.links; }

  const Placement& placement() const { return placement_; }

 private:
  double path_gain(double dist_m, int from_link, int to_link,
                   int channel) const;

  int num_links_;
  int num_channels_;
  double noise_watts_;
  GeometricChannelConfig config_;
  Placement placement_;
  std::unique_ptr<AntennaPattern> pattern_;
  std::vector<double> fading_;  // [(from * L + to) * K + k], linear scale
  std::vector<double> direct_;
  std::vector<double> cross_;
};

}  // namespace mmwave::net
