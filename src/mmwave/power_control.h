// Single-channel SINR-feasibility and minimum-power assignment.
//
// For a set of links sharing one channel with per-link SINR targets gamma_i,
// the constraints
//     H_i P_i >= gamma_i (rho_i + sum_{j != i} H_{ji} P_j),   0 <= P <= Pmax
// form the classic power-control feasibility system P >= D (nu + F P).
// When the spectral radius of D F is < 1 the componentwise-minimal solution
// is P* = (I - D F)^{-1} D nu (Foschini–Miljanic); the set is feasible under
// the cap iff P* exists and P* <= Pmax.
//
// Used by the greedy pricing heuristic (admit a link only if the enlarged
// set stays feasible) and by the Benchmark 2 grouping check.
#pragma once

#include <vector>

#include "mmwave/network.h"

namespace mmwave::net {

struct PowerControlResult {
  bool feasible = false;
  /// Minimal powers (watts), aligned with the input link array.
  std::vector<double> powers;
};

/// Minimum-power assignment for `links` sharing channel `k`, where link
/// `links[i]` must meet SINR threshold `gammas[i]`.  Direct solve via the
/// linear system; O(n^3) in the active-set size.
PowerControlResult min_power_assignment(const Network& net, int k,
                                        const std::vector<int>& links,
                                        const std::vector<double>& gammas);

/// The same feasibility question answered by Foschini–Miljanic fixed-point
/// iteration with the Pmax cap (P <- min(Pmax, D(nu + F P))).  Converges to
/// the same P* when feasible; used for cross-validation and as a robust
/// fallback.  `max_iters` bounds the iteration.
PowerControlResult iterative_power_control(const Network& net, int k,
                                           const std::vector<int>& links,
                                           const std::vector<double>& gammas,
                                           int max_iters = 500,
                                           double tol = 1e-10);

/// Achieved SINR at `links[i]` when the given powers are used on channel k
/// (only the listed links transmit).
std::vector<double> achieved_sinr(const Network& net, int k,
                                  const std::vector<int>& links,
                                  const std::vector<double>& powers);

}  // namespace mmwave::net
