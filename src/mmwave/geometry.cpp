#include "mmwave/geometry.h"

#include <cmath>

namespace mmwave::net {

double distance(const Point2D& a, const Point2D& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double bearing(const Point2D& a, const Point2D& b) {
  return std::atan2(b.y - a.y, b.x - a.x);
}

double angle_offset(double bearing_a, double bearing_b) {
  double d = std::fmod(std::abs(bearing_a - bearing_b), 2.0 * M_PI);
  if (d > M_PI) d = 2.0 * M_PI - d;
  return d;
}

Placement random_placement(int num_links, double room_size,
                           double min_link_len, double max_link_len,
                           common::Rng& rng) {
  Placement p;
  p.node_pos.reserve(2 * num_links);
  p.links.reserve(num_links);
  for (int l = 0; l < num_links; ++l) {
    Point2D tx{rng.uniform(0.0, room_size), rng.uniform(0.0, room_size)};
    Point2D rx;
    do {
      const double len = rng.uniform(min_link_len, max_link_len);
      const double ang = rng.uniform(-M_PI, M_PI);
      rx = {tx.x + len * std::cos(ang), tx.y + len * std::sin(ang)};
    } while (rx.x < 0.0 || rx.x > room_size || rx.y < 0.0 ||
             rx.y > room_size);
    const int tx_id = static_cast<int>(p.node_pos.size());
    p.node_pos.push_back(tx);
    const int rx_id = static_cast<int>(p.node_pos.size());
    p.node_pos.push_back(rx);
    p.links.push_back({l, tx_id, rx_id});
  }
  return p;
}

}  // namespace mmwave::net
