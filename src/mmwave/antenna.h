// Directional antenna gain patterns Delta(theta) (Section III, eq. (4)).
//
// The paper models the interference from link l1's transmitter to link l2's
// receiver as G * Delta(theta(l1, l2)) where Delta is the normalized
// directional gain at offset angle theta from boresight.  Two standard
// patterns are provided:
//  * flat-top ("keyhole"): full gain inside the half-power beamwidth,
//    constant sidelobe level outside — the model used by most mmWave MAC
//    papers, including the paper's references [5], [6];
//  * Gaussian mainlobe with a sidelobe floor — a smoother alternative used
//    for ablations.
#pragma once

#include <memory>

namespace mmwave::net {

class AntennaPattern {
 public:
  virtual ~AntennaPattern() = default;
  /// Normalized gain in [0, 1] at offset angle `theta` radians from
  /// boresight; theta is folded into [0, pi] by the caller.
  virtual double gain(double theta) const = 0;
};

/// Constant mainlobe gain of 1 within +-beamwidth/2, `sidelobe` outside.
class FlatTopPattern : public AntennaPattern {
 public:
  FlatTopPattern(double beamwidth_rad, double sidelobe);
  double gain(double theta) const override;

 private:
  double half_beamwidth_;
  double sidelobe_;
};

/// exp(-theta^2 / (2 sigma^2)) mainlobe (sigma from the half-power
/// beamwidth), floored at `sidelobe`.
class GaussianPattern : public AntennaPattern {
 public:
  GaussianPattern(double beamwidth_rad, double sidelobe);
  double gain(double theta) const override;

 private:
  double sigma_;
  double sidelobe_;
};

std::unique_ptr<AntennaPattern> make_flat_top(double beamwidth_rad,
                                              double sidelobe);
std::unique_ptr<AntennaPattern> make_gaussian(double beamwidth_rad,
                                              double sidelobe);

}  // namespace mmwave::net
