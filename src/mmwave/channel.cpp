#include "mmwave/channel.h"

#include <cassert>
#include <cmath>

namespace mmwave::net {

TableIChannelModel::TableIChannelModel(int num_links, int num_channels,
                                       double noise_watts, common::Rng& rng)
    : num_links_(num_links),
      num_channels_(num_channels),
      noise_watts_(noise_watts) {
  assert(num_links > 0 && num_channels > 0);
  links_.reserve(num_links);
  for (int l = 0; l < num_links; ++l) links_.push_back({l, 2 * l, 2 * l + 1});

  direct_.resize(static_cast<std::size_t>(num_links) * num_channels);
  for (double& g : direct_) g = rng.uniform();

  // Cross gain = G_{l'l}^k * Delta(theta(l', l)); per Table I both factors
  // are uniform [0,1].  Delta depends only on the link pair (geometry), G on
  // the pair and the channel.
  std::vector<double> delta(static_cast<std::size_t>(num_links) * num_links);
  for (double& d : delta) d = rng.uniform();
  cross_.resize(static_cast<std::size_t>(num_links) * num_links *
                num_channels);
  for (int from = 0; from < num_links; ++from) {
    for (int to = 0; to < num_links; ++to) {
      if (from == to) continue;
      const double d = delta[static_cast<std::size_t>(from) * num_links + to];
      for (int k = 0; k < num_channels; ++k) {
        cross_[(static_cast<std::size_t>(from) * num_links + to) *
                   num_channels +
               k] = rng.uniform() * d;
      }
    }
  }
}

double TableIChannelModel::direct_gain(int link, int channel) const {
  return direct_[static_cast<std::size_t>(link) * num_channels_ + channel];
}

double TableIChannelModel::cross_gain(int from_link, int to_link,
                                      int channel) const {
  assert(from_link != to_link);
  return cross_[(static_cast<std::size_t>(from_link) * num_links_ + to_link) *
                    num_channels_ +
                channel];
}

GeometricChannelModel::GeometricChannelModel(
    int num_links, int num_channels, double noise_watts,
    const GeometricChannelConfig& config, common::Rng& rng)
    : num_links_(num_links),
      num_channels_(num_channels),
      noise_watts_(noise_watts),
      config_(config),
      placement_(random_placement(num_links, config.room_size_m,
                                  config.min_link_len_m,
                                  config.max_link_len_m, rng)),
      pattern_(make_flat_top(config.beamwidth_rad, config.sidelobe_gain)) {
  // Per-(ordered pair, channel) lognormal fading for frequency selectivity.
  // Index [from * L + to] with from == to used for the direct path.
  fading_.resize(static_cast<std::size_t>(num_links) * num_links *
                 num_channels);
  const double sigma_ln = config.channel_fading_db * std::log(10.0) / 10.0;
  for (double& f : fading_) {
    f = std::exp(rng.normal(0.0, sigma_ln) - 0.5 * sigma_ln * sigma_ln);
  }

  // Precompute gains.  Gains are normalized to the 1 m free-space gain so
  // they land in (0, 1] like the Table I model, keeping SINR scales
  // comparable across models.
  direct_.resize(static_cast<std::size_t>(num_links) * num_channels);
  cross_.assign(
      static_cast<std::size_t>(num_links) * num_links * num_channels, 0.0);

  for (int l = 0; l < num_links; ++l) {
    const Link& link = placement_.links[l];
    const double d =
        distance(placement_.node_pos[link.tx_node],
                 placement_.node_pos[link.rx_node]);
    for (int k = 0; k < num_channels; ++k) {
      // Both ends beamform on boresight: antenna gain 1 in both directions.
      direct_[static_cast<std::size_t>(l) * num_channels + k] =
          path_gain(d, l, l, k);
    }
  }
  for (int from = 0; from < num_links; ++from) {
    const Link& lf = placement_.links[from];
    const Point2D& tx = placement_.node_pos[lf.tx_node];
    const double tx_boresight =
        bearing(tx, placement_.node_pos[lf.rx_node]);
    for (int to = 0; to < num_links; ++to) {
      if (from == to) continue;
      const Link& lt = placement_.links[to];
      const Point2D& rx = placement_.node_pos[lt.rx_node];
      const double rx_boresight =
          bearing(rx, placement_.node_pos[lt.tx_node]);
      // Offsets of the interference ray from each end's boresight.
      const double theta_tx = angle_offset(tx_boresight, bearing(tx, rx));
      const double theta_rx = angle_offset(rx_boresight, bearing(rx, tx));
      const double ant = pattern_->gain(theta_tx) * pattern_->gain(theta_rx);
      const double d = std::max(distance(tx, rx), 0.1);
      for (int k = 0; k < num_channels; ++k) {
        cross_[(static_cast<std::size_t>(from) * num_links + to) *
                   num_channels +
               k] = ant * path_gain(d, from, to, k);
      }
    }
  }
}

double GeometricChannelModel::path_gain(double dist_m, int from_link,
                                        int to_link, int channel) const {
  // Free-space reference at 1 m, distance^(-n) decay, per-channel fading.
  const double d = std::max(dist_m, 1.0);
  const double decay = std::pow(d, -config_.path_loss_exponent);
  const double fade =
      fading_[(static_cast<std::size_t>(from_link) * num_links_ + to_link) *
                  num_channels_ +
              channel];
  return std::min(1.0, decay * fade);
}

double GeometricChannelModel::direct_gain(int link, int channel) const {
  return direct_[static_cast<std::size_t>(link) * num_channels_ + channel];
}

double GeometricChannelModel::cross_gain(int from_link, int to_link,
                                         int channel) const {
  assert(from_link != to_link);
  return cross_[(static_cast<std::size_t>(from_link) * num_links_ + to_link) *
                    num_channels_ +
                channel];
}

}  // namespace mmwave::net
