#include "mmwave/antenna.h"

#include <cassert>
#include <cmath>

namespace mmwave::net {

FlatTopPattern::FlatTopPattern(double beamwidth_rad, double sidelobe)
    : half_beamwidth_(beamwidth_rad / 2.0), sidelobe_(sidelobe) {
  assert(beamwidth_rad > 0.0 && beamwidth_rad <= 2.0 * M_PI);
  assert(sidelobe >= 0.0 && sidelobe <= 1.0);
}

double FlatTopPattern::gain(double theta) const {
  return std::abs(theta) <= half_beamwidth_ ? 1.0 : sidelobe_;
}

GaussianPattern::GaussianPattern(double beamwidth_rad, double sidelobe)
    : sidelobe_(sidelobe) {
  assert(beamwidth_rad > 0.0);
  // Half-power at theta = beamwidth/2: exp(-(bw/2)^2 / (2 sigma^2)) = 1/2.
  const double half = beamwidth_rad / 2.0;
  sigma_ = half / std::sqrt(2.0 * std::log(2.0));
}

double GaussianPattern::gain(double theta) const {
  const double g = std::exp(-theta * theta / (2.0 * sigma_ * sigma_));
  return std::max(g, sidelobe_);
}

std::unique_ptr<AntennaPattern> make_flat_top(double beamwidth_rad,
                                              double sidelobe) {
  return std::make_unique<FlatTopPattern>(beamwidth_rad, sidelobe);
}

std::unique_ptr<AntennaPattern> make_gaussian(double beamwidth_rad,
                                              double sidelobe) {
  return std::make_unique<GaussianPattern>(beamwidth_rad, sidelobe);
}

}  // namespace mmwave::net
