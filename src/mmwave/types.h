// Basic identifiers and parameter bundles for the mmWave network model.
#pragma once

#include <cstdint>
#include <vector>

namespace mmwave::net {

/// A directional transmitter -> receiver pair carrying one video session.
struct Link {
  int id = 0;
  int tx_node = 0;  ///< sigma_l in the paper
  int rx_node = 0;  ///< nu_l in the paper
};

/// One entry of the discrete rate ladder: transmitting at `rate_bps`
/// requires receiver SINR >= `sinr_threshold` (gamma^q, u^q in the paper).
struct RateLevel {
  double sinr_threshold = 0.0;
  double rate_bps = 0.0;
};

/// Table I of the paper (plus the slot duration, which the published table
/// leaves blank; all results are reported in slots so its absolute value
/// only scales axes).
struct NetworkParams {
  int num_links = 30;                    ///< ||L||
  int num_channels = 5;                  ///< ||K||
  double p_max_watts = 1.0;              ///< P_max
  double noise_watts = 0.1;              ///< rho
  double bandwidth_hz = 200e6;           ///< W
  double slot_seconds = 10e-6;
  /// Gamma = {0.1, ..., 0.5}; the ladder of SINR thresholds for power
  /// adaptation (Section IV-D).
  std::vector<double> sinr_thresholds = {0.1, 0.2, 0.3, 0.4, 0.5};
};

/// Video layer identifiers (Medium-Grain Scalable split, Section III).
enum class Layer : std::uint8_t { Hp = 0, Lp = 1 };

constexpr int kNumLayers = 2;

inline const char* to_string(Layer layer) {
  return layer == Layer::Hp ? "HP" : "LP";
}

}  // namespace mmwave::net
