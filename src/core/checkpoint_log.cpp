#include "core/checkpoint_log.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/log.h"
#include "core/checkpoint_detail.h"

namespace mmwave::core {
namespace {

using detail::LineReader;
using detail::append_double;
using detail::append_hex64;
using detail::expect_int;
using detail::expect_kv;
using detail::parse_double_token;
using detail::parse_error;
using detail::parse_hex64_token;
using detail::parse_int_token;

[[nodiscard]] bool read_file(const std::string& path, std::string* out,
                             bool* missing) {
  *missing = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *missing = errno == ENOENT;
    return false;
  }
  out->clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  return !read_error;
}

[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::string_view text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// Appends `bytes` to `path`, creating it if missing.  Returns false on any
/// short write — after which the file may hold a torn tail, which the
/// loader's per-block framing detects and drops.
[[nodiscard]] bool append_bytes(const std::string& path,
                                std::string_view bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  return written == bytes.size() && flushed && closed;
}

/// Serializes one column's content (transmissions only, tau pinned to 0) —
/// the writer's exact-equality witness for "this pool slot is unchanged".
[[nodiscard]] std::string column_content_key(const sched::Schedule& col) {
  std::string out;
  detail::append_column(out, col, 0.0);
  return out;
}

/// Applies one delta payload to `state`, strictly: ANY deviation — wrong
/// key, out-of-range index, gop discontinuity — is an error, which the
/// chain loader turns into "drop the tail here".  A block never applies
/// partially: the caller hands in a scratch copy and commits on Ok.
[[nodiscard]] common::Status apply_delta(std::string_view payload,
                                         CgCheckpoint* state) {
  LineReader reader(payload, /*first_line=*/1);

  // ---- head: refreshed solve header --------------------------------------
  {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "head");
    if (!tokens.ok()) return tokens.status();
    const auto& t = tokens.value();
    long long links = 0, channels = 0, iterations = 0, converged = 0;
    double total_slots = 0.0, lower_bound = 0.0;
    if (t.size() != 7 || !parse_hex64_token(t[0], &state->fingerprint) ||
        !parse_int_token(t[1], 1, detail::kMaxLinks, &links) ||
        !parse_int_token(t[2], 1, detail::kMaxChannels, &channels) ||
        !parse_int_token(t[3], 0, 1'000'000'000, &iterations) ||
        !parse_int_token(t[4], 0, 1, &converged) ||
        !parse_double_token(t[5], /*allow_nan=*/false, &total_slots) ||
        total_slots < 0.0 ||
        !parse_double_token(t[6], /*allow_nan=*/true, &lower_bound)) {
      return parse_error(line_no,
                         "head: expected '<fingerprint> <links> <channels> "
                         "<iterations> <converged> <total_slots> <lb>'");
    }
    if (links != state->links || channels != state->channels) {
      return parse_error(line_no, "head: instance dimensions do not match "
                                  "the base checkpoint");
    }
    state->iterations = static_cast<int>(iterations);
    state->converged = converged != 0;
    state->total_slots = total_slots;
    state->lower_bound = lower_bound;
  }
  {
    auto v = detail::parse_dual_vector(reader, "duals_hp", state->links);
    if (!v.ok()) return v.status();
    state->duals_hp = std::move(v.value());
  }
  {
    auto v = detail::parse_dual_vector(reader, "duals_lp", state->links);
    if (!v.ok()) return v.status();
    state->duals_lp = std::move(v.value());
  }

  // The delta records below address pool/tau/meta as one aligned triple;
  // realign advisory metadata defensively before indexing it.
  if (state->pool_tau.size() != state->pool.size())
    state->pool_tau.resize(state->pool.size(), 0.0);
  if (state->pool_meta.size() != state->pool.size())
    state->pool_meta.assign(state->pool.size(), PoolColumnMeta{});

  // ---- drops: evicted columns, indices descending ------------------------
  {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "drops");
    if (!tokens.ok()) return tokens.status();
    const auto& t = tokens.value();
    long long n = 0;
    if (t.empty() || !parse_int_token(t[0], 0, detail::kMaxColumns, &n) ||
        static_cast<long long>(t.size()) != 1 + n) {
      return parse_error(line_no, "drops: expected '<n> <indices...>'");
    }
    long long prev = static_cast<long long>(state->pool.size());
    for (long long i = 0; i < n; ++i) {
      long long idx = 0;
      if (!parse_int_token(t[1 + i], 0, prev - 1, &idx)) {
        return parse_error(line_no,
                           "drops: indices must be strictly descending and "
                           "in range");
      }
      prev = idx;
      state->pool.erase(state->pool.begin() + idx);
      state->pool_tau.erase(state->pool_tau.begin() + idx);
      state->pool_meta.erase(state->pool_meta.begin() + idx);
    }
  }

  // ---- adds: new columns appended at the tail ----------------------------
  {
    long long n = 0;
    {
      auto v = expect_int(reader, "adds", 0, detail::kMaxColumns);
      if (!v.ok()) return v.status();
      n = v.value();
    }
    for (long long i = 0; i < n; ++i) {
      sched::Schedule col;
      double tau = 0.0;
      const common::Status st = detail::parse_column(
          reader, state->links, state->channels, &col, &tau);
      if (!st.ok()) return st;
      PoolColumnMeta meta;
      bool record_ok = true;
      const int line_no = reader.line();
      const common::Status mst =
          detail::parse_meta_record(reader, &meta, &record_ok);
      if (!mst.ok()) return mst;
      if (!record_ok)
        return parse_error(line_no, "meta: damaged record in delta block");
      state->pool.push_back(std::move(col));
      state->pool_tau.push_back(tau);
      state->pool_meta.push_back(meta);
    }
  }

  // ---- scores: refreshed tau/lifecycle of surviving columns --------------
  {
    long long n = 0;
    {
      auto v = expect_int(reader, "scores", 0, detail::kMaxColumns);
      if (!v.ok()) return v.status();
      n = v.value();
    }
    for (long long i = 0; i < n; ++i) {
      const int line_no = reader.line();
      auto tokens = expect_kv(reader, "score");
      if (!tokens.ok()) return tokens.status();
      const auto& t = tokens.value();
      long long idx = 0, epoch = 0, basis = 0;
      double rc = 0.0, tau = 0.0;
      std::uint64_t fp = 0;
      if (t.size() != 6 ||
          !parse_int_token(t[0], 0,
                           static_cast<long long>(state->pool.size()) - 1,
                           &idx) ||
          !parse_hex64_token(t[1], &fp) ||
          !parse_int_token(t[2], 0, 9'223'372'036'854'775'806LL, &epoch) ||
          !parse_double_token(t[3], /*allow_nan=*/false, &rc) ||
          !parse_int_token(t[4], 0, 1, &basis) ||
          !parse_double_token(t[5], /*allow_nan=*/false, &tau) || tau < 0.0) {
        return parse_error(line_no,
                           "score: expected '<index> <fingerprint> <epoch> "
                           "<rc> <basis> <tau>'");
      }
      state->pool_tau[static_cast<std::size_t>(idx)] = tau;
      PoolColumnMeta& m = state->pool_meta[static_cast<std::size_t>(idx)];
      m.fingerprint = fp;
      m.last_used_epoch = epoch;
      m.last_reduced_cost = rc;
      m.in_basis = basis != 0;
    }
  }

  // ---- small v3 sections: always rewritten whole -------------------------
  {
    auto v = expect_int(reader, "pool_epoch", 0,
                        9'223'372'036'854'775'806LL);
    if (!v.ok()) return v.status();
    state->pool_epoch = v.value();
  }
  {
    long long count = 0;
    {
      auto v = expect_int(reader, "pool_index", 0, detail::kMaxIndexEntries);
      if (!v.ok()) return v.status();
      count = v.value();
    }
    std::vector<PoolIndexEntry> index;
    index.reserve(static_cast<std::size_t>(count));
    for (long long i = 0; i < count; ++i) {
      PoolIndexEntry entry;
      bool record_ok = true;
      const int line_no = reader.line();
      const common::Status st =
          detail::parse_index_entry(reader, &entry, &record_ok);
      if (!st.ok()) return st;
      if (!record_ok)
        return parse_error(line_no, "inst: damaged record in delta block");
      index.push_back(std::move(entry));
    }
    state->pool_index = std::move(index);
    state->pool_index_degraded = false;
  }

  // ---- session: cursor rewritten, gop records appended incrementally -----
  {
    long long present = 0;
    {
      auto v = expect_int(reader, "session", 0, 1);
      if (!v.ok()) return v.status();
      present = v.value();
    }
    if (present == 0) {
      state->has_session = false;
      state->session = StreamCursor{};
    } else {
      StreamCursor s;
      bool semantic_ok = true;
      {
        // The delta log is single-producer, never cross-version: buffer
        // state is always framed.
        const common::Status st = detail::parse_cursor_block(
            reader, &s, &semantic_ok, /*with_buffers=*/true);
        if (!st.ok()) return st;
      }
      long long gop_base = 0;
      {
        const long long prior =
            state->has_session
                ? static_cast<long long>(state->session.gops.size())
                : 0;
        auto v = expect_int(reader, "gop_base", 0, detail::kMaxGops);
        if (!v.ok()) return v.status();
        gop_base = v.value();
        if (gop_base > prior) {
          return common::Status::Error(
              common::ErrorCode::kInvalidInput,
              "checkpoint delta: gop_base exceeds the records on file");
        }
      }
      s.gops.assign(state->session.gops.begin(),
                    state->session.gops.begin() +
                        static_cast<std::ptrdiff_t>(gop_base));
      long long gops_new = 0;
      {
        auto v = expect_int(reader, "gops_new", 0, detail::kMaxGops);
        if (!v.ok()) return v.status();
        gops_new = v.value();
      }
      for (long long i = 0; i < gops_new; ++i) {
        StreamGopRecord rec;
        const int line_no = reader.line();
        const common::Status st =
            detail::parse_gop_record(reader, &rec, &semantic_ok);
        if (!st.ok()) return st;
        if (rec.gop != static_cast<int>(gop_base + i)) {
          return parse_error(line_no, "gop: discontinuous record index");
        }
        s.gops.push_back(rec);
      }
      // The writer only ever frames valid cursors; a delta carrying an
      // invalid one is damage and drops the tail here.
      if (!semantic_ok || s.next_gop < 1 || s.num_gops < 1 ||
          s.next_gop > s.num_gops ||
          static_cast<long long>(s.gops.size()) != s.next_gop ||
          static_cast<int>(s.delivered_bits.size()) != state->links ||
          static_cast<int>(s.blocked.size()) != state->links ||
          (!s.buffers.empty() &&
           static_cast<int>(s.buffers.size()) != state->links)) {
        return common::Status::Error(
            common::ErrorCode::kInvalidInput,
            "checkpoint delta: session cursor fails validity checks");
      }
      state->session = std::move(s);
      state->has_session = true;
      state->session_degraded = false;
    }
  }

  // ---- terminator ---------------------------------------------------------
  {
    std::string_view line;
    const int line_no = reader.line();
    if (!reader.next(&line) || line != "end_delta")
      return parse_error(line_no, "truncated: missing 'end_delta'");
  }
  if (!reader.at_end()) {
    return common::Status::Error(common::ErrorCode::kInvalidInput,
                                 "checkpoint delta: trailing bytes in block");
  }
  return common::Status::Ok();
}

}  // namespace

CheckpointLogLoad load_checkpoint_log(const std::string& path) {
  CheckpointLogLoad out;
  const std::string delta_path = path + ".delta";

  // ---- base snapshot ------------------------------------------------------
  {
    std::string base_text;
    bool missing = false;
    if (!read_file(path, &base_text, &missing)) {
      if (!missing) out.base_damaged = true;
    } else {
      // Route through load_checkpoint for its fault hook + strict parse.
      auto ck = load_checkpoint(path);
      if (ck.ok()) {
        out.state = std::move(ck.value());
        out.loaded = true;
      } else {
        out.base_damaged = true;
        MMWAVE_LOG_WARN << "checkpoint log '" << path
                        << "': base unreadable (" << ck.status().message()
                        << "); cold start";
      }
    }
  }

  // ---- delta chain --------------------------------------------------------
  std::string chain;
  bool chain_missing = false;
  if (!read_file(delta_path, &chain, &chain_missing)) {
    if (!chain_missing) {
      out.tail_dropped = true;  // unreadable chain: keep base only
    }
    return out;
  }
  if (chain.empty()) return out;
  if (!out.loaded) {
    // A chain with no (usable) base can never replay: discard it so a
    // later base rewrite cannot collide with stale blocks.
    out.tail_dropped = true;
    out.tail_bytes_dropped = static_cast<std::int64_t>(chain.size());
    std::remove(delta_path.c_str());
    return out;
  }

  std::size_t pos = 0;
  std::size_t good_end = 0;
  long long expected_seq = 1;
  while (pos < chain.size()) {
    const std::size_t nl = chain.find('\n', pos);
    if (nl == std::string::npos) break;  // torn header
    const auto tokens =
        detail::split_tokens(std::string_view(chain).substr(pos, nl - pos));
    long long base_seq = 0, delta_seq = 0, payload_bytes = 0;
    std::uint64_t checksum = 0;
    if (tokens.size() != 6 || tokens[0] != "delta" || tokens[1] != "=" ||
        !parse_int_token(tokens[2], 0, 9'223'372'036'854'775'806LL,
                         &base_seq) ||
        !parse_int_token(tokens[3], 1, 9'223'372'036'854'775'806LL,
                         &delta_seq) ||
        !parse_int_token(tokens[4], 0, 1LL << 30, &payload_bytes) ||
        !parse_hex64_token(tokens[5], &checksum)) {
      break;  // malformed framing
    }
    const std::size_t payload_start = nl + 1;
    if (payload_start + static_cast<std::size_t>(payload_bytes) >
        chain.size()) {
      break;  // torn payload
    }
    const std::string_view payload = std::string_view(chain).substr(
        payload_start, static_cast<std::size_t>(payload_bytes));
    if (base_seq != out.state.base_seq) break;   // stale chain
    if (delta_seq != expected_seq) break;        // sequence gap
    if (fnv1a64(payload) != checksum) break;     // bit rot
    CgCheckpoint scratch = out.state;
    const common::Status st = apply_delta(payload, &scratch);
    if (!st.ok()) {
      MMWAVE_LOG_WARN << "checkpoint log '" << path << "': delta "
                      << delta_seq << " unusable (" << st.message()
                      << "); dropping chain tail";
      break;
    }
    out.state = std::move(scratch);
    ++out.deltas_applied;
    ++expected_seq;
    pos = payload_start + static_cast<std::size_t>(payload_bytes);
    good_end = pos;
  }

  if (good_end < chain.size()) {
    out.tail_dropped = true;
    out.tail_bytes_dropped =
        static_cast<std::int64_t>(chain.size() - good_end);
    // Best-effort: rewrite the chain to its valid prefix so the damage is
    // not re-reported (and not re-parsed) on every subsequent load.
    if (good_end == 0) {
      std::remove(delta_path.c_str());
    } else {
      (void)write_file_atomic(delta_path,
                              std::string_view(chain).substr(0, good_end));
    }
  }
  return out;
}

CheckpointLog::CheckpointLog(std::string path, CheckpointLogOptions options)
    : path_(std::move(path)), options_(options) {}

namespace {
/// Size of `path` in bytes, 0 when missing/unreadable (adaptive-budget
/// bookkeeping only; load correctness never depends on it).
std::int64_t file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::int64_t size = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long end = std::ftell(f);
    if (end > 0) size = static_cast<std::int64_t>(end);
  }
  (void)std::fclose(f);
  return size;
}
}  // namespace

CheckpointLogLoad CheckpointLog::open() {
  CheckpointLogLoad r = load_checkpoint_log(path_);
  if (r.loaded) {
    shadow_ = r.state;
    have_shadow_ = true;
    base_seq_ = r.state.base_seq;
    next_delta_seq_ = r.deltas_applied + 1;
    deltas_since_compact_ = r.deltas_applied;
    // load_checkpoint_log already truncated the chain to its valid prefix,
    // so the on-disk sizes ARE the live base/chain the budgets track.
    base_bytes_ = file_bytes(path_);
    chain_bytes_ = file_bytes(delta_path());
  } else {
    have_shadow_ = false;
    base_seq_ = 0;
    next_delta_seq_ = 1;
    deltas_since_compact_ = 0;
    base_bytes_ = 0;
    chain_bytes_ = 0;
  }
  dirty_tail_ = false;
  return r;
}

[[nodiscard]] common::Status CheckpointLog::save(const CgCheckpoint& ckpt) {
  ++stats_.saves;
  if (options_.track_full_equiv) {
    CgCheckpoint equiv = ckpt;
    equiv.base_seq = base_seq_;
    stats_.full_equiv_bytes +=
        static_cast<std::int64_t>(serialize_checkpoint(equiv).size());
  }

  // Stride gate (fixed policy only): the adaptive policy budgets on the
  // block actually produced, so it defers the decision until after
  // build_delta_payload below.
  const bool stride_ok =
      options_.adaptive || (options_.compact_every > 0 &&
                            deltas_since_compact_ < options_.compact_every);
  std::string payload;
  bool can_delta = have_shadow_ && !dirty_tail_ && stride_ok &&
                   build_delta_payload(ckpt, &payload);
  std::string block;
  if (can_delta) {
    block = "delta = " + std::to_string(base_seq_) + ' ' +
            std::to_string(next_delta_seq_) + ' ' +
            std::to_string(payload.size()) + ' ';
    append_hex64(block, fnv1a64(payload));
    block += '\n';
    block += payload;
    if (options_.adaptive) {
      // Budget the chain this block would leave behind: bytes against a
      // fraction of the base it extends, blocks against the replay cost a
      // recovery would pay.  Either budget exceeded -> fold into a new base.
      const std::int64_t projected_bytes =
          chain_bytes_ + static_cast<std::int64_t>(block.size());
      const bool bytes_over =
          static_cast<double>(projected_bytes) >
          options_.max_chain_fraction * static_cast<double>(base_bytes_);
      const bool blocks_over = options_.max_replay_blocks > 0 &&
                               deltas_since_compact_ + 1 >
                                   options_.max_replay_blocks;
      if (bytes_over || blocks_over) can_delta = false;
    }
  }
  if (!can_delta) {
    // stats_.saves already counted; compact() accounts the full write.
    return compact(ckpt);
  }

  if (common::fault_fires(common::faults::kCheckpointDeltaTornWrite)) {
    // Crash window: half the block lands, then the write dies.  The chain
    // tail is now torn; the loader drops it and the next save compacts.
    (void)append_bytes(delta_path(), std::string_view(block).substr(
                                         0, block.size() / 2));
    dirty_tail_ = true;
    return common::Status::Error(
        common::ErrorCode::kIoError,
        "checkpoint delta append torn mid-block (injected fault)");
  }
  if (!append_bytes(delta_path(), block)) {
    dirty_tail_ = true;
    return common::Status::Error(common::ErrorCode::kIoError,
                                 "cannot append to '" + delta_path() + "'");
  }

  shadow_ = ckpt;
  shadow_.base_seq = base_seq_;
  have_shadow_ = true;
  ++next_delta_seq_;
  ++deltas_since_compact_;
  ++stats_.delta_saves;
  stats_.delta_bytes += static_cast<std::int64_t>(block.size());
  chain_bytes_ += static_cast<std::int64_t>(block.size());
  return common::Status::Ok();
}

[[nodiscard]] common::Status CheckpointLog::compact(const CgCheckpoint& ckpt) {
  CgCheckpoint copy = ckpt;
  copy.base_seq = base_seq_ + 1;  // stale delta blocks can no longer bind
  if (common::fault_fires(common::faults::kCheckpointCompactCrash)) {
    // Crash window: the temp file is half-written and never renamed.  The
    // previous base + chain stay fully loadable; the next save retries.
    const std::string text = serialize_checkpoint(copy);
    std::FILE* f = std::fopen((path_ + ".tmp").c_str(), "wb");
    if (f != nullptr) {
      (void)std::fwrite(text.data(), 1, text.size() / 2, f);
      (void)std::fclose(f);
    }
    dirty_tail_ = true;
    return common::Status::Error(
        common::ErrorCode::kIoError,
        "checkpoint compaction crashed mid-write (injected fault)");
  }
  const common::Status st = save_checkpoint(copy, path_);
  if (!st.ok()) {
    dirty_tail_ = true;
    return st;
  }
  std::remove(delta_path().c_str());  // chain is folded into the new base
  base_seq_ = copy.base_seq;
  next_delta_seq_ = 1;
  deltas_since_compact_ = 0;
  dirty_tail_ = false;
  const std::int64_t written =
      static_cast<std::int64_t>(serialize_checkpoint(copy).size());
  base_bytes_ = written;
  chain_bytes_ = 0;
  stats_.full_bytes += written;
  ++stats_.full_saves;
  ++stats_.compactions;
  shadow_ = std::move(copy);
  have_shadow_ = true;
  return common::Status::Ok();
}

bool CheckpointLog::build_delta_payload(const CgCheckpoint& ckpt,
                                        std::string* payload) const {
  // Expressibility gates: the delta grammar assumes fixed dimensions, an
  // aligned pool/tau/meta triple on both sides, and PoolManager's order
  // discipline (survivors keep their relative order, additions append at
  // the tail).  Anything else falls back to a full compaction.
  if (ckpt.links != shadow_.links || ckpt.channels != shadow_.channels)
    return false;
  if (ckpt.pool_tau.size() != ckpt.pool.size() ||
      ckpt.pool_meta.size() != ckpt.pool.size() ||
      shadow_.pool_tau.size() != shadow_.pool.size() ||
      shadow_.pool_meta.size() != shadow_.pool.size()) {
    return false;
  }

  std::unordered_map<std::string, std::size_t> shadow_by_key;
  shadow_by_key.reserve(shadow_.pool.size());
  for (std::size_t i = 0; i < shadow_.pool.size(); ++i) {
    if (!shadow_by_key.emplace(shadow_.pool[i].key(), i).second)
      return false;  // duplicate keys: diff is ambiguous
  }

  std::vector<bool> survived(shadow_.pool.size(), false);
  struct Match {
    std::size_t shadow_index;
    std::size_t new_index;
  };
  std::vector<Match> matches;
  std::vector<std::size_t> adds;
  long long last_shadow = -1;
  for (std::size_t j = 0; j < ckpt.pool.size(); ++j) {
    const auto it = shadow_by_key.find(ckpt.pool[j].key());
    if (it == shadow_by_key.end()) {
      adds.push_back(j);
      continue;
    }
    const std::size_t si = it->second;
    if (!adds.empty()) return false;  // survivor after an addition
    if (static_cast<long long>(si) <= last_shadow) return false;  // reordered
    last_shadow = static_cast<long long>(si);
    if (survived[si]) return false;  // duplicate key in the new pool
    survived[si] = true;
    if (column_content_key(ckpt.pool[j]) !=
        column_content_key(shadow_.pool[si])) {
      return false;  // same key, different payload (power changed)
    }
    matches.push_back({si, j});
  }

  std::string& out = *payload;
  out.clear();
  out += "head = ";
  append_hex64(out, ckpt.fingerprint);
  out += ' ' + std::to_string(ckpt.links) + ' ' +
         std::to_string(ckpt.channels) + ' ' +
         std::to_string(ckpt.iterations) + ' ';
  out += ckpt.converged ? '1' : '0';
  out += ' ';
  append_double(out, ckpt.total_slots);
  out += ' ';
  append_double(out, ckpt.lower_bound);
  out += "\nduals_hp =";
  for (double v : ckpt.duals_hp) {
    out += ' ';
    append_double(out, v);
  }
  out += "\nduals_lp =";
  for (double v : ckpt.duals_lp) {
    out += ' ';
    append_double(out, v);
  }

  std::vector<std::size_t> drops;
  for (std::size_t i = shadow_.pool.size(); i-- > 0;) {
    if (!survived[i]) drops.push_back(i);
  }
  out += "\ndrops = " + std::to_string(drops.size());
  for (std::size_t i : drops) out += ' ' + std::to_string(i);

  out += "\nadds = " + std::to_string(adds.size());
  out += '\n';
  for (std::size_t j : adds) {
    detail::append_column(out, ckpt.pool[j], ckpt.pool_tau[j]);
    detail::append_meta_record(out, ckpt.pool_meta[j]);
  }

  std::string scores;
  std::size_t num_scores = 0;
  for (const Match& m : matches) {
    const PoolColumnMeta& om = shadow_.pool_meta[m.shadow_index];
    const PoolColumnMeta& nm = ckpt.pool_meta[m.new_index];
    const double ot = shadow_.pool_tau[m.shadow_index];
    const double nt = ckpt.pool_tau[m.new_index];
    if (ot == nt && om.fingerprint == nm.fingerprint &&
        om.last_used_epoch == nm.last_used_epoch &&
        om.last_reduced_cost == nm.last_reduced_cost &&
        om.in_basis == nm.in_basis) {
      continue;
    }
    // Post-drop the survivors occupy the first |matches| slots in shadow
    // order, which equals their position in the new pool.
    scores += "score = " + std::to_string(m.new_index) + ' ';
    append_hex64(scores, nm.fingerprint);
    scores += ' ' + std::to_string(nm.last_used_epoch) + ' ';
    append_double(scores, nm.last_reduced_cost);
    scores += ' ';
    scores += nm.in_basis ? '1' : '0';
    scores += ' ';
    append_double(scores, nt);
    scores += '\n';
    ++num_scores;
  }
  out += "scores = " + std::to_string(num_scores);
  out += '\n';
  out += scores;

  out += "pool_epoch = " + std::to_string(ckpt.pool_epoch);
  out += "\npool_index = " + std::to_string(ckpt.pool_index.size());
  out += '\n';
  for (const PoolIndexEntry& e : ckpt.pool_index)
    detail::append_index_entry(out, e);

  out += "session = ";
  out += ckpt.has_session ? '1' : '0';
  out += '\n';
  if (ckpt.has_session) {
    const StreamCursor& s = ckpt.session;
    detail::append_cursor_block(out, s);
    std::size_t gop_base = 0;
    if (shadow_.has_session) {
      const std::vector<StreamGopRecord>& old = shadow_.session.gops;
      while (gop_base < old.size() && gop_base < s.gops.size()) {
        const StreamGopRecord& a = old[gop_base];
        const StreamGopRecord& b = s.gops[gop_base];
        if (a.gop != b.gop || a.demand_bits != b.demand_bits ||
            a.schedule_slots != b.schedule_slots ||
            a.budget_slots != b.budget_slots || a.on_time != b.on_time ||
            a.stall_slots != b.stall_slots) {
          break;
        }
        ++gop_base;
      }
    }
    out += "gop_base = " + std::to_string(gop_base);
    out += "\ngops_new = " + std::to_string(s.gops.size() - gop_base);
    out += '\n';
    for (std::size_t i = gop_base; i < s.gops.size(); ++i)
      detail::append_gop_record(out, s.gops[i]);
  }
  out += "end_delta\n";
  return true;
}

}  // namespace mmwave::core
