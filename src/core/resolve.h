// Warm re-solve from a checkpoint against a (possibly perturbed) instance.
//
// The resolve path is the blockage-survival half of the checkpoint layer:
// given saved solver state and the *current* network — links may have been
// blocked, gains rescaled, demands regenerated — it revalidates every pooled
// column with the independent check::ScheduleVerifier, repairs what a
// perturbation broke (dropping only the transmissions that now violate
// feasibility), discards the irreparable, and enters column generation with
// the surviving pool as a warm start.
//
// Guarantee (test-enforced by tests/core/resolve_test.cpp): because every
// surviving column is re-proven feasible on the *perturbed* instance and
// extra feasible columns cannot change the P1 optimum — the master only ever
// selects among them — resolve() converges to the same optimum a cold
// solve_column_generation() reaches, just faster.  A checkpoint that is
// corrupt, missing, or from the wrong instance degrades to exactly that cold
// solve, with the reason recorded in ResolveResult::checkpoint_status.
#pragma once

#include <string>
#include <vector>

#include "check/schedule_verifier.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/column_generation.h"
#include "mmwave/network.h"
#include "video/demand.h"

namespace mmwave::core {

/// What repair_schedule does to a transmission whose link fails the SINR
/// check on the perturbed instance.
enum class RepairPolicy {
  /// Remove the violated transmissions (the conservative default: the link
  /// sends nothing this slot group).
  kDropTransmissions,
  /// Perturbation-aware: first step the transmission's rate level down the
  /// SINR ladder (gamma^{q-1} < gamma^q, so an attenuated link often still
  /// sustains a lower MCS), and drop only from the ladder's floor.  Keeps
  /// more columns alive under partial blockage at lower embedded rates.
  kDowngradeRate,
};

const char* to_string(RepairPolicy policy);

/// Outcome of one repair_pool pass over a checkpointed column pool.
struct RepairStats {
  int loaded = 0;    ///< columns offered for repair
  int intact = 0;    ///< verified feasible as-is on the new instance
  int repaired = 0;  ///< survived after dropping/downgrading transmissions
  int dropped = 0;   ///< discarded entirely (irreparable or force-dropped)
  /// Transmissions removed from columns that survived as `repaired`.
  int transmissions_dropped = 0;
  /// Transmissions stepped down the rate ladder (kDowngradeRate only).
  int transmissions_downgraded = 0;

  int survivors() const { return intact + repaired; }
  /// Fraction of the loaded pool that re-entered the master (warm hit rate).
  double hit_rate() const {
    return loaded > 0 ? static_cast<double>(survivors()) / loaded : 0.0;
  }
};

/// Repairs one schedule in place against `verifier`'s instance: repeatedly
/// verifies and fixes every transmission on a violated link — removal for
/// structural violations, removal or (under kDowngradeRate) a rate-ladder
/// step-down for SINR shortfalls.  Dropping interferers only *raises* the
/// surviving receivers' SINR and a downgrade strictly lowers the required
/// threshold, so the loop converges in at most size() + sum(rate levels) +1
/// passes.  Returns true when the schedule ends verified and non-empty;
/// false means the column must be discarded (also when a violation is not
/// attributable to a link, e.g. a structural defect).  `transmissions_dropped`
/// and `transmissions_downgraded` (optional) accumulate the repair actions.
bool repair_schedule(sched::Schedule& schedule,
                     const check::ScheduleVerifier& verifier,
                     int* transmissions_dropped = nullptr,
                     RepairPolicy policy = RepairPolicy::kDropTransmissions,
                     int* transmissions_downgraded = nullptr);

/// Repairs every column of `pool` against the current instance, returning
/// the survivors (intact + repaired, original order) and filling `stats`.
/// The fault site faults::kResolveDropColumn force-drops a column even if
/// repairable, to script worst-case pool decay in tests.
std::vector<sched::Schedule> repair_pool(const net::Network& net,
                                         const std::vector<sched::Schedule>& pool,
                                         RepairStats* stats,
                                         const check::VerifyOptions& options = {},
                                         RepairPolicy policy =
                                             RepairPolicy::kDropTransmissions);

struct ResolveOptions {
  /// Reject the checkpoint (cold start) when its fingerprint does not match
  /// the current instance.  Off by default: a perturbed instance *should*
  /// mismatch, that is the resolve use case.  Turn on for --resume, where
  /// the caller asserts the instance is unchanged.
  bool require_fingerprint_match = false;
  /// Verifier slack for the repair pass.  allow_layer_split is overridden
  /// from CgOptions::exact so repair and solve agree on legality.
  check::VerifyOptions verify;
  /// How SINR-violated transmissions are repaired (drop vs rate downgrade).
  RepairPolicy repair = RepairPolicy::kDropTransmissions;
};

struct ResolveResult {
  /// The (warm or cold) column-generation outcome on the current instance.
  CgResult cg;
  /// Pool repair accounting; all-zero when the checkpoint was not used.
  RepairStats repair;
  /// True when the checkpoint's pool was repaired and seeded into the solve.
  bool used_checkpoint = false;
  /// Whether the checkpoint fingerprint matched the current instance.
  bool fingerprint_matched = false;
  /// Ok when the checkpoint was usable; otherwise why resolve fell back to
  /// a cold start (load failure, dimension mismatch, fingerprint mismatch).
  common::Status checkpoint_status;
};

/// Repairs `checkpoint`'s pool against (`net`, `demands`) and runs column
/// generation warm.  Never fails outright: any unusable checkpoint degrades
/// to a cold solve with the reason in checkpoint_status.
ResolveResult resolve(const net::Network& net,
                      const std::vector<video::LinkDemand>& demands,
                      const CgCheckpoint& checkpoint,
                      const CgOptions& cg_options = {},
                      const ResolveOptions& options = {});

/// load_checkpoint + resolve; a missing/corrupt file degrades to cold start.
ResolveResult resolve_from_file(const std::string& path,
                                const net::Network& net,
                                const std::vector<video::LinkDemand>& demands,
                                const CgOptions& cg_options = {},
                                const ResolveOptions& options = {});

}  // namespace mmwave::core
