#include "core/checkpoint.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/fault_injection.h"
#include "common/log.h"
#include "core/checkpoint_detail.h"
#include "core/column_generation.h"

namespace mmwave::core {
namespace {

using detail::LineReader;
using detail::append_double;
using detail::append_hex64;
using detail::expect_double;
using detail::expect_int;
using detail::expect_kv;
using detail::parse_double_token;
using detail::parse_error;
using detail::parse_hex64_token;
using detail::parse_int_token;
using detail::split_tokens;

constexpr const char* kMagic = "mmwave-cg-checkpoint";

/// Incremental FNV-1a over typed fields (the instance fingerprint).
class FingerprintHasher {
 public:
  void add_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    add_u64(bits);
  }
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= 1099511628211ULL;
    }
  }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;
};

/// Serializes the v3 session section (grammar in DESIGN §12).  The vectors
/// carry explicit counts so the serializer is total over any StreamCursor;
/// the parser's semantic checks enforce count == links on load.
void append_session(std::string& body, const CgCheckpoint& ckpt) {
  body += "session = ";
  body += ckpt.has_session ? '1' : '0';
  body += '\n';
  if (!ckpt.has_session) return;
  const StreamCursor& s = ckpt.session;
  detail::append_cursor_block(body, s);
  body += "gops = " + std::to_string(s.gops.size());
  body += '\n';
  for (const StreamGopRecord& g : s.gops) detail::append_gop_record(body, g);
}

/// Parses the v3 pool-index section.  Structural damage (wrong key, token
/// count, truncation) is a hard parse error; *semantic* damage — a record
/// whose values are out of range, or the injected
/// faults::kCheckpointBadIndexRecord — degrades to an empty index (columns
/// kept, neighbour seeding restarts from scratch).
[[nodiscard]] common::Status parse_pool_index(LineReader& reader,
                                              CgCheckpoint* ckpt) {
  long long count = 0;
  {
    auto v = expect_int(reader, "pool_index", 0, detail::kMaxIndexEntries);
    if (!v.ok()) return v.status();
    count = v.value();
  }
  ckpt->pool_index.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    PoolIndexEntry entry;
    bool record_ok = true;
    const common::Status st =
        detail::parse_index_entry(reader, &entry, &record_ok);
    if (!st.ok()) return st;
    // Semantic range checks: a structurally sound record whose dimensions
    // are nonsense degrades the index instead of rejecting the checkpoint.
    if (!record_ok ||
        common::fault_fires(common::faults::kCheckpointBadIndexRecord)) {
      ckpt->pool_index_degraded = true;
      continue;  // keep consuming the declared records
    }
    ckpt->pool_index.push_back(std::move(entry));
  }
  if (ckpt->pool_index_degraded) {
    MMWAVE_LOG_WARN << "checkpoint: pool index degraded to empty "
                       "(columns kept, neighbour index reset)";
    ckpt->pool_index.clear();
  }
  return common::Status::Ok();
}

/// Parses the v3 session section.  Same split as the pool index: structural
/// damage is a hard error, semantic damage (an out-of-range cursor, a
/// replay-impossible field combination, or the injected
/// faults::kSessionCursorCorrupt) degrades to "no session" — the solver
/// pool stays warm, only the stream restarts its session cold.
[[nodiscard]] common::Status parse_session(LineReader& reader,
                                           CgCheckpoint* ckpt, int version) {
  long long present = 0;
  {
    auto v = expect_int(reader, "session", 0, 1);
    if (!v.ok()) return v.status();
    present = v.value();
  }
  if (present == 0) return common::Status::Ok();
  StreamCursor s;
  bool semantic_ok = true;
  {
    const common::Status st = detail::parse_cursor_block(
        reader, &s, &semantic_ok, /*with_buffers=*/version >= 4);
    if (!st.ok()) return st;
  }
  long long num_gops_records = 0;
  {
    auto v = expect_int(reader, "gops", 0, detail::kMaxGops);
    if (!v.ok()) return v.status();
    num_gops_records = v.value();
  }
  s.gops.reserve(static_cast<std::size_t>(num_gops_records));
  for (long long i = 0; i < num_gops_records; ++i) {
    StreamGopRecord rec;
    const common::Status st =
        detail::parse_gop_record(reader, &rec, &semantic_ok);
    if (!st.ok()) return st;
    if (rec.gop != static_cast<int>(i)) semantic_ok = false;
    s.gops.push_back(rec);
  }
  // Cursor-level semantic checks: replayability requires a completed-period
  // prefix consistent with the horizon and with the per-link vectors.
  semantic_ok = semantic_ok && s.next_gop >= 1 && s.num_gops >= 1 &&
                s.next_gop <= s.num_gops &&
                static_cast<long long>(s.gops.size()) == s.next_gop &&
                static_cast<int>(s.delivered_bits.size()) == ckpt->links &&
                static_cast<int>(s.blocked.size()) == ckpt->links &&
                s.carryover_stall >= 0.0 && s.blocked_fraction_sum >= 0.0;
  // Buffer state (v4): either absent or one entry per link, with layer
  // counters bounded by the completed-period count.
  semantic_ok = semantic_ok &&
                (s.buffers.empty() ||
                 static_cast<int>(s.buffers.size()) == ckpt->links);
  for (const StreamBufferState& b : s.buffers) {
    if (b.hp_gops_delivered > s.next_gop || b.lp_gops_delivered > s.next_gop)
      semantic_ok = false;
  }
  semantic_ok = semantic_ok &&
                !common::fault_fires(common::faults::kSessionCursorCorrupt);
  if (!semantic_ok) {
    MMWAVE_LOG_WARN << "checkpoint: session cursor degraded (solver pool "
                       "kept, stream session restarts cold)";
    ckpt->session_degraded = true;
    return common::Status::Ok();
  }
  ckpt->has_session = true;
  ckpt->session = std::move(s);
  return common::Status::Ok();
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t instance_fingerprint(
    const net::Network& net, const std::vector<video::LinkDemand>& demands) {
  FingerprintHasher h;
  const net::NetworkParams& p = net.params();
  h.add_u64(static_cast<std::uint64_t>(net.num_links()));
  h.add_u64(static_cast<std::uint64_t>(net.num_channels()));
  h.add_double(p.p_max_watts);
  h.add_double(p.noise_watts);
  h.add_double(p.bandwidth_hz);
  h.add_double(p.slot_seconds);
  h.add_u64(static_cast<std::uint64_t>(net.num_rate_levels()));
  for (int q = 0; q < net.num_rate_levels(); ++q) {
    h.add_double(net.rate_level(q).sinr_threshold);
    h.add_double(net.rate_level(q).rate_bps);
  }
  for (int l = 0; l < net.num_links(); ++l) {
    const net::Link& link = net.link(l);
    h.add_u64(static_cast<std::uint64_t>(link.tx_node));
    h.add_u64(static_cast<std::uint64_t>(link.rx_node));
    h.add_double(net.noise(l));
    for (int k = 0; k < net.num_channels(); ++k) {
      h.add_double(net.direct_gain(l, k));
      for (int m = 0; m < net.num_links(); ++m) {
        if (m != l) h.add_double(net.cross_gain(m, l, k));
      }
    }
  }
  h.add_u64(static_cast<std::uint64_t>(demands.size()));
  for (const video::LinkDemand& d : demands) {
    h.add_double(d.hp_bits);
    h.add_double(d.lp_bits);
  }
  return h.hash();
}

CgCheckpoint make_checkpoint(const net::Network& net,
                             const std::vector<video::LinkDemand>& demands,
                             const CgResult& result) {
  CgCheckpoint ckpt;
  ckpt.fingerprint = instance_fingerprint(net, demands);
  ckpt.links = net.num_links();
  ckpt.channels = net.num_channels();
  ckpt.iterations = result.iterations;
  ckpt.converged = result.converged;
  ckpt.total_slots = result.total_slots;
  ckpt.lower_bound = result.lower_bound;
  ckpt.duals_hp = result.duals_hp;
  ckpt.duals_lp = result.duals_lp;
  // The duals lines are fixed-width (one value per link): a solve that
  // never produced duals checkpoints zeros rather than a jagged record.
  if (static_cast<int>(ckpt.duals_hp.size()) != ckpt.links)
    ckpt.duals_hp.assign(ckpt.links, 0.0);
  if (static_cast<int>(ckpt.duals_lp.size()) != ckpt.links)
    ckpt.duals_lp.assign(ckpt.links, 0.0);
  ckpt.pool = result.pool;
  ckpt.pool_tau = result.pool_tau;
  if (ckpt.pool_tau.size() != ckpt.pool.size())
    ckpt.pool_tau.assign(ckpt.pool.size(), 0.0);
  // Cold lifecycle metadata derived from the solve itself: reduced costs
  // under the final duals, basis membership from tau.  core::score_pool
  // computes the same record with a live PoolManager epoch; epoch 0 here
  // means "age unknown" to whoever imports this checkpoint.
  ckpt.pool_meta.resize(ckpt.pool.size());
  for (std::size_t s = 0; s < ckpt.pool.size(); ++s) {
    PoolColumnMeta& m = ckpt.pool_meta[s];
    m.fingerprint = ckpt.fingerprint;
    m.last_used_epoch = 0;
    m.in_basis = ckpt.pool_tau[s] > 0.0;
    double priced = 0.0;
    const auto hp = ckpt.pool[s].rate_column_bits_per_slot(net, net::Layer::Hp);
    const auto lp = ckpt.pool[s].rate_column_bits_per_slot(net, net::Layer::Lp);
    for (int l = 0; l < net.num_links(); ++l) {
      priced += (l < static_cast<int>(ckpt.duals_hp.size())
                     ? ckpt.duals_hp[l] * hp[l]
                     : 0.0) +
                (l < static_cast<int>(ckpt.duals_lp.size())
                     ? ckpt.duals_lp[l] * lp[l]
                     : 0.0);
    }
    m.last_reduced_cost = std::isfinite(priced) ? 1.0 - priced : 0.0;
  }
  return ckpt;
}

std::string serialize_checkpoint(const CgCheckpoint& ckpt) {
  std::string body;
  body.reserve(256 + ckpt.pool.size() * 96);
  body += "fingerprint = ";
  append_hex64(body, ckpt.fingerprint);
  body += "\nlinks = " + std::to_string(ckpt.links);
  body += "\nchannels = " + std::to_string(ckpt.channels);
  body += "\niterations = " + std::to_string(ckpt.iterations);
  body += "\nconverged = ";
  body += ckpt.converged ? '1' : '0';
  body += "\ntotal_slots = ";
  append_double(body, ckpt.total_slots);
  body += "\nlower_bound = ";
  append_double(body, ckpt.lower_bound);
  body += "\nduals_hp =";
  for (double v : ckpt.duals_hp) {
    body += ' ';
    append_double(body, v);
  }
  body += "\nduals_lp =";
  for (double v : ckpt.duals_lp) {
    body += ' ';
    append_double(body, v);
  }
  body += "\ncolumns = " + std::to_string(ckpt.pool.size());
  body += '\n';
  for (std::size_t s = 0; s < ckpt.pool.size(); ++s) {
    detail::append_column(body, ckpt.pool[s],
                          s < ckpt.pool_tau.size() ? ckpt.pool_tau[s] : 0.0);
  }
  // v2 pool-metadata section: one record per column when metadata is
  // aligned, an explicit empty section otherwise (cold metadata).
  const bool have_meta = ckpt.pool_meta.size() == ckpt.pool.size();
  body += "pool_meta = " +
          std::to_string(have_meta ? ckpt.pool_meta.size() : 0);
  body += '\n';
  if (have_meta) {
    for (const PoolColumnMeta& m : ckpt.pool_meta)
      detail::append_meta_record(body, m);
  }
  // v3 sections: delta-log binding, the multi-instance neighbour index, and
  // the stream-session cursor.
  body += "base_seq = " + std::to_string(ckpt.base_seq);
  body += "\npool_epoch = " + std::to_string(ckpt.pool_epoch);
  body += "\npool_index = " + std::to_string(ckpt.pool_index.size());
  body += '\n';
  for (const PoolIndexEntry& e : ckpt.pool_index)
    detail::append_index_entry(body, e);
  append_session(body, ckpt);
  body += "end\n";

  std::string out;
  out.reserve(body.size() + 64);
  out += kMagic;
  out += " v" + std::to_string(kCheckpointVersion);
  out += "\nchecksum = ";
  append_hex64(out, fnv1a64(body));
  out += '\n';
  out += body;
  return out;
}

[[nodiscard]] common::Expected<CgCheckpoint> parse_checkpoint(
    std::string_view text) {
  // ---- Header: magic + version, then the payload checksum ----------------
  const std::size_t first_nl = text.find('\n');
  if (first_nl == std::string_view::npos)
    return parse_error(1, "not a checkpoint (missing header line)");
  const std::string_view header = text.substr(0, first_nl);
  const std::string magic_prefix = std::string(kMagic) + " v";
  if (header.substr(0, magic_prefix.size()) != magic_prefix) {
    return parse_error(1, "not a checkpoint (bad magic '" +
                              std::string(header.substr(0, 40)) + "')");
  }
  long long version = 0;
  if (!parse_int_token(header.substr(magic_prefix.size()), 0, 1'000'000,
                       &version)) {
    return parse_error(1, "malformed version field");
  }
  if (version < kMinCheckpointVersion || version > kCheckpointVersion) {
    return parse_error(
        1, "unsupported checkpoint version v" + std::to_string(version) +
               " (this build reads v" + std::to_string(kMinCheckpointVersion) +
               "..v" + std::to_string(kCheckpointVersion) + ")");
  }

  const std::size_t second_nl = text.find('\n', first_nl + 1);
  if (second_nl == std::string_view::npos)
    return parse_error(2, "truncated: missing checksum line");
  const auto checksum_tokens =
      split_tokens(text.substr(first_nl + 1, second_nl - first_nl - 1));
  std::uint64_t declared_checksum = 0;
  if (checksum_tokens.size() != 3 || checksum_tokens[0] != "checksum" ||
      checksum_tokens[1] != "=" ||
      !parse_hex64_token(checksum_tokens[2], &declared_checksum)) {
    return parse_error(2, "malformed checksum line");
  }

  // ---- Checksum over the raw payload bytes BEFORE any field parsing ------
  const std::string_view payload = text.substr(second_nl + 1);
  if (fnv1a64(payload) != declared_checksum) {
    return parse_error(
        2, "checksum mismatch (truncated or corrupted checkpoint)");
  }

  // ---- Payload fields, strict order --------------------------------------
  LineReader reader(payload, /*first_line=*/3);
  CgCheckpoint ckpt;

  {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "fingerprint");
    if (!tokens.ok()) return tokens.status();
    if (tokens.value().size() != 1 ||
        !parse_hex64_token(tokens.value()[0], &ckpt.fingerprint)) {
      return parse_error(line_no, "fingerprint: expected 0x + 16 hex digits");
    }
  }
  {
    auto v = expect_int(reader, "links", 1, detail::kMaxLinks);
    if (!v.ok()) return v.status();
    ckpt.links = static_cast<int>(v.value());
  }
  {
    auto v = expect_int(reader, "channels", 1, detail::kMaxChannels);
    if (!v.ok()) return v.status();
    ckpt.channels = static_cast<int>(v.value());
  }
  {
    auto v = expect_int(reader, "iterations", 0, 1'000'000'000);
    if (!v.ok()) return v.status();
    ckpt.iterations = static_cast<int>(v.value());
  }
  {
    auto v = expect_int(reader, "converged", 0, 1);
    if (!v.ok()) return v.status();
    ckpt.converged = v.value() != 0;
  }
  {
    const int line_no = reader.line();
    auto v = expect_double(reader, "total_slots", /*allow_nan=*/false);
    if (!v.ok()) return v.status();
    if (v.value() < 0.0)
      return parse_error(line_no, "total_slots: must be >= 0");
    ckpt.total_slots = v.value();
  }
  {
    auto v = expect_double(reader, "lower_bound", /*allow_nan=*/true);
    if (!v.ok()) return v.status();
    ckpt.lower_bound = v.value();
  }
  {
    auto v = detail::parse_dual_vector(reader, "duals_hp", ckpt.links);
    if (!v.ok()) return v.status();
    ckpt.duals_hp = std::move(v.value());
  }
  {
    auto v = detail::parse_dual_vector(reader, "duals_lp", ckpt.links);
    if (!v.ok()) return v.status();
    ckpt.duals_lp = std::move(v.value());
  }
  long long num_columns = 0;
  {
    auto v = expect_int(reader, "columns", 0, detail::kMaxColumns);
    if (!v.ok()) return v.status();
    num_columns = v.value();
  }

  ckpt.pool.reserve(static_cast<std::size_t>(num_columns));
  ckpt.pool_tau.reserve(static_cast<std::size_t>(num_columns));
  for (long long s = 0; s < num_columns; ++s) {
    sched::Schedule col;
    double tau = 0.0;
    const common::Status st =
        detail::parse_column(reader, ckpt.links, ckpt.channels, &col, &tau);
    if (!st.ok()) return st;
    ckpt.pool.push_back(std::move(col));
    ckpt.pool_tau.push_back(tau);
  }

  // ---- v2 pool-metadata section ------------------------------------------
  // Structural damage (wrong key, wrong token count, truncation) is a hard
  // parse error like everywhere else; *semantic* damage — a record whose
  // values are out of their documented ranges — only degrades the metadata
  // to cold (pool_meta cleared, pool_meta_degraded set).  The columns are
  // the expensive artifact; their lifecycle scores are merely advisory.
  if (version >= 2) {
    long long num_meta = 0;
    {
      auto v = expect_int(reader, "pool_meta", 0, detail::kMaxColumns);
      if (!v.ok()) return v.status();
      num_meta = v.value();
    }
    if (num_meta != 0 && num_meta != num_columns) {
      ckpt.pool_meta_degraded = true;  // count skew: scores unusable
    }
    ckpt.pool_meta.reserve(static_cast<std::size_t>(num_meta));
    for (long long s = 0; s < num_meta; ++s) {
      PoolColumnMeta m;
      bool record_ok = true;
      const common::Status st = detail::parse_meta_record(reader, &m,
                                                          &record_ok);
      if (!st.ok()) return st;
      if (!record_ok ||
          common::fault_fires(common::faults::kCheckpointBadPoolRecord)) {
        ckpt.pool_meta_degraded = true;
        continue;  // keep consuming the declared records
      }
      ckpt.pool_meta.push_back(m);
    }
    if (ckpt.pool_meta_degraded ||
        ckpt.pool_meta.size() != ckpt.pool.size()) {
      if (!ckpt.pool_meta.empty() || num_meta > 0) {
        MMWAVE_LOG_WARN << "checkpoint: pool metadata degraded to cold "
                           "(columns kept, scores reset)";
      }
      ckpt.pool_meta_degraded = num_meta > 0;
      ckpt.pool_meta.clear();
    }
  }

  // ---- v3 sections: delta binding, pool index, session cursor ------------
  if (version >= 3) {
    {
      auto v = expect_int(reader, "base_seq", 0,
                          std::numeric_limits<long long>::max() - 1);
      if (!v.ok()) return v.status();
      ckpt.base_seq = v.value();
    }
    {
      auto v = expect_int(reader, "pool_epoch", 0,
                          std::numeric_limits<long long>::max() - 1);
      if (!v.ok()) return v.status();
      ckpt.pool_epoch = v.value();
    }
    {
      const common::Status st = parse_pool_index(reader, &ckpt);
      if (!st.ok()) return st;
    }
    {
      const common::Status st = parse_session(reader, &ckpt, version);
      if (!st.ok()) return st;
    }
  }

  // ---- Terminator + no trailing garbage ----------------------------------
  {
    std::string_view line;
    const int line_no = reader.line();
    if (!reader.next(&line) || line != "end")
      return parse_error(line_no, "truncated: missing 'end' terminator");
  }
  if (!reader.at_end()) {
    // serialize always ends with "end\n": exactly one empty tail token.
    std::string_view line;
    if (reader.next(&line) && !line.empty())
      return parse_error(reader.line() - 1, "trailing garbage after 'end'");
    if (!reader.at_end())
      return parse_error(reader.line(), "trailing garbage after 'end'");
  }
  return ckpt;
}

[[nodiscard]] common::Status save_checkpoint(const CgCheckpoint& ckpt,
                               const std::string& path) {
  if (common::fault_fires(common::faults::kCheckpointWriteFail)) {
    return common::Status::Error(common::ErrorCode::kIoError,
                                 "checkpoint write failed (injected fault)");
  }
  const std::string text = serialize_checkpoint(ckpt);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return common::Status::Error(
        common::ErrorCode::kIoError,
        "cannot open '" + tmp + "' for writing: " + std::strerror(errno));
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return common::Status::Error(common::ErrorCode::kIoError,
                                 "short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return common::Status::Error(
        common::ErrorCode::kIoError,
        "cannot rename '" + tmp + "' to '" + path + "': " +
            std::strerror(errno));
  }
  return common::Status::Ok();
}

[[nodiscard]] common::Expected<CgCheckpoint> load_checkpoint(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::Status::Error(
        common::ErrorCode::kIoError,
        "cannot open checkpoint '" + path + "': " + std::strerror(errno));
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return common::Status::Error(common::ErrorCode::kIoError,
                                 "read error on checkpoint '" + path + "'");
  }
  // Scripted corruption: flip one payload byte; the checksum must catch it
  // and the caller must degrade to a cold start, never use the bad state.
  if (common::fault_fires(common::faults::kCheckpointCorrupt) &&
      !text.empty()) {
    text[text.size() / 2] = static_cast<char>(text[text.size() / 2] ^ 0x01);
    MMWAVE_LOG_WARN << "checkpoint '" << path
                    << "': payload byte flipped (injected fault)";
  }
  return parse_checkpoint(text);
}

}  // namespace mmwave::core
