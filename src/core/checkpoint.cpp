#include "core/checkpoint.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/fault_injection.h"
#include "common/log.h"
#include "core/column_generation.h"

namespace mmwave::core {
namespace {

constexpr const char* kMagic = "mmwave-cg-checkpoint";

// Hard ceilings on parsed counts: a corrupted header must not be able to
// drive a multi-gigabyte allocation before the checksum line is even
// reachable (the checksum is verified first, but belt and braces).
constexpr int kMaxLinks = 4096;
constexpr int kMaxChannels = 1024;
constexpr int kMaxColumns = 1'000'000;
constexpr int kMaxRateLevels = 64;

[[nodiscard]] common::Status parse_error(int line, const std::string& what) {
  return common::Status::Error(
      common::ErrorCode::kInvalidInput,
      "checkpoint line " + std::to_string(line) + ": " + what);
}

/// %.17g round-trips IEEE doubles exactly, which is what makes the
/// save -> load -> serialize cycle byte-identical.
void append_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "nan";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Strict full-token double parse; `allow_nan` admits the literal "nan".
bool parse_double_token(std::string_view token, bool allow_nan, double* out) {
  if (token.empty() || token.size() >= 63) return false;
  if (token == "nan") {
    if (!allow_nan) return false;
    *out = std::nan("");
    return true;
  }
  char buf[64];
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (end != buf + token.size() || errno == ERANGE || !std::isfinite(v))
    return false;
  *out = v;
  return true;
}

bool parse_int_token(std::string_view token, long long lo, long long hi,
                     long long* out) {
  if (token.empty() || token.size() >= 31) return false;
  char buf[32];
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (end != buf + token.size() || errno == ERANGE || v < lo || v > hi)
    return false;
  *out = v;
  return true;
}

bool parse_hex64_token(std::string_view token, std::uint64_t* out) {
  if (token.size() != 18 || token[0] != '0' || token[1] != 'x') return false;
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < token.size(); ++i) {
    const char c = token[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = v;
  return true;
}

void append_hex64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

/// Line cursor over the payload; tracks 1-based line numbers for errors.
class LineReader {
 public:
  LineReader(std::string_view text, int first_line)
      : text_(text), line_(first_line - 1) {}

  /// Next line without its '\n'.  False at end of input.
  bool next(std::string_view* out) {
    if (pos_ >= text_.size()) return false;
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) {
      // A checkpoint always ends in a newline; a final unterminated line is
      // a truncation, reported by the caller when the content mismatches.
      *out = text_.substr(pos_);
      pos_ = text_.size();
    } else {
      *out = text_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
    }
    ++line_;
    return true;
  }
  bool at_end() const { return pos_ >= text_.size(); }
  int line() const { return line_ + 1; }  ///< line number of the NEXT line

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
};

/// Splits on single spaces (the serializer never emits doubles/tabs).
std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t sp = line.find(' ', pos);
    if (sp == std::string_view::npos) {
      tokens.push_back(line.substr(pos));
      break;
    }
    tokens.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  return tokens;
}

/// Reads one `key = <value tokens...>` line; returns the value tokens.
[[nodiscard]] common::Expected<std::vector<std::string_view>> expect_kv(
    LineReader& reader, std::string_view key) {
  std::string_view line;
  const int line_no = reader.line();
  if (!reader.next(&line)) {
    return parse_error(line_no, "truncated: expected '" + std::string(key) +
                                    " = ...'");
  }
  auto tokens = split_tokens(line);
  if (tokens.size() < 3 || tokens[0] != key || tokens[1] != "=") {
    return parse_error(line_no, "expected '" + std::string(key) +
                                    " = ...', got '" + std::string(line) +
                                    "'");
  }
  tokens.erase(tokens.begin(), tokens.begin() + 2);
  return tokens;
}

[[nodiscard]] common::Expected<long long> expect_int(LineReader& reader,
                                       std::string_view key, long long lo,
                                       long long hi) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, key);
  if (!tokens.ok()) return tokens.status();
  long long v = 0;
  if (tokens.value().size() != 1 ||
      !parse_int_token(tokens.value()[0], lo, hi, &v)) {
    return parse_error(line_no, std::string(key) + ": expected an integer in [" +
                                    std::to_string(lo) + ", " +
                                    std::to_string(hi) + "]");
  }
  return v;
}

[[nodiscard]] common::Expected<double> expect_double(LineReader& reader,
                                       std::string_view key, bool allow_nan) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, key);
  if (!tokens.ok()) return tokens.status();
  double v = 0.0;
  if (tokens.value().size() != 1 ||
      !parse_double_token(tokens.value()[0], allow_nan, &v)) {
    return parse_error(line_no,
                       std::string(key) + ": expected a finite number" +
                           (allow_nan ? " or 'nan'" : ""));
  }
  return v;
}

[[nodiscard]] common::Expected<std::vector<double>> expect_dual_vector(
    LineReader& reader,
                                                         std::string_view key,
                                                         int expected_size) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, key);
  if (!tokens.ok()) return tokens.status();
  if (static_cast<int>(tokens.value().size()) != expected_size) {
    return parse_error(line_no, std::string(key) + ": expected " +
                                    std::to_string(expected_size) +
                                    " values, got " +
                                    std::to_string(tokens.value().size()));
  }
  std::vector<double> values;
  values.reserve(tokens.value().size());
  for (std::string_view t : tokens.value()) {
    double v = 0.0;
    if (!parse_double_token(t, /*allow_nan=*/false, &v) || v < 0.0) {
      return parse_error(line_no, std::string(key) +
                                      ": dual values must be finite and >= 0");
    }
    values.push_back(v);
  }
  return values;
}

/// Incremental FNV-1a over typed fields (the instance fingerprint).
class FingerprintHasher {
 public:
  void add_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    add_u64(bits);
  }
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= 1099511628211ULL;
    }
  }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;
};

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t instance_fingerprint(
    const net::Network& net, const std::vector<video::LinkDemand>& demands) {
  FingerprintHasher h;
  const net::NetworkParams& p = net.params();
  h.add_u64(static_cast<std::uint64_t>(net.num_links()));
  h.add_u64(static_cast<std::uint64_t>(net.num_channels()));
  h.add_double(p.p_max_watts);
  h.add_double(p.noise_watts);
  h.add_double(p.bandwidth_hz);
  h.add_double(p.slot_seconds);
  h.add_u64(static_cast<std::uint64_t>(net.num_rate_levels()));
  for (int q = 0; q < net.num_rate_levels(); ++q) {
    h.add_double(net.rate_level(q).sinr_threshold);
    h.add_double(net.rate_level(q).rate_bps);
  }
  for (int l = 0; l < net.num_links(); ++l) {
    const net::Link& link = net.link(l);
    h.add_u64(static_cast<std::uint64_t>(link.tx_node));
    h.add_u64(static_cast<std::uint64_t>(link.rx_node));
    h.add_double(net.noise(l));
    for (int k = 0; k < net.num_channels(); ++k) {
      h.add_double(net.direct_gain(l, k));
      for (int m = 0; m < net.num_links(); ++m) {
        if (m != l) h.add_double(net.cross_gain(m, l, k));
      }
    }
  }
  h.add_u64(static_cast<std::uint64_t>(demands.size()));
  for (const video::LinkDemand& d : demands) {
    h.add_double(d.hp_bits);
    h.add_double(d.lp_bits);
  }
  return h.hash();
}

CgCheckpoint make_checkpoint(const net::Network& net,
                             const std::vector<video::LinkDemand>& demands,
                             const CgResult& result) {
  CgCheckpoint ckpt;
  ckpt.fingerprint = instance_fingerprint(net, demands);
  ckpt.links = net.num_links();
  ckpt.channels = net.num_channels();
  ckpt.iterations = result.iterations;
  ckpt.converged = result.converged;
  ckpt.total_slots = result.total_slots;
  ckpt.lower_bound = result.lower_bound;
  ckpt.duals_hp = result.duals_hp;
  ckpt.duals_lp = result.duals_lp;
  // The duals lines are fixed-width (one value per link): a solve that
  // never produced duals checkpoints zeros rather than a jagged record.
  if (static_cast<int>(ckpt.duals_hp.size()) != ckpt.links)
    ckpt.duals_hp.assign(ckpt.links, 0.0);
  if (static_cast<int>(ckpt.duals_lp.size()) != ckpt.links)
    ckpt.duals_lp.assign(ckpt.links, 0.0);
  ckpt.pool = result.pool;
  ckpt.pool_tau = result.pool_tau;
  if (ckpt.pool_tau.size() != ckpt.pool.size())
    ckpt.pool_tau.assign(ckpt.pool.size(), 0.0);
  // Cold lifecycle metadata derived from the solve itself: reduced costs
  // under the final duals, basis membership from tau.  core::score_pool
  // computes the same record with a live PoolManager epoch; epoch 0 here
  // means "age unknown" to whoever imports this checkpoint.
  ckpt.pool_meta.resize(ckpt.pool.size());
  for (std::size_t s = 0; s < ckpt.pool.size(); ++s) {
    PoolColumnMeta& m = ckpt.pool_meta[s];
    m.fingerprint = ckpt.fingerprint;
    m.last_used_epoch = 0;
    m.in_basis = ckpt.pool_tau[s] > 0.0;
    double priced = 0.0;
    const auto hp = ckpt.pool[s].rate_column_bits_per_slot(net, net::Layer::Hp);
    const auto lp = ckpt.pool[s].rate_column_bits_per_slot(net, net::Layer::Lp);
    for (int l = 0; l < net.num_links(); ++l) {
      priced += (l < static_cast<int>(ckpt.duals_hp.size())
                     ? ckpt.duals_hp[l] * hp[l]
                     : 0.0) +
                (l < static_cast<int>(ckpt.duals_lp.size())
                     ? ckpt.duals_lp[l] * lp[l]
                     : 0.0);
    }
    m.last_reduced_cost = std::isfinite(priced) ? 1.0 - priced : 0.0;
  }
  return ckpt;
}

std::string serialize_checkpoint(const CgCheckpoint& ckpt) {
  std::string body;
  body.reserve(256 + ckpt.pool.size() * 96);
  body += "fingerprint = ";
  append_hex64(body, ckpt.fingerprint);
  body += "\nlinks = " + std::to_string(ckpt.links);
  body += "\nchannels = " + std::to_string(ckpt.channels);
  body += "\niterations = " + std::to_string(ckpt.iterations);
  body += "\nconverged = ";
  body += ckpt.converged ? '1' : '0';
  body += "\ntotal_slots = ";
  append_double(body, ckpt.total_slots);
  body += "\nlower_bound = ";
  append_double(body, ckpt.lower_bound);
  body += "\nduals_hp =";
  for (double v : ckpt.duals_hp) {
    body += ' ';
    append_double(body, v);
  }
  body += "\nduals_lp =";
  for (double v : ckpt.duals_lp) {
    body += ' ';
    append_double(body, v);
  }
  body += "\ncolumns = " + std::to_string(ckpt.pool.size());
  body += '\n';
  for (std::size_t s = 0; s < ckpt.pool.size(); ++s) {
    const sched::Schedule& col = ckpt.pool[s];
    body += "column = tau ";
    append_double(body, s < ckpt.pool_tau.size() ? ckpt.pool_tau[s] : 0.0);
    body += " txs " + std::to_string(col.size());
    body += '\n';
    for (const sched::Transmission& tx : col.transmissions()) {
      body += "tx = " + std::to_string(tx.link) + ' ' +
              std::to_string(static_cast<int>(tx.layer)) + ' ' +
              std::to_string(tx.rate_level) + ' ' +
              std::to_string(tx.channel) + ' ';
      append_double(body, tx.power_watts);
      body += '\n';
    }
  }
  // v2 pool-metadata section: one record per column when metadata is
  // aligned, an explicit empty section otherwise (cold metadata).
  const bool have_meta = ckpt.pool_meta.size() == ckpt.pool.size();
  body += "pool_meta = " +
          std::to_string(have_meta ? ckpt.pool_meta.size() : 0);
  body += '\n';
  if (have_meta) {
    for (const PoolColumnMeta& m : ckpt.pool_meta) {
      body += "meta = ";
      append_hex64(body, m.fingerprint);
      body += ' ' + std::to_string(m.last_used_epoch) + ' ';
      append_double(body,
                    std::isfinite(m.last_reduced_cost) ? m.last_reduced_cost
                                                       : 0.0);
      body += ' ';
      body += m.in_basis ? '1' : '0';
      body += '\n';
    }
  }
  body += "end\n";

  std::string out;
  out.reserve(body.size() + 64);
  out += kMagic;
  out += " v" + std::to_string(kCheckpointVersion);
  out += "\nchecksum = ";
  append_hex64(out, fnv1a64(body));
  out += '\n';
  out += body;
  return out;
}

[[nodiscard]] common::Expected<CgCheckpoint> parse_checkpoint(
    std::string_view text) {
  // ---- Header: magic + version, then the payload checksum ----------------
  const std::size_t first_nl = text.find('\n');
  if (first_nl == std::string_view::npos)
    return parse_error(1, "not a checkpoint (missing header line)");
  const std::string_view header = text.substr(0, first_nl);
  const std::string magic_prefix = std::string(kMagic) + " v";
  if (header.substr(0, magic_prefix.size()) != magic_prefix) {
    return parse_error(1, "not a checkpoint (bad magic '" +
                              std::string(header.substr(0, 40)) + "')");
  }
  long long version = 0;
  if (!parse_int_token(header.substr(magic_prefix.size()), 0, 1'000'000,
                       &version)) {
    return parse_error(1, "malformed version field");
  }
  if (version < kMinCheckpointVersion || version > kCheckpointVersion) {
    return parse_error(
        1, "unsupported checkpoint version v" + std::to_string(version) +
               " (this build reads v" + std::to_string(kMinCheckpointVersion) +
               "..v" + std::to_string(kCheckpointVersion) + ")");
  }

  const std::size_t second_nl = text.find('\n', first_nl + 1);
  if (second_nl == std::string_view::npos)
    return parse_error(2, "truncated: missing checksum line");
  const auto checksum_tokens =
      split_tokens(text.substr(first_nl + 1, second_nl - first_nl - 1));
  std::uint64_t declared_checksum = 0;
  if (checksum_tokens.size() != 3 || checksum_tokens[0] != "checksum" ||
      checksum_tokens[1] != "=" ||
      !parse_hex64_token(checksum_tokens[2], &declared_checksum)) {
    return parse_error(2, "malformed checksum line");
  }

  // ---- Checksum over the raw payload bytes BEFORE any field parsing ------
  const std::string_view payload = text.substr(second_nl + 1);
  if (fnv1a64(payload) != declared_checksum) {
    return parse_error(
        2, "checksum mismatch (truncated or corrupted checkpoint)");
  }

  // ---- Payload fields, strict order --------------------------------------
  LineReader reader(payload, /*first_line=*/3);
  CgCheckpoint ckpt;

  {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "fingerprint");
    if (!tokens.ok()) return tokens.status();
    if (tokens.value().size() != 1 ||
        !parse_hex64_token(tokens.value()[0], &ckpt.fingerprint)) {
      return parse_error(line_no, "fingerprint: expected 0x + 16 hex digits");
    }
  }
  {
    auto v = expect_int(reader, "links", 1, kMaxLinks);
    if (!v.ok()) return v.status();
    ckpt.links = static_cast<int>(v.value());
  }
  {
    auto v = expect_int(reader, "channels", 1, kMaxChannels);
    if (!v.ok()) return v.status();
    ckpt.channels = static_cast<int>(v.value());
  }
  {
    auto v = expect_int(reader, "iterations", 0, 1'000'000'000);
    if (!v.ok()) return v.status();
    ckpt.iterations = static_cast<int>(v.value());
  }
  {
    auto v = expect_int(reader, "converged", 0, 1);
    if (!v.ok()) return v.status();
    ckpt.converged = v.value() != 0;
  }
  {
    const int line_no = reader.line();
    auto v = expect_double(reader, "total_slots", /*allow_nan=*/false);
    if (!v.ok()) return v.status();
    if (v.value() < 0.0)
      return parse_error(line_no, "total_slots: must be >= 0");
    ckpt.total_slots = v.value();
  }
  {
    auto v = expect_double(reader, "lower_bound", /*allow_nan=*/true);
    if (!v.ok()) return v.status();
    ckpt.lower_bound = v.value();
  }
  {
    auto v = expect_dual_vector(reader, "duals_hp", ckpt.links);
    if (!v.ok()) return v.status();
    ckpt.duals_hp = std::move(v.value());
  }
  {
    auto v = expect_dual_vector(reader, "duals_lp", ckpt.links);
    if (!v.ok()) return v.status();
    ckpt.duals_lp = std::move(v.value());
  }
  long long num_columns = 0;
  {
    auto v = expect_int(reader, "columns", 0, kMaxColumns);
    if (!v.ok()) return v.status();
    num_columns = v.value();
  }

  ckpt.pool.reserve(static_cast<std::size_t>(num_columns));
  ckpt.pool_tau.reserve(static_cast<std::size_t>(num_columns));
  for (long long s = 0; s < num_columns; ++s) {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "column");
    if (!tokens.ok()) return tokens.status();
    const auto& t = tokens.value();
    double tau = 0.0;
    long long num_txs = 0;
    if (t.size() != 4 || t[0] != "tau" || t[2] != "txs" ||
        !parse_double_token(t[1], /*allow_nan=*/false, &tau) || tau < 0.0 ||
        !parse_int_token(t[3], 0, 2LL * kMaxLinks, &num_txs)) {
      return parse_error(line_no,
                         "column: expected 'column = tau <t> txs <n>'");
    }
    sched::Schedule col;
    for (long long i = 0; i < num_txs; ++i) {
      const int tx_line = reader.line();
      auto tx_tokens = expect_kv(reader, "tx");
      if (!tx_tokens.ok()) return tx_tokens.status();
      const auto& tt = tx_tokens.value();
      long long link = 0, layer = 0, level = 0, channel = 0;
      double power = 0.0;
      if (tt.size() != 5 ||
          !parse_int_token(tt[0], 0, ckpt.links - 1, &link) ||
          !parse_int_token(tt[1], 0, 1, &layer) ||
          !parse_int_token(tt[2], 0, kMaxRateLevels - 1, &level) ||
          !parse_int_token(tt[3], 0, ckpt.channels - 1, &channel) ||
          !parse_double_token(tt[4], /*allow_nan=*/false, &power) ||
          power < 0.0) {
        return parse_error(
            tx_line, "tx: expected '<link> <layer> <level> <channel> <power>' "
                     "with all fields in range");
      }
      col.add({static_cast<int>(link), static_cast<net::Layer>(layer),
               static_cast<int>(level), static_cast<int>(channel), power});
    }
    ckpt.pool.push_back(std::move(col));
    ckpt.pool_tau.push_back(tau);
  }

  // ---- v2 pool-metadata section ------------------------------------------
  // Structural damage (wrong key, wrong token count, truncation) is a hard
  // parse error like everywhere else; *semantic* damage — a record whose
  // values are out of their documented ranges — only degrades the metadata
  // to cold (pool_meta cleared, pool_meta_degraded set).  The columns are
  // the expensive artifact; their lifecycle scores are merely advisory.
  if (version >= 2) {
    long long num_meta = 0;
    {
      auto v = expect_int(reader, "pool_meta", 0, kMaxColumns);
      if (!v.ok()) return v.status();
      num_meta = v.value();
    }
    if (num_meta != 0 && num_meta != num_columns) {
      ckpt.pool_meta_degraded = true;  // count skew: scores unusable
    }
    ckpt.pool_meta.reserve(static_cast<std::size_t>(num_meta));
    for (long long s = 0; s < num_meta; ++s) {
      const int line_no = reader.line();
      auto tokens = expect_kv(reader, "meta");
      if (!tokens.ok()) return tokens.status();
      const auto& t = tokens.value();
      if (t.size() != 4) {
        return parse_error(line_no,
                           "meta: expected '<fingerprint> <epoch> <rc> "
                           "<basis>'");
      }
      PoolColumnMeta m;
      long long epoch = 0, basis = 0;
      double rc = 0.0;
      const bool record_ok =
          parse_hex64_token(t[0], &m.fingerprint) &&
          parse_int_token(t[1], 0, std::numeric_limits<long long>::max() - 1,
                          &epoch) &&
          parse_double_token(t[2], /*allow_nan=*/false, &rc) &&
          parse_int_token(t[3], 0, 1, &basis) &&
          !common::fault_fires(common::faults::kCheckpointBadPoolRecord);
      if (!record_ok) {
        ckpt.pool_meta_degraded = true;
        continue;  // keep consuming the declared records
      }
      m.last_used_epoch = epoch;
      m.last_reduced_cost = rc;
      m.in_basis = basis != 0;
      ckpt.pool_meta.push_back(m);
    }
    if (ckpt.pool_meta_degraded ||
        ckpt.pool_meta.size() != ckpt.pool.size()) {
      if (!ckpt.pool_meta.empty() || num_meta > 0) {
        MMWAVE_LOG_WARN << "checkpoint: pool metadata degraded to cold "
                           "(columns kept, scores reset)";
      }
      ckpt.pool_meta_degraded = num_meta > 0;
      ckpt.pool_meta.clear();
    }
  }

  // ---- Terminator + no trailing garbage ----------------------------------
  {
    std::string_view line;
    const int line_no = reader.line();
    if (!reader.next(&line) || line != "end")
      return parse_error(line_no, "truncated: missing 'end' terminator");
  }
  if (!reader.at_end()) {
    // serialize always ends with "end\n": exactly one empty tail token.
    std::string_view line;
    if (reader.next(&line) && !line.empty())
      return parse_error(reader.line() - 1, "trailing garbage after 'end'");
    if (!reader.at_end())
      return parse_error(reader.line(), "trailing garbage after 'end'");
  }
  return ckpt;
}

[[nodiscard]] common::Status save_checkpoint(const CgCheckpoint& ckpt,
                               const std::string& path) {
  if (common::fault_fires(common::faults::kCheckpointWriteFail)) {
    return common::Status::Error(common::ErrorCode::kIoError,
                                 "checkpoint write failed (injected fault)");
  }
  const std::string text = serialize_checkpoint(ckpt);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return common::Status::Error(
        common::ErrorCode::kIoError,
        "cannot open '" + tmp + "' for writing: " + std::strerror(errno));
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return common::Status::Error(common::ErrorCode::kIoError,
                                 "short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return common::Status::Error(
        common::ErrorCode::kIoError,
        "cannot rename '" + tmp + "' to '" + path + "': " +
            std::strerror(errno));
  }
  return common::Status::Ok();
}

[[nodiscard]] common::Expected<CgCheckpoint> load_checkpoint(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::Status::Error(
        common::ErrorCode::kIoError,
        "cannot open checkpoint '" + path + "': " + std::strerror(errno));
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return common::Status::Error(common::ErrorCode::kIoError,
                                 "read error on checkpoint '" + path + "'");
  }
  // Scripted corruption: flip one payload byte; the checksum must catch it
  // and the caller must degrade to a cold start, never use the bad state.
  if (common::fault_fires(common::faults::kCheckpointCorrupt) &&
      !text.empty()) {
    text[text.size() / 2] = static_cast<char>(text[text.size() / 2] ^ 0x01);
    MMWAVE_LOG_WARN << "checkpoint '" << path
                    << "': payload byte flipped (injected fault)";
  }
  return parse_checkpoint(text);
}

}  // namespace mmwave::core
