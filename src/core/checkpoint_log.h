// Delta-encoded checkpoint persistence: a base snapshot plus an append-only
// chain of delta blocks, with periodic compaction.
//
// save_checkpoint rewrites the whole solver state on every call — O(pool)
// bytes per period even when one streaming period changed two columns and
// one gop record.  CheckpointLog makes the steady-state save O(changed
// columns): the base file at `path` holds a full checkpoint (the ordinary
// core/checkpoint.h format, loadable by anything that reads checkpoints),
// and `path + ".delta"` holds checksummed blocks that record column
// adds/drops/score changes, the refreshed duals/header, the small v3
// sections, and the newly appended gop records.
//
// Contracts (enforced by tests/core/checkpoint_log_test.cpp, the fuzz
// corpus, and tools/chaos_soak):
//   * Replay equality: loading base + deltas yields a state whose
//     serialize_checkpoint output is byte-identical to a full rewrite of
//     the last saved state; after compact(), the base file itself is
//     byte-identical to serialize_checkpoint(state).
//   * Degradation ladder, never a crash: a torn or corrupt delta block
//     drops the chain tail (load keeps base + the valid prefix); an
//     unreadable base degrades to a cold start; a failed compaction leaves
//     the previous base + chain fully loadable and retries on the next
//     save.  Stale chains cannot misbind: blocks carry the base_seq of the
//     base they extend and are skipped when it does not match.
//   * Torn-write atomicity is block-level: the loader validates each
//     block's byte count and FNV-1a checksum before applying any of it
//     (faults::kCheckpointDeltaTornWrite and
//     faults::kCheckpointCompactCrash script the two crash windows).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/checkpoint.h"

namespace mmwave::core {

struct CheckpointLogOptions {
  /// Delta saves between forced compactions.  0 compacts on every save
  /// (delta encoding disabled); the default keeps chains short enough that
  /// recovery replays are cheap while steady-state saves stay O(changes).
  /// Ignored when `adaptive` is set.
  int compact_every = 8;
  /// Also account the bytes a full rewrite WOULD have written on each save
  /// (stats().full_equiv_bytes) — the chaos-soak bench's savings baseline.
  bool track_full_equiv = false;
  /// Adaptive compaction policy: instead of the fixed compact_every stride,
  /// compact when appending the next delta would push the chain past EITHER
  /// budget below.  Sizes the chain to the state it shadows — small states
  /// compact often (deltas are a large fraction of a small base), big pools
  /// amortize across long chains — while still bounding how many blocks a
  /// crash recovery has to replay.
  bool adaptive = false;
  /// Chain-size budget: compact when chain bytes would exceed this fraction
  /// of the current base snapshot's bytes.
  double max_chain_fraction = 0.5;
  /// Replay-cost budget: compact when the chain would exceed this many
  /// blocks (a recovery replays every block; 0 = no block budget).
  int max_replay_blocks = 64;
};

struct CheckpointLogStats {
  std::int64_t saves = 0;
  std::int64_t delta_saves = 0;
  std::int64_t full_saves = 0;
  std::int64_t compactions = 0;
  /// Bytes appended to the delta chain (block headers included).
  std::int64_t delta_bytes = 0;
  /// Bytes written as full base snapshots.
  std::int64_t full_bytes = 0;
  /// Bytes full rewrites would have cost (when track_full_equiv).
  std::int64_t full_equiv_bytes = 0;
};

/// Outcome of binding to on-disk state.  Every damage mode maps to a rung
/// of the degradation ladder rather than an error: the caller always gets
/// the best state the files support, possibly "nothing" (cold start).
struct CheckpointLogLoad {
  /// `state` holds a usable checkpoint (base existed and parsed).
  bool loaded = false;
  /// A base file existed but was unreadable/corrupt: cold start, and the
  /// next save() lays down a fresh base.
  bool base_damaged = false;
  /// The delta chain had a torn/corrupt/stale tail that was dropped;
  /// `state` reflects base + the longest valid prefix.
  bool tail_dropped = false;
  int deltas_applied = 0;
  /// Bytes of unusable chain tail discarded (0 when !tail_dropped).
  std::int64_t tail_bytes_dropped = 0;
  CgCheckpoint state;
};

/// Read-only recovery: load the base at `path`, replay the valid prefix of
/// `path + ".delta"`, best-effort truncate the chain to that prefix.  Never
/// fails on damaged files — damage shows up as the flags above.
[[nodiscard]] CheckpointLogLoad load_checkpoint_log(const std::string& path);

class CheckpointLog {
 public:
  explicit CheckpointLog(std::string path, CheckpointLogOptions options = {});

  /// Binds the writer to existing on-disk state (missing files = fresh
  /// log).  Must be called before save(); the returned state is what a
  /// recovering process resumes from.
  [[nodiscard]] CheckpointLogLoad open();

  /// Persists `ckpt`: a delta block against the last saved state when the
  /// change is expressible and the chain is healthy, otherwise a full
  /// compaction.  kIoError on write failure — after which the on-disk state
  /// still loads to the previous save, and the next save() self-heals by
  /// compacting.
  [[nodiscard]] common::Status save(const CgCheckpoint& ckpt);

  /// Forces a full base rewrite (atomic) and clears the delta chain.
  [[nodiscard]] common::Status compact(const CgCheckpoint& ckpt);

  const CheckpointLogStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }
  std::string delta_path() const { return path_ + ".delta"; }
  std::int64_t base_seq() const { return base_seq_; }

 private:
  [[nodiscard]] bool build_delta_payload(const CgCheckpoint& ckpt,
                                         std::string* payload) const;
  [[nodiscard]] common::Status append_block(const std::string& block);

  std::string path_;
  CheckpointLogOptions options_;
  /// The last state persisted (base + applied deltas): what the next delta
  /// is diffed against.
  CgCheckpoint shadow_;
  bool have_shadow_ = false;
  /// A torn append or failed compaction left the chain tail suspect: the
  /// next save must compact instead of appending.
  bool dirty_tail_ = false;
  std::int64_t base_seq_ = 0;
  std::int64_t next_delta_seq_ = 1;
  int deltas_since_compact_ = 0;
  /// Current base / live chain sizes, maintained across save()/compact()
  /// and rebuilt by open(): what the adaptive policy budgets against.
  std::int64_t base_bytes_ = 0;
  std::int64_t chain_bytes_ = 0;
  CheckpointLogStats stats_;
};

}  // namespace mmwave::core
