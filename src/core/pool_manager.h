// Cross-period, cross-instance column-pool lifecycle management.
//
// Columns are feasible P1 schedules (He & Mao, ICDCS 2017): once priced,
// a column stays warm-start capital for every nearby network state — the
// next GoP period, the same topology with two receivers blocked, a
// re-scaled demand vector.  Before this subsystem the pool grew without
// bound and each resolve could only seed from the immediately previous
// period.  PoolManager owns that capital:
//
//   * an eviction policy with a configurable size cap.  Columns are scored
//     by last-basis-entry recency plus (rc-hybrid policy) the reduced cost
//     last observed for them; the worst-scored columns are evicted first.
//     Columns in the CURRENT master basis (tau > 0 in the most recent
//     store) are never evicted, even if that holds the pool above cap —
//     the incumbent plan must stay reconstructible.
//   * a multi-instance index keyed by the existing checkpoint instance
//     fingerprint, with a feature-vector distance over (gains, ladder,
//     demands), so a resolve seeds repair from the nearest neighbours'
//     surviving columns, not just the previous period.
//
// Invariants (enforced by tests/core/pool_manager_test.cpp):
//   * eviction never removes a current-basis column, under any cap, any
//     policy, and the pool.evict_wrong_column fault;
//   * the managed pool only ever contains feasible-when-stored columns, so
//     resolve(perturbed) through a manager matches cold_solve(perturbed) to
//     1e-7 — capping the pool costs speed, never correctness;
//   * eviction order is a pure function of the operation sequence:
//     deterministic for a fixed seed and independent of --threads=N.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/checkpoint.h"
#include "core/column_generation.h"
#include "mmwave/network.h"
#include "sched/schedule.h"
#include "video/demand.h"

namespace mmwave::core {

enum class PoolPolicy {
  /// Evict the column whose last basis entry is oldest (pure recency).
  kLru,
  /// Recency + last observed reduced cost: a stale column that still priced
  /// near zero (was competitive) outlives a stale column that priced badly.
  kRcHybrid,
};

const char* to_string(PoolPolicy policy);

/// Parses "lru" | "rc-hybrid" (the --pool-policy CLI values).  Anything
/// else is a structured kInvalidInput naming the accepted spellings.
[[nodiscard]] common::Expected<PoolPolicy> parse_pool_policy(
    std::string_view text);

struct PoolManagerOptions {
  /// Maximum columns retained across ALL instances; 0 = unbounded.  The cap
  /// is best-effort downwards: current-basis columns are never evicted, so
  /// a cap below the basis size leaves the pool at the basis size.
  int cap = 0;
  PoolPolicy policy = PoolPolicy::kRcHybrid;
  /// rc-hybrid: eviction penalty = age_epochs + rc_weight * rc/(1+rc).
  /// Larger values make reduced cost dominate recency.
  double rc_weight = 4.0;
  /// seed() consults at most this many nearest instance entries.
  int max_neighbours = 3;

  // --- Adaptive cap -----------------------------------------------------
  /// Let the cap float between [min_cap, max_cap] from observed solve
  /// feedback (observe()): a high warm-start hit rate under an affordable
  /// master-LP time grows the cap (the pool is earning its keep), a low hit
  /// rate or an over-budget master shrinks it (stale columns are dead
  /// weight the master still pays to carry).  `cap` is the starting point;
  /// with adaptive off it stays the fixed cap as before.
  bool adaptive = false;
  int min_cap = 8;
  /// 0 = no upper bound on adaptive growth.
  int max_cap = 0;
  /// Grow when hit rate >= grow_hit_rate AND master time <= budget.
  double grow_hit_rate = 0.85;
  /// Shrink when hit rate < shrink_hit_rate OR master time > budget.
  double shrink_hit_rate = 0.5;
  /// Master-LP wall-clock budget per observed solve, seconds.
  double master_seconds_budget = 0.05;
};

// PoolColumnMeta (the per-column lifecycle record this manager scores and
// evicts on) lives in core/checkpoint.h: format v2 persists it per column.

/// Cheap summary of a problem instance for the fingerprint-distance metric:
/// the exact fingerprint (identity) plus a feature vector over the direct
/// gains, the SINR ladder and the demand vector (similarity).
struct InstanceSignature {
  std::uint64_t fingerprint = 0;
  int links = 0;
  int channels = 0;
  /// Per-link best-channel direct gain (log10), then the ladder thresholds,
  /// then per-link demand totals — aligned dimensions for the L2 distance.
  std::vector<double> features;
};

InstanceSignature make_signature(const net::Network& net,
                                 const std::vector<video::LinkDemand>& demands);

/// Mean squared distance between feature vectors; 0 for identical
/// fingerprints, +infinity when the dimensions differ (never comparable).
double signature_distance(const InstanceSignature& a,
                          const InstanceSignature& b);

/// Scores a finished solve's pool for lifecycle management: reduced cost of
/// every pool column under the result's final duals, basis membership from
/// pool_tau, recency = `epoch`.  This is the metadata checkpoint v2
/// persists (make_checkpoint calls it) and store() ingests.
std::vector<PoolColumnMeta> score_pool(const net::Network& net,
                                       const CgResult& result,
                                       std::uint64_t fingerprint,
                                       std::int64_t epoch);

/// Cumulative lifecycle accounting (explicit reset via reset_metrics()).
struct PoolManagerMetrics {
  std::int64_t stores = 0;          ///< store() calls (one per solved period)
  std::int64_t seed_calls = 0;      ///< seed() calls
  std::int64_t seeded_columns = 0;  ///< columns handed out by seed()
  /// Seeded columns that came from a neighbour instance (fingerprint other
  /// than the queried one) — the multi-instance sharing payoff.
  std::int64_t neighbour_seeded = 0;
  std::int64_t evicted = 0;         ///< columns removed by the cap policy
  std::int64_t cap_grown = 0;       ///< adaptive-cap growth steps applied
  std::int64_t cap_shrunk = 0;      ///< adaptive-cap shrink steps applied
};

class PoolManager {
 public:
  struct Entry {
    sched::Schedule column;
    double tau = 0.0;  ///< tau in the master solution it was stored from
    PoolColumnMeta meta;
  };

  explicit PoolManager(PoolManagerOptions options = {});

  /// Warm-start candidates for `signature`'s instance: the columns of the
  /// `max_neighbours` nearest known instances (the queried instance itself
  /// first when known), nearest neighbour first, de-duplicated by schedule
  /// key, insertion order within a neighbour.  The caller still repairs
  /// every candidate against the actual network before the master sees it.
  std::vector<sched::Schedule> seed(const InstanceSignature& signature);

  /// Ingests one finished solve on `signature`'s instance: every pool
  /// column of `result` enters (or refreshes) the pool with fresh scores,
  /// the previous basis protection moves to this result's basis, and the
  /// eviction policy trims back to the cap.
  void store(const InstanceSignature& signature, const net::Network& net,
             const CgResult& result);

  /// Loads a checkpointed pool (columns + v2 metadata; a v1 checkpoint's
  /// missing metadata defaults to cold scores with basis from pool_tau).
  void import_checkpoint(const CgCheckpoint& checkpoint);

  /// `base` with its pool/pool_tau/pool_meta replaced by the managed pool
  /// (e.g. to re-save a capped checkpoint).  Other fields are untouched.
  CgCheckpoint export_checkpoint(const CgCheckpoint& base) const;

  /// Applies this manager's eviction policy to a checkpoint in place,
  /// without touching the manager: the `solve --pool-cap` save path.
  void trim_checkpoint(CgCheckpoint* checkpoint) const;

  /// Feeds one finished solve's warm-start hit rate and master-LP seconds
  /// into the adaptive-cap controller (no-op unless options().adaptive).
  /// The new cap takes effect immediately: a shrink evicts down right away.
  /// Non-finite inputs are ignored (a degraded solve must not move the cap).
  void observe(double warm_hit_rate, double master_seconds);

  /// The cap currently in force: the adaptive cap when adaptive, the fixed
  /// options().cap otherwise (0 = unbounded).
  int effective_cap() const {
    return options_.adaptive ? adaptive_cap_ : options_.cap;
  }

  int size() const { return static_cast<int>(entries_.size()); }
  const std::vector<Entry>& entries() const { return entries_; }
  const PoolManagerOptions& options() const { return options_; }
  const PoolManagerMetrics& metrics() const { return metrics_; }
  void reset_metrics() { metrics_ = {}; }

 private:
  /// Eviction penalty (higher = evicted sooner) for `meta` at `now`.
  double penalty(const PoolColumnMeta& meta, std::int64_t now) const;
  /// Trims `entries` to the cap under this manager's policy at epoch `now`,
  /// returning how many columns were evicted.  Static-shaped so
  /// trim_checkpoint can reuse it on foreign pools.
  std::int64_t evict(std::vector<Entry>& entries, std::int64_t now) const;

  PoolManagerOptions options_;
  /// Current adaptive cap (observe() moves it within [min_cap, max_cap]).
  int adaptive_cap_ = 0;
  std::vector<Entry> entries_;  ///< insertion order (deterministic ties)
  /// Known instance signatures, most recent store epoch per fingerprint.
  struct KnownInstance {
    InstanceSignature signature;
    std::int64_t last_epoch = 0;
  };
  std::vector<KnownInstance> instances_;
  std::int64_t epoch_ = 0;
  PoolManagerMetrics metrics_;
};

}  // namespace mmwave::core
