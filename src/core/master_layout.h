// Row-layout convention of the master covering LP, defined once.
//
// The restricted master has one >= covering row per (link, layer) in the
// fixed order [hp rows for links 0..L-1 | lp rows for links 0..L-1]; every
// consumer of a MasterCertificate (the in-tree certificate exporter, the
// warm-start bookkeeping, tests reading raw duals) must agree on it, so it
// lives here rather than being re-derived at each site.
//
// Duals of >= rows in a minimization problem are nonnegative; the solver's
// tolerance can leave tiny negative dust on them, which every consumer must
// clamp the same way before using the values as pricing multipliers.
#pragma once

#include <algorithm>

namespace mmwave::core {

/// Row index of link `l`'s HP covering constraint.
inline int master_hp_row(int link) { return link; }

/// Row index of link `l`'s LP covering constraint.
inline int master_lp_row(int num_links, int link) { return num_links + link; }

/// Total row count of the master LP.
inline int master_num_rows(int num_links) { return 2 * num_links; }

/// Clamps the tolerance-dust negative part of a >=-row dual: the multipliers
/// fed to the pricing step are nonnegative by LP duality.
inline double clamp_master_dual(double dual) { return std::max(0.0, dual); }

}  // namespace mmwave::core
