// Column-generation driver (Sections IV-V of the paper).
//
// Loop:
//   1. initialize the restricted master with the TDMA columns (IV-B);
//   2. solve the MP, read the duals (simplex multipliers);
//   3. price: greedy heuristic first, exact MILP when the heuristic finds
//      nothing (or always, in Exact mode);
//   4. if the most negative reduced cost Phi >= -eps with an exact pricer,
//      the MP optimum equals the P1 optimum — stop;
//   5. otherwise enter the new column and repeat.
//
// At every exact-priced iteration the Theorem-1 lower bound
//   LB = (Lambda_hp . d_hp + Lambda_lp . d_lp) / (1 - Phi)
// is recorded; the incumbent MP objective is the matching upper bound, so
// the driver can also stop at a requested relative gap ("sufficiently
// competitive solution", Section V-A).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/master.h"
#include "core/pricing_greedy.h"
#include "core/pricing_milp.h"
#include "mmwave/network.h"
#include "sched/timeline.h"
#include "video/demand.h"

namespace mmwave::core {

enum class PricingMode {
  /// Greedy heuristic each iteration; exact MILP only when the heuristic
  /// fails (needed for the termination certificate).  Default.
  HeuristicThenExact,
  /// Exact MILP every iteration: Phi and the Theorem-1 bound are exact at
  /// each step (used for the Fig. 4 convergence study).
  ExactAlways,
  /// Heuristic only: no optimality certificate; terminates when the
  /// heuristic finds no improving column.  Fast mode for large sweeps.
  HeuristicOnly,
};

struct CgOptions {
  PricingMode pricing = PricingMode::HeuristicThenExact;
  /// Reduced-cost tolerance: Phi >= -eps terminates.
  double eps = 1e-6;
  int max_iterations = 1000;
  /// Early stop when (UB - bestLB)/UB <= gap_tolerance (0 disables; only
  /// effective on iterations that produce a valid lower bound).
  double gap_tolerance = 0.0;
  GreedyPricingOptions greedy;
  MilpPricingOptions exact;
  /// Keep default exact-pricing solves bounded; a truncated certification
  /// downgrades `converged` instead of hanging the caller.  Raise the
  /// limits (Fig. 4 bench does) when a hard optimality certificate matters
  /// more than latency.
  CgOptions() {
    exact.milp.time_limit_sec = 10.0;
    exact.milp.max_nodes = 50'000;
  }
  /// In HeuristicThenExact mode, stop the exact pricer at the first
  /// improving column instead of the true optimum (faster; the final
  /// certification iteration always runs to optimality).
  bool exact_early_stop = true;
  /// Warm-start every master solve from the previous optimal basis (the
  /// appended column enters nonbasic; phase 1 is skipped while the old
  /// basis stays primal-feasible).  Off = cold two-phase solve every
  /// iteration — the pre-incremental behavior, kept for A/B benchmarking
  /// and the warm/cold equivalence tests.
  bool warm_start_master = true;
  /// Entering-variable pricing rule of the master LP's revised simplex
  /// (lp/pricing.h): Dantzig (default) or steepest-edge.  Distinct from
  /// `pricing`, which selects the column-generation pricing subproblem.
  lp::PricingRule lp_pricing = lp::PricingRule::kDantzig;
  /// Solve master LPs with the dense explicit-inverse reference engine
  /// instead of the sparse LU (A/B benchmarking and equivalence tests).
  bool lp_dense_basis = false;
  /// Run the independent certificate checkers (src/check) alongside the
  /// solve: an LP certificate of every master solve, a ScheduleVerifier
  /// pass over every column entering the pool, the Theorem-1 invariant
  /// LB <= MP objective each iteration, and a coverage check of the final
  /// timeline.  Failures are collected in CgResult::verification (the
  /// solve itself is not aborted — the point is to surface silent wrongs).
  bool verify = false;

  // --- Anytime solve control (robustness layer) -------------------------
  /// Wall-clock budget for the whole solve, seconds (0 disables).  On
  /// expiry the solve stops where it is and returns the incumbent schedule
  /// with its best Theorem-1 bound, `degraded` set and the reason recorded
  /// — the anytime contract of Algorithm 1.
  double deadline_sec = 0.0;
  /// Under a deadline, each exact-pricing call gets
  ///   min(exact.milp.time_limit_sec,
  ///       max(milp_budget_fraction * remaining, min_milp_budget_sec))
  /// capped at the remaining budget itself, so the MILP budget shrinks as
  /// the deadline nears and a single pricing call can never blow through
  /// the deadline.
  double milp_budget_fraction = 0.5;
  double min_milp_budget_sec = 0.05;
  /// Stall detection: this many consecutive iterations without relative
  /// LB/UB progress (or a duplicate/inconclusive pricing round) trigger the
  /// escalation ladder — greedy pricing -> full-budget exact MILP ->
  /// dual-perturbation retry — and, exhausted, a degraded stop instead of
  /// an endless loop.  0 disables the window (duplicate-column escalation
  /// stays active).
  int stall_window = 15;
  /// Relative LB/UB movement below this counts as "no progress".
  double stall_rel_progress = 1e-9;
  /// Magnitude of the multiplicative dual perturbation of the last-resort
  /// repricing retry (columns found under perturbed duals are only accepted
  /// if they price negative under the true duals).
  double dual_perturbation = 1e-5;
  std::uint64_t perturbation_seed = 0x5EEDF00D;
  /// Reject malformed instances (NaN/negative gains or demands, size
  /// mismatches) via check::validate_instance before the solver touches
  /// them; failures return degraded + kInvalidInput instead of UB/garbage.
  bool validate_input = true;

  // --- Warm pool (checkpoint/resolve layer) -----------------------------
  /// Columns seeded into the master ahead of the CG loop, after the TDMA
  /// initialization columns — the surviving pool of a checkpoint restore or
  /// a previous scheduling period (core::resolve / repair_pool).  Each
  /// column is defensively re-validated against *this* instance before
  /// entry; invalid ones are skipped (counted in CgProfile), never allowed
  /// to poison the master.  Extra feasible columns cannot change the P1
  /// optimum, only how fast CG certifies it.
  std::vector<sched::Schedule> warm_pool;
};

/// Why the column-generation loop stopped.
enum class CgStopReason {
  /// Optimality certified (Phi >= -eps, exact pricer) or the requested gap
  /// tolerance was reached.
  kConverged,
  /// HeuristicOnly mode: the heuristic found no more improving columns
  /// (expected terminal state of that mode, not a degradation).
  kHeuristicFixedPoint,
  kIterationLimit,
  kDeadline,
  /// Escalation ladder exhausted without progress (cycling/duplicates).
  kStalled,
  /// The master LP failed and the cold retry failed too.
  kMasterFailure,
  /// The exact pricer could not produce a usable answer even escalated.
  kPricingFailure,
  /// check::validate_instance rejected the input.
  kInvalidInput,
  /// An unexpected exception was caught at the solve boundary.
  kInternalError,
};

const char* to_string(CgStopReason reason);

struct IterationStat {
  int iteration = 0;
  /// MP objective (upper bound on the P1 optimum), slots.
  double master_objective = 0.0;
  /// Most negative reduced cost Phi = 1 - Psi of this iteration's pricing.
  /// Exact only when `exact_pricing`; otherwise it is the reduced cost of
  /// the best column the heuristic found (an upper bound on the true Phi).
  double phi = 0.0;
  /// Theorem-1 lower bound (NaN when no valid bound this iteration).
  double lower_bound = std::nan("");
  /// Best valid lower bound so far.
  double best_lower_bound = std::nan("");
  int num_columns = 0;
  bool exact_pricing = false;
  /// --- Per-phase instrumentation (wall clock, seconds) ---
  double master_seconds = 0.0;
  double pricing_seconds = 0.0;
  /// Simplex pivots the master solve spent this iteration.
  std::int64_t master_pivots = 0;
  /// True when the master solve resumed from the previous optimal basis.
  bool master_warm_started = false;
};

/// Aggregated per-phase wall-clock profile of one CG solve (printed by
/// `mmwave_cli solve --profile`, exported by the perf benches).
struct CgProfile {
  double master_seconds = 0.0;
  double greedy_seconds = 0.0;
  double milp_seconds = 0.0;
  std::int64_t master_pivots = 0;
  int master_solves = 0;
  int master_warm_hits = 0;
  int greedy_calls = 0;
  int milp_calls = 0;
  /// Warm-pool columns accepted into / rejected from the initial master
  /// (CgOptions::warm_pool; rejected = failed re-validation or duplicate).
  int warm_pool_columns = 0;
  int warm_pool_rejected = 0;
  /// Basis-engine work across all master solves (revised simplex).
  std::int64_t lp_ftran_calls = 0;
  std::int64_t lp_btran_calls = 0;
  int lp_refactorizations = 0;
  /// Pricing rule the master LPs ran ("dantzig" | "steepest-edge").
  const char* lp_pricing_rule = "";

  /// Fraction of master solves that resumed from a prior basis.
  double warm_hit_rate() const {
    return master_solves > 0
               ? static_cast<double>(master_warm_hits) / master_solves
               : 0.0;
  }
  /// Mean simplex pivots per master solve.
  double pivots_per_solve() const {
    return master_solves > 0
               ? static_cast<double>(master_pivots) / master_solves
               : 0.0;
  }
};

/// Outcome of the CgOptions::verify certificate checks.
struct VerificationSummary {
  /// False when the run did not verify (CgOptions::verify was off).
  bool enabled = false;
  /// Master LP certificates re-proved (one per iteration plus the final
  /// extraction solve).
  int lp_certificates = 0;
  /// Columns re-proved feasible by the ScheduleVerifier (initial TDMA
  /// columns plus every priced column).
  int columns_verified = 0;
  /// Theorem-1 invariant checks (LB <= MP objective) performed.
  int bound_checks = 0;
  /// Every failed check, in the order encountered.
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

struct CgResult {
  /// True iff optimality was certified (Phi >= -eps under exact pricing)
  /// or the requested gap tolerance was reached.
  bool converged = false;
  /// Final MP objective (slots).  This is the P1 optimum when `converged`
  /// with gap_tolerance == 0.
  double total_slots = 0.0;
  /// Best Theorem-1 lower bound (NaN if no exact pricing ever ran).
  double lower_bound = std::nan("");
  /// Columns with tau > 0, ready for timeline execution.
  std::vector<sched::TimedSchedule> timeline;
  std::vector<IterationStat> history;
  int iterations = 0;
  /// Links whose demand could not be served at all (no reachable rate
  /// level on any channel, e.g. blocked): their demands are excluded from
  /// the optimization and the PNC must defer them.
  std::vector<int> unserved_links;
  /// Certificate-checker outcome (populated when CgOptions::verify).
  VerificationSummary verification;
  /// Per-phase wall-clock counters of this solve.
  CgProfile profile;

  // --- Checkpointable solver state (core::CgCheckpoint) -----------------
  /// The full column pool of the final restricted master (every TDMA,
  /// warm-pool and priced column), in master order; empty when the master
  /// was never built (invalid input).
  std::vector<sched::Schedule> pool;
  /// tau^s per pool column in the final (or incumbent) master solution,
  /// aligned with `pool`; zero for columns outside the emitted plan.
  std::vector<double> pool_tau;
  /// Final simplex multipliers per link (slots/bit); empty if the master
  /// never solved.
  std::vector<double> duals_hp;
  std::vector<double> duals_lp;

  // --- Anytime / failure-semantics contract -----------------------------
  /// True when the solve could not run to its normal conclusion (deadline,
  /// stall, solver breakdown, invalid input) and the result is the best
  /// incumbent instead.  The timeline and lower_bound are still valid:
  /// every returned schedule passes the ScheduleVerifier and
  /// best_lower_bound() <= total_slots holds whenever both exist.
  bool degraded = false;
  /// Why the loop stopped (kConverged on a clean run).
  CgStopReason stop_reason = CgStopReason::kIterationLimit;
  /// Structured detail for degraded exits; Ok otherwise.
  common::Status status;
  /// Wall-clock seconds the whole solve consumed (deadline accounting).
  double solve_seconds = 0.0;

  /// Best Theorem-1 lower bound of the run (alias of lower_bound; NaN when
  /// no exact pricing ever produced a valid bound).
  double best_lower_bound() const { return lower_bound; }

  double gap() const {
    if (std::isnan(lower_bound) || total_slots <= 0.0) return std::nan("");
    return (total_slots - lower_bound) / total_slots;
  }
};

/// Theorem 1: lower bound on the P1 optimum from duals, demands and Phi.
/// `phi` must be a valid lower bound on the most negative reduced cost
/// (exact Phi, or 1 - Psi_upper_bound from a truncated pricer).
///
/// Hardened: a non-finite dual value (NaN demands/duals), a NaN `phi`, or a
/// denominator 1 - Phi that is not safely positive returns -infinity — a
/// trivially valid bound the caller skips — instead of poisoning best_lb
/// with +/-inf or NaN.
double theorem1_lower_bound(const std::vector<double>& lambda_hp,
                            const std::vector<double>& lambda_lp,
                            const std::vector<video::LinkDemand>& demands,
                            double phi);

/// The TDMA initialization columns of Section IV-B: one column per
/// (link, layer), the link alone on its best channel at its highest solo
/// rate level.  Links that cannot reach even the lowest level on any
/// channel are skipped (the master will be infeasible, which solve reports).
std::vector<sched::Schedule> tdma_initial_columns(const net::Network& net);

/// Runs column generation on the instance.
CgResult solve_column_generation(const net::Network& net,
                                 const std::vector<video::LinkDemand>& demands,
                                 const CgOptions& options = {});

}  // namespace mmwave::core
