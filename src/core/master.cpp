#include "core/master.h"

#include <algorithm>
#include <utility>

namespace mmwave::core {

MasterProblem::MasterProblem(const net::Network& net,
                             std::vector<video::LinkDemand> demands)
    : net_(net), demands_(std::move(demands)) {}

bool MasterProblem::add_column(const sched::Schedule& schedule) {
  const std::string key = schedule.key();
  if (!keys_.insert(key).second) return false;
  columns_.push_back(schedule);
  hp_cols_.push_back(
      schedule.rate_column_bits_per_slot(net_, net::Layer::Hp));
  lp_cols_.push_back(
      schedule.rate_column_bits_per_slot(net_, net::Layer::Lp));
  return true;
}

bool MasterProblem::contains(const sched::Schedule& schedule) const {
  return keys_.count(schedule.key()) != 0;
}

MasterSolution MasterProblem::solve(MasterCertificate* certificate) const {
  MasterSolution out;
  const int num_links = net_.num_links();

  lp::LpModel model;
  for (std::size_t s = 0; s < columns_.size(); ++s) {
    model.add_variable(0.0, lp::kInfinity, 1.0);
  }
  // Row layout: [hp rows for links 0..L-1 | lp rows].
  for (int l = 0; l < num_links; ++l) {
    std::vector<lp::Term> terms;
    for (std::size_t s = 0; s < columns_.size(); ++s) {
      if (hp_cols_[s][l] > 0.0)
        terms.emplace_back(static_cast<int>(s), hp_cols_[s][l]);
    }
    model.add_constraint(std::move(terms), lp::Sense::Ge,
                         demands_[l].hp_bits);
  }
  for (int l = 0; l < num_links; ++l) {
    std::vector<lp::Term> terms;
    for (std::size_t s = 0; s < columns_.size(); ++s) {
      if (lp_cols_[s][l] > 0.0)
        terms.emplace_back(static_cast<int>(s), lp_cols_[s][l]);
    }
    model.add_constraint(std::move(terms), lp::Sense::Ge,
                         demands_[l].lp_bits);
  }

  const lp::LpSolution sol = lp::solve_lp(model);
  if (certificate) {
    certificate->solution = sol;
    certificate->model = std::move(model);
  }
  if (!sol.optimal()) return out;

  out.ok = true;
  out.objective_slots = sol.objective;
  out.tau = sol.x;
  out.lambda_hp.assign(num_links, 0.0);
  out.lambda_lp.assign(num_links, 0.0);
  for (int l = 0; l < num_links; ++l) {
    // Clamp the tiny negative dust the tolerance allows; duals of >= rows in
    // a min problem are nonnegative.
    out.lambda_hp[l] = std::max(0.0, sol.duals[l]);
    out.lambda_lp[l] = std::max(0.0, sol.duals[num_links + l]);
  }
  return out;
}

double MasterProblem::reduced_cost(const sched::Schedule& schedule,
                                   const std::vector<double>& lambda_hp,
                                   const std::vector<double>& lambda_lp) const {
  const std::vector<double> hp =
      schedule.rate_column_bits_per_slot(net_, net::Layer::Hp);
  const std::vector<double> lp =
      schedule.rate_column_bits_per_slot(net_, net::Layer::Lp);
  double value = 0.0;
  for (int l = 0; l < net_.num_links(); ++l) {
    value += lambda_hp[l] * hp[l] + lambda_lp[l] * lp[l];
  }
  return 1.0 - value;
}

}  // namespace mmwave::core
