#include "core/master.h"

#include <utility>

namespace mmwave::core {

MasterProblem::MasterProblem(const net::Network& net,
                             std::vector<video::LinkDemand> demands)
    : net_(net), demands_(std::move(demands)) {
  // Row layout: [hp | lp] (master_layout.h).  Rows are created once, empty;
  // add_column extends them in place so solves can resume from the previous
  // basis instead of rebuilding the LP every iteration.
  const int num_links = net_.num_links();
  for (int l = 0; l < num_links; ++l) {
    model_.add_constraint({}, lp::Sense::Ge, demands_[l].hp_bits);
  }
  for (int l = 0; l < num_links; ++l) {
    model_.add_constraint({}, lp::Sense::Ge, demands_[l].lp_bits);
  }
}

bool MasterProblem::add_column(const sched::Schedule& schedule) {
  const std::string key = schedule.key();
  if (!key_to_index_.emplace(key, columns_.size()).second) return false;
  columns_.push_back(schedule);
  hp_cols_.push_back(
      schedule.rate_column_bits_per_slot(net_, net::Layer::Hp));
  lp_cols_.push_back(
      schedule.rate_column_bits_per_slot(net_, net::Layer::Lp));

  const int var = model_.add_variable(0.0, lp::kInfinity, 1.0);
  const int num_links = net_.num_links();
  const std::vector<double>& hp = hp_cols_.back();
  const std::vector<double>& lp = lp_cols_.back();
  for (int l = 0; l < num_links; ++l) {
    if (hp[l] > 0.0) model_.add_term(master_hp_row(l), var, hp[l]);
    if (lp[l] > 0.0) model_.add_term(master_lp_row(num_links, l), var, lp[l]);
  }
  return true;
}

bool MasterProblem::contains(const sched::Schedule& schedule) const {
  return key_to_index_.count(schedule.key()) != 0;
}

MasterSolution MasterProblem::solve(MasterCertificate* certificate) {
  MasterSolution out;
  const int num_links = net_.num_links();

  lp::LpSolution sol = lp::solve_lp(
      model_, lp_options_, warm_start_enabled_ ? &warm_ : nullptr);
  if (!sol.optimal() && warm_start_enabled_) {
    // The warm path already falls back to a cold start when the stale basis
    // is unusable, but a breakdown *during* the cold re-solve (or a poisoned
    // pivot) can still surface here.  One explicit cold retry with the
    // snapshot dropped is the cheapest recovery that can possibly work.
    out.simplex_iterations += sol.iterations;
    out.lp_stats.ftran_calls += sol.stats.ftran_calls;
    out.lp_stats.btran_calls += sol.stats.btran_calls;
    out.lp_stats.refactorizations += sol.stats.refactorizations;
    warm_.valid = false;
    sol = lp::solve_lp(model_, lp_options_, &warm_);
  }
  if (certificate) {
    certificate->solution = sol;
    certificate->model = model_;
  }
  out.simplex_iterations += sol.iterations;
  out.lp_stats.ftran_calls += sol.stats.ftran_calls;
  out.lp_stats.btran_calls += sol.stats.btran_calls;
  out.lp_stats.refactorizations += sol.stats.refactorizations;
  out.lp_stats.pricing_rule = sol.stats.pricing_rule;
  out.warm_started = sol.warm_started;
  out.status = sol.error;
  if (!sol.optimal()) {
    if (out.status.ok()) {
      out.status = common::Status::Error(
          common::ErrorCode::kNumericalBreakdown,
          std::string("master LP solve failed: ") + lp::to_string(sol.status));
    }
    return out;
  }

  out.ok = true;
  out.objective_slots = sol.objective;
  out.tau = sol.x;
  out.lambda_hp.assign(num_links, 0.0);
  out.lambda_lp.assign(num_links, 0.0);
  for (int l = 0; l < num_links; ++l) {
    out.lambda_hp[l] = clamp_master_dual(sol.duals[master_hp_row(l)]);
    out.lambda_lp[l] =
        clamp_master_dual(sol.duals[master_lp_row(num_links, l)]);
  }
  return out;
}

double MasterProblem::reduced_cost(const sched::Schedule& schedule,
                                   const std::vector<double>& lambda_hp,
                                   const std::vector<double>& lambda_lp) const {
  const std::vector<double>* hp = nullptr;
  const std::vector<double>* lp = nullptr;
  std::vector<double> hp_fresh, lp_fresh;
  const auto it = key_to_index_.find(schedule.key());
  if (it != key_to_index_.end()) {
    hp = &hp_cols_[it->second];
    lp = &lp_cols_[it->second];
  } else {
    hp_fresh = schedule.rate_column_bits_per_slot(net_, net::Layer::Hp);
    lp_fresh = schedule.rate_column_bits_per_slot(net_, net::Layer::Lp);
    hp = &hp_fresh;
    lp = &lp_fresh;
  }
  double value = 0.0;
  for (int l = 0; l < net_.num_links(); ++l) {
    value += lambda_hp[l] * (*hp)[l] + lambda_lp[l] * (*lp)[l];
  }
  return 1.0 - value;
}

}  // namespace mmwave::core
