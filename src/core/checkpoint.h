// Checkpoint/restore of the column-generation solver state.
//
// The most expensive artifact of one P1 solve is the pool of feasible
// schedules built by pricing; it stays valid (or cheaply repairable) across
// demand changes and partial topology perturbations.  CgCheckpoint captures
// that pool plus the surrounding solver state — instance fingerprint,
// per-column durations, duals, LB/UB, iteration counters — in a versioned,
// checksummed, human-readable text format so a scheduling service can
// survive process death and re-enter CG warm instead of cold.
//
// Robustness contract (enforced by tests/core/checkpoint_test.cpp, the
// checkpoint fuzz harness, and the fault-injection sites in
// common/fault_injection.h):
//   * save_checkpoint writes atomically (temp file + rename): a crash
//     mid-write can lose the new checkpoint, never corrupt the old one;
//   * parse_checkpoint is strict: any corruption — truncation, bit flip
//     (caught by the FNV-1a payload checksum), version skew, out-of-range
//     field — returns a structured common::Status, never crashes and never
//     yields a partially-parsed checkpoint;
//   * fingerprint mismatches are detectable by the caller, so a checkpoint
//     can never be silently replayed against the wrong instance;
//   * the v2 pool-metadata section is advisory: a structurally sound file
//     whose metadata values are out of range degrades to cold metadata
//     (columns kept, scores reset) instead of rejecting the checkpoint —
//     lifecycle hints must never cost the warm-start capital they score.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "mmwave/network.h"
#include "sched/schedule.h"
#include "video/demand.h"

namespace mmwave::core {

struct CgResult;  // column_generation.h

/// The on-disk format version this build writes.  The parser also reads
/// every older version: v1 lacks the pool-metadata section (its pool loads
/// with cold metadata), v2 lacks the session/pool-index sections (it loads
/// with no stream cursor and an empty neighbour index), v3 lacks the
/// per-link client-buffer line in the session cursor (it loads with empty
/// buffer state — a resumed session then starts its buffers cold).
inline constexpr int kCheckpointVersion = 4;
/// Oldest format version parse_checkpoint still accepts.
inline constexpr int kMinCheckpointVersion = 1;

/// Per-column lifecycle metadata (core::PoolManager's scoring state),
/// persisted by checkpoint format v2.  The default-constructed value is
/// the "cold metadata" a v1 checkpoint — or a v2 checkpoint whose metadata
/// records were semantically bad — loads with.
struct PoolColumnMeta {
  /// Instance fingerprint the column last served under.
  std::uint64_t fingerprint = 0;
  /// Manager epoch (store() counter) at the column's last master admission
  /// with tau > 0; its recency for eviction scoring.
  std::int64_t last_used_epoch = 0;
  /// Reduced cost last observed for the column under its master's final
  /// duals (>= -eps at optimality; lower = more competitive).
  double last_reduced_cost = 0.0;
  /// tau > 0 in the most recent master solution: never evicted.
  bool in_basis = false;
};

/// One entry of the multi-instance neighbour index (core::PoolManager's
/// `instances_`), persisted by checkpoint format v3 so a restarted session
/// recovers nearest-neighbour seeding, not just one instance's pool.
struct PoolIndexEntry {
  std::uint64_t fingerprint = 0;
  int links = 0;
  int channels = 0;
  /// Manager epoch of the instance's most recent store().
  std::int64_t last_epoch = 0;
  /// The signature feature vector (gains/ladder/demands) the neighbour
  /// distance is computed over; empty = identity-only (no similarity).
  std::vector<double> features;
};

/// Per-GOP scoring record of a completed streaming period (mirrors
/// stream::GopRecord; lives here because core cannot depend on stream).
struct StreamGopRecord {
  int gop = 0;
  double demand_bits = 0.0;
  double schedule_slots = 0.0;
  double budget_slots = 0.0;
  bool on_time = false;
  double stall_slots = 0.0;
};

/// Per-link client playout-buffer state persisted by checkpoint format v4
/// (mirrors stream::ClientBuffer; lives here because core cannot depend on
/// stream).  Occupancy/stall are seconds of video; the layer counters are
/// GOPs whose HP/LP layer was delivered in full.
struct StreamBufferState {
  double occupancy_seconds = 0.0;
  double stall_seconds = 0.0;
  int rebuffer_events = 0;
  /// bit0 = playing, bit1 = started.  Playing implies started, so the
  /// value 1 is semantically invalid (parse degrades, resume rejects).
  int flags = 0;
  int hp_gops_delivered = 0;
  int lp_gops_delivered = 0;
};

/// Cumulative stream::SolverContext counters at the cursor position, so a
/// resumed session's final pool-reuse metrics equal the uninterrupted run's.
struct StreamSolverCounters {
  int periods = 0;
  int resolves = 0;
  int pool_hits = 0;
  int pool_misses = 0;
  int columns_loaded = 0;
  int columns_reused = 0;
  int columns_repaired = 0;
  int columns_dropped = 0;
  int transmissions_dropped = 0;
  std::int64_t pool_evicted = 0;
  std::int64_t pool_neighbour_seeded = 0;
};

/// The stream-session cursor persisted by checkpoint format v3: everything
/// `stream::run_blockage_session` needs to continue mid-session after a
/// crash.  Demands and blockage states are regenerated deterministically
/// from the session seed; the cursor pins where in those streams the
/// session was, plus the cumulative scores that cannot be replayed without
/// re-solving.
struct StreamCursor {
  /// First GOP period the resumed session still has to run; == num_gops
  /// when the session finished.  Always >= 1 in a valid cursor (a session
  /// with nothing completed saves no cursor).
  int next_gop = 0;
  int num_gops = 0;
  /// Hash of the session-defining inputs (instance flags, blockage config,
  /// horizon, seed); a resume against a different session is rejected.
  std::uint64_t session_fingerprint = 0;
  double carryover_stall = 0.0;
  double blocked_fraction_sum = 0.0;
  int invalidated_periods = 0;
  int exec_transmissions_dropped = 0;
  /// Rolling FNV digest over every solved period's timeline (the chaos-soak
  /// equality witness).
  std::uint64_t plan_digest = 0;
  /// Per-link bits delivered so far; size == links.
  std::vector<double> delivered_bits;
  /// Blockage state (0/1 per link) observed at period next_gop - 1: the
  /// resume replays the Markov chain and must land on exactly these bits,
  /// otherwise the cursor is stale and gets rejected.
  std::vector<int> blocked;
  /// Client playout-buffer state at the cursor position (format v4).
  /// Either one entry per link or empty — empty means "no buffer state"
  /// (a v3-era file, or a producer without the buffer model): the resumed
  /// session starts its buffers cold.
  std::vector<StreamBufferState> buffers;
  StreamSolverCounters counters;
  /// Scoring records of the completed periods, in order (size next_gop).
  std::vector<StreamGopRecord> gops;
};

struct CgCheckpoint {
  /// FNV-1a fingerprint of the instance the state was computed on
  /// (dimensions, parameters, rate ladder, all gains/noises, demands).
  std::uint64_t fingerprint = 0;
  int links = 0;
  int channels = 0;
  /// CG iterations the checkpointed solve ran.
  int iterations = 0;
  bool converged = false;
  /// Incumbent MP objective (upper bound on the P1 optimum), slots.
  double total_slots = 0.0;
  /// Best Theorem-1 lower bound (NaN when none was certified).
  double lower_bound = 0.0;
  /// Final simplex multipliers per link (slots/bit); size == links.
  std::vector<double> duals_hp;
  std::vector<double> duals_lp;
  /// The column pool, in master order, with per-column rates/powers/channels
  /// embedded in each schedule's transmissions.
  std::vector<sched::Schedule> pool;
  /// Incumbent durations tau^s aligned with `pool` (0 outside the plan).
  std::vector<double> pool_tau;
  /// Lifecycle metadata aligned with `pool` (format v2).  Empty = cold
  /// metadata: a v1 checkpoint, or a v2 file whose metadata records were
  /// semantically out of range (see pool_meta_degraded).
  std::vector<PoolColumnMeta> pool_meta;
  /// True when a v2 checkpoint carried a pool-metadata section that had to
  /// be discarded (out-of-range record, or the injected
  /// faults::kCheckpointBadPoolRecord): the columns are still warm capital,
  /// only their scores restarted cold.
  bool pool_meta_degraded = false;

  // ---- Format v3 fields (defaults = what a v1/v2 file loads with) --------
  /// Compaction counter of the delta log this base belongs to; delta blocks
  /// bind to it so a stale .delta chain can never replay onto a newer base.
  std::int64_t base_seq = 0;
  /// PoolManager store() epoch at save time, restored on import so recency
  /// scoring continues instead of restarting at zero.
  std::int64_t pool_epoch = 0;
  /// The multi-instance neighbour index (v3).  Empty for v1/v2 files and
  /// when a v3 index section was semantically damaged (pool_index_degraded).
  std::vector<PoolIndexEntry> pool_index;
  /// True when a v3 pool-index section had to be discarded (out-of-range
  /// record, or the injected faults::kCheckpointBadIndexRecord): the pool
  /// is intact, only the neighbour index restarts empty.
  bool pool_index_degraded = false;
  /// True when `session` holds a usable stream cursor.
  bool has_session = false;
  /// The stream-session cursor (meaningful only when has_session).
  StreamCursor session;
  /// True when a v3 session section had to be discarded (out-of-range
  /// cursor, or the injected faults::kSessionCursorCorrupt): the solver
  /// pool is intact, only the stream session restarts cold.
  bool session_degraded = false;
};

/// 64-bit FNV-1a over a byte string (the checkpoint payload checksum).
std::uint64_t fnv1a64(std::string_view bytes);

/// Order-sensitive fingerprint of a problem instance: network dimensions
/// and parameters, the rate ladder, every direct/cross gain, per-link noise
/// and topology, and the demand vector.  Two instances with any differing
/// bit in those inputs fingerprint differently (up to hash collision).
std::uint64_t instance_fingerprint(
    const net::Network& net, const std::vector<video::LinkDemand>& demands);

/// Snapshot of a finished (or degraded) solve, ready to save.
CgCheckpoint make_checkpoint(const net::Network& net,
                             const std::vector<video::LinkDemand>& demands,
                             const CgResult& result);

/// Serializes to the versioned, checksummed text format.
std::string serialize_checkpoint(const CgCheckpoint& checkpoint);

/// Strict parser: the exact inverse of serialize_checkpoint.  Returns
/// kInvalidInput with a one-line diagnosis on ANY deviation — wrong magic,
/// version skew, checksum mismatch, truncation, out-of-range or
/// non-numeric fields, trailing garbage.  Never throws on any byte
/// sequence (fuzzed contract).
[[nodiscard]] common::Expected<CgCheckpoint> parse_checkpoint(
    std::string_view text);

/// Atomic write: serialize to `path + ".tmp"`, fsync-free fwrite + rename.
/// Returns kIoError on any filesystem failure (the fault site
/// faults::kCheckpointWriteFail scripts one); a failed save never leaves a
/// half-written file at `path`.
[[nodiscard]] common::Status save_checkpoint(const CgCheckpoint& checkpoint,
                               const std::string& path);

/// Reads and strictly parses `path`.  kIoError when unreadable; otherwise
/// parse_checkpoint's verdict.  The fault site faults::kCheckpointCorrupt
/// flips a payload byte after the read to prove the checksum catches it.
[[nodiscard]] common::Expected<CgCheckpoint> load_checkpoint(
    const std::string& path);

}  // namespace mmwave::core
