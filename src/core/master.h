// The restricted Master Problem (MP) of the column generation (Section IV-B).
//
//   min  sum_s tau^s
//   s.t. sum_s r_l^s(hp) tau^s >= d_l(hp)   (dual lambda_l(hp) >= 0)
//        sum_s r_l^s(lp) tau^s >= d_l(lp)   (dual lambda_l(lp) >= 0)
//        tau >= 0
//
// over the current column pool S'.  Units: tau in slots, rates in bits/slot,
// demands in bits, so duals come out in slots/bit and the reduced cost of a
// schedule s is  mu^s = 1 - sum_l (lambda_hp r^s_hp + lambda_lp r^s_lp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/master_layout.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "mmwave/network.h"
#include "sched/schedule.h"
#include "video/demand.h"

namespace mmwave::core {

/// Raw LP artifacts of one master solve, exported on demand so an
/// independent referee (check::check_lp_certificate) can re-prove
/// optimality of the claimed (tau, lambda) pair without touching simplex
/// internals.
struct MasterCertificate {
  lp::LpModel model;
  lp::LpSolution solution;
};

struct MasterSolution {
  bool ok = false;
  /// Objective: total slots (the upper bound of P1 at this iteration).
  double objective_slots = 0.0;
  /// tau^s per column, aligned with MasterProblem::columns().
  std::vector<double> tau;
  /// Simplex multipliers per link (slots/bit).
  std::vector<double> lambda_hp;
  std::vector<double> lambda_lp;
  /// Simplex pivots this solve spent (profiling).
  std::int64_t simplex_iterations = 0;
  /// True when the solve resumed from the previous optimal basis instead of
  /// cold-starting the two-phase simplex.
  bool warm_started = false;
  /// Structured failure detail when !ok (numerical breakdown, iteration
  /// limit, infeasible restricted master...), Ok otherwise.  A warm solve
  /// that broke down numerically is retried cold once before failing.
  common::Status status;
  /// Basis-engine work counters (FTRAN/BTRAN/refactorizations, pricing
  /// rule), accumulated over the warm attempt and any cold retry.
  lp::LpStats lp_stats;
};

class MasterProblem {
 public:
  MasterProblem(const net::Network& net,
                std::vector<video::LinkDemand> demands);

  /// Adds a column unless an identical schedule (same link/layer/q/k tuples)
  /// is already present.  Returns true if added.
  bool add_column(const sched::Schedule& schedule);

  /// True if the schedule is already in the pool.
  bool contains(const sched::Schedule& schedule) const;

  const std::vector<sched::Schedule>& columns() const { return columns_; }
  std::size_t num_columns() const { return columns_.size(); }
  const std::vector<video::LinkDemand>& demands() const { return demands_; }

  /// Solves the restricted LP exactly and extracts the duals.  When
  /// `certificate` is non-null the LP model and raw solution are exported
  /// into it for independent certificate checking (the model is snapshotted
  /// by copy; it keeps growing afterwards).
  ///
  /// Solves are incremental: the LP model persists across calls, growing by
  /// one column per add_column, and each solve warm-starts from the previous
  /// optimal basis (new columns enter nonbasic at zero), falling back to a
  /// cold two-phase solve when the old basis is unusable.
  MasterSolution solve(MasterCertificate* certificate = nullptr);

  /// Disables/enables warm-starting (default on).  With warm starts off
  /// every solve cold-starts the two-phase simplex — the pre-incremental
  /// behavior, kept for A/B benchmarking and equivalence tests.
  void set_warm_start(bool enabled) {
    warm_start_enabled_ = enabled;
    if (!enabled) warm_.valid = false;
  }

  /// Overrides the LP solver options used by every subsequent solve()
  /// (pricing rule, dense-reference engine, tolerances...).  Defaults to
  /// LpOptions{}.
  void set_lp_options(const lp::LpOptions& options) { lp_options_ = options; }

  /// Reduced cost 1 - sum_l lambda . r of a candidate schedule under the
  /// given duals.  Rate columns of schedules already in the pool are served
  /// from the cache instead of being recomputed.
  double reduced_cost(const sched::Schedule& schedule,
                      const std::vector<double>& lambda_hp,
                      const std::vector<double>& lambda_lp) const;

 private:
  const net::Network& net_;
  std::vector<video::LinkDemand> demands_;
  std::vector<sched::Schedule> columns_;
  std::vector<std::vector<double>> hp_cols_;  // cached bits/slot per column
  std::vector<std::vector<double>> lp_cols_;
  std::unordered_map<std::string, std::size_t> key_to_index_;
  /// Persistent restricted LP (rows fixed at construction, one variable per
  /// pooled column) and the resumable basis of its last optimal solve.
  lp::LpModel model_;
  lp::WarmStart warm_;
  bool warm_start_enabled_ = true;
  lp::LpOptions lp_options_;
};

}  // namespace mmwave::core
