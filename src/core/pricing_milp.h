// Exact pricing sub-problem as a MILP (Section IV-D/E).
//
// Implements the corrected big-M formulation documented in DESIGN.md:
// binaries x_l^{q,k}(layer), per-channel powers P_l^k, SINR activation
// constraints with M_l^{q,k} = gamma^q (rho_l + sum_{l'!=l} H_{l'l}^k Pmax),
// one (layer, q, k) choice per link (30), and per-node half-duplex (31/32).
//
// Pruning applied before the solve (both exact):
//  * variables with lambda <= 0 are dropped — such a link can only add
//    interference, never objective;
//  * (l, q, k) combinations that violate the SINR threshold even
//    interference-free at Pmax are dropped.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "core/pricing.h"
#include "milp/milp.h"
#include "mmwave/network.h"

namespace mmwave::core {

struct MilpPricingOptions {
  milp::MilpOptions milp;
  /// Stop the branch & bound as soon as an incumbent with Psi >= this is
  /// found (NaN disables).  Column generation only needs *an* improving
  /// column except on the final certification iteration.
  double target_psi = std::nan("");
  /// Re-minimize transmit powers of the extracted schedule per channel
  /// (the MILP only needs feasibility; minimal powers are the natural
  /// operating point and leave headroom).
  bool clean_powers = true;
  /// Ablation: force P_l^k = Pmax whenever link l is active on channel k,
  /// i.e. no power adaptation.  Default off.
  bool fixed_power = false;
  /// Extension (paper Section III: "the HP and LP data of a video session
  /// may be carried on different channels at each time slot"): allow a link
  /// to transmit its HP and LP layers concurrently on *different* channels,
  /// sharing the link's Pmax budget across them.  Constraint (30) becomes
  /// per-(link, layer), plus a per-link total-power row.  Default off
  /// (the strict formulation (30)).
  bool allow_layer_split = false;
};

class PricingMilpCache;

/// Solves the pricing MILP for the given duals (bits/slot units).
/// `warm_start`, if non-empty, seeds the branch & bound incumbent.
///
/// `cache`, if non-null, holds the reusable model skeleton: constraints,
/// big-M terms and conflict cuts depend only on the network and the
/// structural options, so across the iterations of one column-generation
/// run only the objective (lambda x bits/slot) and the activation bounds
/// are rewritten.  The cache is (re)built automatically when empty or when
/// the network dimensions / structural options changed; it must not be
/// shared across threads.
PricingResult solve_pricing_milp(const net::Network& net,
                                 const std::vector<double>& lambda_hp,
                                 const std::vector<double>& lambda_lp,
                                 const MilpPricingOptions& options = {},
                                 const sched::Schedule* warm_start = nullptr,
                                 PricingMilpCache* cache = nullptr);

/// Reusable pricing-model skeleton (see solve_pricing_milp).  Opaque to
/// callers: construct one next to the CG loop and pass its address.
class PricingMilpCache {
 public:
  bool built() const { return built_; }

 private:
  friend PricingResult solve_pricing_milp(const net::Network&,
                                          const std::vector<double>&,
                                          const std::vector<double>&,
                                          const MilpPricingOptions&,
                                          const sched::Schedule*,
                                          PricingMilpCache*);
  struct XVar {
    int link;
    int level;    // q
    int channel;  // k
    net::Layer layer;
  };

  /// (Re)builds the skeleton for this network + structural options.
  void build(const net::Network& net, const MilpPricingOptions& options);

  bool built_ = false;
  // Fingerprint of what the skeleton was built for.
  bool fixed_power_ = false;
  bool allow_layer_split_ = false;
  int links_ = 0;
  int channels_ = 0;
  int levels_ = 0;

  milp::MilpModel model_;
  std::vector<XVar> xvars_;
  std::vector<int> xindex_;  // (l, q, k, layer) -> var index, -1 if pruned
  std::map<std::pair<int, int>, int> pvar_;  // (l, k) -> power var index
  std::map<int, int> link_indicator_;        // layer-split y_l vars
};

}  // namespace mmwave::core
