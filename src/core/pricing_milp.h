// Exact pricing sub-problem as a MILP (Section IV-D/E).
//
// Implements the corrected big-M formulation documented in DESIGN.md:
// binaries x_l^{q,k}(layer), per-channel powers P_l^k, SINR activation
// constraints with M_l^{q,k} = gamma^q (rho_l + sum_{l'!=l} H_{l'l}^k Pmax),
// one (layer, q, k) choice per link (30), and per-node half-duplex (31/32).
//
// Pruning applied before the solve (both exact):
//  * variables with lambda <= 0 are dropped — such a link can only add
//    interference, never objective;
//  * (l, q, k) combinations that violate the SINR threshold even
//    interference-free at Pmax are dropped.
#pragma once

#include "core/pricing.h"
#include "milp/milp.h"
#include "mmwave/network.h"

namespace mmwave::core {

struct MilpPricingOptions {
  milp::MilpOptions milp;
  /// Stop the branch & bound as soon as an incumbent with Psi >= this is
  /// found (NaN disables).  Column generation only needs *an* improving
  /// column except on the final certification iteration.
  double target_psi = std::nan("");
  /// Re-minimize transmit powers of the extracted schedule per channel
  /// (the MILP only needs feasibility; minimal powers are the natural
  /// operating point and leave headroom).
  bool clean_powers = true;
  /// Ablation: force P_l^k = Pmax whenever link l is active on channel k,
  /// i.e. no power adaptation.  Default off.
  bool fixed_power = false;
  /// Extension (paper Section III: "the HP and LP data of a video session
  /// may be carried on different channels at each time slot"): allow a link
  /// to transmit its HP and LP layers concurrently on *different* channels,
  /// sharing the link's Pmax budget across them.  Constraint (30) becomes
  /// per-(link, layer), plus a per-link total-power row.  Default off
  /// (the strict formulation (30)).
  bool allow_layer_split = false;
};

/// Solves the pricing MILP for the given duals (bits/slot units).
/// `warm_start`, if non-empty, seeds the branch & bound incumbent.
PricingResult solve_pricing_milp(const net::Network& net,
                                 const std::vector<double>& lambda_hp,
                                 const std::vector<double>& lambda_lp,
                                 const MilpPricingOptions& options = {},
                                 const sched::Schedule* warm_start = nullptr);

}  // namespace mmwave::core
