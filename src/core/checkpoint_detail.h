// Shared text-format machinery of the checkpoint family.
//
// core/checkpoint.cpp (the base snapshot format) and core/checkpoint_log.cpp
// (the delta log appended against a base) speak the same line grammar:
// `key = tokens...` records, %.17g doubles that round-trip IEEE exactly,
// 0x + 16-hex-digit u64s, strict full-token numeric parses.  This header
// holds that machinery so the two writers/parsers cannot drift apart.
// Everything here is internal to core/ — tools and tests go through the
// public checkpoint.h / checkpoint_log.h surfaces.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/checkpoint.h"
#include "sched/schedule.h"

namespace mmwave::core::detail {

// Hard ceilings on parsed counts: a corrupted header must not be able to
// drive a multi-gigabyte allocation before the record lines are even
// reachable (the checksum is verified first, but belt and braces).
inline constexpr int kMaxLinks = 4096;
inline constexpr int kMaxChannels = 1024;
inline constexpr int kMaxColumns = 1'000'000;
inline constexpr int kMaxRateLevels = 64;
inline constexpr int kMaxIndexEntries = 100'000;
inline constexpr int kMaxFeatures = 65'536;
inline constexpr int kMaxGops = 1'000'000;

[[nodiscard]] inline common::Status parse_error(int line,
                                                const std::string& what) {
  return common::Status::Error(
      common::ErrorCode::kInvalidInput,
      "checkpoint line " + std::to_string(line) + ": " + what);
}

/// %.17g round-trips IEEE doubles exactly, which is what makes the
/// save -> load -> serialize cycle byte-identical.
inline void append_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "nan";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Strict full-token double parse; `allow_nan` admits the literal "nan".
inline bool parse_double_token(std::string_view token, bool allow_nan,
                               double* out) {
  if (token.empty() || token.size() >= 63) return false;
  if (token == "nan") {
    if (!allow_nan) return false;
    *out = std::nan("");
    return true;
  }
  char buf[64];
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (end != buf + token.size() || errno == ERANGE || !std::isfinite(v))
    return false;
  *out = v;
  return true;
}

inline bool parse_int_token(std::string_view token, long long lo, long long hi,
                            long long* out) {
  if (token.empty() || token.size() >= 31) return false;
  char buf[32];
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (end != buf + token.size() || errno == ERANGE || v < lo || v > hi)
    return false;
  *out = v;
  return true;
}

inline bool parse_hex64_token(std::string_view token, std::uint64_t* out) {
  if (token.size() != 18 || token[0] != '0' || token[1] != 'x') return false;
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < token.size(); ++i) {
    const char c = token[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = v;
  return true;
}

inline void append_hex64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

/// Line cursor over the payload; tracks 1-based line numbers for errors.
class LineReader {
 public:
  LineReader(std::string_view text, int first_line)
      : text_(text), line_(first_line - 1) {}

  /// Next line without its '\n'.  False at end of input.
  bool next(std::string_view* out) {
    if (pos_ >= text_.size()) return false;
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) {
      // A checkpoint always ends in a newline; a final unterminated line is
      // a truncation, reported by the caller when the content mismatches.
      *out = text_.substr(pos_);
      pos_ = text_.size();
    } else {
      *out = text_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
    }
    ++line_;
    return true;
  }
  bool at_end() const { return pos_ >= text_.size(); }
  int line() const { return line_ + 1; }  ///< line number of the NEXT line

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
};

/// Splits on single spaces (the serializers never emit doubles/tabs).
inline std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t sp = line.find(' ', pos);
    if (sp == std::string_view::npos) {
      tokens.push_back(line.substr(pos));
      break;
    }
    tokens.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  return tokens;
}

/// Reads one `key = <value tokens...>` line; returns the value tokens.
[[nodiscard]] inline common::Expected<std::vector<std::string_view>> expect_kv(
    LineReader& reader, std::string_view key) {
  std::string_view line;
  const int line_no = reader.line();
  if (!reader.next(&line)) {
    return parse_error(line_no, "truncated: expected '" + std::string(key) +
                                    " = ...'");
  }
  auto tokens = split_tokens(line);
  if (tokens.size() < 3 || tokens[0] != key || tokens[1] != "=") {
    return parse_error(line_no, "expected '" + std::string(key) +
                                    " = ...', got '" + std::string(line) +
                                    "'");
  }
  tokens.erase(tokens.begin(), tokens.begin() + 2);
  return tokens;
}

[[nodiscard]] inline common::Expected<long long> expect_int(
    LineReader& reader, std::string_view key, long long lo, long long hi) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, key);
  if (!tokens.ok()) return tokens.status();
  long long v = 0;
  if (tokens.value().size() != 1 ||
      !parse_int_token(tokens.value()[0], lo, hi, &v)) {
    return parse_error(line_no, std::string(key) + ": expected an integer in [" +
                                    std::to_string(lo) + ", " +
                                    std::to_string(hi) + "]");
  }
  return v;
}

[[nodiscard]] inline common::Expected<double> expect_double(
    LineReader& reader, std::string_view key, bool allow_nan) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, key);
  if (!tokens.ok()) return tokens.status();
  double v = 0.0;
  if (tokens.value().size() != 1 ||
      !parse_double_token(tokens.value()[0], allow_nan, &v)) {
    return parse_error(line_no,
                       std::string(key) + ": expected a finite number" +
                           (allow_nan ? " or 'nan'" : ""));
  }
  return v;
}

/// Emits one pool column: the `column = tau <t> txs <n>` record followed by
/// its `tx = ...` lines (the grammar both the base format's pool section
/// and the delta log's `add` records use).
inline void append_column(std::string& out, const sched::Schedule& col,
                          double tau) {
  out += "column = tau ";
  append_double(out, tau);
  out += " txs " + std::to_string(col.size());
  out += '\n';
  for (const sched::Transmission& tx : col.transmissions()) {
    out += "tx = " + std::to_string(tx.link) + ' ' +
           std::to_string(static_cast<int>(tx.layer)) + ' ' +
           std::to_string(tx.rate_level) + ' ' +
           std::to_string(tx.channel) + ' ';
    append_double(out, tx.power_watts);
    out += '\n';
  }
}

/// Strict inverse of append_column: one column record plus its tx lines,
/// bounds-checked against the instance dimensions.
[[nodiscard]] inline common::Status parse_column(LineReader& reader, int links,
                                                 int channels,
                                                 sched::Schedule* col,
                                                 double* tau) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, "column");
  if (!tokens.ok()) return tokens.status();
  const auto& t = tokens.value();
  long long num_txs = 0;
  if (t.size() != 4 || t[0] != "tau" || t[2] != "txs" ||
      !parse_double_token(t[1], /*allow_nan=*/false, tau) || *tau < 0.0 ||
      !parse_int_token(t[3], 0, 2LL * kMaxLinks, &num_txs)) {
    return parse_error(line_no, "column: expected 'column = tau <t> txs <n>'");
  }
  for (long long i = 0; i < num_txs; ++i) {
    const int tx_line = reader.line();
    auto tx_tokens = expect_kv(reader, "tx");
    if (!tx_tokens.ok()) return tx_tokens.status();
    const auto& tt = tx_tokens.value();
    long long link = 0, layer = 0, level = 0, channel = 0;
    double power = 0.0;
    if (tt.size() != 5 ||
        !parse_int_token(tt[0], 0, links - 1, &link) ||
        !parse_int_token(tt[1], 0, 1, &layer) ||
        !parse_int_token(tt[2], 0, kMaxRateLevels - 1, &level) ||
        !parse_int_token(tt[3], 0, channels - 1, &channel) ||
        !parse_double_token(tt[4], /*allow_nan=*/false, &power) ||
        power < 0.0) {
      return parse_error(
          tx_line, "tx: expected '<link> <layer> <level> <channel> <power>' "
                   "with all fields in range");
    }
    col->add({static_cast<int>(link), static_cast<net::Layer>(layer),
              static_cast<int>(level), static_cast<int>(channel), power});
  }
  return common::Status::Ok();
}

/// Parses a fixed-width duals line (`duals_hp = ...` / `duals_lp = ...`):
/// exactly `expected_size` finite non-negative values.
[[nodiscard]] inline common::Expected<std::vector<double>> parse_dual_vector(
    LineReader& reader, std::string_view key, int expected_size) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, key);
  if (!tokens.ok()) return tokens.status();
  if (static_cast<int>(tokens.value().size()) != expected_size) {
    return parse_error(line_no, std::string(key) + ": expected " +
                                    std::to_string(expected_size) +
                                    " values, got " +
                                    std::to_string(tokens.value().size()));
  }
  std::vector<double> values;
  values.reserve(tokens.value().size());
  for (std::string_view t : tokens.value()) {
    double v = 0.0;
    if (!parse_double_token(t, /*allow_nan=*/false, &v) || v < 0.0) {
      return parse_error(line_no, std::string(key) +
                                      ": dual values must be finite and >= 0");
    }
    values.push_back(v);
  }
  return values;
}

/// Emits one pool-metadata record (the v2 section's and the delta log's
/// shared `meta = <fingerprint> <epoch> <rc> <basis>` line).
inline void append_meta_record(std::string& out, const PoolColumnMeta& m) {
  out += "meta = ";
  append_hex64(out, m.fingerprint);
  out += ' ' + std::to_string(m.last_used_epoch) + ' ';
  append_double(out,
                std::isfinite(m.last_reduced_cost) ? m.last_reduced_cost : 0.0);
  out += ' ';
  out += m.in_basis ? '1' : '0';
  out += '\n';
}

/// Parses one `meta = ...` record.  Structural damage (wrong key, wrong
/// token count, truncation) is a hard error; value-level damage sets
/// *record_ok = false and leaves *m untouched — the base parser degrades
/// metadata to cold, the delta parser drops the chain tail.
[[nodiscard]] inline common::Status parse_meta_record(LineReader& reader,
                                                      PoolColumnMeta* m,
                                                      bool* record_ok) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, "meta");
  if (!tokens.ok()) return tokens.status();
  const auto& t = tokens.value();
  if (t.size() != 4) {
    return parse_error(line_no,
                       "meta: expected '<fingerprint> <epoch> <rc> <basis>'");
  }
  long long epoch = 0, basis = 0;
  double rc = 0.0;
  std::uint64_t fp = 0;
  if (!parse_hex64_token(t[0], &fp) ||
      !parse_int_token(t[1], 0, 9'223'372'036'854'775'806LL, &epoch) ||
      !parse_double_token(t[2], /*allow_nan=*/false, &rc) ||
      !parse_int_token(t[3], 0, 1, &basis)) {
    *record_ok = false;
    return common::Status::Ok();
  }
  m->fingerprint = fp;
  m->last_used_epoch = epoch;
  m->last_reduced_cost = rc;
  m->in_basis = basis != 0;
  return common::Status::Ok();
}

/// Emits one neighbour-index record (the v3 section's and the delta log's
/// shared `inst = ...` line).
inline void append_index_entry(std::string& out, const PoolIndexEntry& e) {
  out += "inst = ";
  append_hex64(out, e.fingerprint);
  out += ' ' + std::to_string(e.links) + ' ' + std::to_string(e.channels) +
         ' ' + std::to_string(e.last_epoch) + ' ' +
         std::to_string(e.features.size());
  for (double f : e.features) {
    out += ' ';
    append_double(out, f);
  }
  out += '\n';
}

/// Parses one `inst = ...` record.  Structural damage is a hard error;
/// semantically nonsense dimensions (links/channels < 1) set
/// *record_ok = false with *e left untouched.
[[nodiscard]] inline common::Status parse_index_entry(LineReader& reader,
                                                      PoolIndexEntry* e,
                                                      bool* record_ok) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, "inst");
  if (!tokens.ok()) return tokens.status();
  const auto& t = tokens.value();
  std::uint64_t fp = 0;
  long long links = 0, channels = 0, epoch = 0, nfeat = 0;
  if (t.size() < 5 || !parse_hex64_token(t[0], &fp) ||
      !parse_int_token(t[1], 0, kMaxLinks, &links) ||
      !parse_int_token(t[2], 0, kMaxChannels, &channels) ||
      !parse_int_token(t[3], 0, 9'223'372'036'854'775'806LL, &epoch) ||
      !parse_int_token(t[4], 0, kMaxFeatures, &nfeat) ||
      static_cast<long long>(t.size()) != 5 + nfeat) {
    return parse_error(line_no,
                       "inst: expected '<fingerprint> <links> <channels> "
                       "<epoch> <nfeat> <features...>'");
  }
  std::vector<double> features;
  features.reserve(static_cast<std::size_t>(nfeat));
  for (long long f = 0; f < nfeat; ++f) {
    double v = 0.0;
    if (!parse_double_token(t[5 + f], /*allow_nan=*/false, &v)) {
      return parse_error(line_no, "inst: non-numeric feature value");
    }
    features.push_back(v);
  }
  if (links < 1 || channels < 1) {
    *record_ok = false;
    return common::Status::Ok();
  }
  e->fingerprint = fp;
  e->links = static_cast<int>(links);
  e->channels = static_cast<int>(channels);
  e->last_epoch = epoch;
  e->features = std::move(features);
  return common::Status::Ok();
}

/// Emits the cursor/delivered/blocked/context lines of a session section —
/// everything except the surrounding `session = 0|1` marker and the gop
/// records, which the base format and the delta log frame differently.
inline void append_cursor_block(std::string& out, const StreamCursor& s) {
  out += "cursor = " + std::to_string(s.next_gop) + ' ' +
         std::to_string(s.num_gops) + ' ';
  append_hex64(out, s.session_fingerprint);
  out += ' ';
  append_double(out, s.carryover_stall);
  out += ' ';
  append_double(out, s.blocked_fraction_sum);
  out += ' ' + std::to_string(s.invalidated_periods) + ' ' +
         std::to_string(s.exec_transmissions_dropped) + ' ';
  append_hex64(out, s.plan_digest);
  out += "\ndelivered = " + std::to_string(s.delivered_bits.size());
  for (double v : s.delivered_bits) {
    out += ' ';
    append_double(out, v);
  }
  out += "\nblocked = " + std::to_string(s.blocked.size());
  for (int b : s.blocked) out += ' ' + std::to_string(b);
  out += "\nbuffers = " + std::to_string(s.buffers.size());
  for (const StreamBufferState& b : s.buffers) {
    out += ' ';
    append_double(out, b.occupancy_seconds);
    out += ' ';
    append_double(out, b.stall_seconds);
    out += ' ' + std::to_string(b.rebuffer_events) + ' ' +
           std::to_string(b.flags) + ' ' +
           std::to_string(b.hp_gops_delivered) + ' ' +
           std::to_string(b.lp_gops_delivered);
  }
  const StreamSolverCounters& c = s.counters;
  out += "\ncontext = " + std::to_string(c.periods) + ' ' +
         std::to_string(c.resolves) + ' ' + std::to_string(c.pool_hits) +
         ' ' + std::to_string(c.pool_misses) + ' ' +
         std::to_string(c.columns_loaded) + ' ' +
         std::to_string(c.columns_reused) + ' ' +
         std::to_string(c.columns_repaired) + ' ' +
         std::to_string(c.columns_dropped) + ' ' +
         std::to_string(c.transmissions_dropped) + ' ' +
         std::to_string(c.pool_evicted) + ' ' +
         std::to_string(c.pool_neighbour_seeded);
  out += '\n';
}

/// Parses the cursor/delivered/blocked[/buffers]/context lines.  Structural
/// damage is a hard error; value-level damage (negative delivered bits,
/// blocked bits outside {0,1}, NaN/negative buffer occupancies, the
/// playing-without-started flags encoding, counter identities broken)
/// clears *semantic_ok.  Gop and link-count cross-checks are the caller's,
/// since only it knows the instance dimensions and the gop framing.
/// `with_buffers` selects the v4 layout (base format: version >= 4; the
/// delta log, which is never cross-version, always writes it).
[[nodiscard]] inline common::Status parse_cursor_block(LineReader& reader,
                                                       StreamCursor* s,
                                                       bool* semantic_ok,
                                                       bool with_buffers) {
  {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "cursor");
    if (!tokens.ok()) return tokens.status();
    const auto& t = tokens.value();
    long long next_gop = 0, num_gops = 0, invalidated = 0, exec_dropped = 0;
    if (t.size() != 8 || !parse_int_token(t[0], 0, kMaxGops, &next_gop) ||
        !parse_int_token(t[1], 0, kMaxGops, &num_gops) ||
        !parse_hex64_token(t[2], &s->session_fingerprint) ||
        !parse_double_token(t[3], /*allow_nan=*/false, &s->carryover_stall) ||
        !parse_double_token(t[4], /*allow_nan=*/false,
                            &s->blocked_fraction_sum) ||
        !parse_int_token(t[5], 0, kMaxGops, &invalidated) ||
        !parse_int_token(t[6], 0, 9'223'372'036'854'775'806LL,
                         &exec_dropped) ||
        !parse_hex64_token(t[7], &s->plan_digest)) {
      return parse_error(line_no,
                         "cursor: expected '<next_gop> <num_gops> "
                         "<fingerprint> <stall> <blocked_sum> <invalidated> "
                         "<dropped> <digest>'");
    }
    s->next_gop = static_cast<int>(next_gop);
    s->num_gops = static_cast<int>(num_gops);
    s->invalidated_periods = static_cast<int>(invalidated);
    s->exec_transmissions_dropped = static_cast<int>(exec_dropped);
    if (s->carryover_stall < 0.0 || s->blocked_fraction_sum < 0.0)
      *semantic_ok = false;
  }
  {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "delivered");
    if (!tokens.ok()) return tokens.status();
    const auto& t = tokens.value();
    long long n = 0;
    if (t.empty() || !parse_int_token(t[0], 0, kMaxLinks, &n) ||
        static_cast<long long>(t.size()) != 1 + n) {
      return parse_error(line_no, "delivered: expected '<n> <values...>'");
    }
    s->delivered_bits.clear();
    s->delivered_bits.reserve(static_cast<std::size_t>(n));
    for (long long i = 0; i < n; ++i) {
      double v = 0.0;
      if (!parse_double_token(t[1 + i], /*allow_nan=*/false, &v)) {
        return parse_error(line_no, "delivered: non-numeric value");
      }
      if (v < 0.0) *semantic_ok = false;
      s->delivered_bits.push_back(v);
    }
  }
  {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "blocked");
    if (!tokens.ok()) return tokens.status();
    const auto& t = tokens.value();
    long long n = 0;
    if (t.empty() || !parse_int_token(t[0], 0, kMaxLinks, &n) ||
        static_cast<long long>(t.size()) != 1 + n) {
      return parse_error(line_no, "blocked: expected '<n> <bits...>'");
    }
    s->blocked.clear();
    s->blocked.reserve(static_cast<std::size_t>(n));
    for (long long i = 0; i < n; ++i) {
      long long b = 0;
      if (!parse_int_token(t[1 + i], 0, 1'000'000, &b)) {
        return parse_error(line_no, "blocked: non-numeric value");
      }
      if (b > 1) *semantic_ok = false;
      s->blocked.push_back(static_cast<int>(b));
    }
  }
  s->buffers.clear();
  if (with_buffers) {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "buffers");
    if (!tokens.ok()) return tokens.status();
    const auto& t = tokens.value();
    long long n = 0;
    if (t.empty() || !parse_int_token(t[0], 0, kMaxLinks, &n) ||
        static_cast<long long>(t.size()) != 1 + 6 * n) {
      return parse_error(line_no,
                         "buffers: expected '<n> [<occ> <stall> <events> "
                         "<flags> <hp> <lp>]...'");
    }
    s->buffers.reserve(static_cast<std::size_t>(n));
    for (long long i = 0; i < n; ++i) {
      const std::string_view* f = &t[1 + 6 * i];
      StreamBufferState b;
      long long events = 0, flags = 0, hp = 0, lp = 0;
      // NaN occupancies parse structurally (a torn double is value damage,
      // not framing damage) and degrade semantically below.
      if (!parse_double_token(f[0], /*allow_nan=*/true,
                              &b.occupancy_seconds) ||
          !parse_double_token(f[1], /*allow_nan=*/true, &b.stall_seconds) ||
          !parse_int_token(f[2], 0, kMaxGops, &events) ||
          !parse_int_token(f[3], 0, 3, &flags) ||
          !parse_int_token(f[4], 0, kMaxGops, &hp) ||
          !parse_int_token(f[5], 0, kMaxGops, &lp)) {
        return parse_error(line_no, "buffers: malformed record");
      }
      b.rebuffer_events = static_cast<int>(events);
      b.flags = static_cast<int>(flags);
      b.hp_gops_delivered = static_cast<int>(hp);
      b.lp_gops_delivered = static_cast<int>(lp);
      if (!(b.occupancy_seconds >= 0.0) || !(b.stall_seconds >= 0.0) ||
          b.flags == 1) {
        *semantic_ok = false;  // NaN/negative state or playing-without-started
      }
      s->buffers.push_back(b);
    }
  }
  {
    const int line_no = reader.line();
    auto tokens = expect_kv(reader, "context");
    if (!tokens.ok()) return tokens.status();
    const auto& t = tokens.value();
    long long v[11] = {};
    bool ok = t.size() == 11;
    for (std::size_t i = 0; ok && i < 11; ++i) {
      ok = parse_int_token(t[i], 0, 9'223'372'036'854'775'806LL, &v[i]);
    }
    if (!ok) {
      return parse_error(line_no, "context: expected 11 non-negative counters");
    }
    StreamSolverCounters& c = s->counters;
    c.periods = static_cast<int>(v[0]);
    c.resolves = static_cast<int>(v[1]);
    c.pool_hits = static_cast<int>(v[2]);
    c.pool_misses = static_cast<int>(v[3]);
    c.columns_loaded = static_cast<int>(v[4]);
    c.columns_reused = static_cast<int>(v[5]);
    c.columns_repaired = static_cast<int>(v[6]);
    c.columns_dropped = static_cast<int>(v[7]);
    c.transmissions_dropped = static_cast<int>(v[8]);
    c.pool_evicted = v[9];
    c.pool_neighbour_seeded = v[10];
    // The accounting identities the scheduler maintains; a cursor that
    // breaks them cannot have come from a real session.
    if (c.pool_hits + c.pool_misses != c.resolves ||
        c.columns_reused > c.columns_loaded) {
      *semantic_ok = false;
    }
  }
  return common::Status::Ok();
}

/// Emits one per-GOP scoring record.
inline void append_gop_record(std::string& out, const StreamGopRecord& g) {
  out += "gop = " + std::to_string(g.gop) + ' ';
  append_double(out, g.demand_bits);
  out += ' ';
  append_double(out, g.schedule_slots);
  out += ' ';
  append_double(out, g.budget_slots);
  out += ' ';
  out += g.on_time ? '1' : '0';
  out += ' ';
  append_double(out, g.stall_slots);
  out += '\n';
}

/// Parses one `gop = ...` record.  Structural damage is a hard error;
/// negative measurements clear *semantic_ok.  The index-continuity check is
/// the caller's (the base format and the delta log number differently).
[[nodiscard]] inline common::Status parse_gop_record(LineReader& reader,
                                                     StreamGopRecord* g,
                                                     bool* semantic_ok) {
  const int line_no = reader.line();
  auto tokens = expect_kv(reader, "gop");
  if (!tokens.ok()) return tokens.status();
  const auto& t = tokens.value();
  long long gop = 0, on_time = 0;
  if (t.size() != 6 || !parse_int_token(t[0], 0, kMaxGops, &gop) ||
      !parse_double_token(t[1], /*allow_nan=*/false, &g->demand_bits) ||
      !parse_double_token(t[2], /*allow_nan=*/false, &g->schedule_slots) ||
      !parse_double_token(t[3], /*allow_nan=*/false, &g->budget_slots) ||
      !parse_int_token(t[4], 0, 1, &on_time) ||
      !parse_double_token(t[5], /*allow_nan=*/false, &g->stall_slots)) {
    return parse_error(line_no,
                       "gop: expected '<g> <demand> <slots> <budget> "
                       "<on_time> <stall>'");
  }
  g->gop = static_cast<int>(gop);
  g->on_time = on_time != 0;
  if (g->demand_bits < 0.0 || g->schedule_slots < 0.0 ||
      g->budget_slots < 0.0 || g->stall_slots < 0.0) {
    *semantic_ok = false;
  }
  return common::Status::Ok();
}

}  // namespace mmwave::core::detail
