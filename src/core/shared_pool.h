// Thread-safe facade over one core::PoolManager shared by many piconets.
//
// PoolManager itself is deliberately unsynchronized (one session loop at a
// time); a fleet of concurrent solves sharing its multi-instance fingerprint
// index needs a locking contract on top.  SharedPoolManager serializes every
// operation behind one mutex, which keeps the manager's determinism contract
// intact in the only form a concurrent caller can rely on:
//
//   * Each individual operation is atomic: seed() never observes a store()
//     half applied, eviction scans never race a cap change.
//   * For any fixed serialization order of operations the pool contents,
//     eviction victims and metrics are bit-identical to an unsynchronized
//     PoolManager fed the same sequence — the lock adds no decision points.
//   * Correctness is order-independent: warm-start candidates are
//     feasibility-repaired by the caller before the master sees them, so
//     WHICH columns a seed() returns can only change solve speed, never the
//     certified optimum (the warm-equivalence invariant).
//
// Cross-request snapshots (drain checkpoints, session adoption) go through
// export_checkpoint()/import_checkpoint() under the same lock.
#pragma once

#include <mutex>
#include <vector>

#include "core/pool_manager.h"

namespace mmwave::core {

class SharedPoolManager {
 public:
  explicit SharedPoolManager(PoolManagerOptions options = {})
      : manager_(std::move(options)) {}

  SharedPoolManager(const SharedPoolManager&) = delete;
  SharedPoolManager& operator=(const SharedPoolManager&) = delete;

  /// Warm-start candidates for `signature` (PoolManager::seed under lock).
  std::vector<sched::Schedule> seed(const InstanceSignature& signature) {
    std::lock_guard<std::mutex> lock(mu_);
    return manager_.seed(signature);
  }

  /// Ingests one finished solve (PoolManager::store under lock).
  void store(const InstanceSignature& signature, const net::Network& net,
             const CgResult& result) {
    std::lock_guard<std::mutex> lock(mu_);
    manager_.store(signature, net, result);
  }

  /// Feeds one solve's warm-hit rate / master seconds to the adaptive-cap
  /// controller (PoolManager::observe under lock).
  void observe(double warm_hit_rate, double master_seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    manager_.observe(warm_hit_rate, master_seconds);
  }

  void import_checkpoint(const CgCheckpoint& checkpoint) {
    std::lock_guard<std::mutex> lock(mu_);
    manager_.import_checkpoint(checkpoint);
  }

  CgCheckpoint export_checkpoint(const CgCheckpoint& base) const {
    std::lock_guard<std::mutex> lock(mu_);
    return manager_.export_checkpoint(base);
  }

  /// Copies (not references): the underlying storage may move under a
  /// concurrent store(), so callers get a stable snapshot.
  PoolManagerMetrics metrics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return manager_.metrics();
  }
  std::vector<PoolManager::Entry> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return manager_.entries();
  }
  int size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return manager_.size();
  }
  int effective_cap() const {
    std::lock_guard<std::mutex> lock(mu_);
    return manager_.effective_cap();
  }
  PoolManagerOptions options() const {
    std::lock_guard<std::mutex> lock(mu_);
    return manager_.options();
  }
  /// Starts a fresh accounting window; the pool itself stays warm.  Resets
  /// EVERY counter, the adaptive-cap ones (cap_grown/cap_shrunk) included —
  /// the window identities (pool_hits + pool_misses == resolves and friends)
  /// only hold when all counters reset together.
  void reset_metrics() {
    std::lock_guard<std::mutex> lock(mu_);
    manager_.reset_metrics();
  }

 private:
  mutable std::mutex mu_;
  PoolManager manager_;
};

}  // namespace mmwave::core
