#include "core/pricing_greedy.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "mmwave/power_control.h"

namespace mmwave::core {
namespace {

struct Candidate {
  int link;
  net::Layer layer;
  double lambda;
  double potential;  // lambda * u^max_feasible_solo
};

struct ChannelState {
  std::vector<int> links;
  std::vector<int> levels;  // ladder index per member
};

/// Gamma vector for a channel state.
std::vector<double> gammas_of(const net::Network& net,
                              const ChannelState& st) {
  std::vector<double> g(st.links.size());
  for (std::size_t i = 0; i < st.links.size(); ++i)
    g[i] = net.rate_level(st.levels[i]).sinr_threshold;
  return g;
}

/// Feasibility + powers for a channel state: minimum-power control by
/// default, everyone-at-Pmax when power adaptation is ablated away.
net::PowerControlResult state_powers(const net::Network& net, int k,
                                     const ChannelState& st,
                                     bool fixed_power) {
  if (!fixed_power) {
    return net::min_power_assignment(net, k, st.links, gammas_of(net, st));
  }
  net::PowerControlResult out;
  std::vector<double> powers(st.links.size(), net.params().p_max_watts);
  const std::vector<double> sinr =
      net::achieved_sinr(net, k, st.links, powers);
  const std::vector<double> gammas = gammas_of(net, st);
  for (std::size_t i = 0; i < st.links.size(); ++i) {
    if (sinr[i] < gammas[i] * (1.0 - 1e-9)) return out;
  }
  out.feasible = true;
  out.powers = std::move(powers);
  return out;
}

/// Builds one packing given a rotated candidate order; returns the schedule
/// and its Psi.
std::pair<sched::Schedule, double> pack(
    const net::Network& net, const std::vector<Candidate>& order,
    const std::vector<double>& lambda_hp,
    const std::vector<double>& lambda_lp, bool fixed_power) {
  const int K = net.num_channels();
  std::vector<ChannelState> channels(K);
  std::set<int> busy_nodes;
  std::set<int> used_links;

  auto try_admit = [&](const Candidate& cand) {
    const net::Link& link = net.link(cand.link);
    if (busy_nodes.count(link.tx_node) || busy_nodes.count(link.rx_node))
      return false;
    // Channels in descending direct-gain order for this link.
    std::vector<int> ks(K);
    for (int k = 0; k < K; ++k) ks[k] = k;
    std::sort(ks.begin(), ks.end(), [&](int a, int b) {
      return net.direct_gain(cand.link, a) > net.direct_gain(cand.link, b);
    });
    for (int k : ks) {
      ChannelState& st = channels[k];
      // Highest level first: more value per slot.
      for (int q = net.num_rate_levels() - 1; q >= 0; --q) {
        ChannelState trial = st;
        trial.links.push_back(cand.link);
        trial.levels.push_back(q);
        const net::PowerControlResult pc =
            state_powers(net, k, trial, fixed_power);
        if (!pc.feasible) continue;
        st = std::move(trial);
        busy_nodes.insert(link.tx_node);
        busy_nodes.insert(link.rx_node);
        used_links.insert(cand.link);
        return true;
      }
    }
    return false;
  };

  std::vector<const Candidate*> admitted_order;
  for (const Candidate& cand : order) {
    if (used_links.count(cand.link)) continue;  // one layer per link
    if (try_admit(cand)) admitted_order.push_back(&cand);
  }

  // Upgrade pass: bump each member's level while the set stays feasible.
  for (int k = 0; k < K; ++k) {
    ChannelState& st = channels[k];
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t i = 0; i < st.links.size(); ++i) {
        if (st.levels[i] + 1 >= net.num_rate_levels()) continue;
        ChannelState trial = st;
        trial.levels[i] += 1;
        const net::PowerControlResult pc =
            state_powers(net, k, trial, fixed_power);
        if (pc.feasible) {
          st = std::move(trial);
          improved = true;
        }
      }
    }
  }

  // Assemble the schedule with minimal powers.
  sched::Schedule schedule;
  double psi = 0.0;
  // Map link -> layer chosen (from the admitted candidate).
  std::vector<net::Layer> layer_of(net.num_links(), net::Layer::Hp);
  for (const Candidate* c : admitted_order) layer_of[c->link] = c->layer;

  for (int k = 0; k < net.num_channels(); ++k) {
    const ChannelState& st = channels[k];
    if (st.links.empty()) continue;
    const net::PowerControlResult pc = state_powers(net, k, st, fixed_power);
    if (!pc.feasible) continue;  // should not happen; drop defensively
    for (std::size_t i = 0; i < st.links.size(); ++i) {
      const int l = st.links[i];
      const net::Layer layer = layer_of[l];
      schedule.add({l, layer, st.levels[i], k, pc.powers[i]});
      const double lambda =
          layer == net::Layer::Hp ? lambda_hp[l] : lambda_lp[l];
      psi += lambda * net.bits_per_slot(st.levels[i]);
    }
  }
  return {std::move(schedule), psi};
}

}  // namespace

PricingResult solve_pricing_greedy(const net::Network& net,
                                   const std::vector<double>& lambda_hp,
                                   const std::vector<double>& lambda_lp,
                                   const GreedyPricingOptions& options) {
  PricingResult out;
  out.psi_upper_bound = std::numeric_limits<double>::infinity();
  out.exact = false;

  // Candidate pool: every (link, layer) with a positive dual.
  std::vector<Candidate> pool;
  for (int l = 0; l < net.num_links(); ++l) {
    for (int layer = 0; layer < 2; ++layer) {
      const double lambda = layer == 0 ? lambda_hp[l] : lambda_lp[l];
      if (lambda <= 1e-15) continue;
      int best_q = -1;
      for (int k = 0; k < net.num_channels(); ++k)
        best_q = std::max(best_q, net.best_solo_level(l, k));
      if (best_q < 0) continue;
      pool.push_back({l, static_cast<net::Layer>(layer), lambda,
                      lambda * net.bits_per_slot(best_q)});
    }
  }
  if (pool.empty()) return out;

  std::sort(pool.begin(), pool.end(), [](const Candidate& a,
                                         const Candidate& b) {
    return a.potential > b.potential;
  });

  const int restarts =
      std::max(1, std::min<int>(options.restarts,
                                static_cast<int>(pool.size())));
  double best_psi = -1.0;
  sched::Schedule best_schedule;
  for (int r = 0; r < restarts; ++r) {
    // Rotation r: start from the r-th candidate, keep the rest in order.
    std::vector<Candidate> order;
    order.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i)
      order.push_back(pool[(i + r) % pool.size()]);
    auto [schedule, psi] =
        pack(net, order, lambda_hp, lambda_lp, options.fixed_power);
    if (psi > best_psi) {
      best_psi = psi;
      best_schedule = std::move(schedule);
    }
    if (!options.fixed_power) {
      // Fixed-power packings are feasible adaptive schedules too, and the
      // two greedy admission orders explore different corners — keep the
      // better of both so disabling power adaptation can never "win" by
      // heuristic luck.
      auto [fp_schedule, fp_psi] =
          pack(net, order, lambda_hp, lambda_lp, /*fixed_power=*/true);
      if (fp_psi > best_psi) {
        best_psi = fp_psi;
        best_schedule = std::move(fp_schedule);
      }
    }
  }

  out.schedule = std::move(best_schedule);
  out.psi = best_psi;
  out.found = out.psi > 1.0 + 1e-7;
  return out;
}

}  // namespace mmwave::core
