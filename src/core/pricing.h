// Shared pricing-subproblem types.
//
// The pricing step hunts for the feasible schedule s* maximizing
//   Psi(s) = sum_l lambda_hp(l) r^s_hp(l) + lambda_lp(l) r^s_lp(l)
// (rates in bits/slot).  The most negative reduced cost is Phi = 1 - Psi*.
// A schedule improves the master iff Psi > 1.
#pragma once

#include <vector>

#include "common/status.h"
#include "sched/schedule.h"

namespace mmwave::core {

struct PricingResult {
  bool found = false;          ///< a schedule with Psi > 1 + eps exists
  sched::Schedule schedule;    ///< the best schedule found
  double psi = 0.0;            ///< its Psi value
  /// Valid upper bound on Psi over ALL feasible schedules.  Equals `psi`
  /// when the pricing was solved to optimality; +inf when the solver can
  /// certify nothing (e.g. the greedy heuristic).
  double psi_upper_bound = 0.0;
  bool exact = false;          ///< psi_upper_bound == optimal Psi
  /// Structured failure detail: Ok for a clean (heuristic or exact) solve,
  /// kLimitHit for a truncated MILP, kNumericalBreakdown when the oracle
  /// itself failed.  A non-ok status can still carry a usable schedule and
  /// a valid psi_upper_bound.
  common::Status status;
};

}  // namespace mmwave::core
