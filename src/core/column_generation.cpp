#include "core/column_generation.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>

#include "check/lp_certificate.h"
#include "check/schedule_verifier.h"
#include "common/log.h"
#include "mmwave/power_control.h"

namespace mmwave::core {

double theorem1_lower_bound(const std::vector<double>& lambda_hp,
                            const std::vector<double>& lambda_lp,
                            const std::vector<video::LinkDemand>& demands,
                            double phi) {
  // LB = (Lambda_hp . D_hp + Lambda_lp . D_lp) / (1 - Phi), Phi <= 0.
  double dual_value = 0.0;
  for (std::size_t l = 0; l < demands.size(); ++l) {
    dual_value +=
        lambda_hp[l] * demands[l].hp_bits + lambda_lp[l] * demands[l].lp_bits;
  }
  const double denom = 1.0 - std::min(phi, 0.0);
  return dual_value / denom;
}

std::vector<sched::Schedule> tdma_initial_columns(const net::Network& net) {
  std::vector<sched::Schedule> columns;
  for (int l = 0; l < net.num_links(); ++l) {
    // Highest solo throughput across channels; ties to higher gain.
    int best_k = -1, best_q = -1;
    double best_gain = -1.0;
    for (int k = 0; k < net.num_channels(); ++k) {
      const int q = net.best_solo_level(l, k);
      if (q > best_q ||
          (q == best_q && q >= 0 && net.direct_gain(l, k) > best_gain)) {
        best_q = q;
        best_k = k;
        best_gain = net.direct_gain(l, k);
      }
    }
    if (best_q < 0) {
      MMWAVE_LOG_DEBUG << "link " << l
                       << " cannot reach any rate level alone; its demand "
                          "cannot be scheduled";
      continue;
    }
    // Minimal solo power for the chosen level.
    const double gamma = net.rate_level(best_q).sinr_threshold;
    const double power = std::min(net.params().p_max_watts,
                                  gamma * net.noise(l) /
                                      net.direct_gain(l, best_k));
    for (int layer = 0; layer < 2; ++layer) {
      sched::Schedule s;
      s.add({l, static_cast<net::Layer>(layer), best_q, best_k, power});
      columns.push_back(std::move(s));
    }
  }
  return columns;
}

CgResult solve_column_generation(const net::Network& net,
                                 const std::vector<video::LinkDemand>& demands,
                                 const CgOptions& options) {
  CgResult result;

  // A link that cannot reach even the lowest rate level alone on any
  // channel (deep blockage, hopeless gains) can never be served: rather
  // than making the covering LP infeasible for everyone, exclude its
  // demand and report it so the PNC can defer that session.
  std::vector<video::LinkDemand> effective = demands;
  for (int l = 0; l < net.num_links(); ++l) {
    if (effective[l].total() <= 0.0) continue;
    int best_q = -1;
    for (int k = 0; k < net.num_channels(); ++k)
      best_q = std::max(best_q, net.best_solo_level(l, k));
    if (best_q < 0) {
      result.unserved_links.push_back(l);
      effective[l] = {};
    }
  }

  // Independent certificate checkers (src/check).  They share no code with
  // the pricing solvers: a wrong answer in the simplex or the MILP cannot
  // also be wrong here the same way.
  result.verification.enabled = options.verify;
  check::VerifyOptions vopts;
  vopts.allow_layer_split = options.exact.allow_layer_split;
  const check::ScheduleVerifier referee(net, vopts);
  auto verify_column = [&](const sched::Schedule& s, const std::string& origin) {
    if (!options.verify) return;
    ++result.verification.columns_verified;
    const check::VerifyReport rep = referee.verify(s);
    if (!rep.ok()) {
      result.verification.errors.push_back(origin + ": " + rep.to_string());
      MMWAVE_LOG_ERROR << "schedule verification failed (" << origin
                       << "): " << rep.to_string();
    }
  };
  auto certify_master = [&](const MasterCertificate& cert,
                            const std::string& where) {
    if (!options.verify) return;
    ++result.verification.lp_certificates;
    const check::LpCertReport rep =
        check::check_lp_certificate(cert.model, cert.solution);
    if (!rep.ok()) {
      result.verification.errors.push_back("master LP certificate (" + where +
                                           "): " + rep.to_string());
      MMWAVE_LOG_ERROR << "LP certificate failed (" << where
                       << "): " << rep.to_string();
    }
  };

  MasterProblem master(net, effective);
  master.set_warm_start(options.warm_start_master);
  for (const sched::Schedule& s : tdma_initial_columns(net)) {
    verify_column(s, "TDMA initial column");
    master.add_column(s);
  }

  // The pricing-MILP skeleton (constraints, big-M terms, conflict cuts)
  // depends only on the network, so it is built once and reused with a
  // fresh objective across every exact-pricing call of this run.
  PricingMilpCache pricing_cache;

  // Per-phase wall-clock instrumentation.
  CgProfile& prof = result.profile;
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  double last_master_seconds = 0.0;
  const auto timed_master_solve = [&](MasterCertificate* cert_dst) {
    const auto t0 = Clock::now();
    MasterSolution mp = master.solve(cert_dst);
    last_master_seconds = seconds_since(t0);
    prof.master_seconds += last_master_seconds;
    prof.master_pivots += mp.simplex_iterations;
    ++prof.master_solves;
    if (mp.warm_started) ++prof.master_warm_hits;
    return mp;
  };
  const auto timed_greedy = [&](const std::vector<double>& lhp,
                                const std::vector<double>& llp) {
    const auto t0 = Clock::now();
    PricingResult r = solve_pricing_greedy(net, lhp, llp, options.greedy);
    prof.greedy_seconds += seconds_since(t0);
    ++prof.greedy_calls;
    return r;
  };
  const auto timed_milp = [&](const std::vector<double>& lhp,
                              const std::vector<double>& llp,
                              const MilpPricingOptions& exact,
                              const sched::Schedule* warm) {
    const auto t0 = Clock::now();
    PricingResult r =
        solve_pricing_milp(net, lhp, llp, exact, warm, &pricing_cache);
    prof.milp_seconds += seconds_since(t0);
    ++prof.milp_calls;
    return r;
  };

  double best_lb = std::nan("");
  MasterCertificate cert;
  MasterCertificate* cert_out = options.verify ? &cert : nullptr;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const MasterSolution mp = timed_master_solve(cert_out);
    if (!mp.ok) {
      MMWAVE_LOG_ERROR << "master LP failed at iteration " << iter;
      break;
    }
    certify_master(cert, "iteration " + std::to_string(iter));
    const auto pricing_t0 = Clock::now();

    // ---- Pricing --------------------------------------------------------
    PricingResult pricing;
    bool exact_used = false;
    if (options.pricing == PricingMode::ExactAlways) {
      MilpPricingOptions exact = options.exact;
      exact.target_psi = std::nan("");  // need true Phi each iteration
      const PricingResult greedy = timed_greedy(mp.lambda_hp, mp.lambda_lp);
      pricing = timed_milp(mp.lambda_hp, mp.lambda_lp, exact,
                           greedy.found ? &greedy.schedule : nullptr);
      exact_used = true;
    } else {
      pricing = timed_greedy(mp.lambda_hp, mp.lambda_lp);
      const bool heuristic_failed =
          !pricing.found || master.contains(pricing.schedule);
      if (heuristic_failed && options.pricing == PricingMode::HeuristicThenExact) {
        MilpPricingOptions exact = options.exact;
        if (options.exact_early_stop) {
          // Any column comfortably below zero reduced cost will do.
          exact.target_psi = 1.0 + 1e-4;
        }
        pricing = timed_milp(mp.lambda_hp, mp.lambda_lp, exact,
                             pricing.found ? &pricing.schedule : nullptr);
        exact_used = true;
      }
    }

    const double phi = 1.0 - pricing.psi;
    // Valid lower bound on the true most negative reduced cost.
    const double phi_lb = 1.0 - pricing.psi_upper_bound;

    IterationStat stat;
    stat.iteration = iter;
    stat.master_objective = mp.objective_slots;
    stat.phi = phi;
    stat.num_columns = static_cast<int>(master.num_columns());
    stat.exact_pricing = exact_used && pricing.exact;
    stat.master_seconds = last_master_seconds;
    stat.pricing_seconds = seconds_since(pricing_t0);
    stat.master_pivots = mp.simplex_iterations;
    stat.master_warm_started = mp.warm_started;
    if (std::isfinite(phi_lb)) {
      stat.lower_bound =
          theorem1_lower_bound(mp.lambda_hp, mp.lambda_lp, effective, phi_lb);
      if (std::isnan(best_lb) || stat.lower_bound > best_lb)
        best_lb = stat.lower_bound;
    }
    stat.best_lower_bound = best_lb;
    // Theorem-1 invariant: any valid lower bound must sit below the MP
    // objective (an upper bound on the P1 optimum) at every iteration.
    if (options.verify && std::isfinite(stat.lower_bound)) {
      ++result.verification.bound_checks;
      const double slack = 1e-6 * (1.0 + std::abs(mp.objective_slots));
      if (stat.lower_bound > mp.objective_slots + slack) {
        std::ostringstream ss;
        ss << "Theorem-1 invariant violated at iteration " << iter
           << ": LB " << stat.lower_bound << " > MP objective "
           << mp.objective_slots;
        result.verification.errors.push_back(ss.str());
        MMWAVE_LOG_ERROR << ss.str();
      }
    }
    result.history.push_back(stat);
    result.total_slots = mp.objective_slots;
    result.iterations = iter + 1;

    // ---- Termination ----------------------------------------------------
    const bool no_improving_column = phi >= -options.eps;
    if (no_improving_column) {
      // Optimal iff the pricer was exact; in HeuristicOnly mode this is a
      // heuristic fixed point.
      result.converged = exact_used && pricing.exact;
      break;
    }
    if (options.gap_tolerance > 0.0 && !std::isnan(best_lb) &&
        mp.objective_slots > 0.0 &&
        (mp.objective_slots - best_lb) / mp.objective_slots <=
            options.gap_tolerance) {
      result.converged = true;
      break;
    }

    verify_column(pricing.schedule,
                  "priced column, iteration " + std::to_string(iter));
    if (!master.add_column(pricing.schedule)) {
      // The pricer regenerated an existing column claiming negative reduced
      // cost — numerical stall; stop rather than loop.
      MMWAVE_LOG_WARN << "column generation stalled on a duplicate column "
                         "at iteration "
                      << iter;
      break;
    }
  }

  // ---- Final solution extraction ---------------------------------------
  const MasterSolution final_mp = timed_master_solve(cert_out);
  if (final_mp.ok) {
    certify_master(cert, "final extraction");
    result.total_slots = final_mp.objective_slots;
    for (std::size_t s = 0; s < master.num_columns(); ++s) {
      if (final_mp.tau[s] > 1e-9) {
        result.timeline.push_back(
            {master.columns()[s], final_mp.tau[s]});
      }
    }
  }
  result.lower_bound = best_lb;

  // The emitted plan itself: every schedule re-proved feasible and the
  // covering requirement sum_s tau^s r_l^s >= d_l re-checked per layer.
  if (options.verify && final_mp.ok) {
    const check::VerifyReport rep =
        referee.verify_timeline(result.timeline, effective);
    if (!rep.ok()) {
      result.verification.errors.push_back("final timeline: " +
                                           rep.to_string());
      MMWAVE_LOG_ERROR << "timeline verification failed: " << rep.to_string();
    }
  }
  return result;
}

}  // namespace mmwave::core
