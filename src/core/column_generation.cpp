#include "core/column_generation.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <sstream>
#include <string>

#include "check/instance_validator.h"
#include "check/lp_certificate.h"
#include "check/schedule_verifier.h"
#include "common/fault_injection.h"
#include "common/log.h"
#include "common/rng.h"
#include "mmwave/power_control.h"

namespace mmwave::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Wall-clock budget of one solve.  The fault site lets tests script "the
/// deadline expires mid-iteration" deterministically; once exhausted (for
/// real or injected) it stays exhausted.
class DeadlineTracker {
 public:
  explicit DeadlineTracker(double budget_sec)
      : budget_(budget_sec), start_(Clock::now()) {}

  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  /// +inf when no deadline was requested.
  double remaining() const {
    return budget_ > 0.0 ? budget_ - elapsed() : kInf;
  }
  bool enabled() const { return budget_ > 0.0; }
  bool exhausted() {
    if (!forced_ && common::fault_fires(common::faults::kCgDeadline))
      forced_ = true;
    return forced_ || (budget_ > 0.0 && remaining() <= 0.0);
  }

 private:
  using Clock = std::chrono::steady_clock;
  double budget_;
  Clock::time_point start_;
  bool forced_ = false;
};

void set_degraded(CgResult& result, CgStopReason reason,
                  common::Status status) {
  result.degraded = true;
  result.stop_reason = reason;
  result.status = std::move(status);
  MMWAVE_LOG_WARN << "column generation degraded (" << to_string(reason)
                  << "): " << result.status.to_string();
}

CgResult solve_cg_impl(const net::Network& net,
                       const std::vector<video::LinkDemand>& demands,
                       const CgOptions& options);

}  // namespace

const char* to_string(CgStopReason reason) {
  switch (reason) {
    case CgStopReason::kConverged: return "converged";
    case CgStopReason::kHeuristicFixedPoint: return "heuristic-fixed-point";
    case CgStopReason::kIterationLimit: return "iteration-limit";
    case CgStopReason::kDeadline: return "deadline";
    case CgStopReason::kStalled: return "stalled";
    case CgStopReason::kMasterFailure: return "master-failure";
    case CgStopReason::kPricingFailure: return "pricing-failure";
    case CgStopReason::kInvalidInput: return "invalid-input";
    case CgStopReason::kInternalError: return "internal-error";
  }
  return "unknown";
}

double theorem1_lower_bound(const std::vector<double>& lambda_hp,
                            const std::vector<double>& lambda_lp,
                            const std::vector<video::LinkDemand>& demands,
                            double phi) {
  // LB = (Lambda_hp . D_hp + Lambda_lp . D_lp) / (1 - Phi), Phi <= 0.
  // A positive phi is clamped to 0 (conservative: it can only shrink the
  // bound), which also keeps the denominator away from the Phi -> 1 pole.
  double dual_value = 0.0;
  for (std::size_t l = 0; l < demands.size(); ++l) {
    dual_value +=
        lambda_hp[l] * demands[l].hp_bits + lambda_lp[l] * demands[l].lp_bits;
  }
  const double denom = 1.0 - std::min(phi, 0.0);  // NaN phi stays NaN
  const double lb = dual_value / denom;
  // Never emit +/-inf or NaN into a best-bound update: corrupted inputs
  // (NaN duals/demands, NaN phi, non-positive denominator) degrade to the
  // trivially valid -inf, which every caller treats as "no bound".
  if (!std::isfinite(dual_value) || std::isnan(denom) || denom < 1.0 ||
      !std::isfinite(lb)) {
    return -kInf;
  }
  return lb;
}

std::vector<sched::Schedule> tdma_initial_columns(const net::Network& net) {
  std::vector<sched::Schedule> columns;
  for (int l = 0; l < net.num_links(); ++l) {
    // Highest solo throughput across channels; ties to higher gain.
    int best_k = -1, best_q = -1;
    double best_gain = -1.0;
    for (int k = 0; k < net.num_channels(); ++k) {
      const int q = net.best_solo_level(l, k);
      if (q > best_q ||
          (q == best_q && q >= 0 && net.direct_gain(l, k) > best_gain)) {
        best_q = q;
        best_k = k;
        best_gain = net.direct_gain(l, k);
      }
    }
    if (best_q < 0) {
      MMWAVE_LOG_DEBUG << "link " << l
                       << " cannot reach any rate level alone; its demand "
                          "cannot be scheduled";
      continue;
    }
    // Minimal solo power for the chosen level.
    const double gamma = net.rate_level(best_q).sinr_threshold;
    const double power = std::min(net.params().p_max_watts,
                                  gamma * net.noise(l) /
                                      net.direct_gain(l, best_k));
    for (int layer = 0; layer < 2; ++layer) {
      sched::Schedule s;
      s.add({l, static_cast<net::Layer>(layer), best_q, best_k, power});
      columns.push_back(std::move(s));
    }
  }
  return columns;
}

CgResult solve_column_generation(const net::Network& net,
                                 const std::vector<video::LinkDemand>& demands,
                                 const CgOptions& options) {
  // The anytime contract: solve() never throws.  Anything escaping the
  // implementation is converted into a degraded result so a scheduling
  // service wrapping this call cannot be taken down by one bad instance.
  try {
    return solve_cg_impl(net, demands, options);
  } catch (const std::exception& e) {
    CgResult result;
    set_degraded(result, CgStopReason::kInternalError,
                 common::Status::Error(common::ErrorCode::kInternal,
                                       std::string("unhandled exception: ") +
                                           e.what()));
    return result;
  } catch (...) {
    CgResult result;
    set_degraded(result, CgStopReason::kInternalError,
                 common::Status::Error(common::ErrorCode::kInternal,
                                       "unhandled non-standard exception"));
    return result;
  }
}

namespace {

CgResult solve_cg_impl(const net::Network& net,
                       const std::vector<video::LinkDemand>& demands,
                       const CgOptions& options) {
  CgResult result;
  DeadlineTracker deadline(options.deadline_sec);

  // Reject malformed instances (NaN gains, negative demands, size
  // mismatches) before any solver arithmetic touches them.
  if (options.validate_input) {
    const check::InstanceReport report = check::validate_instance(net, demands);
    if (!report.ok()) {
      set_degraded(result, CgStopReason::kInvalidInput,
                   common::Status::Error(common::ErrorCode::kInvalidInput,
                                         report.to_string()));
      result.solve_seconds = deadline.elapsed();
      return result;
    }
  }

  // A link that cannot reach even the lowest rate level alone on any
  // channel (deep blockage, hopeless gains) can never be served: rather
  // than making the covering LP infeasible for everyone, exclude its
  // demand and report it so the PNC can defer that session.
  std::vector<video::LinkDemand> effective = demands;
  for (int l = 0; l < net.num_links(); ++l) {
    if (effective[l].total() <= 0.0) continue;
    int best_q = -1;
    for (int k = 0; k < net.num_channels(); ++k)
      best_q = std::max(best_q, net.best_solo_level(l, k));
    if (best_q < 0) {
      result.unserved_links.push_back(l);
      effective[l] = {};
    }
  }

  // Independent certificate checkers (src/check).  They share no code with
  // the pricing solvers: a wrong answer in the simplex or the MILP cannot
  // also be wrong here the same way.
  result.verification.enabled = options.verify;
  check::VerifyOptions vopts;
  vopts.allow_layer_split = options.exact.allow_layer_split;
  const check::ScheduleVerifier referee(net, vopts);
  auto verify_column = [&](const sched::Schedule& s, const std::string& origin) {
    if (!options.verify) return;
    ++result.verification.columns_verified;
    const check::VerifyReport rep = referee.verify(s);
    if (!rep.ok()) {
      result.verification.errors.push_back(origin + ": " + rep.to_string());
      MMWAVE_LOG_ERROR << "schedule verification failed (" << origin
                       << "): " << rep.to_string();
    }
  };
  auto certify_master = [&](const MasterCertificate& cert,
                            const std::string& where) {
    if (!options.verify) return;
    ++result.verification.lp_certificates;
    const check::LpCertReport rep =
        check::check_lp_certificate(cert.model, cert.solution);
    if (!rep.ok()) {
      result.verification.errors.push_back("master LP certificate (" + where +
                                           "): " + rep.to_string());
      MMWAVE_LOG_ERROR << "LP certificate failed (" << where
                       << "): " << rep.to_string();
    }
  };

  MasterProblem master(net, effective);
  master.set_warm_start(options.warm_start_master);
  {
    lp::LpOptions lp_opts;
    lp_opts.pricing = options.lp_pricing;
    lp_opts.dense_basis = options.lp_dense_basis;
    master.set_lp_options(lp_opts);
    result.profile.lp_pricing_rule = lp::to_string(options.lp_pricing);
  }
  for (const sched::Schedule& s : tdma_initial_columns(net)) {
    verify_column(s, "TDMA initial column");
    master.add_column(s);
  }

  // Warm pool (checkpoint restore / cross-period reuse).  Every column is
  // re-validated against THIS instance before entry: a stale or corrupted
  // pool can cost a rejected column, never a wrong master.
  for (const sched::Schedule& s : options.warm_pool) {
    if (s.empty()) {
      ++result.profile.warm_pool_rejected;
      continue;
    }
    const sched::ValidationResult v = sched::validate_schedule(
        net, s, /*sinr_slack=*/1e-6, options.exact.allow_layer_split);
    if (!v.ok) {
      ++result.profile.warm_pool_rejected;
      MMWAVE_LOG_WARN << "warm-pool column rejected: " << v.reason;
      continue;
    }
    verify_column(s, "warm-pool column");
    if (master.add_column(s)) {
      ++result.profile.warm_pool_columns;
    } else {
      ++result.profile.warm_pool_rejected;  // duplicate of TDMA/pool column
    }
  }

  // The pricing-MILP skeleton (constraints, big-M terms, conflict cuts)
  // depends only on the network, so it is built once and reused with a
  // fresh objective across every exact-pricing call of this run.
  PricingMilpCache pricing_cache;

  // Per-phase wall-clock instrumentation.
  CgProfile& prof = result.profile;
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  double last_master_seconds = 0.0;
  const auto timed_master_solve = [&](MasterCertificate* cert_dst) {
    const auto t0 = Clock::now();
    MasterSolution mp = master.solve(cert_dst);
    last_master_seconds = seconds_since(t0);
    prof.master_seconds += last_master_seconds;
    prof.master_pivots += mp.simplex_iterations;
    prof.lp_ftran_calls += mp.lp_stats.ftran_calls;
    prof.lp_btran_calls += mp.lp_stats.btran_calls;
    prof.lp_refactorizations += mp.lp_stats.refactorizations;
    ++prof.master_solves;
    if (mp.warm_started) ++prof.master_warm_hits;
    return mp;
  };
  const auto timed_greedy = [&](const std::vector<double>& lhp,
                                const std::vector<double>& llp) {
    const auto t0 = Clock::now();
    PricingResult r = solve_pricing_greedy(net, lhp, llp, options.greedy);
    prof.greedy_seconds += seconds_since(t0);
    ++prof.greedy_calls;
    return r;
  };
  const auto timed_milp = [&](const std::vector<double>& lhp,
                              const std::vector<double>& llp,
                              const MilpPricingOptions& exact,
                              const sched::Schedule* warm) {
    const auto t0 = Clock::now();
    PricingResult r =
        solve_pricing_milp(net, lhp, llp, exact, warm, &pricing_cache);
    prof.milp_seconds += seconds_since(t0);
    ++prof.milp_calls;
    return r;
  };

  /// Per-call exact-pricing options under the deadline: the MILP budget
  /// shrinks with the remaining wall clock so one call can never blow
  /// through the deadline.  `full` disables the early-stop target
  /// (escalated / certification calls).
  const auto budgeted_exact = [&](bool full) {
    MilpPricingOptions exact = options.exact;
    if (!full && options.exact_early_stop) {
      // Any column comfortably below zero reduced cost will do.
      exact.target_psi = 1.0 + 1e-4;
    } else {
      exact.target_psi = std::nan("");
    }
    const double remaining = deadline.remaining();
    if (std::isfinite(remaining)) {
      double budget =
          std::min(exact.milp.time_limit_sec,
                   std::max(options.milp_budget_fraction * remaining,
                            options.min_milp_budget_sec));
      budget = std::min(budget, std::max(remaining, 0.0));
      exact.milp.time_limit_sec = budget;
      // A real deadline makes the budget hard: push it into every node LP
      // so a single pricing call can never overrun the wall clock.
      exact.milp.hard_time_limit = true;
    }
    return exact;
  };

  double best_lb = std::nan("");
  MasterCertificate cert;
  MasterCertificate* cert_out = options.verify ? &cert : nullptr;

  // --- Anytime/robustness state ------------------------------------------
  // Escalation ladder: 0 = normal pricing (greedy first, early-stop exact),
  // 1 = full-budget exact MILP, 2 = full exact under perturbed duals.
  int escalation = 0;
  bool perturbation_spent = false;
  common::Rng perturb_rng(options.perturbation_seed);
  // Stall window: consecutive iterations without relative LB/UB progress.
  int no_progress_iters = 0;
  double prev_ub = kInf;
  double prev_lb = -kInf;
  // Incumbent snapshot: tau and duals of the last master solve that
  // succeeded, so a later breakdown still returns the best schedule seen
  // (and a checkpoint can still record usable multipliers).
  std::vector<double> incumbent_tau;
  std::vector<double> incumbent_lambda_hp;
  std::vector<double> incumbent_lambda_lp;
  double incumbent_objective = std::nan("");

  bool stopped = false;  // a stop_reason was decided inside the loop
  for (int iter = 0; iter < options.max_iterations && !stopped; ++iter) {
    if (deadline.exhausted()) {
      set_degraded(result, CgStopReason::kDeadline,
                   common::Status::Error(
                       common::ErrorCode::kDeadlineExceeded,
                       "deadline exhausted before iteration " +
                           std::to_string(iter)));
      break;
    }

    const MasterSolution mp = timed_master_solve(cert_out);
    if (!mp.ok) {
      set_degraded(result, CgStopReason::kMasterFailure,
                   common::Status::Error(
                       common::ErrorCode::kNumericalBreakdown,
                       "master LP failed at iteration " +
                           std::to_string(iter) + " (" +
                           mp.status.to_string() + ")"));
      break;
    }
    certify_master(cert, "iteration " + std::to_string(iter));
    incumbent_tau = mp.tau;
    incumbent_lambda_hp = mp.lambda_hp;
    incumbent_lambda_lp = mp.lambda_lp;
    incumbent_objective = mp.objective_slots;
    const auto pricing_t0 = Clock::now();

    // ---- Pricing --------------------------------------------------------
    // The duals the pricer sees: on the last-resort retry they are
    // multiplicatively perturbed to break a numerical cycle; any column
    // found is only accepted if it prices negative under the TRUE duals.
    const bool perturbed = escalation >= 2;
    std::vector<double> lhp = mp.lambda_hp;
    std::vector<double> llp = mp.lambda_lp;
    if (perturbed) {
      perturbation_spent = true;
      for (double& v : lhp)
        v = std::max(0.0, v * (1.0 + options.dual_perturbation *
                                         (perturb_rng.uniform() - 0.5)));
      for (double& v : llp)
        v = std::max(0.0, v * (1.0 + options.dual_perturbation *
                                         (perturb_rng.uniform() - 0.5)));
      MMWAVE_LOG_WARN << "iteration " << iter
                      << ": repricing under perturbed duals (stall escape)";
    }

    PricingResult pricing;
    bool exact_used = false;
    if (options.pricing == PricingMode::ExactAlways) {
      const PricingResult greedy = timed_greedy(lhp, llp);
      pricing = timed_milp(lhp, llp, budgeted_exact(/*full=*/true),
                           greedy.found ? &greedy.schedule : nullptr);
      exact_used = true;
    } else {
      pricing = timed_greedy(lhp, llp);
      const bool heuristic_failed =
          !pricing.found || master.contains(pricing.schedule);
      if ((heuristic_failed || escalation >= 1) &&
          options.pricing == PricingMode::HeuristicThenExact) {
        pricing = timed_milp(lhp, llp, budgeted_exact(escalation >= 1),
                             pricing.found ? &pricing.schedule : nullptr);
        exact_used = true;
      }
    }

    // Reduced cost of the candidate under the true duals (equals
    // 1 - pricing.psi except on perturbed retries).
    const double true_rc =
        perturbed ? master.reduced_cost(pricing.schedule, mp.lambda_hp,
                                        mp.lambda_lp)
                  : 1.0 - pricing.psi;
    const double phi = 1.0 - pricing.psi;
    // Valid lower bound on the true most negative reduced cost.  A
    // perturbed repricing certifies nothing about the true duals.
    const double phi_lb = perturbed ? -kInf : 1.0 - pricing.psi_upper_bound;

    IterationStat stat;
    stat.iteration = iter;
    stat.master_objective = mp.objective_slots;
    stat.phi = phi;
    stat.num_columns = static_cast<int>(master.num_columns());
    stat.exact_pricing = exact_used && pricing.exact && !perturbed;
    stat.master_seconds = last_master_seconds;
    stat.pricing_seconds = seconds_since(pricing_t0);
    stat.master_pivots = mp.simplex_iterations;
    stat.master_warm_started = mp.warm_started;
    if (std::isfinite(phi_lb)) {
      const double lb =
          theorem1_lower_bound(mp.lambda_hp, mp.lambda_lp, effective, phi_lb);
      if (std::isfinite(lb)) {
        stat.lower_bound = lb;
        if (std::isnan(best_lb) || lb > best_lb) best_lb = lb;
      }
    }
    stat.best_lower_bound = best_lb;
    // Theorem-1 invariant: any valid lower bound must sit below the MP
    // objective (an upper bound on the P1 optimum) at every iteration.
    if (options.verify && std::isfinite(stat.lower_bound)) {
      ++result.verification.bound_checks;
      const double slack = 1e-6 * (1.0 + std::abs(mp.objective_slots));
      if (stat.lower_bound > mp.objective_slots + slack) {
        std::ostringstream ss;
        ss << "Theorem-1 invariant violated at iteration " << iter
           << ": LB " << stat.lower_bound << " > MP objective "
           << mp.objective_slots;
        result.verification.errors.push_back(ss.str());
        MMWAVE_LOG_ERROR << ss.str();
      }
    }
    result.history.push_back(stat);
    result.total_slots = mp.objective_slots;
    result.iterations = iter + 1;

    // ---- Stall window ---------------------------------------------------
    const double ub_scale = 1.0 + std::abs(mp.objective_slots);
    const bool ub_progress =
        prev_ub - mp.objective_slots > options.stall_rel_progress * ub_scale;
    const bool lb_progress =
        std::isfinite(best_lb) &&
        best_lb - prev_lb > options.stall_rel_progress * (1.0 + std::abs(best_lb));
    if (ub_progress || lb_progress) {
      no_progress_iters = 0;
      // Progress de-escalates: the expensive recovery modes are only for
      // breaking stalls, and each new stall event gets a fresh ladder.
      escalation = 0;
      perturbation_spent = false;
    } else {
      ++no_progress_iters;
    }
    prev_ub = std::min(prev_ub, mp.objective_slots);
    if (std::isfinite(best_lb)) prev_lb = std::max(prev_lb, best_lb);

    // Escalates one rung of the recovery ladder; returns false when the
    // ladder is exhausted and the solve should stop degraded.
    const auto escalate = [&](const char* why) {
      if (options.pricing != PricingMode::HeuristicThenExact &&
          options.pricing != PricingMode::ExactAlways) {
        return false;  // no exact oracle to escalate to
      }
      const int ceiling = perturbation_spent ? 2 : 3;
      const int next = escalation + 1;
      if (next >= ceiling) return false;
      escalation = next;
      MMWAVE_LOG_WARN << "iteration " << iter << ": " << why
                      << "; escalating pricing to level " << escalation
                      << (escalation >= 2 ? " (dual perturbation)"
                                          : " (full exact)");
      return true;
    };

    // Stall window expired: climb the ladder (best effort — degradation is
    // only ever decided by a hard signal: duplicates, inconclusive pricing,
    // limits or the deadline.  A long degenerate-but-converging tail must
    // not be killed merely for a flat objective).
    if (options.stall_window > 0 &&
        no_progress_iters >= options.stall_window) {
      no_progress_iters = 0;
      escalate("no LB/UB progress over the stall window");
    }

    // ---- Termination ----------------------------------------------------
    const bool no_improving_column =
        perturbed ? true_rc >= -options.eps : phi >= -options.eps;
    if (no_improving_column) {
      if (exact_used && pricing.exact && !perturbed) {
        // Optimal: the exact pricer certified Phi >= -eps.
        result.converged = true;
        result.stop_reason = CgStopReason::kConverged;
        stopped = true;
        continue;
      }
      if (options.pricing == PricingMode::HeuristicOnly) {
        // Heuristic fixed point: the expected terminal state of this mode.
        result.stop_reason = CgStopReason::kHeuristicFixedPoint;
        stopped = true;
        continue;
      }
      if (perturbed) {
        // The perturbed retry found nothing improving under the true duals.
        // That is not a failure verdict — hand back to a normal full-exact
        // iteration, which either certifies optimality or exposes the cycle
        // again (and the spent perturbation then ends the ladder).
        escalation = 1;
        continue;
      }
      // Inconclusive: the exact pricer was truncated (limit/no incumbent)
      // so "no improving column" is not a certificate.  Climb the ladder;
      // when exhausted, stop with the incumbent and the valid LB.
      if (!escalate("pricing inconclusive (truncated exact oracle)")) {
        set_degraded(
            result, CgStopReason::kPricingFailure,
            pricing.status.ok()
                ? common::Status::Error(common::ErrorCode::kLimitHit,
                                        "exact pricing truncated without a "
                                        "usable certificate")
                : pricing.status);
        stopped = true;
      }
      continue;
    }
    if (options.gap_tolerance > 0.0 && !std::isnan(best_lb) &&
        mp.objective_slots > 0.0 &&
        (mp.objective_slots - best_lb) / mp.objective_slots <=
            options.gap_tolerance) {
      result.converged = true;
      result.stop_reason = CgStopReason::kConverged;
      stopped = true;
      continue;
    }

    // ---- Column entry ---------------------------------------------------
    verify_column(pricing.schedule,
                  "priced column, iteration " + std::to_string(iter));
    if (master.add_column(pricing.schedule)) {
      if (perturbed) escalation = 1;  // retry worked; drop back to full exact
      continue;
    }
    // The pricer regenerated an existing column claiming negative reduced
    // cost — a numerical stall/cycle.  The heuristic-only mode has nothing
    // to escalate to, so a duplicate is its fixed point; otherwise climb
    // the ladder and only degrade once it is exhausted.
    if (options.pricing == PricingMode::HeuristicOnly) {
      result.stop_reason = CgStopReason::kHeuristicFixedPoint;
      stopped = true;
      continue;
    }
    if (!escalate("duplicate column priced (cycling)")) {
      set_degraded(result, CgStopReason::kStalled,
                   common::Status::Error(
                       common::ErrorCode::kStalled,
                       "duplicate column at iteration " +
                           std::to_string(iter) +
                           " with the escalation ladder exhausted"));
      stopped = true;
    }
    continue;
  }

  if (!result.degraded && result.stop_reason == CgStopReason::kIterationLimit &&
      !result.converged && result.iterations >= options.max_iterations) {
    set_degraded(result, CgStopReason::kIterationLimit,
                 common::Status::Error(common::ErrorCode::kLimitHit,
                                       "iteration limit (" +
                                           std::to_string(options.max_iterations) +
                                           ") reached before convergence"));
  }

  // ---- Final solution extraction ---------------------------------------
  const MasterSolution final_mp = timed_master_solve(cert_out);
  result.pool = master.columns();
  result.pool_tau.assign(master.num_columns(), 0.0);
  if (final_mp.ok) {
    certify_master(cert, "final extraction");
    result.total_slots = final_mp.objective_slots;
    result.pool_tau = final_mp.tau;
    result.duals_hp = final_mp.lambda_hp;
    result.duals_lp = final_mp.lambda_lp;
    for (std::size_t s = 0; s < master.num_columns(); ++s) {
      if (final_mp.tau[s] > 1e-9) {
        result.timeline.push_back(
            {master.columns()[s], final_mp.tau[s]});
      }
    }
  } else if (!incumbent_tau.empty()) {
    // The extraction solve broke down: fall back to the incumbent snapshot
    // (the last optimal restricted master), which is still a feasible plan.
    MMWAVE_LOG_WARN << "final master solve failed ("
                    << final_mp.status.to_string()
                    << "); returning the incumbent plan";
    result.total_slots = incumbent_objective;
    std::copy(incumbent_tau.begin(), incumbent_tau.end(),
              result.pool_tau.begin());
    result.duals_hp = incumbent_lambda_hp;
    result.duals_lp = incumbent_lambda_lp;
    for (std::size_t s = 0; s < incumbent_tau.size(); ++s) {
      if (incumbent_tau[s] > 1e-9) {
        result.timeline.push_back({master.columns()[s], incumbent_tau[s]});
      }
    }
    if (!result.degraded) {
      set_degraded(result, CgStopReason::kMasterFailure, final_mp.status);
    }
  } else if (!result.degraded) {
    set_degraded(result, CgStopReason::kMasterFailure,
                 final_mp.status.ok()
                     ? common::Status::Error(
                           common::ErrorCode::kNumericalBreakdown,
                           "master LP never solved")
                     : final_mp.status);
  }
  result.lower_bound = best_lb;

  // The emitted plan itself: every schedule re-proved feasible and the
  // covering requirement sum_s tau^s r_l^s >= d_l re-checked per layer.
  // Degraded plans are not coverage-checked: an anytime result returned
  // early may legitimately under-cover (its schedules are still verified
  // individually as they enter the pool).
  if (options.verify && final_mp.ok && !result.degraded) {
    const check::VerifyReport rep =
        referee.verify_timeline(result.timeline, effective);
    if (!rep.ok()) {
      result.verification.errors.push_back("final timeline: " +
                                           rep.to_string());
      MMWAVE_LOG_ERROR << "timeline verification failed: " << rep.to_string();
    }
  }
  result.solve_seconds = deadline.elapsed();
  return result;
}

}  // namespace
}  // namespace mmwave::core
