#include "core/resolve.h"

#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/log.h"

namespace mmwave::core {

const char* to_string(RepairPolicy policy) {
  switch (policy) {
    case RepairPolicy::kDropTransmissions:
      return "drop";
    case RepairPolicy::kDowngradeRate:
      return "downgrade";
  }
  return "unknown";
}

bool repair_schedule(sched::Schedule& schedule,
                     const check::ScheduleVerifier& verifier,
                     int* transmissions_dropped, RepairPolicy policy,
                     int* transmissions_downgraded) {
  if (schedule.empty()) return false;
  // Each pass removes a transmission or steps one down the rate ladder (or
  // terminates), so the potential sum(rate levels) + size bounds the loop
  // even against an adversarial verifier.
  std::size_t max_passes = schedule.size() + 1;
  if (policy == RepairPolicy::kDowngradeRate) {
    for (const sched::Transmission& tx : schedule.transmissions()) {
      max_passes += static_cast<std::size_t>(
          tx.rate_level > 0 ? tx.rate_level : 0);
    }
  }
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    const check::VerifyReport report = verifier.verify(schedule);
    if (report.ok()) return !schedule.empty();

    std::unordered_set<int> drop_links;
    std::unordered_set<int> downgrade_links;
    for (const check::Violation& v : report.violations) {
      // A violation with no offending link (structural damage the verifier
      // cannot pin down) makes the whole column irreparable.
      if (v.link < 0) return false;
      // Only an SINR shortfall is fixable by a lower MCS; every structural
      // violation (half-duplex, power cap, duplicates...) still drops.
      if (policy == RepairPolicy::kDowngradeRate &&
          v.kind == check::ViolationKind::SinrBelowThreshold) {
        downgrade_links.insert(v.link);
      } else {
        drop_links.insert(v.link);
      }
    }

    std::vector<sched::Transmission> kept;
    kept.reserve(schedule.size());
    int dropped = 0;
    int downgraded = 0;
    for (const sched::Transmission& tx : schedule.transmissions()) {
      if (drop_links.count(tx.link) != 0) {
        ++dropped;
        continue;
      }
      sched::Transmission next = tx;
      if (downgrade_links.count(tx.link) != 0) {
        if (next.rate_level > 0) {
          --next.rate_level;
          ++downgraded;
        } else {
          ++dropped;  // already at the ladder floor: nothing left to try
          continue;
        }
      }
      kept.push_back(next);
    }
    if (dropped == 0 && downgraded == 0) return false;  // no progress
    if (transmissions_dropped != nullptr) *transmissions_dropped += dropped;
    if (transmissions_downgraded != nullptr)
      *transmissions_downgraded += downgraded;
    if (kept.empty()) return false;
    schedule = sched::Schedule(std::move(kept));
  }
  return false;
}

std::vector<sched::Schedule> repair_pool(
    const net::Network& net, const std::vector<sched::Schedule>& pool,
    RepairStats* stats, const check::VerifyOptions& options,
    RepairPolicy policy) {
  const check::ScheduleVerifier verifier(net, options);
  RepairStats local;
  local.loaded = static_cast<int>(pool.size());
  std::vector<sched::Schedule> survivors;
  survivors.reserve(pool.size());
  for (const sched::Schedule& column : pool) {
    if (common::fault_fires(common::faults::kResolveDropColumn)) {
      ++local.dropped;
      continue;
    }
    sched::Schedule candidate = column;
    int txs_dropped = 0;
    int txs_downgraded = 0;
    if (!repair_schedule(candidate, verifier, &txs_dropped, policy,
                         &txs_downgraded)) {
      ++local.dropped;
      continue;
    }
    if (txs_dropped == 0 && txs_downgraded == 0) {
      ++local.intact;
    } else {
      ++local.repaired;
      local.transmissions_dropped += txs_dropped;
      local.transmissions_downgraded += txs_downgraded;
    }
    survivors.push_back(std::move(candidate));
  }
  if (stats != nullptr) *stats = local;
  return survivors;
}

ResolveResult resolve(const net::Network& net,
                      const std::vector<video::LinkDemand>& demands,
                      const CgCheckpoint& checkpoint,
                      const CgOptions& cg_options,
                      const ResolveOptions& options) {
  ResolveResult result;
  result.fingerprint_matched =
      checkpoint.fingerprint == instance_fingerprint(net, demands);

  CgOptions warm = cg_options;
  if (checkpoint.links != net.num_links() ||
      checkpoint.channels != net.num_channels()) {
    result.checkpoint_status = common::Status::Error(
        common::ErrorCode::kInvalidInput,
        "checkpoint is for a " + std::to_string(checkpoint.links) + "x" +
            std::to_string(checkpoint.channels) + " instance, current is " +
            std::to_string(net.num_links()) + "x" +
            std::to_string(net.num_channels()) + "; cold start");
  } else if (options.require_fingerprint_match &&
             !result.fingerprint_matched) {
    result.checkpoint_status = common::Status::Error(
        common::ErrorCode::kInvalidInput,
        "checkpoint fingerprint does not match the current instance "
        "(require_fingerprint_match); cold start");
  } else {
    check::VerifyOptions verify = options.verify;
    verify.allow_layer_split = cg_options.exact.allow_layer_split;
    warm.warm_pool = repair_pool(net, checkpoint.pool, &result.repair,
                                 verify, options.repair);
    result.used_checkpoint = true;
    MMWAVE_LOG_INFO << "resolve: pool " << result.repair.loaded
                    << " loaded, " << result.repair.intact << " intact, "
                    << result.repair.repaired << " repaired ("
                    << result.repair.transmissions_dropped
                    << " transmissions dropped, "
                    << result.repair.transmissions_downgraded
                    << " downgraded, policy "
                    << to_string(options.repair) << "), "
                    << result.repair.dropped << " dropped";
  }
  if (!result.checkpoint_status.ok()) {
    MMWAVE_LOG_WARN << "resolve: " << result.checkpoint_status.message();
  }

  result.cg = solve_column_generation(net, demands, warm);
  return result;
}

ResolveResult resolve_from_file(const std::string& path,
                                const net::Network& net,
                                const std::vector<video::LinkDemand>& demands,
                                const CgOptions& cg_options,
                                const ResolveOptions& options) {
  common::Expected<CgCheckpoint> loaded = load_checkpoint(path);
  if (!loaded.ok()) {
    MMWAVE_LOG_WARN << "resolve: checkpoint '" << path
                    << "' unusable, cold start: "
                    << loaded.status().message();
    ResolveResult result;
    result.checkpoint_status = loaded.status();
    result.cg = solve_column_generation(net, demands, cg_options);
    return result;
  }
  return resolve(net, demands, loaded.value(), cg_options, options);
}

}  // namespace mmwave::core
