#include "core/pricing_milp.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/log.h"
#include "mmwave/power_control.h"

namespace mmwave::core {
namespace {

std::size_t xid(const net::Network& net, int l, int q, int k, int layer) {
  const int K = net.num_channels();
  const int Q = net.num_rate_levels();
  return ((static_cast<std::size_t>(l) * Q + q) * K + k) * 2 + layer;
}

}  // namespace

/// Builds the dual-independent model skeleton: one binary per (l, q, k,
/// layer) that can reach the SINR threshold interference-free at Pmax (an
/// exact, network-only prune), per-channel powers, SINR activation rows,
/// coupling/choice/half-duplex constraints and the pairwise conflict cuts.
/// Objective coefficients are all zero here; solve_pricing_milp rewrites
/// them (and the activation bounds) from the duals on every call.
void PricingMilpCache::build(const net::Network& net,
                             const MilpPricingOptions& options) {
  const int L = net.num_links();
  const int K = net.num_channels();
  const int Q = net.num_rate_levels();
  const double pmax = net.params().p_max_watts;

  PricingMilpCache& c = *this;
  c = PricingMilpCache();
  c.fixed_power_ = options.fixed_power;
  c.allow_layer_split_ = options.allow_layer_split;
  c.links_ = L;
  c.channels_ = K;
  c.levels_ = Q;

  milp::MilpModel& model = c.model_;
  model.set_objective_sense(lp::ObjSense::Maximize);

  // --- Variables -------------------------------------------------------
  c.xindex_.assign(static_cast<std::size_t>(L) * Q * K * 2, -1);
  for (int l = 0; l < L; ++l) {
    for (int layer = 0; layer < 2; ++layer) {
      for (int k = 0; k < K; ++k) {
        const double solo_sinr =
            net.direct_gain(l, k) * pmax / net.noise(l);
        for (int q = 0; q < Q; ++q) {
          if (solo_sinr < net.rate_level(q).sinr_threshold) continue;
          const int var = model.add_variable(0, 1, 0.0, milp::VarType::Binary);
          c.xindex_[xid(net, l, q, k, layer)] = var;
          c.xvars_.push_back({l, q, k, static_cast<net::Layer>(layer)});
        }
      }
    }
  }
  if (c.xvars_.empty()) {
    c.built_ = true;
    return;
  }

  // P_l^k only where link l has at least one x variable on channel k.
  for (const XVar& xv : c.xvars_) {
    const auto key = std::make_pair(xv.link, xv.channel);
    if (c.pvar_.count(key)) continue;
    c.pvar_[key] =
        model.add_variable(0.0, pmax, 0.0, milp::VarType::Continuous);
  }
  // Links that may transmit on channel k (for interference sums / big-M).
  std::vector<std::vector<int>> channel_members(K);
  for (const auto& [key, var] : c.pvar_)
    channel_members[key.second].push_back(key.first);

  // --- SINR activation constraints (corrected (26)/(28)) ---------------
  for (std::size_t xi = 0; xi < c.xvars_.size(); ++xi) {
    const auto& xv = c.xvars_[xi];
    const int l = xv.link, q = xv.level, k = xv.channel;
    const double gamma = net.rate_level(q).sinr_threshold;
    const double rho = net.noise(l);

    double max_interf = 0.0;
    for (int other : channel_members[k]) {
      if (other == l) continue;
      max_interf += net.cross_gain(other, l, k) * pmax;
    }
    const double big_m = gamma * (rho + max_interf);

    std::vector<lp::Term> terms;
    const int xvar_index =
        c.xindex_[xid(net, l, q, k, static_cast<int>(xv.layer))];
    terms.emplace_back(xvar_index, big_m);
    terms.emplace_back(c.pvar_.at({l, k}), -net.direct_gain(l, k));
    for (int other : channel_members[k]) {
      if (other == l) continue;
      terms.emplace_back(c.pvar_.at({other, k}),
                         gamma * net.cross_gain(other, l, k));
    }
    model.add_constraint(std::move(terms), lp::Sense::Le,
                         big_m - gamma * rho);
  }

  // --- Power/channel coupling: P_l^k <= Pmax * sum_q,layer x -----------
  // (and, under the fixed-power ablation, also >=, pinning active powers
  // to exactly Pmax).
  for (const auto& [key, pv] : c.pvar_) {
    const auto [l, k] = key;
    std::vector<lp::Term> terms;
    terms.emplace_back(pv, 1.0);
    for (int q = 0; q < Q; ++q) {
      for (int layer = 0; layer < 2; ++layer) {
        const int idx = c.xindex_[xid(net, l, q, k, layer)];
        if (idx >= 0) terms.emplace_back(idx, -pmax);
      }
    }
    if (options.fixed_power) {
      model.add_constraint(terms, lp::Sense::Eq, 0.0);
    } else {
      model.add_constraint(std::move(terms), lp::Sense::Le, 0.0);
    }
  }

  // --- One (layer, q, k) per link: constraint (30) ---------------------
  // Under the layer-split extension this relaxes to one (q, k) per layer,
  // with different layers on different channels and a shared power budget.
  if (!options.allow_layer_split) {
    for (int l = 0; l < L; ++l) {
      std::vector<lp::Term> terms;
      for (int k = 0; k < K; ++k) {
        for (int q = 0; q < Q; ++q) {
          for (int layer = 0; layer < 2; ++layer) {
            const int idx = c.xindex_[xid(net, l, q, k, layer)];
            if (idx >= 0) terms.emplace_back(idx, 1.0);
          }
        }
      }
      if (!terms.empty())
        model.add_constraint(std::move(terms), lp::Sense::Le, 1.0);
    }
  } else {
    for (int l = 0; l < L; ++l) {
      // One configuration per layer.
      for (int layer = 0; layer < 2; ++layer) {
        std::vector<lp::Term> terms;
        for (int k = 0; k < K; ++k) {
          for (int q = 0; q < Q; ++q) {
            const int idx = c.xindex_[xid(net, l, q, k, layer)];
            if (idx >= 0) terms.emplace_back(idx, 1.0);
          }
        }
        if (!terms.empty())
          model.add_constraint(std::move(terms), lp::Sense::Le, 1.0);
      }
      // Layers must use distinct channels: per (link, channel) <= 1.
      for (int k = 0; k < K; ++k) {
        std::vector<lp::Term> terms;
        for (int q = 0; q < Q; ++q) {
          for (int layer = 0; layer < 2; ++layer) {
            const int idx = c.xindex_[xid(net, l, q, k, layer)];
            if (idx >= 0) terms.emplace_back(idx, 1.0);
          }
        }
        if (terms.size() > 1)
          model.add_constraint(std::move(terms), lp::Sense::Le, 1.0);
      }
      // Shared transmit budget: sum_k P_l^k <= Pmax.
      std::vector<lp::Term> power_terms;
      for (int k = 0; k < K; ++k) {
        auto it = c.pvar_.find({l, k});
        if (it != c.pvar_.end()) power_terms.emplace_back(it->second, 1.0);
      }
      if (power_terms.size() > 1)
        model.add_constraint(std::move(power_terms), lp::Sense::Le, pmax);
    }
  }

  // --- Per-node half-duplex: constraints (31)/(32) ---------------------
  std::map<int, std::vector<int>> node_links;  // node -> links touching it
  for (const net::Link& link : net.links()) {
    node_links[link.tx_node].push_back(link.id);
    node_links[link.rx_node].push_back(link.id);
  }
  for (const auto& [node, links_here] : node_links) {
    if (links_here.size() < 2) continue;  // implied by (30)
    if (!options.allow_layer_split) {
      std::vector<lp::Term> terms;
      for (int l : links_here) {
        for (int k = 0; k < K; ++k) {
          for (int q = 0; q < Q; ++q) {
            for (int layer = 0; layer < 2; ++layer) {
              const int idx = c.xindex_[xid(net, l, q, k, layer)];
              if (idx >= 0) terms.emplace_back(idx, 1.0);
            }
          }
        }
      }
      if (terms.size() > 1)
        model.add_constraint(std::move(terms), lp::Sense::Le, 1.0);
      continue;
    }
    // Layer split: a link's own two layers must not trip the node
    // constraint, so gate on a per-link activity indicator y_l >= every x.
    std::vector<lp::Term> node_row;
    for (int l : links_here) {
      auto [it, inserted] = c.link_indicator_.try_emplace(l, -1);
      if (inserted) {
        it->second =
            model.add_variable(0.0, 1.0, 0.0, milp::VarType::Continuous);
        for (int k = 0; k < K; ++k) {
          for (int q = 0; q < Q; ++q) {
            for (int layer = 0; layer < 2; ++layer) {
              const int idx = c.xindex_[xid(net, l, q, k, layer)];
              if (idx >= 0) {
                model.add_constraint({{idx, 1.0}, {it->second, -1.0}},
                                     lp::Sense::Le, 0.0);
              }
            }
          }
        }
      }
      node_row.emplace_back(it->second, 1.0);
    }
    if (node_row.size() > 1)
      model.add_constraint(std::move(node_row), lp::Sense::Le, 1.0);
  }

  // --- Pairwise conflict cuts -------------------------------------------
  // If two (link, level) choices cannot coexist on a channel even as a
  // bare pair under power control, no larger set containing them can
  // (interference is monotone), so x_i + x_j <= 1 is valid.  These clique
  // cuts tighten the big-M LP relaxation enormously and, being
  // dual-independent, are precomputed once per network here rather than
  // once per pricing call: one 2x2 power solve per candidate pair.
  {
    // Collect, per channel, the distinct (link, level) pairs in use.
    std::map<int, std::vector<std::pair<int, int>>> lq_by_channel;
    for (const XVar& xv : c.xvars_) {
      auto& v = lq_by_channel[xv.channel];
      if (std::find(v.begin(), v.end(),
                    std::make_pair(xv.link, xv.level)) == v.end()) {
        v.emplace_back(xv.link, xv.level);
      }
    }
    for (const auto& [k, lqs] : lq_by_channel) {
      for (std::size_t a = 0; a < lqs.size(); ++a) {
        for (std::size_t b = a + 1; b < lqs.size(); ++b) {
          if (lqs[a].first == lqs[b].first) continue;  // same link: (30)
          const std::vector<int> pair_links{lqs[a].first, lqs[b].first};
          const std::vector<double> pair_gammas{
              net.rate_level(lqs[a].second).sinr_threshold,
              net.rate_level(lqs[b].second).sinr_threshold};
          if (net::min_power_assignment(net, k, pair_links, pair_gammas)
                  .feasible) {
            continue;
          }
          std::vector<lp::Term> terms;
          for (int layer = 0; layer < 2; ++layer) {
            const int ia =
                c.xindex_[xid(net, lqs[a].first, lqs[a].second, k, layer)];
            const int ib =
                c.xindex_[xid(net, lqs[b].first, lqs[b].second, k, layer)];
            if (ia >= 0) terms.emplace_back(ia, 1.0);
            if (ib >= 0) terms.emplace_back(ib, 1.0);
          }
          if (terms.size() > 1)
            model.add_constraint(std::move(terms), lp::Sense::Le, 1.0);
        }
      }
    }
  }
  c.built_ = true;
}

PricingResult solve_pricing_milp(const net::Network& net,
                                 const std::vector<double>& lambda_hp,
                                 const std::vector<double>& lambda_lp,
                                 const MilpPricingOptions& options,
                                 const sched::Schedule* warm_start,
                                 PricingMilpCache* cache) {
  PricingResult out;

  PricingMilpCache local;
  PricingMilpCache& c = cache != nullptr ? *cache : local;
  if (!c.built_ || c.fixed_power_ != options.fixed_power ||
      c.allow_layer_split_ != options.allow_layer_split ||
      c.links_ != net.num_links() || c.channels_ != net.num_channels() ||
      c.levels_ != net.num_rate_levels()) {
    c.build(net, options);
  }

  // --- Activate under the current duals ---------------------------------
  // A (link, layer) with lambda <= 0 can only add interference, never
  // objective: instead of pruning the variable from the model (which would
  // force a rebuild per iteration), pin it to zero via its upper bound and
  // give the rest their objective coefficient lambda * bits/slot.
  int active = 0;
  for (std::size_t xi = 0; xi < c.xvars_.size(); ++xi) {
    const auto& xv = c.xvars_[xi];
    const int idx = c.xindex_[xid(net, xv.link, xv.level, xv.channel,
                                  static_cast<int>(xv.layer))];
    const double lambda = xv.layer == net::Layer::Hp ? lambda_hp[xv.link]
                                                     : lambda_lp[xv.link];
    lp::Variable& var = c.model_.variable(idx);
    if (lambda > 1e-15) {
      var.cost = lambda * net.bits_per_slot(xv.level);
      var.ub = 1.0;
      ++active;
    } else {
      var.cost = 0.0;
      var.ub = 0.0;
    }
  }

  if (active == 0) {
    out.found = false;
    out.psi = 0.0;
    out.psi_upper_bound = 0.0;
    out.exact = true;
    return out;
  }

  // --- Warm start -------------------------------------------------------
  // The all-zero point (nobody transmits) is always feasible, so seed it
  // even without a caller-supplied schedule: a truncated branch & bound
  // then always returns a valid incumbent (Psi >= 0) and dual bound.
  std::vector<double> warm(
      static_cast<std::size_t>(c.model_.num_variables()), 0.0);
  const bool have_warm = true;
  if (warm_start != nullptr && !warm_start->empty()) {
    for (const sched::Transmission& tx : warm_start->transmissions()) {
      const int idx = c.xindex_[xid(net, tx.link, tx.rate_level, tx.channel,
                                    static_cast<int>(tx.layer))];
      // Drop transmissions on pruned or deactivated (lambda <= 0)
      // variables; keeping them would make the seed infeasible.
      if (idx < 0 || c.model_.variable(idx).ub < 0.5) continue;
      warm[idx] = 1.0;
      warm[c.pvar_.at({tx.link, tx.channel})] = tx.power_watts;
      const auto y = c.link_indicator_.find(tx.link);
      if (y != c.link_indicator_.end()) warm[y->second] = 1.0;
    }
  }

  // --- Solve ------------------------------------------------------------
  milp::MilpOptions milp_opts = options.milp;
  if (!std::isnan(options.target_psi))
    milp_opts.target_objective = options.target_psi;
  const milp::MilpSolution sol =
      milp::solve_milp(c.model_, milp_opts, have_warm ? &warm : nullptr);

  if (!sol.has_solution()) {
    MMWAVE_LOG_WARN << "pricing MILP returned " << milp::to_string(sol.status);
    out.psi = 0.0;
    out.psi_upper_bound = sol.status == milp::MilpStatus::NoSolution
                              ? sol.best_bound
                              : std::numeric_limits<double>::infinity();
    out.exact = false;
    out.status = sol.error.ok()
                     ? common::Status::Error(
                           common::ErrorCode::kNumericalBreakdown,
                           std::string("pricing MILP returned ") +
                               milp::to_string(sol.status))
                     : sol.error;
    return out;
  }

  out.psi = sol.objective;
  out.psi_upper_bound = sol.status == milp::MilpStatus::Optimal
                            ? sol.objective
                            : sol.best_bound;
  out.exact = sol.status == milp::MilpStatus::Optimal;
  out.found = out.psi > 1.0 + 1e-7;
  // A TargetReached exit is a deliberate early stop, not a failure; only a
  // genuine limit truncation is surfaced to the driver.
  if (sol.status == milp::MilpStatus::Feasible) out.status = sol.error;

  // --- Extract the schedule ---------------------------------------------
  sched::Schedule schedule;
  for (std::size_t xi = 0; xi < c.xvars_.size(); ++xi) {
    const auto& xv = c.xvars_[xi];
    const int idx = c.xindex_[xid(net, xv.link, xv.level, xv.channel,
                                  static_cast<int>(xv.layer))];
    if (sol.x[idx] < 0.5) continue;
    schedule.add({xv.link, xv.layer, xv.level, xv.channel,
                  sol.x[c.pvar_.at({xv.link, xv.channel})]});
  }

  if (options.clean_powers && !options.fixed_power && !schedule.empty()) {
    // Re-minimize powers channel by channel; the active set is feasible so
    // the Perron solve should succeed — keep MILP powers if it does not.
    std::map<int, std::vector<const sched::Transmission*>> by_channel;
    for (const sched::Transmission& tx : schedule.transmissions())
      by_channel[tx.channel].push_back(&tx);
    sched::Schedule cleaned;
    for (const auto& [k, txs] : by_channel) {
      std::vector<int> links;
      std::vector<double> gammas;
      for (const auto* tx : txs) {
        links.push_back(tx->link);
        gammas.push_back(net.rate_level(tx->rate_level).sinr_threshold);
      }
      const net::PowerControlResult pc =
          net::min_power_assignment(net, k, links, gammas);
      for (std::size_t i = 0; i < txs.size(); ++i) {
        sched::Transmission tx = *txs[i];
        if (pc.feasible) tx.power_watts = pc.powers[i];
        cleaned.add(tx);
      }
    }
    schedule = std::move(cleaned);
  }
  out.schedule = std::move(schedule);
  return out;
}

}  // namespace mmwave::core
