#include "core/pool_manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/log.h"

namespace mmwave::core {

const char* to_string(PoolPolicy policy) {
  switch (policy) {
    case PoolPolicy::kLru:
      return "lru";
    case PoolPolicy::kRcHybrid:
      return "rc-hybrid";
  }
  return "?";
}

[[nodiscard]] common::Expected<PoolPolicy> parse_pool_policy(
    std::string_view text) {
  if (text == "lru") return PoolPolicy::kLru;
  if (text == "rc-hybrid") return PoolPolicy::kRcHybrid;
  return common::Status::Error(
      common::ErrorCode::kInvalidInput,
      "pool policy: expected lru|rc-hybrid, got '" + std::string(text) + "'");
}

InstanceSignature make_signature(
    const net::Network& net, const std::vector<video::LinkDemand>& demands) {
  InstanceSignature sig;
  sig.fingerprint = instance_fingerprint(net, demands);
  sig.links = net.num_links();
  sig.channels = net.num_channels();
  sig.features.reserve(static_cast<std::size_t>(net.num_links()) * 2 +
                       net.num_rate_levels());
  // Per-link best-channel direct gain in log10: blockage is a multiplicative
  // attenuation, so nearby blockage states differ by a few dB here and far
  // states by tens — exactly the geometry the distance metric should see.
  for (int l = 0; l < net.num_links(); ++l) {
    double best = 0.0;
    for (int k = 0; k < net.num_channels(); ++k)
      best = std::max(best, net.direct_gain(l, k));
    sig.features.push_back(best > 0.0 ? std::log10(best) : -300.0);
  }
  for (int q = 0; q < net.num_rate_levels(); ++q)
    sig.features.push_back(net.rate_level(q).sinr_threshold);
  // Demands in log-ish scale so one heavy GoP does not drown the gains.
  for (const video::LinkDemand& d : demands)
    sig.features.push_back(std::log1p(std::max(0.0, d.total())));
  return sig;
}

double signature_distance(const InstanceSignature& a,
                          const InstanceSignature& b) {
  if (a.links != b.links || a.channels != b.channels ||
      a.features.size() != b.features.size()) {
    return std::numeric_limits<double>::infinity();
  }
  if (a.fingerprint == b.fingerprint) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.features.size(); ++i) {
    const double d = a.features[i] - b.features[i];
    sum += d * d;
  }
  return a.features.empty() ? 0.0
                            : sum / static_cast<double>(a.features.size());
}

std::vector<PoolColumnMeta> score_pool(const net::Network& net,
                                       const CgResult& result,
                                       std::uint64_t fingerprint,
                                       std::int64_t epoch) {
  std::vector<PoolColumnMeta> meta(result.pool.size());
  for (std::size_t s = 0; s < result.pool.size(); ++s) {
    PoolColumnMeta& m = meta[s];
    m.fingerprint = fingerprint;
    m.last_used_epoch = epoch;
    m.in_basis =
        s < result.pool_tau.size() && result.pool_tau[s] > 0.0;
    double priced = 0.0;
    const auto hp =
        result.pool[s].rate_column_bits_per_slot(net, net::Layer::Hp);
    const auto lp =
        result.pool[s].rate_column_bits_per_slot(net, net::Layer::Lp);
    for (int l = 0; l < net.num_links(); ++l) {
      priced += (l < static_cast<int>(result.duals_hp.size())
                     ? result.duals_hp[l] * hp[l]
                     : 0.0) +
                (l < static_cast<int>(result.duals_lp.size())
                     ? result.duals_lp[l] * lp[l]
                     : 0.0);
    }
    m.last_reduced_cost = std::isfinite(priced) ? 1.0 - priced : 0.0;
  }
  return meta;
}

PoolManager::PoolManager(PoolManagerOptions options)
    : options_(std::move(options)) {
  if (options_.adaptive) {
    options_.min_cap = std::max(1, options_.min_cap);
    if (options_.max_cap > 0)
      options_.max_cap = std::max(options_.max_cap, options_.min_cap);
    adaptive_cap_ = options_.cap > 0 ? options_.cap : options_.min_cap;
    adaptive_cap_ = std::max(adaptive_cap_, options_.min_cap);
    if (options_.max_cap > 0)
      adaptive_cap_ = std::min(adaptive_cap_, options_.max_cap);
  }
}

void PoolManager::observe(double warm_hit_rate, double master_seconds) {
  if (!options_.adaptive) return;
  if (!std::isfinite(warm_hit_rate) || !std::isfinite(master_seconds)) return;
  // Multiplicative-ish steps (a quarter of the current cap) so the cap
  // converges in a handful of periods from any starting point, while a
  // single noisy observation can never move it far.
  const int step = std::max(1, adaptive_cap_ / 4);
  int next = adaptive_cap_;
  const bool over_budget = master_seconds > options_.master_seconds_budget;
  if (warm_hit_rate < options_.shrink_hit_rate || over_budget) {
    next -= step;
  } else if (warm_hit_rate >= options_.grow_hit_rate && !over_budget) {
    next += step;
  }
  next = std::max(next, options_.min_cap);
  if (options_.max_cap > 0) next = std::min(next, options_.max_cap);
  if (next == adaptive_cap_) return;
  if (next > adaptive_cap_) {
    ++metrics_.cap_grown;
  } else {
    ++metrics_.cap_shrunk;
  }
  adaptive_cap_ = next;
  // A shrink takes effect now, not at the next store().
  metrics_.evicted += evict(entries_, epoch_);
}

double PoolManager::penalty(const PoolColumnMeta& meta,
                            std::int64_t now) const {
  const double age =
      static_cast<double>(std::max<std::int64_t>(0, now - meta.last_used_epoch));
  if (options_.policy == PoolPolicy::kLru) return age;
  // rc-hybrid: reduced cost >= 0 at an optimum; squash it into [0, 1) so a
  // badly-priced column costs at most `rc_weight` epochs of seniority.
  const double rc = std::max(0.0, meta.last_reduced_cost);
  return age + options_.rc_weight * (rc / (1.0 + rc));
}

std::int64_t PoolManager::evict(std::vector<Entry>& entries,
                                std::int64_t now) const {
  const int cap = effective_cap();
  if (cap <= 0) return 0;
  std::int64_t evicted = 0;
  while (static_cast<int>(entries.size()) > cap) {
    // Deterministic victim selection: scan in insertion order, keep the
    // strictly-worst penalty (ties resolve to the oldest entry).  Basis
    // columns are never candidates, even if that pins the pool above cap.
    int victim = -1;
    double worst = -1.0;
    int best = -1;
    double best_penalty = std::numeric_limits<double>::infinity();
    for (int i = 0; i < static_cast<int>(entries.size()); ++i) {
      if (entries[i].meta.in_basis) continue;
      const double p = penalty(entries[i].meta, now);
      if (p > worst) {
        worst = p;
        victim = i;
      }
      if (p < best_penalty) {
        best_penalty = p;
        best = i;
      }
    }
    if (victim < 0) break;  // only basis columns remain
    // Scripted mis-eviction: the policy picks the most valuable non-basis
    // column instead of the least.  The basis stays protected regardless.
    if (common::fault_fires(common::faults::kPoolEvictWrongColumn)) {
      victim = best;
    }
    entries.erase(entries.begin() + victim);
    ++evicted;
  }
  return evicted;
}

std::vector<sched::Schedule> PoolManager::seed(
    const InstanceSignature& signature) {
  ++metrics_.seed_calls;
  if (entries_.empty() || instances_.empty()) return {};

  // Rank known instances by distance; the exact fingerprint (distance 0)
  // naturally sorts first.  Ties (e.g. two identical past states) resolve
  // by most recent store, then insertion order — all deterministic.
  struct Ranked {
    double distance;
    std::int64_t last_epoch;
    int index;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(instances_.size());
  for (int i = 0; i < static_cast<int>(instances_.size()); ++i) {
    const double d = signature_distance(signature, instances_[i].signature);
    if (!std::isfinite(d)) continue;  // incompatible dimensions
    ranked.push_back({d, instances_[i].last_epoch, i});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    if (a.last_epoch != b.last_epoch) return a.last_epoch > b.last_epoch;
    return a.index < b.index;
  });
  const int neighbours =
      std::min<int>(std::max(1, options_.max_neighbours),
                    static_cast<int>(ranked.size()));

  std::vector<sched::Schedule> out;
  std::unordered_set<std::string> seen;
  for (int n = 0; n < neighbours; ++n) {
    const std::uint64_t fp =
        instances_[ranked[n].index].signature.fingerprint;
    const bool is_neighbour = fp != signature.fingerprint;
    for (const Entry& e : entries_) {
      if (e.meta.fingerprint != fp) continue;
      if (!seen.insert(e.column.key()).second) continue;
      out.push_back(e.column);
      ++metrics_.seeded_columns;
      if (is_neighbour) ++metrics_.neighbour_seeded;
    }
  }
  return out;
}

void PoolManager::store(const InstanceSignature& signature,
                        const net::Network& net, const CgResult& result) {
  ++epoch_;
  ++metrics_.stores;

  // This result's basis is now THE current basis: the previous protection
  // lapses before the new pool merges in.
  for (Entry& e : entries_) e.meta.in_basis = false;

  const std::vector<PoolColumnMeta> scored =
      score_pool(net, result, signature.fingerprint, epoch_);
  std::unordered_map<std::string, int> by_key;
  by_key.reserve(entries_.size());
  for (int i = 0; i < static_cast<int>(entries_.size()); ++i)
    by_key.emplace(entries_[i].column.key(), i);

  for (std::size_t s = 0; s < result.pool.size(); ++s) {
    const double tau =
        s < result.pool_tau.size() ? result.pool_tau[s] : 0.0;
    const auto it = by_key.find(result.pool[s].key());
    if (it != by_key.end()) {
      // Known column: refresh its lifecycle record (a column re-proving
      // itself on a new instance migrates to that instance's fingerprint).
      Entry& e = entries_[it->second];
      e.tau = tau;
      e.meta = scored[s];
    } else {
      Entry e;
      e.column = result.pool[s];
      e.tau = tau;
      e.meta = scored[s];
      by_key.emplace(e.column.key(), static_cast<int>(entries_.size()));
      entries_.push_back(std::move(e));
    }
  }

  // Refresh the instance index.
  bool known = false;
  for (KnownInstance& inst : instances_) {
    if (inst.signature.fingerprint == signature.fingerprint) {
      inst.signature = signature;  // demands may differ at equal fingerprint
      inst.last_epoch = epoch_;
      known = true;
      break;
    }
  }
  if (!known) instances_.push_back({signature, epoch_});

  metrics_.evicted += evict(entries_, epoch_);

  // Drop index entries for instances whose columns were all evicted (the
  // signature alone is no seed capital and would distort neighbour ranks).
  std::unordered_set<std::uint64_t> live;
  live.reserve(entries_.size());
  for (const Entry& e : entries_) live.insert(e.meta.fingerprint);
  instances_.erase(
      std::remove_if(instances_.begin(), instances_.end(),
                     [&](const KnownInstance& inst) {
                       return live.count(inst.signature.fingerprint) == 0;
                     }),
      instances_.end());
}

void PoolManager::import_checkpoint(const CgCheckpoint& checkpoint) {
  const bool have_meta =
      checkpoint.pool_meta.size() == checkpoint.pool.size();
  std::unordered_map<std::string, int> by_key;
  by_key.reserve(entries_.size());
  for (int i = 0; i < static_cast<int>(entries_.size()); ++i)
    by_key.emplace(entries_[i].column.key(), i);
  for (std::size_t s = 0; s < checkpoint.pool.size(); ++s) {
    Entry e;
    e.column = checkpoint.pool[s];
    e.tau = s < checkpoint.pool_tau.size() ? checkpoint.pool_tau[s] : 0.0;
    if (have_meta) {
      e.meta = checkpoint.pool_meta[s];
    } else {
      // Cold metadata (v1 checkpoint or degraded v2): identity from the
      // checkpoint header, basis from tau, age/rc unknown.
      e.meta.fingerprint = checkpoint.fingerprint;
      e.meta.last_used_epoch = 0;
      e.meta.last_reduced_cost = 0.0;
      e.meta.in_basis = e.tau > 0.0;
    }
    const auto it = by_key.find(e.column.key());
    if (it != by_key.end()) {
      entries_[it->second] = std::move(e);
    } else {
      by_key.emplace(e.column.key(), static_cast<int>(entries_.size()));
      entries_.push_back(std::move(e));
    }
  }
  // v3 cross-instance state: advance the epoch clock so restored recency
  // values stay meaningful, then merge the persisted neighbour index (by
  // fingerprint: refresh known instances, append unknown ones in saved
  // order so seeding stays deterministic).
  if (checkpoint.pool_epoch > epoch_) epoch_ = checkpoint.pool_epoch;
  for (const PoolIndexEntry& e : checkpoint.pool_index) {
    bool merged = false;
    for (KnownInstance& inst : instances_) {
      if (inst.signature.fingerprint != e.fingerprint) continue;
      if (e.last_epoch > inst.last_epoch) inst.last_epoch = e.last_epoch;
      if (inst.signature.features.empty() && !e.features.empty()) {
        inst.signature.links = e.links;
        inst.signature.channels = e.channels;
        inst.signature.features = e.features;
      }
      merged = true;
      break;
    }
    if (merged) continue;
    InstanceSignature sig;
    sig.fingerprint = e.fingerprint;
    sig.links = e.links;
    sig.channels = e.channels;
    sig.features = e.features;
    instances_.push_back({std::move(sig), e.last_epoch});
  }
  bool known = false;
  for (const KnownInstance& inst : instances_)
    known = known || inst.signature.fingerprint == checkpoint.fingerprint;
  if (!known && !checkpoint.pool.empty()) {
    InstanceSignature sig;  // featureless: identity only, until a store()
    sig.fingerprint = checkpoint.fingerprint;
    sig.links = checkpoint.links;
    sig.channels = checkpoint.channels;
    instances_.push_back({std::move(sig), epoch_});
  }
  metrics_.evicted += evict(entries_, epoch_);
}

CgCheckpoint PoolManager::export_checkpoint(const CgCheckpoint& base) const {
  CgCheckpoint out = base;
  out.pool.clear();
  out.pool_tau.clear();
  out.pool_meta.clear();
  out.pool_meta_degraded = false;
  out.pool.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.pool.push_back(e.column);
    out.pool_tau.push_back(e.tau);
    out.pool_meta.push_back(e.meta);
  }
  // Format v3: persist the manager's cross-instance state so a restarted
  // process recovers neighbour seeding and recency scoring, not just one
  // instance's columns.
  out.pool_epoch = epoch_;
  out.pool_index.clear();
  out.pool_index.reserve(instances_.size());
  for (const KnownInstance& inst : instances_) {
    PoolIndexEntry e;
    e.fingerprint = inst.signature.fingerprint;
    e.links = inst.signature.links;
    e.channels = inst.signature.channels;
    e.last_epoch = inst.last_epoch;
    e.features = inst.signature.features;
    out.pool_index.push_back(std::move(e));
  }
  out.pool_index_degraded = false;
  return out;
}

void PoolManager::trim_checkpoint(CgCheckpoint* checkpoint) const {
  if (effective_cap() <= 0) return;
  std::vector<Entry> entries;
  entries.reserve(checkpoint->pool.size());
  const bool have_meta =
      checkpoint->pool_meta.size() == checkpoint->pool.size();
  for (std::size_t s = 0; s < checkpoint->pool.size(); ++s) {
    Entry e;
    e.column = checkpoint->pool[s];
    e.tau = s < checkpoint->pool_tau.size() ? checkpoint->pool_tau[s] : 0.0;
    if (have_meta) {
      e.meta = checkpoint->pool_meta[s];
    } else {
      e.meta.fingerprint = checkpoint->fingerprint;
      e.meta.in_basis = e.tau > 0.0;
    }
    entries.push_back(std::move(e));
  }
  const std::int64_t evicted = evict(entries, epoch_);
  if (evicted > 0) {
    MMWAVE_LOG_INFO << "pool: checkpoint trimmed by " << evicted
                    << " column(s) to cap " << effective_cap() << " ("
                    << to_string(options_.policy) << ")";
  }
  checkpoint->pool.clear();
  checkpoint->pool_tau.clear();
  checkpoint->pool_meta.clear();
  for (const Entry& e : entries) {
    checkpoint->pool.push_back(e.column);
    checkpoint->pool_tau.push_back(e.tau);
    checkpoint->pool_meta.push_back(e.meta);
  }
}

}  // namespace mmwave::core
