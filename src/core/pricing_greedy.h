// Greedy power-controlled pricing heuristic.
//
// Generates improving columns orders of magnitude faster than the exact
// MILP: candidates (link, layer) are ranked by dual-weighted best-case value
// lambda * u^Qmax, then admitted one by one onto the channel/rate level that
// keeps the whole active set SINR-feasible under minimum-power control.  A
// final pass tries to upgrade each admitted link's rate level.
//
// The heuristic can only *find* columns, never certify optimality; the
// driver falls back to the exact MILP when it comes up empty (standard
// column-generation practice).
#pragma once

#include "core/pricing.h"
#include "mmwave/network.h"

namespace mmwave::core {

struct GreedyPricingOptions {
  /// Try this many candidate orderings: 1 = pure dual-weighted order;
  /// each extra round rotates the starting candidate for diversity.
  int restarts = 3;
  /// Ablation: disable power adaptation — every active link transmits at
  /// Pmax and admission only checks the resulting SINRs (the assumption of
  /// Benchmark 2).  Default off: minimum-power control per Section IV-D.
  bool fixed_power = false;
};

PricingResult solve_pricing_greedy(const net::Network& net,
                                   const std::vector<double>& lambda_hp,
                                   const std::vector<double>& lambda_lp,
                                   const GreedyPricingOptions& options = {});

}  // namespace mmwave::core
