#include "check/lp_certificate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mmwave::check {

std::string LpCertReport::to_string() const {
  std::ostringstream ss;
  if (ok()) {
    ss << "certificate ok: primal " << primal_objective << ", dual "
       << dual_objective << ", gap " << duality_gap;
    return ss.str();
  }
  ss << errors.size() << " certificate error(s)";
  for (const std::string& e : errors) ss << "\n  " << e;
  return ss.str();
}

namespace {

struct Ctx {
  const lp::LpModel& model;
  const lp::LpSolution& sol;
  const LpCertOptions& opt;
  LpCertReport& report;

  void fail(const std::string& msg) { report.errors.push_back(msg); }
};

std::string row_name(const lp::LpModel& model, int i) {
  const std::string& n = model.constraint(i).name;
  return n.empty() ? "row " + std::to_string(i) : "row '" + n + "'";
}

std::string var_name(const lp::LpModel& model, int j) {
  const std::string& n = model.variable(j).name;
  return n.empty() ? "var " + std::to_string(j) : "var '" + n + "'";
}

}  // namespace

LpCertReport check_lp_certificate(const lp::LpModel& model,
                                  const lp::LpSolution& solution,
                                  const LpCertOptions& options) {
  return check_lp_certificate(model, {}, {}, solution, options);
}

LpCertReport check_lp_certificate(const lp::LpModel& model,
                                  const std::vector<double>& lb_override,
                                  const std::vector<double>& ub_override,
                                  const lp::LpSolution& solution,
                                  const LpCertOptions& options) {
  LpCertReport report;
  Ctx ctx{model, solution, options, report};

  const int n = model.num_variables();
  const int m = model.num_constraints();

  if (solution.status != lp::SolveStatus::Optimal) {
    ctx.fail(std::string("solution status is ") +
             lp::to_string(solution.status) + ", not Optimal");
    return report;
  }
  if (static_cast<int>(solution.x.size()) != n) {
    ctx.fail("primal vector has " + std::to_string(solution.x.size()) +
             " entries for " + std::to_string(n) + " variables");
    return report;
  }
  if (m > 0 && static_cast<int>(solution.duals.size()) != m) {
    ctx.fail("dual vector has " + std::to_string(solution.duals.size()) +
             " entries for " + std::to_string(m) + " constraints");
    return report;
  }
  if (!lb_override.empty() &&
      (static_cast<int>(lb_override.size()) != n ||
       static_cast<int>(ub_override.size()) != n)) {
    ctx.fail("bound overrides must have one entry per variable");
    return report;
  }

  // Normalize everything to minimize form: for Maximize models the solver
  // reports the max-sense objective and max-sense duals (lp/simplex.h), so
  // both flip sign here and all KKT conditions read as for a minimization.
  const bool maximize = model.objective_sense() == lp::ObjSense::Maximize;
  const double sign = maximize ? -1.0 : 1.0;

  auto lb_of = [&](int j) {
    return lb_override.empty() ? model.variable(j).lb : lb_override[j];
  };
  auto ub_of = [&](int j) {
    return ub_override.empty() ? model.variable(j).ub : ub_override[j];
  };

  // ---- Primal feasibility: variable bounds ------------------------------
  for (int j = 0; j < n; ++j) {
    const double x = solution.x[j];
    const double lb = lb_of(j), ub = ub_of(j);
    if (!std::isfinite(x)) {
      ctx.fail(var_name(model, j) + " is not finite");
      continue;
    }
    const double lo_tol = options.feasibility_tol * (1.0 + std::abs(lb));
    const double hi_tol = options.feasibility_tol * (1.0 + std::abs(ub));
    double viol = 0.0;
    if (std::isfinite(lb) && x < lb - lo_tol) viol = (lb - x) / (1.0 + std::abs(lb));
    if (std::isfinite(ub) && x > ub + hi_tol)
      viol = std::max(viol, (x - ub) / (1.0 + std::abs(ub)));
    if (viol > 0.0) {
      std::ostringstream ss;
      ss << var_name(model, j) << " = " << x << " outside bounds [" << lb
         << ", " << ub << "]";
      ctx.fail(ss.str());
    }
    report.max_primal_violation = std::max(report.max_primal_violation, viol);
  }

  // ---- Primal feasibility: rows ----------------------------------------
  std::vector<double> activity(m, 0.0);
  for (int i = 0; i < m; ++i) {
    const lp::Constraint& row = model.constraint(i);
    double act = 0.0, scale = 1.0 + std::abs(row.rhs);
    for (const auto& [col, coef] : row.terms) {
      act += coef * solution.x[col];
      scale += std::abs(coef * solution.x[col]);
    }
    activity[i] = act;
    const double tol = options.feasibility_tol * scale;
    double resid = 0.0;
    switch (row.sense) {
      case lp::Sense::Le: resid = act - row.rhs; break;
      case lp::Sense::Ge: resid = row.rhs - act; break;
      case lp::Sense::Eq: resid = std::abs(act - row.rhs); break;
    }
    if (resid > tol) {
      std::ostringstream ss;
      ss << row_name(model, i) << " violated: activity " << act << " vs rhs "
         << row.rhs;
      ctx.fail(ss.str());
    }
    report.max_primal_violation =
        std::max(report.max_primal_violation, std::max(0.0, resid) / scale);
  }

  // ---- Dual feasibility: row sign convention (minimize form) ------------
  std::vector<double> y(m, 0.0);
  double yscale = 1.0;
  for (int i = 0; i < m; ++i) {
    y[i] = sign * solution.duals[i];
    yscale = std::max(yscale, std::abs(y[i]));
  }
  for (int i = 0; i < m; ++i) {
    const double tol = options.dual_tol * yscale;
    double viol = 0.0;
    switch (model.constraint(i).sense) {
      case lp::Sense::Ge:  // binding from below: y >= 0
        if (y[i] < -tol) viol = -y[i] / yscale;
        break;
      case lp::Sense::Le:  // y <= 0
        if (y[i] > tol) viol = y[i] / yscale;
        break;
      case lp::Sense::Eq:
        break;  // free
    }
    if (viol > 0.0) {
      std::ostringstream ss;
      ss << row_name(model, i) << " dual " << y[i]
         << " has the wrong sign for its sense";
      ctx.fail(ss.str());
    }
    report.max_dual_violation = std::max(report.max_dual_violation, viol);
  }

  // ---- Reduced costs, chargeability, complementary slackness ------------
  // z_j = c_j - y'A_j must be chargeable to a finite bound of x_j, and the
  // charge it claims must match where x_j actually sits.  The slackness
  // products are normalized by the primal objective scale, because their sum
  // is exactly the primal-dual gap contribution.
  double primal_obj = 0.0;
  for (int j = 0; j < n; ++j)
    primal_obj += sign * model.variable(j).cost * solution.x[j];

  std::vector<double> yA(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (y[i] == 0.0) continue;
    for (const auto& [col, coef] : model.constraint(i).terms)
      yA[col] += y[i] * coef;
  }

  const double obj_scale = 1.0 + std::abs(primal_obj);
  double dual_obj = 0.0;
  for (int i = 0; i < m; ++i) dual_obj += y[i] * model.constraint(i).rhs;

  // Row complementary slackness: y_i (a_i x - b_i) = 0.
  for (int i = 0; i < m; ++i) {
    const double product = y[i] * (activity[i] - model.constraint(i).rhs);
    const double viol = std::abs(product) / obj_scale;
    if (viol > options.slackness_tol) {
      std::ostringstream ss;
      ss << row_name(model, i) << " complementary slackness violated: dual "
         << y[i] << " x slack " << activity[i] - model.constraint(i).rhs;
      ctx.fail(ss.str());
    }
    report.max_slackness_violation =
        std::max(report.max_slackness_violation, viol);
  }

  for (int j = 0; j < n; ++j) {
    const double c = sign * model.variable(j).cost;
    const double z = c - yA[j];
    const double zscale = 1.0 + std::abs(c) + std::abs(yA[j]);
    const double ztol = options.dual_tol * zscale;
    const double lb = lb_of(j), ub = ub_of(j);
    if (std::abs(z) <= ztol) continue;  // z ~ 0: no charge, no slackness claim

    if (z > 0.0) {
      if (!std::isfinite(lb)) {
        ctx.fail(var_name(model, j) + " has positive reduced cost " +
                 std::to_string(z) + " but no finite lower bound");
        continue;
      }
      dual_obj += z * lb;
      const double viol = z * (solution.x[j] - lb) / obj_scale;
      if (viol > options.slackness_tol) {
        std::ostringstream ss;
        ss << var_name(model, j) << " complementary slackness violated: "
           << "reduced cost " << z << " but x = " << solution.x[j]
           << " above lower bound " << lb;
        ctx.fail(ss.str());
      }
      report.max_slackness_violation =
          std::max(report.max_slackness_violation, std::max(0.0, viol));
    } else {
      if (!std::isfinite(ub)) {
        ctx.fail(var_name(model, j) + " has negative reduced cost " +
                 std::to_string(z) + " but no finite upper bound");
        continue;
      }
      dual_obj += z * ub;
      const double viol = -z * (ub - solution.x[j]) / obj_scale;
      if (viol > options.slackness_tol) {
        std::ostringstream ss;
        ss << var_name(model, j) << " complementary slackness violated: "
           << "reduced cost " << z << " but x = " << solution.x[j]
           << " below upper bound " << ub;
        ctx.fail(ss.str());
      }
      report.max_slackness_violation =
          std::max(report.max_slackness_violation, std::max(0.0, viol));
    }
  }

  // ---- Objective consistency and strong duality -------------------------
  const double reported_obj = sign * solution.objective;
  if (std::abs(primal_obj - reported_obj) >
      options.feasibility_tol * (1.0 + std::abs(primal_obj))) {
    std::ostringstream ss;
    ss << "reported objective " << solution.objective
       << " does not match c'x = " << sign * primal_obj;
    ctx.fail(ss.str());
  }

  report.primal_objective = sign * primal_obj;
  report.dual_objective = sign * dual_obj;
  report.duality_gap = std::abs(primal_obj - dual_obj) /
                       (1.0 + std::abs(primal_obj) + std::abs(dual_obj));
  if (report.duality_gap > options.gap_tol) {
    std::ostringstream ss;
    ss << "duality gap: c'x = " << sign * primal_obj
       << " vs dual objective y'b + bound terms = " << sign * dual_obj;
    ctx.fail(ss.str());
  }

  return report;
}

}  // namespace mmwave::check
