// Independent optimality-certificate checking for LP solves.
//
// A claimed-optimal (x*, y*) pair from the simplex is accepted only if the
// textbook KKT certificate can be re-proved from the model data alone:
//
//   primal feasibility    A x* {<=,=,>=} b  and  l <= x* <= u
//   dual feasibility      y* signs match the row senses; the reduced costs
//                         z_j = c_j - y*'A_j are chargeable to a *finite*
//                         variable bound
//   complementary slack   y*_i (a_i x* - b_i) = 0  per row and
//                         z_j > 0 => x*_j = l_j,  z_j < 0 => x*_j = u_j
//   strong duality        c'x* = y*'b + sum_j z_j . (bound of x*_j)
//                         — for the master LP (l = 0, u = inf) this is
//                         exactly  c'x* = y*'b.
//
// Everything is recomputed here from LpModel + LpSolution; no simplex
// internals (basis, variable states) are consulted, so the checker is a
// genuinely independent referee.  Both objective senses and per-variable
// bound overrides (branch & bound nodes) are supported, matching the dual
// sign convention documented in lp/simplex.h.
#pragma once

#include <string>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace mmwave::check {

struct LpCertOptions {
  /// Relative tolerance on primal constraint/bound residuals.
  double feasibility_tol = 1e-6;
  /// Relative tolerance on dual sign / reduced-cost conditions.
  double dual_tol = 1e-6;
  /// Relative tolerance on complementary-slackness products.
  double slackness_tol = 1e-6;
  /// Relative tolerance on the primal-dual objective gap.
  double gap_tol = 1e-6;
};

struct LpCertReport {
  std::vector<std::string> errors;

  double primal_objective = 0.0;
  /// y'b plus the reduced-cost bound terms (the dual objective value the
  /// certificate supports).
  double dual_objective = 0.0;
  /// Normalized worst residuals actually observed (diagnostics).
  double max_primal_violation = 0.0;
  double max_dual_violation = 0.0;
  double max_slackness_violation = 0.0;
  double duality_gap = 0.0;

  bool ok() const { return errors.empty(); }
  std::string to_string() const;
};

/// Checks the (x, duals) certificate of `solution` against `model`.
LpCertReport check_lp_certificate(const lp::LpModel& model,
                                  const lp::LpSolution& solution,
                                  const LpCertOptions& options = {});

/// Same, under per-variable bound overrides (branch & bound nodes).  `lb`
/// and `ub` must have one entry per variable; empty vectors fall back to
/// the model's own bounds.
LpCertReport check_lp_certificate(const lp::LpModel& model,
                                  const std::vector<double>& lb,
                                  const std::vector<double>& ub,
                                  const lp::LpSolution& solution,
                                  const LpCertOptions& options = {});

}  // namespace mmwave::check
