#include "check/instance_validator.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace mmwave::check {
namespace {

/// Collects findings up to the cap; keeps counting past it.
class IssueSink {
 public:
  IssueSink(InstanceReport& report, const InstanceValidatorOptions& options)
      : report_(report), options_(options) {}

  void add(int link, int channel, std::string detail) {
    if (static_cast<int>(report_.issues.size()) >= options_.max_issues) {
      ++report_.suppressed;
      return;
    }
    report_.issues.push_back({link, channel, std::move(detail)});
  }

 private:
  InstanceReport& report_;
  const InstanceValidatorOptions& options_;
};

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

bool bad_gain(double g) { return !std::isfinite(g) || g < 0.0; }

}  // namespace

std::string InstanceIssue::to_string() const {
  std::ostringstream os;
  if (link >= 0) os << "link " << link << ": ";
  if (channel >= 0) os << "channel " << channel << ": ";
  os << detail;
  return os.str();
}

std::string InstanceReport::to_string() const {
  if (ok()) return "instance OK";
  std::ostringstream os;
  os << "invalid instance (" << issues.size() + suppressed << " finding"
     << (issues.size() + suppressed == 1 ? "" : "s") << "):";
  for (const InstanceIssue& issue : issues) {
    os << "\n  " << issue.to_string();
  }
  if (suppressed > 0) os << "\n  ... and " << suppressed << " more";
  return os.str();
}

InstanceReport validate_instance(const net::Network& net,
                                 const std::vector<video::LinkDemand>& demands,
                                 const InstanceValidatorOptions& options) {
  InstanceReport report;
  IssueSink sink(report, options);

  const int num_links = net.num_links();
  const int num_channels = net.num_channels();
  const net::NetworkParams& params = net.params();

  // --- Shape: counts must be positive and mutually consistent. ----------
  if (num_links <= 0)
    sink.add(-1, -1, "network has no links (num_links = " +
                         std::to_string(num_links) + ")");
  if (num_channels <= 0)
    sink.add(-1, -1, "network has no channels (num_channels = " +
                         std::to_string(num_channels) + ")");
  if (static_cast<int>(demands.size()) != num_links) {
    sink.add(-1, -1,
             "demand vector has " + std::to_string(demands.size()) +
                 " entries but the network has " + std::to_string(num_links) +
                 " links");
  }

  // --- Parameters. -------------------------------------------------------
  if (!std::isfinite(params.p_max_watts) || params.p_max_watts <= 0.0)
    sink.add(-1, -1, "Pmax must be finite and positive, got " +
                         fmt(params.p_max_watts) + " W");
  if (!std::isfinite(params.slot_seconds) || params.slot_seconds <= 0.0)
    sink.add(-1, -1, "slot length must be finite and positive, got " +
                         fmt(params.slot_seconds) + " s");
  if (!std::isfinite(params.bandwidth_hz) || params.bandwidth_hz <= 0.0)
    sink.add(-1, -1, "bandwidth must be finite and positive, got " +
                         fmt(params.bandwidth_hz) + " Hz");

  // --- Rate ladder: non-empty, ascending, positive. ----------------------
  const int num_levels = net.num_rate_levels();
  if (num_levels <= 0) {
    sink.add(-1, -1, "rate ladder is empty (no SINR thresholds)");
  }
  double prev_threshold = 0.0;
  for (int q = 0; q < num_levels; ++q) {
    const net::RateLevel& level = net.rate_level(q);
    if (!std::isfinite(level.sinr_threshold) || level.sinr_threshold <= 0.0) {
      sink.add(-1, -1,
               "rate level " + std::to_string(q) +
                   ": SINR threshold must be finite and positive, got " +
                   fmt(level.sinr_threshold));
    } else if (level.sinr_threshold <= prev_threshold) {
      sink.add(-1, -1,
               "rate level " + std::to_string(q) +
                   ": SINR thresholds must be strictly ascending (" +
                   fmt(level.sinr_threshold) + " after " +
                   fmt(prev_threshold) + ")");
    }
    if (std::isfinite(level.sinr_threshold))
      prev_threshold = level.sinr_threshold;
    if (!std::isfinite(level.rate_bps) || level.rate_bps <= 0.0) {
      sink.add(-1, -1, "rate level " + std::to_string(q) +
                           ": rate must be finite and positive, got " +
                           fmt(level.rate_bps) + " bps");
    }
  }

  // --- Demands: finite, non-negative, bounded, not all zero. -------------
  const int checked_links =
      std::min(num_links, static_cast<int>(demands.size()));
  double total_demand = 0.0;
  for (int l = 0; l < checked_links; ++l) {
    const video::LinkDemand& d = demands[l];
    for (const auto& [bits, name] :
         {std::pair<double, const char*>{d.hp_bits, "HP"},
          std::pair<double, const char*>{d.lp_bits, "LP"}}) {
      if (!std::isfinite(bits)) {
        sink.add(l, -1, std::string(name) + " demand is not finite (" +
                            fmt(bits) + ")");
      } else if (bits < 0.0) {
        sink.add(l, -1, std::string(name) + " demand is negative (" +
                            fmt(bits) + " bits)");
      } else if (bits > options.max_demand_bits) {
        sink.add(l, -1, std::string(name) + " demand " + fmt(bits) +
                            " bits exceeds the sanity cap of " +
                            fmt(options.max_demand_bits) +
                            " (unit mixup?)");
      } else {
        total_demand += bits;
      }
    }
  }
  if (checked_links > 0 && total_demand == 0.0 && report.ok()) {
    sink.add(-1, -1,
             "all demands are zero: nothing to schedule (unit mixup?)");
  }

  // --- Channel model: gains finite and non-negative, noise positive. -----
  for (int l = 0; l < num_links; ++l) {
    const double rho = net.noise(l);
    if (!std::isfinite(rho) || rho <= 0.0)
      sink.add(l, -1,
               "noise power must be finite and positive, got " + fmt(rho) +
                   " W");
    for (int k = 0; k < num_channels; ++k) {
      const double g = net.direct_gain(l, k);
      if (bad_gain(g))
        sink.add(l, k, "direct gain is " + fmt(g) +
                           " (must be finite and non-negative)");
    }
  }
  for (int from = 0; from < num_links; ++from) {
    for (int to = 0; to < num_links; ++to) {
      if (from == to) continue;
      for (int k = 0; k < num_channels; ++k) {
        const double g = net.cross_gain(from, to, k);
        if (bad_gain(g))
          sink.add(to, k, "cross gain from link " + std::to_string(from) +
                              " is " + fmt(g) +
                              " (must be finite and non-negative)");
      }
    }
  }

  return report;
}

namespace {

[[nodiscard]] common::Status spec_error(int line, const std::string& what) {
  return common::Status::Error(
      common::ErrorCode::kInvalidInput,
      "instance spec line " + std::to_string(line) + ": " + what);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// strtod over the *whole* token: trailing garbage is an error, not a
/// silently dropped suffix.
bool parse_double_token(std::string_view token, double& out) {
  const std::string buf(token);  // strtod needs NUL termination
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_int_token(std::string_view token, long long& out) {
  const std::string buf(token);
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_uint_token(std::string_view token, unsigned long long& out) {
  const std::string buf(token);
  if (buf.empty() || buf[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

}  // namespace

[[nodiscard]] common::Expected<InstanceSpec> parse_instance_spec(
    std::string_view text) {
  InstanceSpec spec;
  int line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      return spec_error(line_no, "expected 'key = value', got '" +
                                     std::string(line) + "'");
    const std::string key(trim(line.substr(0, eq)));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) return spec_error(line_no, "empty key");
    if (value.empty())
      return spec_error(line_no, "empty value for '" + key + "'");

    auto int_in_range = [&](const char* name, long long lo, long long hi,
                            int& out) -> common::Status {
      long long v = 0;
      if (!parse_int_token(value, v))
        return spec_error(line_no, std::string(name) +
                                       ": expected an integer, got '" +
                                       std::string(value) + "'");
      if (v < lo || v > hi)
        return spec_error(line_no, std::string(name) + " = " +
                                       std::to_string(v) +
                                       " out of range [" + std::to_string(lo) +
                                       ", " + std::to_string(hi) + "]");
      out = static_cast<int>(v);
      return common::Status::Ok();
    };
    auto positive_double = [&](const char* name,
                               double& out) -> common::Status {
      double v = 0.0;
      if (!parse_double_token(value, v))
        return spec_error(line_no, std::string(name) +
                                       ": expected a number, got '" +
                                       std::string(value) + "'");
      if (!std::isfinite(v) || v <= 0.0)
        return spec_error(line_no, std::string(name) +
                                       " must be finite and positive, got " +
                                       std::string(value));
      out = v;
      return common::Status::Ok();
    };

    common::Status st = common::Status::Ok();
    if (key == "links") {
      st = int_in_range("links", 1, 4096, spec.links);
    } else if (key == "channels") {
      st = int_in_range("channels", 1, 1024, spec.channels);
    } else if (key == "levels") {
      st = int_in_range("levels", 1, 64, spec.levels);
    } else if (key == "gamma_scale" || key == "gamma-scale") {
      st = positive_double("gamma_scale", spec.gamma_scale);
    } else if (key == "demand_scale" || key == "demand-scale") {
      st = positive_double("demand_scale", spec.demand_scale);
    } else if (key == "seed") {
      unsigned long long v = 0;
      if (!parse_uint_token(value, v))
        st = spec_error(line_no, "seed: expected a non-negative integer, "
                                 "got '" + std::string(value) + "'");
      else
        spec.seed = static_cast<std::uint64_t>(v);
    } else {
      st = spec_error(line_no, "unknown key '" + key + "'");
    }
    if (!st.ok()) return st;
  }
  return spec;
}

}  // namespace mmwave::check
