#include "check/schedule_verifier.h"

#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace mmwave::check {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::LinkOutOfRange: return "LinkOutOfRange";
    case ViolationKind::ChannelOutOfRange: return "ChannelOutOfRange";
    case ViolationKind::RateLevelOutOfRange: return "RateLevelOutOfRange";
    case ViolationKind::PowerOutOfRange: return "PowerOutOfRange";
    case ViolationKind::DuplicateLink: return "DuplicateLink";
    case ViolationKind::DuplicateLayer: return "DuplicateLayer";
    case ViolationKind::LayerSplitChannel: return "LayerSplitChannel";
    case ViolationKind::HalfDuplex: return "HalfDuplex";
    case ViolationKind::LinkPowerCap: return "LinkPowerCap";
    case ViolationKind::SinrBelowThreshold: return "SinrBelowThreshold";
    case ViolationKind::NegativeDuration: return "NegativeDuration";
    case ViolationKind::DemandShortfall: return "DemandShortfall";
  }
  return "Unknown";
}

std::string Violation::to_string() const {
  std::ostringstream ss;
  ss << check::to_string(kind);
  if (link >= 0) ss << " link=" << link;
  if (channel >= 0) ss << " channel=" << channel;
  ss << ": " << detail;
  return ss.str();
}

std::string VerifyReport::to_string() const {
  if (ok()) return "ok";
  std::ostringstream ss;
  ss << violations.size() << " violation(s)";
  for (const Violation& v : violations) ss << "\n  " << v.to_string();
  return ss.str();
}

namespace {

Violation make(ViolationKind kind, int link, int channel, double measured,
               double limit, std::string detail) {
  Violation v;
  v.kind = kind;
  v.link = link;
  v.channel = channel;
  v.measured = measured;
  v.limit = limit;
  v.detail = std::move(detail);
  return v;
}

std::string describe(const char* what, double measured, double limit) {
  std::ostringstream ss;
  ss << what << " (" << measured << " vs limit " << limit << ")";
  return ss.str();
}

}  // namespace

VerifyReport ScheduleVerifier::verify(const sched::Schedule& schedule) const {
  VerifyReport report;
  const double pmax = net_.params().p_max_watts;
  const double pmax_slack = pmax * (1.0 + options_.power_rel_slack);

  // ---- Per-transmission range checks ------------------------------------
  // Transmissions with out-of-range indices are excluded from the
  // cross-checks below (they would index out of bounds) but still reported.
  std::vector<const sched::Transmission*> valid;
  for (const sched::Transmission& tx : schedule.transmissions()) {
    bool in_range = true;
    if (tx.link < 0 || tx.link >= net_.num_links()) {
      report.violations.push_back(make(
          ViolationKind::LinkOutOfRange, tx.link, tx.channel, tx.link,
          net_.num_links(), describe("link index", tx.link, net_.num_links())));
      in_range = false;
    }
    if (tx.channel < 0 || tx.channel >= net_.num_channels()) {
      report.violations.push_back(
          make(ViolationKind::ChannelOutOfRange, tx.link, tx.channel,
               tx.channel, net_.num_channels(),
               describe("channel index", tx.channel, net_.num_channels())));
      in_range = false;
    }
    if (tx.rate_level < 0 || tx.rate_level >= net_.num_rate_levels()) {
      report.violations.push_back(
          make(ViolationKind::RateLevelOutOfRange, tx.link, tx.channel,
               tx.rate_level, net_.num_rate_levels(),
               describe("rate level", tx.rate_level, net_.num_rate_levels())));
      in_range = false;
    }
    // A power violation is reported but does not exclude the transmission
    // from the cross-checks below — only un-indexable ones must be skipped.
    if (tx.power_watts < -pmax * options_.power_rel_slack ||
        tx.power_watts > pmax_slack) {
      report.violations.push_back(
          make(ViolationKind::PowerOutOfRange, tx.link, tx.channel,
               tx.power_watts, pmax,
               describe("transmit power", tx.power_watts, pmax)));
    }
    if (in_range) valid.push_back(&tx);
  }

  // ---- Constraint (30) / layer-split multiplicity -----------------------
  std::set<int> seen_links;
  std::set<std::pair<int, int>> seen_link_layer;
  std::set<std::pair<int, int>> seen_link_channel;
  for (const sched::Transmission* tx : valid) {
    if (options_.allow_layer_split) {
      if (!seen_link_layer.insert({tx->link, static_cast<int>(tx->layer)})
               .second) {
        report.violations.push_back(make(
            ViolationKind::DuplicateLayer, tx->link, tx->channel, 0, 0,
            "same (link, layer) scheduled twice"));
      }
      if (!seen_link_channel.insert({tx->link, tx->channel}).second) {
        report.violations.push_back(make(
            ViolationKind::LayerSplitChannel, tx->link, tx->channel, 0, 0,
            "layer-split layers must ride distinct channels"));
      }
    } else if (!seen_links.insert(tx->link).second) {
      report.violations.push_back(
          make(ViolationKind::DuplicateLink, tx->link, tx->channel, 0, 0,
               "link scheduled twice; constraint (30) allows one "
               "(layer, rate, channel) choice per link"));
    }
  }

  // ---- Constraints (31)-(32): half-duplex nodes -------------------------
  std::map<int, int> node_owner;  // node -> first link claiming it
  for (const sched::Transmission* tx : valid) {
    const net::Link& link = net_.link(tx->link);
    for (int node : {link.tx_node, link.rx_node}) {
      auto [it, inserted] = node_owner.try_emplace(node, tx->link);
      if (!inserted && it->second != tx->link) {
        std::ostringstream ss;
        ss << "node " << node << " used by links " << it->second << " and "
           << tx->link;
        report.violations.push_back(make(ViolationKind::HalfDuplex, tx->link,
                                         tx->channel, node, 1, ss.str()));
      }
    }
  }

  // ---- Per-link total power cap -----------------------------------------
  std::map<int, double> link_power;
  for (const sched::Transmission* tx : valid)
    link_power[tx->link] += tx->power_watts;
  for (const auto& [l, p] : link_power) {
    if (p > pmax_slack) {
      report.violations.push_back(
          make(ViolationKind::LinkPowerCap, l, -1, p, pmax,
               describe("summed link power", p, pmax)));
    }
  }

  // ---- Constraint (3): co-channel SINR, recomputed from raw gains -------
  std::map<int, std::vector<const sched::Transmission*>> by_channel;
  for (const sched::Transmission* tx : valid) by_channel[tx->channel].push_back(tx);

  for (const auto& [k, txs] : by_channel) {
    for (const sched::Transmission* rx : txs) {
      // Interference at rx's receiver: noise plus every co-channel
      // transmitter's power through its cross gain into this receiver.
      double interference = net_.noise(rx->link);
      for (const sched::Transmission* other : txs) {
        if (other == rx) continue;
        interference +=
            net_.cross_gain(other->link, rx->link, k) * other->power_watts;
      }
      const double signal = net_.direct_gain(rx->link, k) * rx->power_watts;
      const double sinr =
          interference > 0.0
              ? signal / interference
              : (signal > 0.0 ? std::numeric_limits<double>::infinity() : 0.0);
      const double gamma = net_.rate_level(rx->rate_level).sinr_threshold;
      if (sinr < gamma * (1.0 - options_.sinr_rel_slack)) {
        std::ostringstream ss;
        ss << "SINR " << sinr << " below gamma^q " << gamma << " at level "
           << rx->rate_level;
        report.violations.push_back(make(ViolationKind::SinrBelowThreshold,
                                         rx->link, k, sinr, gamma, ss.str()));
      }
    }
  }

  return report;
}

VerifyReport ScheduleVerifier::verify_timeline(
    const std::vector<sched::TimedSchedule>& timeline,
    const std::vector<video::LinkDemand>& demands,
    const std::vector<int>& unserved_links) const {
  VerifyReport report;
  std::vector<double> hp_bits(net_.num_links(), 0.0);
  std::vector<double> lp_bits(net_.num_links(), 0.0);
  const double slot = net_.params().slot_seconds;

  for (std::size_t s = 0; s < timeline.size(); ++s) {
    const sched::TimedSchedule& ts = timeline[s];
    if (ts.slots < 0.0) {
      std::ostringstream ss;
      ss << "schedule " << s << " has negative duration " << ts.slots;
      report.violations.push_back(
          make(ViolationKind::NegativeDuration, -1, -1, ts.slots, 0.0,
               ss.str()));
    }
    VerifyReport one = verify(ts.schedule);
    for (Violation& v : one.violations) {
      v.detail = "schedule " + std::to_string(s) + ": " + v.detail;
      report.violations.push_back(std::move(v));
    }
    for (const sched::Transmission& tx : ts.schedule.transmissions()) {
      if (tx.link < 0 || tx.link >= net_.num_links()) continue;
      if (tx.rate_level < 0 || tx.rate_level >= net_.num_rate_levels())
        continue;
      const double bits =
          net_.rate_level(tx.rate_level).rate_bps * slot * ts.slots;
      (tx.layer == net::Layer::Hp ? hp_bits : lp_bits)[tx.link] += bits;
    }
  }

  const std::set<int> exempt(unserved_links.begin(), unserved_links.end());
  for (int l = 0; l < net_.num_links() &&
                  l < static_cast<int>(demands.size());
       ++l) {
    if (exempt.count(l)) continue;
    struct LayerCase {
      const char* name;
      double delivered;
      double demanded;
    };
    for (const LayerCase& c :
         {LayerCase{"HP", hp_bits[l], demands[l].hp_bits},
          LayerCase{"LP", lp_bits[l], demands[l].lp_bits}}) {
      if (c.delivered < c.demanded * (1.0 - options_.demand_rel_slack)) {
        std::ostringstream ss;
        ss << c.name << " coverage shortfall: delivered " << c.delivered
           << " of " << c.demanded << " bits";
        report.violations.push_back(make(ViolationKind::DemandShortfall, l, -1,
                                         c.delivered, c.demanded, ss.str()));
      }
    }
  }
  return report;
}

}  // namespace mmwave::check
