// Instance validation: reject malformed problem instances with actionable
// diagnostics *before* any solver touches them.
//
// The solvers assume a well-formed instance (finite non-negative gains,
// finite non-negative demands, consistent link counts, a sane rate ladder).
// A NaN gain or a negative demand does not crash them — it silently poisons
// duals, bounds and schedules.  validate_instance re-derives every such
// assumption from the instance itself and reports *all* violations, each
// with enough context (link, channel, offending value) to fix the input.
//
// parse_instance_spec is the text front end used by `mmwave_cli
// --instance=FILE` and the fuzz harness: a line-oriented `key = value`
// format describing the Table-I generator parameters.  It returns a
// structured error (never throws, never crashes) on any malformed input —
// that contract is what the fuzzer exercises.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "mmwave/network.h"
#include "video/demand.h"

namespace mmwave::check {

/// One validation finding with enough context to act on it.
struct InstanceIssue {
  int link = -1;     ///< offending link, -1 when not link-specific
  int channel = -1;  ///< offending channel, -1 when not channel-specific
  std::string detail;

  std::string to_string() const;
};

struct InstanceReport {
  std::vector<InstanceIssue> issues;
  /// Findings beyond the reporting cap (the scan keeps counting so the
  /// caller knows the true extent, but stops allocating strings).
  int suppressed = 0;

  bool ok() const { return issues.empty() && suppressed == 0; }
  /// Multi-line human-readable diagnosis ("instance OK" when ok()).
  std::string to_string() const;
};

struct InstanceValidatorOptions {
  /// Stop materializing issue strings after this many findings (the count
  /// of additional ones is still reported via InstanceReport::suppressed).
  int max_issues = 32;
  /// Demands above this many bits are rejected as absurd (defaults to well
  /// beyond any per-GOP video demand; guards accidental unit mixups like
  /// passing bytes*1e9 or an un-scaled overflow).
  double max_demand_bits = 1e18;
};

/// Re-derives every instance-level assumption the solvers make:
///   * demand vector sized to the network's link count;
///   * demands finite, non-negative, below the absurdity cap, and not all
///     zero (an all-zero instance is a unit mixup, not a problem);
///   * direct/cross gains finite and non-negative on every channel;
///   * per-link noise finite and positive;
///   * network parameters (Pmax, slot length, link/channel counts) positive;
///   * rate ladder non-empty with finite, positive, strictly ascending SINR
///     thresholds and positive rates.
InstanceReport validate_instance(const net::Network& net,
                                 const std::vector<video::LinkDemand>& demands,
                                 const InstanceValidatorOptions& options = {});

/// Generator parameters for a Table-I instance, as read from an instance
/// spec file.  Mirrors the mmwave_cli instance flags.
struct InstanceSpec {
  int links = 10;
  int channels = 5;
  int levels = 5;
  double gamma_scale = 1.0;
  std::uint64_t seed = 1;
  double demand_scale = 1e-3;
};

/// Parses the line-oriented instance-spec format:
///
///   # comment
///   links = 20
///   channels = 5
///   levels = 5
///   gamma_scale = 1.0
///   seed = 42
///   demand_scale = 1e-3
///
/// Unknown keys, non-numeric values, values out of their sane range
/// (links in [1, 4096], channels in [1, 1024], levels in [1, 64], positive
/// finite scales) and malformed lines each yield kInvalidInput with a
/// one-line "line N: ..." diagnosis.  Never throws on any byte sequence.
[[nodiscard]] common::Expected<InstanceSpec> parse_instance_spec(
    std::string_view text);

}  // namespace mmwave::check
