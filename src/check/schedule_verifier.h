// Independent feasibility verification of emitted schedules.
//
// ScheduleVerifier re-derives every Section III/IV feasibility requirement
// of a sched::Schedule from first principles — channel gains, noise floors
// and the rate ladder only — sharing no code with the pricing MILP or the
// greedy heuristic that produced the schedule (it does not call
// net::achieved_sinr or the power-control solvers).  It is the certificate
// half of the correctness-analysis layer: a schedule the optimizer emits is
// accepted only if this referee can re-prove
//   * constraint (30): one (layer, rate, channel) choice per link — or, in
//     layer-split mode, one per (link, layer) on distinct channels;
//   * constraints (31)-(32): node half-duplex / single beam;
//   * per-link total power within [0, Pmax];
//   * constraint (3): co-channel SINR >= gamma^q at every active receiver
//     under the schedule's actual powers.
//
// Unlike sched::validate_schedule (a first-failure gate used inside the
// optimizer), the verifier collects *every* violation with structured
// context, so a corrupted schedule yields a full diagnosis.
#pragma once

#include <string>
#include <vector>

#include "mmwave/network.h"
#include "sched/schedule.h"
#include "sched/timeline.h"
#include "video/demand.h"

namespace mmwave::check {

enum class ViolationKind {
  LinkOutOfRange,
  ChannelOutOfRange,
  RateLevelOutOfRange,
  PowerOutOfRange,
  DuplicateLink,       ///< constraint (30): link scheduled twice
  DuplicateLayer,      ///< layer-split: same (link, layer) twice
  LayerSplitChannel,   ///< layer-split layers sharing one channel
  HalfDuplex,          ///< constraints (31)-(32): node used by two links
  LinkPowerCap,        ///< summed per-link power above Pmax
  SinrBelowThreshold,  ///< constraint (3): SINR < gamma^q
  NegativeDuration,    ///< timeline: tau^s < 0
  DemandShortfall,     ///< timeline: delivered bits below the demand
};

const char* to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::SinrBelowThreshold;
  int link = -1;         ///< offending link, -1 when not link-specific
  int channel = -1;      ///< offending channel, -1 when not channel-specific
  double measured = 0.0; ///< the recomputed quantity
  double limit = 0.0;    ///< the bound it had to satisfy
  std::string detail;    ///< human-readable diagnosis

  std::string to_string() const;
};

struct VerifyReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

struct VerifyOptions {
  /// Relative slack on SINR thresholds (absorbs solver tolerance dust).
  double sinr_rel_slack = 1e-6;
  /// Relative slack on the Pmax cap.
  double power_rel_slack = 1e-9;
  /// Relative slack on timeline demand coverage.
  double demand_rel_slack = 1e-6;
  /// Accept one transmission per (link, layer) on distinct channels
  /// (the Section III remark) instead of one per link.
  bool allow_layer_split = false;
};

class ScheduleVerifier {
 public:
  explicit ScheduleVerifier(const net::Network& net, VerifyOptions options = {})
      : net_(net), options_(options) {}

  /// Re-proves feasibility of one schedule; collects all violations.
  VerifyReport verify(const sched::Schedule& schedule) const;

  /// Verifies every schedule of a solved timeline plus the covering
  /// requirement: sum_s tau^s r_l^s >= d_l per link and layer.  Links in
  /// `unserved_links` (demand excluded by the optimizer) are exempt from
  /// the coverage check.
  VerifyReport verify_timeline(
      const std::vector<sched::TimedSchedule>& timeline,
      const std::vector<video::LinkDemand>& demands,
      const std::vector<int>& unserved_links = {}) const;

  const VerifyOptions& options() const { return options_; }

 private:
  const net::Network& net_;
  VerifyOptions options_;
};

}  // namespace mmwave::check
