#include "stream/session.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "baselines/baselines.h"
#include "core/checkpoint.h"
#include "core/column_generation.h"
#include "core/resolve.h"

namespace mmwave::stream {

namespace {

// Canonical byte string for a solved timeline: the schedule's content key
// (sorted transmissions, power excluded) plus the exact slot count.  Two
// solves that produce byte-identical plans hash equal; anything else — a
// different column, a different duration — does not.  The digest chain over
// these is the chaos-soak equality witness.
std::uint64_t timeline_digest(
    const std::vector<sched::TimedSchedule>& timeline) {
  std::string bytes;
  char buf[64];
  for (const sched::TimedSchedule& entry : timeline) {
    bytes += entry.schedule.key();
    std::snprintf(buf, sizeof(buf), "|%.17g;", entry.slots);
    bytes += buf;
  }
  return core::fnv1a64(bytes);
}

}  // namespace

Scheduler make_cg_scheduler(const CgSchedulerOptions& options) {
  return make_cg_scheduler(options, nullptr);
}

Scheduler make_cg_scheduler(const CgSchedulerOptions& options,
                            SolverContext* context) {
  return [options, context](const net::Network& net,
                            const std::vector<video::LinkDemand>& demands) {
    core::CgOptions cg;
    cg.pricing = options.heuristic_only
                     ? core::PricingMode::HeuristicOnly
                     : core::PricingMode::HeuristicThenExact;
    cg.verify = options.verify;
    core::InstanceSignature signature;
    int seeded_survivors = 0;
    if (context != nullptr) {
      signature = core::make_signature(net, demands);
      // The manager hands back the nearest known instances' columns; repair
      // against the current gains so only columns re-proven feasible on
      // *this* network enter the master.
      const std::vector<sched::Schedule> candidates =
          context->manager.seed(signature);
      if (!candidates.empty()) {
        core::RepairStats stats;
        cg.warm_pool =
            core::repair_pool(net, candidates, &stats, {}, options.repair);
        context->columns_loaded += stats.loaded;
        context->columns_reused += stats.survivors();
        context->columns_repaired += stats.repaired;
        context->columns_dropped += stats.dropped;
        context->transmissions_dropped += stats.transmissions_dropped;
        seeded_survivors = stats.survivors();
      }
    }
    const auto result = core::solve_column_generation(net, demands, cg);
    if (context != nullptr) {
      context->manager.store(signature, net, result);
      context->pool = result.pool;
      ++context->periods;
      ++context->resolves;
      if (seeded_survivors > 0) {
        ++context->pool_hits;
      } else {
        ++context->pool_misses;
      }
      if (options.verify && !result.verification.errors.empty()) {
        ++context->verify_failures;
      }
      // Fold this period's plan into the digest chain: a resumed session
      // replaying the same periods must reproduce the same chain.
      const std::uint64_t digest = timeline_digest(result.timeline);
      context->last_plan_digest = digest;
      char chain_bytes[40];
      std::snprintf(chain_bytes, sizeof(chain_bytes), "%016llx%016llx",
                    static_cast<unsigned long long>(context->plan_digest_chain),
                    static_cast<unsigned long long>(digest));
      context->plan_digest_chain = core::fnv1a64(chain_bytes);
      if (options.capture_checkpoint) {
        context->last_checkpoint = core::make_checkpoint(net, demands, result);
        context->has_last_checkpoint = true;
      }
    }
    SchedulerResult out;
    out.timeline = result.timeline;
    out.order = sched::ExecutionOrder::CompletionAware;
    out.ok = !result.timeline.empty() || result.total_slots == 0.0;
    return out;
  };
}

Scheduler make_tdma_scheduler() {
  return [](const net::Network& net,
            const std::vector<video::LinkDemand>& demands) {
    const auto result = baselines::tdma(net, demands);
    return SchedulerResult{result.timeline, sched::ExecutionOrder::AsGiven,
                           result.served_all};
  };
}

Scheduler make_benchmark1_scheduler() {
  return [](const net::Network& net,
            const std::vector<video::LinkDemand>& demands) {
    const auto result = baselines::benchmark1(net, demands);
    return SchedulerResult{result.timeline, sched::ExecutionOrder::AsGiven,
                           result.served_all};
  };
}

Scheduler make_benchmark2_scheduler() {
  return [](const net::Network& net,
            const std::vector<video::LinkDemand>& demands) {
    const auto result = baselines::benchmark2(net, demands);
    return SchedulerResult{result.timeline, sched::ExecutionOrder::AsGiven,
                           result.served_all};
  };
}

SessionMetrics run_session(const net::Network& net,
                           const SessionConfig& config,
                           const Scheduler& scheduler, common::Rng& rng) {
  SessionMetrics metrics;
  const int num_links = net.num_links();
  const double gop_seconds =
      static_cast<double>(config.video.gop_pattern.size()) /
      config.video.fps;
  const double budget_slots = gop_seconds / net.params().slot_seconds;

  // Per-link trace streams: one long trace per link, consumed GOP by GOP.
  std::vector<video::VideoTrace> traces;
  std::vector<std::vector<video::GopDemand>> gop_demands;
  traces.reserve(num_links);
  for (int l = 0; l < num_links; ++l) {
    common::Rng stream = rng.fork(static_cast<std::uint64_t>(l));
    traces.push_back(video::VideoTrace::generate(
        config.video,
        config.num_gops * static_cast<int>(config.video.gop_pattern.size()),
        stream));
    gop_demands.push_back(
        video::per_gop_demands(traces.back(), config.scalable));
  }

  double carryover_stall = 0.0;
  std::vector<double> delivered_bits(num_links, 0.0);

  for (int g = 0; g < config.num_gops; ++g) {
    std::vector<video::LinkDemand> demands(num_links);
    double total = 0.0;
    for (int l = 0; l < num_links; ++l) {
      demands[l].hp_bits = gop_demands[l][g].hp_bits * config.demand_scale;
      demands[l].lp_bits = gop_demands[l][g].lp_bits * config.demand_scale;
      total += demands[l].total();
    }

    const SchedulerResult plan = scheduler(net, demands);
    const auto exec =
        sched::execute_timeline(net, plan.timeline, demands, plan.order);

    GopRecord rec;
    rec.gop = g;
    rec.demand_bits = total;
    rec.schedule_slots = exec.total_slots;
    rec.budget_slots = budget_slots;
    // The PNC starts this period late by whatever stall is carried over.
    const double finish = carryover_stall + exec.total_slots;
    rec.on_time = exec.all_demands_met && finish <= budget_slots + 1e-9;
    rec.stall_slots = std::max(0.0, finish - budget_slots);
    carryover_stall = rec.stall_slots;
    metrics.total_stall_slots += rec.stall_slots;
    if (!exec.all_demands_met || !plan.ok) metrics.all_served = false;
    for (int l = 0; l < num_links; ++l) {
      delivered_bits[l] +=
          exec.hp_delivered_bits[l] + exec.lp_delivered_bits[l];
    }
    metrics.gops.push_back(rec);
  }

  int on_time = 0;
  for (const GopRecord& r : metrics.gops)
    if (r.on_time) ++on_time;
  metrics.on_time_ratio =
      metrics.gops.empty()
          ? 1.0
          : static_cast<double>(on_time) /
                static_cast<double>(metrics.gops.size());

  // Session PSNR from each link's mean delivered rate (undo demo scaling so
  // the dB numbers refer to the real video bitrate).
  const double horizon_seconds = config.num_gops * gop_seconds;
  double psnr_sum = 0.0;
  for (int l = 0; l < num_links; ++l) {
    const double rate =
        delivered_bits[l] / horizon_seconds / config.demand_scale;
    psnr_sum += config.psnr.psnr(rate);
  }
  metrics.mean_psnr_db = num_links > 0 ? psnr_sum / num_links : 0.0;
  return metrics;
}

}  // namespace mmwave::stream
