#include "stream/blockage_session.h"

#include <algorithm>
#include <map>
#include <memory>

#include "mmwave/power_control.h"

namespace mmwave::stream {
namespace {

/// Drops transmissions whose SINR no longer clears their rate level on the
/// (blocked) execution network.  Surviving members' SINR is evaluated with
/// the *full* schedule's interference — failed transmitters keep radiating,
/// they just deliver nothing.
sched::Schedule degrade_schedule(const net::Network& exec_net,
                                 const sched::Schedule& schedule,
                                 int& num_dropped) {
  std::map<int, std::vector<const sched::Transmission*>> by_channel;
  for (const sched::Transmission& tx : schedule.transmissions())
    by_channel[tx.channel].push_back(&tx);

  sched::Schedule degraded;
  for (const auto& [k, txs] : by_channel) {
    std::vector<int> links;
    std::vector<double> powers;
    for (const auto* tx : txs) {
      links.push_back(tx->link);
      powers.push_back(tx->power_watts);
    }
    const std::vector<double> sinr =
        net::achieved_sinr(exec_net, k, links, powers);
    for (std::size_t i = 0; i < txs.size(); ++i) {
      const double threshold =
          exec_net.rate_level(txs[i]->rate_level).sinr_threshold;
      if (sinr[i] >= threshold * (1.0 - 1e-9)) {
        degraded.add(*txs[i]);
      } else {
        ++num_dropped;
      }
    }
  }
  return degraded;
}

}  // namespace

BlockageSessionMetrics run_blockage_session(
    const net::ChannelModel& base_model, const net::NetworkParams& params,
    const BlockageSessionConfig& config, const Scheduler& scheduler,
    common::Rng& rng, SolverContext* solver_context) {
  BlockageSessionMetrics out;
  // The context's counters are cumulative across sessions; snapshot them now
  // so the metrics below report this session's deltas.
  struct ContextSnapshot {
    int periods = 0, loaded = 0, reused = 0, repaired = 0, dropped = 0;
    int resolves = 0, hits = 0, misses = 0;
    std::int64_t evicted = 0, neighbour_seeded = 0;
  } before;
  if (solver_context != nullptr) {
    before.periods = solver_context->periods;
    before.loaded = solver_context->columns_loaded;
    before.reused = solver_context->columns_reused;
    before.repaired = solver_context->columns_repaired;
    before.dropped = solver_context->columns_dropped;
    before.resolves = solver_context->resolves;
    before.hits = solver_context->pool_hits;
    before.misses = solver_context->pool_misses;
    before.evicted = solver_context->manager.metrics().evicted;
    before.neighbour_seeded = solver_context->manager.metrics().neighbour_seeded;
  }
  const int num_links = params.num_links;
  const SessionConfig& scfg = config.session;
  const double gop_seconds =
      static_cast<double>(scfg.video.gop_pattern.size()) / scfg.video.fps;

  // Clear-air network for oblivious scheduling.
  std::vector<double> ones(num_links, 1.0);
  net::Network clear_net(
      params, std::make_unique<net::RxScaledChannelModel>(&base_model, ones));
  const double budget_slots = gop_seconds / params.slot_seconds;

  // Demand streams (same construction as run_session).
  std::vector<std::vector<video::GopDemand>> gop_demands;
  for (int l = 0; l < num_links; ++l) {
    common::Rng stream = rng.fork(static_cast<std::uint64_t>(l));
    const video::VideoTrace trace = video::VideoTrace::generate(
        scfg.video,
        scfg.num_gops * static_cast<int>(scfg.video.gop_pattern.size()),
        stream);
    gop_demands.push_back(video::per_gop_demands(trace, scfg.scalable));
  }

  common::Rng blockage_rng = rng.fork(0xB10C);
  net::BlockageProcess process(num_links, config.blockage, blockage_rng);

  double carryover_stall = 0.0;
  std::vector<double> delivered_bits(num_links, 0.0);
  double blocked_fraction_sum = 0.0;

  for (int g = 0; g < scfg.num_gops; ++g) {
    if (g > 0) process.advance(blockage_rng);
    blocked_fraction_sum +=
        static_cast<double>(process.num_blocked()) / num_links;

    std::vector<double> scales(num_links);
    for (int l = 0; l < num_links; ++l) scales[l] = process.rx_attenuation(l);
    net::Network blocked_net(
        params,
        std::make_unique<net::RxScaledChannelModel>(&base_model, scales));

    std::vector<video::LinkDemand> demands(num_links);
    double total = 0.0;
    for (int l = 0; l < num_links; ++l) {
      demands[l].hp_bits = gop_demands[l][g].hp_bits * scfg.demand_scale;
      demands[l].lp_bits = gop_demands[l][g].lp_bits * scfg.demand_scale;
      total += demands[l].total();
    }

    const net::Network& plan_net =
        config.reschedule_each_period ? blocked_net : clear_net;
    SchedulerResult plan = scheduler(plan_net, demands);

    // Execution always happens on the blocked gains.
    int dropped_this_period = 0;
    std::vector<sched::TimedSchedule> executable;
    executable.reserve(plan.timeline.size());
    for (const auto& ts : plan.timeline) {
      executable.push_back(
          {degrade_schedule(blocked_net, ts.schedule, dropped_this_period),
           ts.slots});
    }
    if (dropped_this_period > 0) ++out.invalidated_periods;
    out.exec_transmissions_dropped += dropped_this_period;

    const auto exec =
        sched::execute_timeline(blocked_net, executable, demands, plan.order);

    GopRecord rec;
    rec.gop = g;
    rec.demand_bits = total;
    rec.schedule_slots = exec.total_slots;
    rec.budget_slots = budget_slots;
    const double finish = carryover_stall + exec.total_slots;
    rec.on_time = exec.all_demands_met && finish <= budget_slots + 1e-9;
    rec.stall_slots = std::max(0.0, finish - budget_slots);
    carryover_stall = rec.stall_slots;
    out.base.total_stall_slots += rec.stall_slots;
    if (!exec.all_demands_met || !plan.ok) out.base.all_served = false;
    for (int l = 0; l < num_links; ++l) {
      delivered_bits[l] +=
          exec.hp_delivered_bits[l] + exec.lp_delivered_bits[l];
    }
    out.base.gops.push_back(rec);
  }

  int on_time = 0;
  for (const GopRecord& r : out.base.gops)
    if (r.on_time) ++on_time;
  out.base.on_time_ratio =
      out.base.gops.empty()
          ? 1.0
          : static_cast<double>(on_time) /
                static_cast<double>(out.base.gops.size());

  const double horizon_seconds = scfg.num_gops * gop_seconds;
  double psnr_sum = 0.0;
  for (int l = 0; l < num_links; ++l) {
    const double rate =
        delivered_bits[l] / horizon_seconds / scfg.demand_scale;
    psnr_sum += scfg.psnr.psnr(rate);
  }
  out.base.mean_psnr_db = num_links > 0 ? psnr_sum / num_links : 0.0;
  out.mean_blocked_fraction = blocked_fraction_sum / scfg.num_gops;
  if (solver_context != nullptr) {
    out.pool_periods = solver_context->periods - before.periods;
    out.pool_columns_loaded = solver_context->columns_loaded - before.loaded;
    out.pool_columns_reused = solver_context->columns_reused - before.reused;
    out.pool_columns_repaired =
        solver_context->columns_repaired - before.repaired;
    out.pool_columns_dropped =
        solver_context->columns_dropped - before.dropped;
    out.pool_hit_rate =
        out.pool_columns_loaded > 0
            ? static_cast<double>(out.pool_columns_reused) /
                  out.pool_columns_loaded
            : 0.0;
    out.pool_resolves = solver_context->resolves - before.resolves;
    out.pool_hits = solver_context->pool_hits - before.hits;
    out.pool_misses = solver_context->pool_misses - before.misses;
    out.pool_evicted =
        solver_context->manager.metrics().evicted - before.evicted;
    out.pool_neighbour_seeded =
        solver_context->manager.metrics().neighbour_seeded -
        before.neighbour_seeded;
  }
  return out;
}

}  // namespace mmwave::stream
