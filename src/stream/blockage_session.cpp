#include "stream/blockage_session.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>

#include "common/fault_injection.h"
#include "mmwave/power_control.h"

namespace mmwave::stream {
namespace {

/// Drops transmissions whose SINR no longer clears their rate level on the
/// (blocked) execution network.  Surviving members' SINR is evaluated with
/// the *full* schedule's interference — failed transmitters keep radiating,
/// they just deliver nothing.
sched::Schedule degrade_schedule(const net::Network& exec_net,
                                 const sched::Schedule& schedule,
                                 int& num_dropped) {
  std::map<int, std::vector<const sched::Transmission*>> by_channel;
  for (const sched::Transmission& tx : schedule.transmissions())
    by_channel[tx.channel].push_back(&tx);

  sched::Schedule degraded;
  for (const auto& [k, txs] : by_channel) {
    std::vector<int> links;
    std::vector<double> powers;
    for (const auto* tx : txs) {
      links.push_back(tx->link);
      powers.push_back(tx->power_watts);
    }
    const std::vector<double> sinr =
        net::achieved_sinr(exec_net, k, links, powers);
    for (std::size_t i = 0; i < txs.size(); ++i) {
      const double threshold =
          exec_net.rate_level(txs[i]->rate_level).sinr_threshold;
      if (sinr[i] >= threshold * (1.0 - 1e-9)) {
        degraded.add(*txs[i]);
      } else {
        ++num_dropped;
      }
    }
  }
  return degraded;
}

void append_json(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += '"';
  out += key;
  out += "\":";
  out += buf;
}

void append_json(std::string& out, const char* key, int value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void append_json(std::string& out, const char* key, bool value) {
  out += '"';
  out += key;
  out += "\":";
  out += value ? "true" : "false";
}

}  // namespace

std::uint64_t blockage_session_fingerprint(const BlockageSessionConfig& config,
                                           int num_links, std::uint64_t seed) {
  std::string bytes = "blockage-session|";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%d|%d|%.17g|", num_links,
                config.session.num_gops, config.session.demand_scale);
  bytes += buf;
  std::snprintf(buf, sizeof(buf), "%.17g|%.17g|", config.session.video.fps,
                config.session.video.mean_bitrate_bps);
  bytes += buf;
  bytes += config.session.video.gop_pattern;
  std::snprintf(buf, sizeof(buf), "|%.17g|%.17g|%.17g|%.17g|%d|%" PRIu64,
                config.blockage.p_block, config.blockage.p_recover,
                config.blockage.attenuation, config.blockage.initial_blocked,
                config.reschedule_each_period ? 1 : 0, seed);
  bytes += buf;
  // The buffer model and demand policy shape the period stream (drain-risk
  // changes demands; thresholds change the persisted buffer trajectory), so
  // they are session-defining: a cursor saved under one policy or buffer
  // config can never resume a session running another.
  bytes += '|';
  bytes += config.demand_policy != nullptr ? config.demand_policy->name()
                                           : "blind";
  std::snprintf(buf, sizeof(buf), "|%.17g|%.17g|%.17g|%.17g|%.17g",
                config.buffer.startup_seconds, config.buffer.rebuffer_seconds,
                config.buffer.target_seconds, config.buffer.boost_gain,
                config.buffer.yield_fraction);
  bytes += buf;
  return core::fnv1a64(bytes);
}

std::string BlockageSessionMetrics::to_json_line() const {
  std::string out = "{\"type\":\"session\",";
  append_json(out, "gops", static_cast<int>(base.gops.size()));
  out += ',';
  append_json(out, "start_gop", start_gop);
  out += ',';
  append_json(out, "completed", completed);
  out += ',';
  append_json(out, "resume_rejected", resume_rejected);
  out += ',';
  append_json(out, "on_time_ratio", base.on_time_ratio);
  out += ',';
  append_json(out, "total_stall_slots", base.total_stall_slots);
  out += ',';
  append_json(out, "mean_psnr_db", base.mean_psnr_db);
  out += ',';
  append_json(out, "all_served", base.all_served);
  out += ',';
  append_json(out, "mean_blocked_fraction", mean_blocked_fraction);
  out += ',';
  append_json(out, "invalidated_periods", invalidated_periods);
  out += ',';
  append_json(out, "exec_transmissions_dropped", exec_transmissions_dropped);
  out += ',';
  append_json(out, "stall_seconds", stall_seconds);
  out += ',';
  append_json(out, "rebuffer_events", rebuffer_events);
  out += ',';
  append_json(out, "layer_gops_offered", layer_gops_offered);
  out += ',';
  append_json(out, "layer_gops_delivered", layer_gops_delivered);
  out += ',';
  append_json(out, "layer_delivery_ratio", layer_delivery_ratio);
  out += ',';
  append_json(out, "pool_resolves", pool_resolves);
  out += ',';
  append_json(out, "pool_hits", pool_hits);
  out += ',';
  append_json(out, "pool_misses", pool_misses);
  out += ',';
  append_json(out, "pool_hit_rate", pool_hit_rate);
  out += ',';
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016" PRIx64, plan_digest_chain);
  out += "\"plan_digest_chain\":\"";
  out += digest;
  out += "\"}";
  return out;
}

std::string period_json_line(const core::StreamCursor& cursor) {
  core::StreamGopRecord rec;
  if (!cursor.gops.empty()) rec = cursor.gops.back();
  int blocked_links = 0;
  for (int b : cursor.blocked) blocked_links += b != 0 ? 1 : 0;
  double occupancy_sum = 0.0, occupancy_min = 0.0, stall_sum = 0.0;
  int rebuffer_sum = 0, playing_links = 0;
  for (std::size_t l = 0; l < cursor.buffers.size(); ++l) {
    const core::StreamBufferState& b = cursor.buffers[l];
    occupancy_sum += b.occupancy_seconds;
    occupancy_min =
        l == 0 ? b.occupancy_seconds
               : std::min(occupancy_min, b.occupancy_seconds);
    stall_sum += b.stall_seconds;
    rebuffer_sum += b.rebuffer_events;
    playing_links += (b.flags & 1) != 0 ? 1 : 0;
  }
  std::string out = "{\"type\":\"gop\",";
  append_json(out, "gop", rec.gop);
  out += ',';
  append_json(out, "demand_bits", rec.demand_bits);
  out += ',';
  append_json(out, "schedule_slots", rec.schedule_slots);
  out += ',';
  append_json(out, "budget_slots", rec.budget_slots);
  out += ',';
  append_json(out, "on_time", rec.on_time);
  out += ',';
  append_json(out, "stall_slots", rec.stall_slots);
  out += ',';
  append_json(out, "blocked_links", blocked_links);
  out += ',';
  append_json(out, "buffer_seconds", occupancy_sum);
  out += ',';
  append_json(out, "buffer_min_seconds", occupancy_min);
  out += ',';
  append_json(out, "stall_seconds", stall_sum);
  out += ',';
  append_json(out, "rebuffer_events", rebuffer_sum);
  out += ',';
  append_json(out, "playing_links", playing_links);
  out += ',';
  char digest[32];
  std::snprintf(digest, sizeof(digest), "0x%016" PRIx64, cursor.plan_digest);
  out += "\"plan_digest\":\"";
  out += digest;
  out += "\"}";
  return out;
}

BlockageSessionMetrics run_blockage_session(
    const net::ChannelModel& base_model, const net::NetworkParams& params,
    const BlockageSessionConfig& config, const Scheduler& scheduler,
    common::Rng& rng, SolverContext* solver_context,
    const BlockageRunControl* control) {
  BlockageSessionMetrics out;
  // The context's counters are cumulative across sessions; snapshot them now
  // so the metrics below report this session's deltas.
  struct ContextSnapshot {
    int periods = 0, loaded = 0, reused = 0, repaired = 0, dropped = 0;
    int resolves = 0, hits = 0, misses = 0;
    std::int64_t evicted = 0, neighbour_seeded = 0;
  } before;
  if (solver_context != nullptr) {
    before.periods = solver_context->periods;
    before.loaded = solver_context->columns_loaded;
    before.reused = solver_context->columns_reused;
    before.repaired = solver_context->columns_repaired;
    before.dropped = solver_context->columns_dropped;
    before.resolves = solver_context->resolves;
    before.hits = solver_context->pool_hits;
    before.misses = solver_context->pool_misses;
    before.evicted = solver_context->manager.metrics().evicted;
    before.neighbour_seeded = solver_context->manager.metrics().neighbour_seeded;
  }
  const int num_links = params.num_links;
  const SessionConfig& scfg = config.session;
  const double gop_seconds =
      static_cast<double>(scfg.video.gop_pattern.size()) / scfg.video.fps;

  // Clear-air network for oblivious scheduling.
  std::vector<double> ones(num_links, 1.0);
  net::Network clear_net(
      params, std::make_unique<net::RxScaledChannelModel>(&base_model, ones));
  const double budget_slots = gop_seconds / params.slot_seconds;

  // Demand streams (same construction as run_session).
  std::vector<std::vector<video::GopDemand>> gop_demands;
  for (int l = 0; l < num_links; ++l) {
    common::Rng stream = rng.fork(static_cast<std::uint64_t>(l));
    const video::VideoTrace trace = video::VideoTrace::generate(
        scfg.video,
        scfg.num_gops * static_cast<int>(scfg.video.gop_pattern.size()),
        stream);
    gop_demands.push_back(video::per_gop_demands(trace, scfg.scalable));
  }

  common::Rng blockage_rng = rng.fork(0xB10C);
  net::BlockageProcess process(num_links, config.blockage, blockage_rng);

  // Client buffers are always tracked; the policy decides whether their
  // state feeds back into the demands (null = blind baseline: pure
  // observation, schedules bit-identical to pre-buffer sessions).
  std::vector<ClientBuffer> buffers(num_links, ClientBuffer(config.buffer));
  const DemandPolicy* policy = config.demand_policy;
  // (GOP, layer) pairs with nonzero nominal demand, over scored periods.
  int layer_offered = 0;

  double carryover_stall = 0.0;
  std::vector<double> delivered_bits(num_links, 0.0);
  double blocked_fraction_sum = 0.0;

  // ---- Resume: validate the cursor, replay the Markov chain, restore the
  // ---- session state (scores, deliveries, digest chain, counter offsets).
  int start_gop = 0;
  const core::StreamCursor* resume =
      control != nullptr ? control->resume : nullptr;
  if (resume != nullptr) {
    bool usable =
        resume->next_gop >= 1 && resume->num_gops == scfg.num_gops &&
        resume->next_gop <= resume->num_gops &&
        static_cast<int>(resume->gops.size()) == resume->next_gop &&
        static_cast<int>(resume->delivered_bits.size()) == num_links &&
        static_cast<int>(resume->blocked.size()) == num_links &&
        resume->carryover_stall >= 0.0 &&
        resume->blocked_fraction_sum >= 0.0 &&
        !common::fault_fires(common::faults::kSessionCursorCorrupt);
    // Buffer state (v4) is optional — an empty vector starts the buffers
    // cold — but when present it must be per-link and self-consistent;
    // damaged QoE counters must never be replayed as truth.
    if (usable && !resume->buffers.empty()) {
      if (static_cast<int>(resume->buffers.size()) != num_links ||
          common::fault_fires(common::faults::kSessionBufferCorrupt)) {
        usable = false;
      }
      for (const core::StreamBufferState& b : resume->buffers) {
        if (!(b.occupancy_seconds >= 0.0) || !(b.stall_seconds >= 0.0) ||
            b.rebuffer_events < 0 || b.flags < 0 || b.flags > 3 ||
            b.flags == 1 || b.hp_gops_delivered < 0 ||
            b.lp_gops_delivered < 0 ||
            b.hp_gops_delivered > resume->next_gop ||
            b.lp_gops_delivered > resume->next_gop) {
          usable = false;
        }
      }
    }
    if (usable && config.session_fingerprint != 0 &&
        resume->session_fingerprint != config.session_fingerprint) {
      usable = false;
    }
    if (usable) {
      // Advance the chain to the cursor's last executed period; it must
      // land on exactly the saved blockage bits, otherwise the cursor is
      // from a different seed or config and gets rejected.
      for (int g = 1; g < resume->next_gop; ++g)
        process.advance(blockage_rng);
      for (int l = 0; l < num_links && usable; ++l) {
        if ((process.blocked(l) ? 1 : 0) != resume->blocked[l]) usable = false;
      }
    }
    if (!usable) {
      // Fresh run keeping only the warm pool.  fork() is pure, so re-forking
      // rebuilds the exact process a fresh session would have seen.
      out.resume_rejected = true;
      blockage_rng = rng.fork(0xB10C);
      process =
          net::BlockageProcess(num_links, config.blockage, blockage_rng);
    } else {
      start_gop = resume->next_gop;
      carryover_stall = resume->carryover_stall;
      blocked_fraction_sum = resume->blocked_fraction_sum;
      out.invalidated_periods = resume->invalidated_periods;
      out.exec_transmissions_dropped = resume->exec_transmissions_dropped;
      delivered_bits = resume->delivered_bits;
      if (!resume->buffers.empty()) {
        for (int l = 0; l < num_links; ++l) {
          const core::StreamBufferState& b = resume->buffers[l];
          buffers[l].restore(b.occupancy_seconds, b.stall_seconds,
                             b.rebuffer_events, (b.flags & 1) != 0,
                             (b.flags & 2) != 0, b.hp_gops_delivered,
                             b.lp_gops_delivered);
        }
      }
      // Replayed periods' offered-layer counts are reconstructed from the
      // deterministic demand streams (same expression as the live loop), so
      // the final layer_delivery_ratio equals the uninterrupted run's.
      for (int g = 0; g < resume->next_gop; ++g) {
        for (int l = 0; l < num_links; ++l) {
          if (gop_demands[l][g].hp_bits * scfg.demand_scale > 0.0)
            ++layer_offered;
          if (gop_demands[l][g].lp_bits * scfg.demand_scale > 0.0)
            ++layer_offered;
        }
      }
      for (const core::StreamGopRecord& r : resume->gops) {
        GopRecord rec;
        rec.gop = r.gop;
        rec.demand_bits = r.demand_bits;
        rec.schedule_slots = r.schedule_slots;
        rec.budget_slots = r.budget_slots;
        rec.on_time = r.on_time;
        rec.stall_slots = r.stall_slots;
        out.base.total_stall_slots += rec.stall_slots;
        out.base.gops.push_back(rec);
      }
      if (solver_context != nullptr) {
        // Counter-offset trick: the cursor stores the context's cumulative
        // counters at save time; shifting the snapshot back by them makes
        // this call's deltas cover the pre-crash periods too, so the final
        // pool metrics equal the uninterrupted run's.
        before.periods =
            solver_context->periods - resume->counters.periods;
        before.loaded =
            solver_context->columns_loaded - resume->counters.columns_loaded;
        before.reused =
            solver_context->columns_reused - resume->counters.columns_reused;
        before.repaired = solver_context->columns_repaired -
                          resume->counters.columns_repaired;
        before.dropped = solver_context->columns_dropped -
                         resume->counters.columns_dropped;
        before.resolves =
            solver_context->resolves - resume->counters.resolves;
        before.hits = solver_context->pool_hits - resume->counters.pool_hits;
        before.misses =
            solver_context->pool_misses - resume->counters.pool_misses;
        before.evicted = solver_context->manager.metrics().evicted -
                         resume->counters.pool_evicted;
        before.neighbour_seeded =
            solver_context->manager.metrics().neighbour_seeded -
            resume->counters.pool_neighbour_seeded;
        solver_context->plan_digest_chain = resume->plan_digest;
      }
    }
  }
  out.start_gop = start_gop;

  for (int g = start_gop; g < scfg.num_gops; ++g) {
    if (g > 0) process.advance(blockage_rng);
    blocked_fraction_sum +=
        static_cast<double>(process.num_blocked()) / num_links;

    std::vector<double> scales(num_links);
    for (int l = 0; l < num_links; ++l) scales[l] = process.rx_attenuation(l);
    net::Network blocked_net(
        params,
        std::make_unique<net::RxScaledChannelModel>(&base_model, scales));

    std::vector<video::LinkDemand> demands(num_links);
    for (int l = 0; l < num_links; ++l) {
      demands[l].hp_bits = gop_demands[l][g].hp_bits * scfg.demand_scale;
      demands[l].lp_bits = gop_demands[l][g].lp_bits * scfg.demand_scale;
    }
    // The policy bids on behalf of the buffers: nominal demand is the GOP's
    // actual content (what playback consumes), shaped demand is what the
    // scheduler is asked for (boosted bids prefetch, yields free capacity).
    const std::vector<video::LinkDemand> nominal = demands;
    if (policy != nullptr) {
      std::vector<std::uint8_t> blocked_bits(num_links);
      for (int l = 0; l < num_links; ++l)
        blocked_bits[l] = process.blocked(l) ? 1 : 0;
      policy->shape(buffers, blocked_bits, gop_seconds, demands);
    }
    double total = 0.0;
    for (int l = 0; l < num_links; ++l) total += demands[l].total();

    const net::Network& plan_net =
        config.reschedule_each_period ? blocked_net : clear_net;
    SchedulerResult plan = scheduler(plan_net, demands);

    // Execution always happens on the blocked gains.
    int dropped_this_period = 0;
    std::vector<sched::TimedSchedule> executable;
    executable.reserve(plan.timeline.size());
    for (const auto& ts : plan.timeline) {
      executable.push_back(
          {degrade_schedule(blocked_net, ts.schedule, dropped_this_period),
           ts.slots});
    }
    if (dropped_this_period > 0) ++out.invalidated_periods;
    out.exec_transmissions_dropped += dropped_this_period;

    const auto exec =
        sched::execute_timeline(blocked_net, executable, demands, plan.order);

    GopRecord rec;
    rec.gop = g;
    rec.demand_bits = total;
    rec.schedule_slots = exec.total_slots;
    rec.budget_slots = budget_slots;
    const double finish = carryover_stall + exec.total_slots;
    rec.on_time = exec.all_demands_met && finish <= budget_slots + 1e-9;
    rec.stall_slots = std::max(0.0, finish - budget_slots);
    carryover_stall = rec.stall_slots;
    out.base.total_stall_slots += rec.stall_slots;
    if (!exec.all_demands_met || !plan.ok) out.base.all_served = false;
    for (int l = 0; l < num_links; ++l) {
      const double delivered =
          exec.hp_delivered_bits[l] + exec.lp_delivered_bits[l];
      delivered_bits[l] += delivered;
      // Fluid model: the GOP's content spans gop_seconds of video; delivered
      // bits map proportionally (a boosted bid that over-delivers prefetches
      // future seconds, f > 1).  A zero-demand GOP carries its seconds free.
      const double nominal_total = nominal[l].total();
      const double delivered_seconds =
          nominal_total > 0.0 ? gop_seconds * delivered / nominal_total
                              : gop_seconds;
      buffers[l].advance(delivered_seconds, gop_seconds);
      // A layer counts delivered when the delivery covered the smaller of
      // the nominal and shaped asks: a yielded layer served as asked and a
      // boosted layer that still covered its content both count.
      const bool hp_off = nominal[l].hp_bits > 0.0;
      const bool lp_off = nominal[l].lp_bits > 0.0;
      const double hp_need = std::min(nominal[l].hp_bits, demands[l].hp_bits);
      const double lp_need = std::min(nominal[l].lp_bits, demands[l].lp_bits);
      const bool hp_del = exec.hp_delivered_bits[l] >= hp_need * (1.0 - 1e-9);
      const bool lp_del = exec.lp_delivered_bits[l] >= lp_need * (1.0 - 1e-9);
      buffers[l].note_layers(hp_off, hp_del, lp_off, lp_del);
      layer_offered += (hp_off ? 1 : 0) + (lp_off ? 1 : 0);
    }
    out.base.gops.push_back(rec);

    if (control != nullptr && control->on_period) {
      // Surface the cursor describing this GOP boundary; the callback can
      // persist it (crash-recovery point) and/or stop the run (simulated
      // crash — the chaos-soak harness kills sessions exactly here).
      core::StreamCursor cur;
      cur.next_gop = g + 1;
      cur.num_gops = scfg.num_gops;
      cur.session_fingerprint = config.session_fingerprint;
      cur.carryover_stall = carryover_stall;
      cur.blocked_fraction_sum = blocked_fraction_sum;
      cur.invalidated_periods = out.invalidated_periods;
      cur.exec_transmissions_dropped = out.exec_transmissions_dropped;
      cur.delivered_bits = delivered_bits;
      cur.blocked.resize(num_links);
      for (int l = 0; l < num_links; ++l)
        cur.blocked[l] = process.blocked(l) ? 1 : 0;
      cur.buffers.resize(num_links);
      for (int l = 0; l < num_links; ++l) {
        core::StreamBufferState& b = cur.buffers[l];
        b.occupancy_seconds = buffers[l].occupancy_seconds();
        b.stall_seconds = buffers[l].stall_seconds();
        b.rebuffer_events = buffers[l].rebuffer_events();
        b.flags = (buffers[l].playing() ? 1 : 0) |
                  (buffers[l].started() ? 2 : 0);
        b.hp_gops_delivered = buffers[l].hp_gops_delivered();
        b.lp_gops_delivered = buffers[l].lp_gops_delivered();
      }
      if (solver_context != nullptr) {
        cur.plan_digest = solver_context->plan_digest_chain;
        cur.counters.periods = solver_context->periods;
        cur.counters.resolves = solver_context->resolves;
        cur.counters.pool_hits = solver_context->pool_hits;
        cur.counters.pool_misses = solver_context->pool_misses;
        cur.counters.columns_loaded = solver_context->columns_loaded;
        cur.counters.columns_reused = solver_context->columns_reused;
        cur.counters.columns_repaired = solver_context->columns_repaired;
        cur.counters.columns_dropped = solver_context->columns_dropped;
        cur.counters.transmissions_dropped =
            solver_context->transmissions_dropped;
        cur.counters.pool_evicted = solver_context->manager.metrics().evicted;
        cur.counters.pool_neighbour_seeded =
            solver_context->manager.metrics().neighbour_seeded;
      }
      cur.gops.reserve(out.base.gops.size());
      for (const GopRecord& r : out.base.gops) {
        core::StreamGopRecord sr;
        sr.gop = r.gop;
        sr.demand_bits = r.demand_bits;
        sr.schedule_slots = r.schedule_slots;
        sr.budget_slots = r.budget_slots;
        sr.on_time = r.on_time;
        sr.stall_slots = r.stall_slots;
        cur.gops.push_back(sr);
      }
      if (!control->on_period(cur, g)) {
        out.completed = false;
        break;
      }
    }
  }

  int on_time = 0;
  for (const GopRecord& r : out.base.gops)
    if (r.on_time) ++on_time;
  out.base.on_time_ratio =
      out.base.gops.empty()
          ? 1.0
          : static_cast<double>(on_time) /
                static_cast<double>(out.base.gops.size());

  const double horizon_seconds = scfg.num_gops * gop_seconds;
  double psnr_sum = 0.0;
  for (int l = 0; l < num_links; ++l) {
    const double rate =
        delivered_bits[l] / horizon_seconds / scfg.demand_scale;
    psnr_sum += scfg.psnr.psnr(rate);
  }
  out.base.mean_psnr_db = num_links > 0 ? psnr_sum / num_links : 0.0;
  out.mean_blocked_fraction = blocked_fraction_sum / scfg.num_gops;
  for (const ClientBuffer& b : buffers) {
    out.stall_seconds += b.stall_seconds();
    out.rebuffer_events += b.rebuffer_events();
    out.layer_gops_delivered +=
        b.hp_gops_delivered() + b.lp_gops_delivered();
  }
  out.layer_gops_offered = layer_offered;
  out.layer_delivery_ratio =
      layer_offered > 0
          ? static_cast<double>(out.layer_gops_delivered) / layer_offered
          : 1.0;
  if (solver_context != nullptr) {
    out.pool_periods = solver_context->periods - before.periods;
    out.pool_columns_loaded = solver_context->columns_loaded - before.loaded;
    out.pool_columns_reused = solver_context->columns_reused - before.reused;
    out.pool_columns_repaired =
        solver_context->columns_repaired - before.repaired;
    out.pool_columns_dropped =
        solver_context->columns_dropped - before.dropped;
    out.pool_hit_rate =
        out.pool_columns_loaded > 0
            ? static_cast<double>(out.pool_columns_reused) /
                  out.pool_columns_loaded
            : 0.0;
    out.pool_resolves = solver_context->resolves - before.resolves;
    out.pool_hits = solver_context->pool_hits - before.hits;
    out.pool_misses = solver_context->pool_misses - before.misses;
    out.pool_evicted =
        solver_context->manager.metrics().evicted - before.evicted;
    out.pool_neighbour_seeded =
        solver_context->manager.metrics().neighbour_seeded -
        before.neighbour_seeded;
    out.plan_digest_chain = solver_context->plan_digest_chain;
  }
  return out;
}

}  // namespace mmwave::stream
