// Multi-GOP streaming session simulation.
//
// The optimization in core/ solves ONE scheduling period (one GOP of
// demand per link).  A real streaming deployment — the paper's motivating
// scenario — repeats that every GOP period: demands for GOP g arrive, the
// PNC computes an allocation, and the period either fits in the GOP
// duration or the sessions stall.  This module runs that loop over a
// horizon, producing the per-session quality metrics a video service cares
// about: on-time GOP ratio, stall (rebuffering) time, and PSNR under the
// paper's quality model (eq. (1)).
//
// The scheduler is pluggable so the same horizon can be replayed under
// column generation, either benchmark, or TDMA.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/pool_manager.h"
#include "core/resolve.h"
#include "mmwave/network.h"
#include "sched/timeline.h"
#include "video/demand.h"
#include "video/scalable.h"
#include "video/trace.h"

namespace mmwave::stream {

/// A scheduler maps (network, per-link demands) to a timeline.  Adapters
/// for the built-in algorithms are provided below.
struct SchedulerResult {
  std::vector<sched::TimedSchedule> timeline;
  /// Execution order appropriate for this scheduler's timeline.
  sched::ExecutionOrder order = sched::ExecutionOrder::AsGiven;
  bool ok = true;
};
using Scheduler = std::function<SchedulerResult(
    const net::Network&, const std::vector<video::LinkDemand>&)>;

/// Persistent solver state carried across scheduling periods.  A scheduler
/// bound to one (see the make_cg_scheduler overload) asks the embedded
/// core::PoolManager for warm-start candidates — the nearest known
/// instances' surviving columns, not just the previous period's — repairs
/// them against the current network (blockage may have invalidated
/// columns), seeds the survivors into the master, and stores the new pool
/// back after the solve under the manager's cap/eviction policy.
///
/// All counters are CUMULATIVE across every period routed through this
/// context, across sessions if the context is reused; call reset_metrics()
/// to start a fresh accounting window (the pool itself is kept — resetting
/// metrics must not cost warm-start capital).  Accounting identity,
/// asserted by the blockage-session tests: pool_hits + pool_misses ==
/// resolves.
struct SolverContext {
  SolverContext() = default;
  explicit SolverContext(core::PoolManagerOptions pool_options)
      : manager(std::move(pool_options)) {}

  /// Owns the cross-period, cross-instance column pool (cap + eviction).
  core::PoolManager manager;
  /// Column pool left by the most recent solve (master order) — the
  /// single-period view; the manager holds the full multi-instance pool.
  std::vector<sched::Schedule> pool;
  /// Periods that solved through this context.
  int periods = 0;
  /// Context-routed solves (== periods; kept separate so the hit/miss
  /// identity reads against the quantity it is defined over).
  int resolves = 0;
  /// Resolves where at least one seeded column survived into the master.
  int pool_hits = 0;
  /// Resolves where no seeded column survived (cold or fully invalidated).
  int pool_misses = 0;
  // Cumulative repair accounting (core::RepairStats summed over periods):
  int columns_loaded = 0;    ///< pool columns offered for reuse
  int columns_reused = 0;    ///< survived (intact or repaired) into the master
  int columns_repaired = 0;  ///< survived only after dropping transmissions
  int columns_dropped = 0;   ///< discarded as irreparable
  int transmissions_dropped = 0;

  // ---- Crash-recovery state (populated by make_cg_scheduler) -------------
  /// Snapshot of the most recent solve (CgSchedulerOptions::
  /// capture_checkpoint): the raw make_checkpoint output, which callers
  /// typically route through manager.export_checkpoint() before persisting.
  core::CgCheckpoint last_checkpoint;
  bool has_last_checkpoint = false;
  /// FNV digest of the most recent solve's timeline, and the rolling chain
  /// over every timeline solved through this context — the chaos-soak
  /// witness that a resumed session re-derives the exact same plans.
  std::uint64_t last_plan_digest = 0;
  std::uint64_t plan_digest_chain = 0;
  /// Solves whose certificate re-check (CgSchedulerOptions::verify)
  /// reported at least one error.  Stays 0 on healthy runs.
  int verify_failures = 0;

  /// Fraction of offered pool columns that re-entered a master.
  double hit_rate() const {
    return columns_loaded > 0
               ? static_cast<double>(columns_reused) / columns_loaded
               : 0.0;
  }

  /// Zeroes every counter (including the manager's) without touching the
  /// pool: the next session reports from a clean slate but stays warm.
  void reset_metrics() {
    periods = resolves = pool_hits = pool_misses = 0;
    columns_loaded = columns_reused = columns_repaired = columns_dropped = 0;
    transmissions_dropped = 0;
    last_plan_digest = plan_digest_chain = 0;
    verify_failures = 0;
    manager.reset_metrics();
  }
};

/// Built-in scheduler adapters.
Scheduler make_cg_scheduler(const struct CgSchedulerOptions& options);
/// CG scheduler threading solver state across periods: when `context` is
/// non-null, each invocation warm-starts from the repaired previous pool and
/// persists the resulting pool.  `context` must outlive the scheduler and is
/// not thread-safe (one session loop at a time).
Scheduler make_cg_scheduler(const struct CgSchedulerOptions& options,
                            SolverContext* context);
Scheduler make_tdma_scheduler();
Scheduler make_benchmark1_scheduler();
Scheduler make_benchmark2_scheduler();

struct CgSchedulerOptions {
  /// Heuristic pricing by default: the PNC must decide within a GOP period.
  bool heuristic_only = true;
  /// Capture a core::CgCheckpoint of each solve into the SolverContext so
  /// the session loop can persist a checkpoint after every period.
  bool capture_checkpoint = false;
  /// Re-check LP certificates and column feasibility after every solve;
  /// failures are counted in SolverContext::verify_failures.
  bool verify = false;
  /// Repair policy applied to warm-start candidates (satellite: a downgrade
  /// step down the SINR ladder can keep more columns alive under blockage).
  core::RepairPolicy repair = core::RepairPolicy::kDropTransmissions;
};

struct SessionConfig {
  int num_gops = 8;
  video::VideoConfig video;
  video::ScalableConfig scalable;
  /// Demand scaling (same role as video::DemandConfig::demand_scale).
  double demand_scale = 1.0;
  /// Quality model for PSNR reporting.
  video::PsnrModel psnr;
};

/// Per-GOP record for one period of the horizon.
struct GopRecord {
  int gop = 0;
  double demand_bits = 0.0;      ///< total over links
  double schedule_slots = 0.0;   ///< scheduling time the PNC produced
  double budget_slots = 0.0;     ///< slots available in one GOP period
  bool on_time = false;          ///< schedule fits within the period
  double stall_slots = 0.0;      ///< overrun carried into the next period
};

struct SessionMetrics {
  std::vector<GopRecord> gops;
  /// Fraction of GOP periods delivered within their period budget.
  double on_time_ratio = 0.0;
  /// Total overrun (slots) accumulated across the horizon.
  double total_stall_slots = 0.0;
  /// Mean per-link PSNR (dB) under eq. (1), computed from each link's
  /// session rate over the horizon.
  double mean_psnr_db = 0.0;
  /// True if every period's demand was eventually served.
  bool all_served = true;
};

/// Runs `num_gops` periods: each period draws fresh per-link GOP demands
/// from per-link trace streams (seeded from `rng`), invokes the scheduler,
/// and scores the outcome.  Overrun of period g is carried as stall into
/// period g+1 (the PNC starts late).
SessionMetrics run_session(const net::Network& net,
                           const SessionConfig& config,
                           const Scheduler& scheduler, common::Rng& rng);

}  // namespace mmwave::stream
