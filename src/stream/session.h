// Multi-GOP streaming session simulation.
//
// The optimization in core/ solves ONE scheduling period (one GOP of
// demand per link).  A real streaming deployment — the paper's motivating
// scenario — repeats that every GOP period: demands for GOP g arrive, the
// PNC computes an allocation, and the period either fits in the GOP
// duration or the sessions stall.  This module runs that loop over a
// horizon, producing the per-session quality metrics a video service cares
// about: on-time GOP ratio, stall (rebuffering) time, and PSNR under the
// paper's quality model (eq. (1)).
//
// The scheduler is pluggable so the same horizon can be replayed under
// column generation, either benchmark, or TDMA.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "mmwave/network.h"
#include "sched/timeline.h"
#include "video/demand.h"
#include "video/scalable.h"
#include "video/trace.h"

namespace mmwave::stream {

/// A scheduler maps (network, per-link demands) to a timeline.  Adapters
/// for the built-in algorithms are provided below.
struct SchedulerResult {
  std::vector<sched::TimedSchedule> timeline;
  /// Execution order appropriate for this scheduler's timeline.
  sched::ExecutionOrder order = sched::ExecutionOrder::AsGiven;
  bool ok = true;
};
using Scheduler = std::function<SchedulerResult(
    const net::Network&, const std::vector<video::LinkDemand>&)>;

/// Built-in scheduler adapters.
Scheduler make_cg_scheduler(const struct CgSchedulerOptions& options);
Scheduler make_tdma_scheduler();
Scheduler make_benchmark1_scheduler();
Scheduler make_benchmark2_scheduler();

struct CgSchedulerOptions {
  /// Heuristic pricing by default: the PNC must decide within a GOP period.
  bool heuristic_only = true;
};

struct SessionConfig {
  int num_gops = 8;
  video::VideoConfig video;
  video::ScalableConfig scalable;
  /// Demand scaling (same role as video::DemandConfig::demand_scale).
  double demand_scale = 1.0;
  /// Quality model for PSNR reporting.
  video::PsnrModel psnr;
};

/// Per-GOP record for one period of the horizon.
struct GopRecord {
  int gop = 0;
  double demand_bits = 0.0;      ///< total over links
  double schedule_slots = 0.0;   ///< scheduling time the PNC produced
  double budget_slots = 0.0;     ///< slots available in one GOP period
  bool on_time = false;          ///< schedule fits within the period
  double stall_slots = 0.0;      ///< overrun carried into the next period
};

struct SessionMetrics {
  std::vector<GopRecord> gops;
  /// Fraction of GOP periods delivered within their period budget.
  double on_time_ratio = 0.0;
  /// Total overrun (slots) accumulated across the horizon.
  double total_stall_slots = 0.0;
  /// Mean per-link PSNR (dB) under eq. (1), computed from each link's
  /// session rate over the horizon.
  double mean_psnr_db = 0.0;
  /// True if every period's demand was eventually served.
  bool all_served = true;
};

/// Runs `num_gops` periods: each period draws fresh per-link GOP demands
/// from per-link trace streams (seeded from `rng`), invokes the scheduler,
/// and scores the outcome.  Overrun of period g is carried as stall into
/// period g+1 (the PNC starts late).
SessionMetrics run_session(const net::Network& net,
                           const SessionConfig& config,
                           const Scheduler& scheduler, common::Rng& rng);

}  // namespace mmwave::stream
