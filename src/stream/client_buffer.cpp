#include "stream/client_buffer.h"

#include <algorithm>

namespace mmwave::stream {

namespace {
/// Underrun tolerance: a buffer that covers the period to within this many
/// seconds is treated as having played it in full (guards the rebuffer
/// counter against %.17g round-trip noise in checkpointed occupancies).
constexpr double kPlayEps = 1e-12;
}  // namespace

void ClientBuffer::advance(double delivered_seconds, double period_seconds) {
  occupancy_seconds_ += delivered_seconds;
  delivered_seconds_ += delivered_seconds;
  if (!started_) {
    if (occupancy_seconds_ >= config_.startup_seconds - kPlayEps) {
      started_ = true;
      playing_ = true;
    }
  } else if (!playing_) {
    if (occupancy_seconds_ >= config_.rebuffer_seconds - kPlayEps) {
      playing_ = true;
    }
  }
  if (playing_) {
    const double played = std::min(occupancy_seconds_, period_seconds);
    occupancy_seconds_ -= played;
    played_seconds_ += played;
    stall_seconds_ += period_seconds - played;
    if (played < period_seconds - kPlayEps) {
      // Ran dry mid-period: playback pauses until the rebuffer threshold.
      playing_ = false;
      ++rebuffer_events_;
    }
  } else if (started_) {
    // Waiting to rebuffer: the whole period is stall.  Pre-start waiting is
    // NOT counted — startup delay is a different QoE quantity.
    stall_seconds_ += period_seconds;
  }
}

void ClientBuffer::note_layers(bool hp_offered, bool hp_delivered,
                               bool lp_offered, bool lp_delivered) {
  if (hp_offered && hp_delivered) ++hp_gops_delivered_;
  if (lp_offered && lp_delivered) ++lp_gops_delivered_;
}

void ClientBuffer::restore(double occupancy_seconds, double stall_seconds,
                           int rebuffer_events, bool playing, bool started,
                           int hp_gops_delivered, int lp_gops_delivered) {
  occupancy_seconds_ = occupancy_seconds;
  stall_seconds_ = stall_seconds;
  rebuffer_events_ = rebuffer_events;
  playing_ = playing;
  started_ = started;
  hp_gops_delivered_ = hp_gops_delivered;
  lp_gops_delivered_ = lp_gops_delivered;
  // The conservation witnesses restart from the restored occupancy so the
  // invariant delivered − played == Δoccupancy keeps holding post-resume.
  delivered_seconds_ = occupancy_seconds;
  played_seconds_ = 0.0;
}

double ClientBuffer::predicted_end_seconds(bool blocked,
                                           double period_seconds) const {
  double end = occupancy_seconds_;
  if (!blocked) end += period_seconds;
  if (playing_) end -= period_seconds;
  return end;
}

namespace {

class BlindPolicy final : public DemandPolicy {
 public:
  const char* name() const override { return "blind"; }
  void shape(const std::vector<ClientBuffer>& /*buffers*/,
             const std::vector<std::uint8_t>& /*blocked*/,
             double /*period_seconds*/,
             std::vector<video::LinkDemand>& /*demands*/) const override {}
};

class DrainRiskPolicy final : public DemandPolicy {
 public:
  explicit DrainRiskPolicy(const ClientBufferConfig& config)
      : config_(config) {}
  const char* name() const override { return "drain-risk"; }

  void shape(const std::vector<ClientBuffer>& buffers,
             const std::vector<std::uint8_t>& blocked, double period_seconds,
             std::vector<video::LinkDemand>& demands) const override {
    const std::size_t n = std::min(buffers.size(), demands.size());
    const double target = std::max(config_.target_seconds, 1e-12);
    std::vector<double> risk(n, 0.0);
    bool any_at_risk = false;
    for (std::size_t l = 0; l < n; ++l) {
      if (l < blocked.size() && blocked[l] != 0) continue;  // can't bid it up
      const double end =
          buffers[l].predicted_end_seconds(/*blocked=*/false, period_seconds);
      risk[l] = std::clamp((target - end) / target, 0.0, 1.0);
      if (risk[l] > 0.0) any_at_risk = true;
    }
    // No link at drain risk (e.g. every buffer saturated): the policy is
    // the identity, bit-for-bit equal to the blind baseline.
    if (!any_at_risk) return;
    for (std::size_t l = 0; l < n; ++l) {
      if (l < blocked.size() && blocked[l] != 0) continue;
      if (risk[l] > 0.0) {
        const double boost = 1.0 + config_.boost_gain * risk[l];
        demands[l].hp_bits *= boost;
        demands[l].lp_bits *= boost;
      } else {
        // Saturated and healthy: give up LP headroom for the at-risk links.
        demands[l].lp_bits *= 1.0 - config_.yield_fraction;
      }
    }
  }

 private:
  ClientBufferConfig config_;
};

}  // namespace

std::unique_ptr<DemandPolicy> make_blind_policy() {
  return std::make_unique<BlindPolicy>();
}

std::unique_ptr<DemandPolicy> make_drain_risk_policy(
    const ClientBufferConfig& config) {
  return std::make_unique<DrainRiskPolicy>(config);
}

std::unique_ptr<DemandPolicy> make_demand_policy(
    const std::string& name, const ClientBufferConfig& config) {
  if (name == "blind") return make_blind_policy();
  if (name == "drain-risk") return make_drain_risk_policy(config);
  return nullptr;
}

}  // namespace mmwave::stream
