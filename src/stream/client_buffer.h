// Client playout-buffer dynamics and demand-shaping policies.
//
// The source paper optimizes per-period layered utility, but the question a
// streaming service actually asks is whether the allocation keeps clients
// PLAYING.  This module adds the receiver half of that loop: a per-link
// fluid playout buffer (occupancy in seconds of video, startup and rebuffer
// thresholds, stall accounting) advanced by each period's delivered bits,
// and a pluggable DemandPolicy seam that converts buffer state plus the
// current blockage bits into next-period HP/LP demands — the QoE-centric
// buffer-predictive scheduling idea of Badnava et al. (PAPERS.md).
//
// Determinism contract: everything here is pure arithmetic on its inputs —
// no RNG, no clocks, no allocation-order dependence — so sessions replayed
// from a checkpointed buffer state are bit-identical to uninterrupted runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "video/demand.h"

namespace mmwave::stream {

/// Buffer thresholds plus the drain-risk policy's shaping knobs.  All five
/// scalars enter the session fingerprint: two sessions with different
/// buffer models can never silently share a resume cursor.
struct ClientBufferConfig {
  /// Occupancy (seconds) required before playback first starts.  Startup
  /// wait is not counted as stall (the viewer expects a join delay).
  double startup_seconds = 0.5;
  /// Occupancy required to resume after an underrun.
  double rebuffer_seconds = 0.5;
  /// Occupancy the drain-risk policy steers toward; links predicted to end
  /// the next period below it bid higher, links at or above it can yield.
  double target_seconds = 2.0;
  /// Demand multiplier headroom for a fully at-risk link: demand scales by
  /// (1 + boost_gain * risk) with risk in [0, 1].
  double boost_gain = 1.0;
  /// Fraction of LP demand a saturated link gives up when some other link
  /// is at drain risk (HP is never yielded).  Must stay < 1 so a shaped
  /// demand is zero iff the nominal demand is zero.
  double yield_fraction = 0.5;
};

/// One link's fluid playout buffer.  `advance()` consumes one GOP period:
/// delivered video is appended, then playback (once started) drains
/// real-time seconds; the shortfall when the buffer runs dry is stall.
///
/// Invariants, property-tested in tests/stream/client_buffer_test.cpp:
///   - conservation: delivered_seconds − played_seconds == occupancy (1e-9)
///   - stall_seconds and rebuffer_events are monotone non-decreasing
///   - playing implies started (the flags value 1 is unrepresentable)
class ClientBuffer {
 public:
  ClientBuffer() = default;
  explicit ClientBuffer(const ClientBufferConfig& config) : config_(config) {}

  /// Advances one period: `delivered_seconds` of video arrive (may exceed
  /// `period_seconds` — prefetch builds occupancy), then the period's
  /// real-time seconds play out.  Threshold order: delivery first, then the
  /// startup/rebuffer gate, then playout — so a period that refills past
  /// the gate resumes within that same period.
  void advance(double delivered_seconds, double period_seconds);

  /// Records the layer outcome of one GOP: which layers were offered
  /// (nonzero shaped demand) and which were delivered in full.
  void note_layers(bool hp_offered, bool hp_delivered, bool lp_offered,
                   bool lp_delivered);

  /// Restores a checkpointed state (core::StreamBufferState fields); the
  /// caller has already validated ranges and the flags encoding.
  void restore(double occupancy_seconds, double stall_seconds,
               int rebuffer_events, bool playing, bool started,
               int hp_gops_delivered, int lp_gops_delivered);

  const ClientBufferConfig& config() const { return config_; }
  double occupancy_seconds() const { return occupancy_seconds_; }
  double stall_seconds() const { return stall_seconds_; }
  int rebuffer_events() const { return rebuffer_events_; }
  bool playing() const { return playing_; }
  bool started() const { return started_; }
  int hp_gops_delivered() const { return hp_gops_delivered_; }
  int lp_gops_delivered() const { return lp_gops_delivered_; }
  /// Cumulative conservation witnesses (not persisted — occupancy is their
  /// difference, which is what the checkpoint carries).
  double delivered_seconds() const { return delivered_seconds_; }
  double played_seconds() const { return played_seconds_; }

  /// Occupancy predicted at the END of the next period, given the link's
  /// current blockage bit: a blocked link is expected to receive nothing, an
  /// unblocked one a full GOP; a playing buffer drains one period.  This is
  /// the drain-risk policy's one-step lookahead.
  double predicted_end_seconds(bool blocked, double period_seconds) const;

 private:
  ClientBufferConfig config_;
  double occupancy_seconds_ = 0.0;
  double stall_seconds_ = 0.0;
  double delivered_seconds_ = 0.0;
  double played_seconds_ = 0.0;
  int rebuffer_events_ = 0;
  int hp_gops_delivered_ = 0;
  int lp_gops_delivered_ = 0;
  bool playing_ = false;
  bool started_ = false;
};

/// Demand-shaping seam: maps (buffer states, current blockage bits) to the
/// demands handed to the scheduler for the next period.  Implementations
/// must be deterministic pure functions of their arguments.
class DemandPolicy {
 public:
  virtual ~DemandPolicy() = default;
  /// Stable identifier ("blind", "drain-risk"); enters the session
  /// fingerprint and the CLI flag namespace.
  virtual const char* name() const = 0;
  /// Shapes `demands` in place.  `blocked[l]` is link l's CURRENT-period
  /// blockage bit; `buffers[l]` is its state after the previous period.
  virtual void shape(const std::vector<ClientBuffer>& buffers,
                     const std::vector<std::uint8_t>& blocked,
                     double period_seconds,
                     std::vector<video::LinkDemand>& demands) const = 0;
};

/// The buffer-blind baseline: demands pass through untouched, so schedules
/// (and plan digests) are bit-identical to sessions without buffer state.
std::unique_ptr<DemandPolicy> make_blind_policy();

/// Drain-risk shaping: risk_l = clamp((target − predicted_end)/target, 0, 1)
/// for unblocked links; at-risk links scale both layers by
/// (1 + boost_gain·risk), and — only when at least one link is at risk —
/// saturated unblocked links yield `yield_fraction` of their LP demand.
/// When every buffer is saturated no link is at risk and the policy is the
/// identity (== blind), a property the test suite pins.
std::unique_ptr<DemandPolicy> make_drain_risk_policy(
    const ClientBufferConfig& config);

/// Factory by CLI name: "blind" or "drain-risk"; nullptr on unknown names
/// (the caller owns the exit-contract diagnostics).
std::unique_ptr<DemandPolicy> make_demand_policy(
    const std::string& name, const ClientBufferConfig& config);

}  // namespace mmwave::stream
