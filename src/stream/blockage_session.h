// Streaming over a dynamically-blocked network.
//
// Extends stream::run_session with the two-state Markov blockage process:
// each GOP period the blockage states advance, the PNC re-solves the
// allocation against the *current* (attenuated) gains, and the period is
// scored as usual.  This replays the paper's static per-period optimization
// in the dynamic environment its companion works ([4]-[6]) study, and
// quantifies how much re-solving per period buys over a blockage-oblivious
// schedule computed once on the clear-air gains.
#pragma once

#include "mmwave/blockage.h"
#include "stream/session.h"

namespace mmwave::stream {

struct BlockageSessionConfig {
  SessionConfig session;
  net::BlockageConfig blockage;
  /// If false, the scheduler sees the clear-air network every period (the
  /// schedule is computed obliviously) while execution still happens on the
  /// blocked gains — rate levels that no longer meet their SINR deliver
  /// nothing that period.
  bool reschedule_each_period = true;
};

struct BlockageSessionMetrics {
  SessionMetrics base;
  /// Mean fraction of links blocked per period.
  double mean_blocked_fraction = 0.0;
  /// Periods in which at least one scheduled transmission was invalidated
  /// by blockage (only nonzero for oblivious scheduling).
  int invalidated_periods = 0;
  /// Transmissions dropped at execution time because blockage pushed their
  /// SINR below threshold — which scheduled columns (partially) died.
  int exec_transmissions_dropped = 0;

  // --- Pool-reuse accounting (populated when a SolverContext is threaded
  // --- through run_blockage_session; zeros otherwise).  All values are
  // --- THIS session's deltas: the context's counters are cumulative, so a
  // --- context reused across sessions still reports per-session numbers.
  int pool_periods = 0;           ///< periods solved through the context
  int pool_columns_loaded = 0;    ///< columns offered for cross-period reuse
  int pool_columns_reused = 0;    ///< columns that re-entered a master
  int pool_columns_repaired = 0;  ///< reused only after repair
  int pool_columns_dropped = 0;   ///< discarded as irreparable
  double pool_hit_rate = 0.0;     ///< reused / loaded
  int pool_resolves = 0;          ///< context-routed solves this session
  int pool_hits = 0;              ///< resolves with >=1 seeded survivor
  int pool_misses = 0;            ///< resolves seeded with nothing usable
  /// Columns evicted by the manager's cap policy during this session.
  std::int64_t pool_evicted = 0;
  /// Seeded columns that came from a neighbour instance (different
  /// fingerprint) — the multi-instance sharing payoff.
  std::int64_t pool_neighbour_seeded = 0;
};

/// `params` must match `base_model` (link/channel counts).  The blockage
/// process and the demand streams both derive from `rng`.
///
/// `solver_context`, when non-null, must be the same context the scheduler
/// was built with (make_cg_scheduler overload): the session then reports its
/// cross-period pool-reuse counters in the returned metrics.  Passing a
/// context the scheduler does not use is harmless (the counters stay zero).
BlockageSessionMetrics run_blockage_session(
    const net::ChannelModel& base_model, const net::NetworkParams& params,
    const BlockageSessionConfig& config, const Scheduler& scheduler,
    common::Rng& rng, SolverContext* solver_context = nullptr);

}  // namespace mmwave::stream
