// Streaming over a dynamically-blocked network.
//
// Extends stream::run_session with the two-state Markov blockage process:
// each GOP period the blockage states advance, the PNC re-solves the
// allocation against the *current* (attenuated) gains, and the period is
// scored as usual.  This replays the paper's static per-period optimization
// in the dynamic environment its companion works ([4]-[6]) study, and
// quantifies how much re-solving per period buys over a blockage-oblivious
// schedule computed once on the clear-air gains.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/checkpoint.h"
#include "mmwave/blockage.h"
#include "stream/client_buffer.h"
#include "stream/session.h"

namespace mmwave::stream {

struct BlockageSessionConfig {
  SessionConfig session;
  net::BlockageConfig blockage;
  /// If false, the scheduler sees the clear-air network every period (the
  /// schedule is computed obliviously) while execution still happens on the
  /// blocked gains — rate levels that no longer meet their SINR deliver
  /// nothing that period.
  bool reschedule_each_period = true;
  /// Client playout-buffer model: thresholds plus the drain-risk policy's
  /// shaping knobs.  Buffers are always tracked (they are pure observers
  /// under the blind policy); all five scalars enter the fingerprint.
  ClientBufferConfig buffer;
  /// Demand-shaping policy applied before each period's solve; null means
  /// the buffer-blind baseline (demands pass through untouched, schedules
  /// and plan digests are bit-identical to pre-buffer sessions).  Non-owning;
  /// must outlive the run.
  const DemandPolicy* demand_policy = nullptr;
  /// Binds saved stream cursors to this session's defining inputs.  Compute
  /// with blockage_session_fingerprint(); 0 disables the fingerprint check
  /// on resume (the blockage-replay check still applies).
  std::uint64_t session_fingerprint = 0;
};

/// Hash of the session-defining inputs — dimensions, horizon, demand
/// scaling, video shape, blockage chain parameters, and the session seed.
/// Two sessions that could produce different period streams fingerprint
/// differently, so a cursor can never be silently resumed against the
/// wrong session.
std::uint64_t blockage_session_fingerprint(const BlockageSessionConfig& config,
                                           int num_links, std::uint64_t seed);

/// Optional crash-recovery hooks for run_blockage_session.
struct BlockageRunControl {
  /// Resume from this cursor: periods [next_gop, num_gops) are run on top
  /// of the cursor's replayed state.  The cursor must come from the same
  /// session (fingerprint, horizon, dimensions, and a Markov-chain replay
  /// of the blockage states are all validated; any mismatch sets
  /// BlockageSessionMetrics::resume_rejected and the session runs fresh
  /// from period 0 — the solver pool, if any, is kept).
  const core::StreamCursor* resume = nullptr;
  /// Called after each completed period with the cursor describing the
  /// session state at that GOP boundary; return false to stop the run there
  /// (BlockageSessionMetrics::completed turns false).  Persisting the
  /// cursor (core::CheckpointLog::save of a checkpoint carrying it) makes
  /// that boundary a crash-recovery point.
  std::function<bool(const core::StreamCursor&, int gop)> on_period;
};

struct BlockageSessionMetrics {
  SessionMetrics base;
  /// Mean fraction of links blocked per period.
  double mean_blocked_fraction = 0.0;
  /// Periods in which at least one scheduled transmission was invalidated
  /// by blockage (only nonzero for oblivious scheduling).
  int invalidated_periods = 0;
  /// Transmissions dropped at execution time because blockage pushed their
  /// SINR below threshold — which scheduled columns (partially) died.
  int exec_transmissions_dropped = 0;

  // --- Client-buffer QoE (populated from the per-link ClientBuffers; under
  // --- the blind policy these are pure observations and change nothing
  // --- about scheduling).
  /// Total playback stall across links (seconds of frozen playout; startup
  /// wait before the first start is not counted).
  double stall_seconds = 0.0;
  /// Total underrun events across links (playback paused mid-period).
  int rebuffer_events = 0;
  /// (GOP, layer) pairs offered: HP/LP layers with nonzero nominal demand,
  /// summed over executed — or, after a resume, replayed — periods.
  int layer_gops_offered = 0;
  /// (GOP, layer) pairs delivered in full — delivered bits covered
  /// min(nominal, shaped) demand — summed over links and periods.
  int layer_gops_delivered = 0;
  /// layer_gops_delivered / layer_gops_offered (1.0 when nothing offered).
  double layer_delivery_ratio = 1.0;

  // --- Pool-reuse accounting (populated when a SolverContext is threaded
  // --- through run_blockage_session; zeros otherwise).  All values are
  // --- THIS session's deltas: the context's counters are cumulative, so a
  // --- context reused across sessions still reports per-session numbers.
  int pool_periods = 0;           ///< periods solved through the context
  int pool_columns_loaded = 0;    ///< columns offered for cross-period reuse
  int pool_columns_reused = 0;    ///< columns that re-entered a master
  int pool_columns_repaired = 0;  ///< reused only after repair
  int pool_columns_dropped = 0;   ///< discarded as irreparable
  double pool_hit_rate = 0.0;     ///< reused / loaded
  int pool_resolves = 0;          ///< context-routed solves this session
  int pool_hits = 0;              ///< resolves with >=1 seeded survivor
  int pool_misses = 0;            ///< resolves seeded with nothing usable
  /// Columns evicted by the manager's cap policy during this session.
  std::int64_t pool_evicted = 0;
  /// Seeded columns that came from a neighbour instance (different
  /// fingerprint) — the multi-instance sharing payoff.
  std::int64_t pool_neighbour_seeded = 0;

  // --- Crash-recovery accounting ------------------------------------------
  /// First period this call actually executed (> 0 only after a resume).
  /// base.gops still covers the whole horizon: replayed periods are scored
  /// from the cursor, so the final metrics equal the uninterrupted run's.
  /// base.all_served reflects only the periods executed by this call (the
  /// cursor does not carry per-period served flags).
  int start_gop = 0;
  /// A resume cursor was offered but failed validation or blockage replay;
  /// the session ran fresh from period 0 (the warm pool was kept).
  bool resume_rejected = false;
  /// False when BlockageRunControl::on_period stopped the run early.
  bool completed = true;
  /// Final rolling digest over every solved period's timeline (0 when no
  /// SolverContext was threaded through) — the chaos-soak witness.
  std::uint64_t plan_digest_chain = 0;

  /// One-line JSON rendering (stable key order, %.17g doubles) for log
  /// scraping; `mmwave_cli stream --metrics-json` emits it after the
  /// per-period lines.
  std::string to_json_line() const;
};

/// One-line JSON for the GOP boundary a cursor describes (stable key order,
/// %.17g doubles): the per-period record `mmwave_cli stream --metrics-json`
/// emits from BlockageRunControl::on_period.  Scoring fields come from the
/// cursor's last gop record; the buffer fields aggregate the cursor's
/// per-link buffer states (zeros when the cursor carries none).
std::string period_json_line(const core::StreamCursor& cursor);

/// `params` must match `base_model` (link/channel counts).  The blockage
/// process and the demand streams both derive from `rng`.
///
/// `solver_context`, when non-null, must be the same context the scheduler
/// was built with (make_cg_scheduler overload): the session then reports its
/// cross-period pool-reuse counters in the returned metrics.  Passing a
/// context the scheduler does not use is harmless (the counters stay zero).
///
/// `control`, when non-null, adds crash recovery: `control->resume` replays
/// a saved cursor and continues mid-session, `control->on_period` surfaces
/// a fresh cursor at every GOP boundary (and can stop the run, simulating a
/// crash).  Resuming restores the solver context's digest chain and offsets
/// the pool counters so the final metrics equal the uninterrupted run's.
BlockageSessionMetrics run_blockage_session(
    const net::ChannelModel& base_model, const net::NetworkParams& params,
    const BlockageSessionConfig& config, const Scheduler& scheduler,
    common::Rng& rng, SolverContext* solver_context = nullptr,
    const BlockageRunControl* control = nullptr);

}  // namespace mmwave::stream
