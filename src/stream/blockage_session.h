// Streaming over a dynamically-blocked network.
//
// Extends stream::run_session with the two-state Markov blockage process:
// each GOP period the blockage states advance, the PNC re-solves the
// allocation against the *current* (attenuated) gains, and the period is
// scored as usual.  This replays the paper's static per-period optimization
// in the dynamic environment its companion works ([4]-[6]) study, and
// quantifies how much re-solving per period buys over a blockage-oblivious
// schedule computed once on the clear-air gains.
#pragma once

#include "mmwave/blockage.h"
#include "stream/session.h"

namespace mmwave::stream {

struct BlockageSessionConfig {
  SessionConfig session;
  net::BlockageConfig blockage;
  /// If false, the scheduler sees the clear-air network every period (the
  /// schedule is computed obliviously) while execution still happens on the
  /// blocked gains — rate levels that no longer meet their SINR deliver
  /// nothing that period.
  bool reschedule_each_period = true;
};

struct BlockageSessionMetrics {
  SessionMetrics base;
  /// Mean fraction of links blocked per period.
  double mean_blocked_fraction = 0.0;
  /// Periods in which at least one scheduled transmission was invalidated
  /// by blockage (only nonzero for oblivious scheduling).
  int invalidated_periods = 0;
};

/// `params` must match `base_model` (link/channel counts).  The blockage
/// process and the demand streams both derive from `rng`.
BlockageSessionMetrics run_blockage_session(
    const net::ChannelModel& base_model, const net::NetworkParams& params,
    const BlockageSessionConfig& config, const Scheduler& scheduler,
    common::Rng& rng);

}  // namespace mmwave::stream
