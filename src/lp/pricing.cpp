#include "lp/pricing.h"

#include <cmath>
#include <string>

namespace mmwave::lp {
namespace {

class DantzigPricing final : public Pricing {
 public:
  [[nodiscard]] const char* name() const override { return "dantzig"; }
  void reset(int /*num_cols*/) override {}

  [[nodiscard]] int select(
      const std::vector<PricingCandidate>& candidates) const override {
    // Largest violation; ties resolve to the lowest column index (the list
    // is in ascending column order), keeping pivot sequences deterministic.
    int best = candidates.front().column;
    double best_violation = candidates.front().violation;
    for (const PricingCandidate& c : candidates) {
      if (c.violation > best_violation) {
        best = c.column;
        best_violation = c.violation;
      }
    }
    return best;
  }

  [[nodiscard]] bool wants_pivot_row() const override { return false; }
  void update(int /*entering*/, int /*leaving*/,
              const std::vector<double>& /*d*/, int /*r*/,
              const std::vector<double>& /*alphas*/) override {}
};

class SteepestEdgePricing final : public Pricing {
 public:
  [[nodiscard]] const char* name() const override { return "steepest-edge"; }

  void reset(int num_cols) override { weights_.assign(num_cols, 1.0); }

  [[nodiscard]] int select(
      const std::vector<PricingCandidate>& candidates) const override {
    int best = candidates.front().column;
    double best_score = score(candidates.front());
    for (const PricingCandidate& c : candidates) {
      const double s = score(c);
      if (s > best_score) {
        best = c.column;
        best_score = s;
      }
    }
    return best;
  }

  [[nodiscard]] bool wants_pivot_row() const override { return true; }

  void update(int entering, int leaving, const std::vector<double>& d, int r,
              const std::vector<double>& alphas) override {
    // Devex reference-weight update: with alpha_q = d[r] the pivot element
    // and gamma_q the entering column's weight,
    //   gamma_j <- max(gamma_j, (alpha_j / alpha_q)^2 gamma_q)
    //   gamma_p <- max(gamma_q / alpha_q^2, 1)      (the leaving variable).
    const double alpha_q = d[r];
    if (std::abs(alpha_q) < 1e-12 ||
        static_cast<std::size_t>(entering) >= weights_.size()) {
      // A degenerate pivot element makes the recurrence meaningless;
      // restart the reference framework instead of amplifying noise.
      weights_.assign(weights_.size(), 1.0);
      return;
    }
    const double gamma_q = std::max(weights_[entering], 1.0);
    const double inv_q2 = 1.0 / (alpha_q * alpha_q);
    double max_weight = 1.0;
    for (std::size_t j = 0; j < alphas.size(); ++j) {
      const double a = alphas[j];
      if (a == 0.0 || static_cast<int>(j) == entering) continue;
      const double cand = a * a * inv_q2 * gamma_q;
      if (cand > weights_[j]) weights_[j] = cand;
      if (weights_[j] > max_weight) max_weight = weights_[j];
    }
    if (static_cast<std::size_t>(leaving) < weights_.size()) {
      weights_[leaving] = std::max(gamma_q * inv_q2, 1.0);
    }
    // Weight blow-up means the reference framework has drifted far from
    // the current basis; reset rather than price on garbage.
    if (max_weight > 1e12) weights_.assign(weights_.size(), 1.0);
  }

 private:
  double score(const PricingCandidate& c) const {
    const double w =
        static_cast<std::size_t>(c.column) < weights_.size()
            ? std::max(weights_[c.column], 1e-12)
            : 1.0;
    return c.violation * c.violation / w;
  }

  std::vector<double> weights_;
};

}  // namespace

Pricing::~Pricing() = default;

const char* to_string(PricingRule rule) {
  switch (rule) {
    case PricingRule::kDantzig:
      return "dantzig";
    case PricingRule::kSteepestEdge:
      return "steepest-edge";
  }
  return "?";
}

[[nodiscard]] common::Expected<PricingRule> parse_pricing_rule(
    std::string_view text) {
  if (text == "dantzig") return PricingRule::kDantzig;
  if (text == "steepest" || text == "steepest-edge")
    return PricingRule::kSteepestEdge;
  return common::Status::Error(
      common::ErrorCode::kInvalidInput,
      "pricing rule: expected dantzig|steepest, got '" + std::string(text) +
          "'");
}

std::unique_ptr<Pricing> make_pricing(PricingRule rule) {
  if (rule == PricingRule::kSteepestEdge)
    return std::make_unique<SteepestEdgePricing>();
  return std::make_unique<DantzigPricing>();
}

}  // namespace mmwave::lp
