// Sparse LU factorization of a simplex basis with product-form updates.
//
// This is the revised simplex's basis engine: instead of maintaining an
// explicit dense inverse (O(m^2) per pivot, O(m^3) per refactorization),
// the basis B is held as
//
//   B = L U E_1 E_2 ... E_k
//
// where L/U come from a left-looking sparse LU with partial pivoting and
// each eta matrix E_t is the identity except for one column d = B^{-1} a_q
// recorded at pivot t (product-form update).  FTRAN (B x = b) applies
// L, U then the etas oldest-to-newest; BTRAN (B^T y = c) applies the eta
// transposes newest-to-oldest then U^T, L^T.  Work per solve is
// O(nnz(L) + nnz(U) + sum nnz(eta)) instead of O(m^2), and a pivot costs
// O(nnz(d)) instead of an O(m^2) inverse update.  The eta file is cleared
// by the next factorize()/reset_diagonal() — the simplex refactorizes every
// LpOptions::refactor_interval pivots, which bounds eta growth.
//
// Index spaces (matching the simplex's conventions):
//   * FTRAN input is indexed by original row, output by basis position
//     (position k holds the coefficient of the k-th basic variable).
//   * BTRAN input is indexed by basis position (costs of the basic
//     variables), output by original row (the duals y = B^{-T} c_B).
#pragma once

#include <utility>
#include <vector>

namespace mmwave::lp {

class LuFactor {
 public:
  /// One sparse basis column: (original row index, coefficient) pairs.
  using Column = std::vector<std::pair<int, double>>;

  /// Factorizes the m x m basis whose position-k column is *columns[k].
  /// Clears the eta file.  Returns false when the matrix is singular to
  /// working precision; the previous factorization (and its etas) is kept
  /// intact so the caller can keep limping on the updated basis — the same
  /// contract the dense engine's failed refactorization has.
  bool factorize(int m, const std::vector<const Column*>& columns);

  /// Installs the trivial factorization of a diagonal basis (the signed
  /// all-artificial phase-1 start) in O(m), clearing the eta file.  Every
  /// `diag` entry must be nonzero.
  void reset_diagonal(const std::vector<double>& diag);

  /// Appends the product-form eta of a pivot: d = B^{-1} a_entering
  /// (position-indexed, as FTRAN returned it) with pivot row position r.
  /// Returns false — leaving the factorization unchanged — when |d[r]| is
  /// too small to divide by; the caller must refactorize instead.
  bool push_eta(const std::vector<double>& d, int r);

  /// Solves B x = b in place.  On entry x[row] is the right-hand side by
  /// original row; on exit x[k] is the solution by basis position.
  void ftran(std::vector<double>& x) const;

  /// Solves B^T y = c in place.  On entry x[k] is the cost of the k-th
  /// basic variable (position-indexed); on exit x[row] holds the dual of
  /// that original row.
  void btran(std::vector<double>& x) const;

  bool ok() const { return ok_; }
  int dimension() const { return m_; }
  int eta_count() const { return static_cast<int>(etas_.size()); }

 private:
  struct Eta {
    int r = 0;        ///< pivot position
    double dr = 0.0;  ///< d[r], the pivot element
    /// Off-pivot nonzeros of d, position-indexed.
    std::vector<std::pair<int, double>> d;
  };

  int m_ = 0;
  bool ok_ = false;
  /// L is unit lower triangular in pivot order: lcols_[k] holds the
  /// below-pivot multipliers of elimination step k as (original row, value).
  std::vector<Column> lcols_;
  /// U by column: ucols_[k] holds the above-diagonal entries of column k as
  /// (pivot position j < k, value); the diagonal lives in udiag_.
  std::vector<std::vector<std::pair<int, double>>> ucols_;
  std::vector<double> udiag_;
  /// prow_[k] = original row chosen as the pivot of position k.
  std::vector<int> prow_;
  std::vector<Eta> etas_;
  mutable std::vector<double> scratch_;
};

}  // namespace mmwave::lp
