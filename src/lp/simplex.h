// Bounded-variable two-phase revised simplex.
//
// Solves   min/max c'x   s.t.  A x {<=,=,>=} b,   l <= x <= u
// exactly (to tolerance), returning the primal solution and the simplex
// multipliers (dual values), which drive the column-generation pricing step.
//
// Implementation notes:
//  * Computational form: every row gets a slack (bounds encode the sense);
//    phase 1 adds signed artificials and minimizes their sum.
//  * Bounds are handled by the upper-bounded simplex technique (nonbasic
//    variables rest at either bound; the ratio test allows bound flips), so
//    binaries and power caps never cost extra rows.
//  * Revised simplex: the basis is held as a sparse LU factorization
//    (lp::LuFactor) with product-form eta updates per pivot and periodic
//    refactorization; FTRAN/BTRAN solves replace explicit-inverse
//    maintenance.  The historical dense explicit-inverse engine survives
//    behind LpOptions::dense_basis as the property-test reference.
//  * Pluggable pricing (lp::Pricing): Dantzig (default) or steepest-edge
//    with incremental reference weights, with a Bland's-rule fallback once
//    a run of degenerate pivots is detected, which guarantees termination
//    under either rule.
//
// Dual sign convention (Minimize): a >= row has dual >= 0, a <= row has
// dual <= 0, an = row is unconstrained in sign.  For Maximize models the
// reported duals are for the *maximization* problem (>= row dual <= 0 etc.),
// so user-level duality c'x* = y'b (+ bound terms) always holds as written.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "lp/model.h"
#include "lp/pricing.h"

namespace mmwave::lp {

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  NumericalError,
};

const char* to_string(SolveStatus status);

struct LpOptions {
  /// 0 means "choose from problem size".
  std::int64_t max_iterations = 0;
  /// Wall-clock budget for the solve, seconds (0 disables).  Checked every
  /// few pivots; on expiry the solve returns IterationLimit with a
  /// kLimitHit error.  This is what lets a deadline preempt a long LP
  /// mid-solve instead of waiting out the iteration cap.
  double time_limit_sec = 0.0;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  /// Refactorize the basis from scratch every this many pivots (bounds the
  /// eta file of the sparse engine, sheds drift on the dense one).
  int refactor_interval = 128;
  /// Consecutive non-improving pivots before switching to Bland's rule.
  int stall_threshold = 60;
  /// Entering-variable pricing rule (see lp/pricing.h).
  PricingRule pricing = PricingRule::kDantzig;
  /// Use the dense explicit-inverse basis engine instead of the sparse LU.
  /// Kept as the independently-implemented reference the revised solver is
  /// property-tested against, and for A/B benchmarks.
  bool dense_basis = false;
  /// Read the deadline clock only every this many pivots when
  /// time_limit_sec is set, so tight solves don't pay a clock call per
  /// pivot.  The fault-injection hook stays per-pivot regardless.
  int deadline_check_stride = 16;
};

/// Basis-engine work counters of one solve (surfaced through CgProfile and
/// `mmwave_cli solve --profile`).
struct LpStats {
  std::int64_t ftran_calls = 0;
  std::int64_t btran_calls = 0;
  /// Full basis (re)factorizations, including the warm-start install.
  int refactorizations = 0;
  /// Name of the pricing rule that ran ("dantzig" | "steepest-edge").
  const char* pricing_rule = "";
};

struct LpSolution {
  SolveStatus status = SolveStatus::NumericalError;
  /// Objective in the model's own sense (max problems report the max value).
  double objective = 0.0;
  std::vector<double> x;
  /// One dual per constraint; see sign convention above.
  std::vector<double> duals;
  std::int64_t iterations = 0;
  /// True when this solve resumed from a caller-supplied WarmStart basis
  /// (phase 1 was skipped entirely).
  bool warm_started = false;
  /// Structured failure detail: Ok on Optimal, otherwise the error code
  /// (kNumericalBreakdown, kLimitHit, kInfeasible, kUnbounded) plus a
  /// message saying where the solve gave out.
  common::Status error;
  /// Basis-engine work counters (FTRAN/BTRAN/refactorization, pricing rule).
  LpStats stats;

  bool optimal() const { return status == SolveStatus::Optimal; }
};

/// Rest state of a nonbasic variable in a WarmStart.
enum class BoundState : std::uint8_t { AtLower, AtUpper, Free };

/// Resumable-basis snapshot of an optimal solve, in a model-independent
/// encoding so it survives column appends: a basis entry >= 0 names a
/// structural variable by index, an entry e < 0 names the slack of row
/// -1 - e.  Structural variables appended after the snapshot default to
/// nonbasic at lower bound, which is exactly the column-generation growth
/// pattern (the old basis stays primal-feasible and phase 1 is skipped;
/// anything else falls back to a cold two-phase solve).
struct WarmStart {
  bool valid = false;
  /// One entry per constraint row.
  std::vector<int> basis;
  /// Rest states of structural variables at export time; variables added
  /// later rest at their lower bound.
  std::vector<BoundState> struct_state;
  /// Rest states of the row slacks (one per constraint).
  std::vector<BoundState> slack_state;
};

/// Solves the model.  The model is not modified.
LpSolution solve_lp(const LpModel& model, const LpOptions& options = {});

/// Solves the model, resuming from `warm` when it holds a compatible basis
/// (same row count; at most as many structural variables as the model).  On
/// an Optimal exit the final basis is exported back into `warm` so the next
/// solve of a grown model can resume again.  The result is the same optimum
/// a cold solve finds (identical objective and, for non-degenerate models,
/// identical duals); only the pivot path differs.
LpSolution solve_lp(const LpModel& model, const LpOptions& options,
                    WarmStart* warm);

/// Solves the model with per-variable bound overrides (used by branch &
/// bound to explore nodes without copying the model).  `lb`/`ub` must have
/// one entry per variable.
LpSolution solve_lp_with_bounds(const LpModel& model,
                                const std::vector<double>& lb,
                                const std::vector<double>& ub,
                                const LpOptions& options = {});

}  // namespace mmwave::lp
