// Bounded-variable two-phase revised simplex.
//
// Solves   min/max c'x   s.t.  A x {<=,=,>=} b,   l <= x <= u
// exactly (to tolerance), returning the primal solution and the simplex
// multipliers (dual values), which drive the column-generation pricing step.
//
// Implementation notes:
//  * Computational form: every row gets a slack (bounds encode the sense);
//    phase 1 adds signed artificials and minimizes their sum.
//  * Bounds are handled by the upper-bounded simplex technique (nonbasic
//    variables rest at either bound; the ratio test allows bound flips), so
//    binaries and power caps never cost extra rows.
//  * The basis inverse is kept explicitly (dense) with eta-style row updates
//    and periodic refactorization through LU; problem sizes here are a few
//    thousand rows at most.
//  * Dantzig pricing with a Bland's-rule fallback once a run of degenerate
//    pivots is detected, which guarantees termination.
//
// Dual sign convention (Minimize): a >= row has dual >= 0, a <= row has
// dual <= 0, an = row is unconstrained in sign.  For Maximize models the
// reported duals are for the *maximization* problem (>= row dual <= 0 etc.),
// so user-level duality c'x* = y'b (+ bound terms) always holds as written.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"

namespace mmwave::lp {

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  NumericalError,
};

const char* to_string(SolveStatus status);

struct LpOptions {
  /// 0 means "choose from problem size".
  std::int64_t max_iterations = 0;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  /// Rebuild the basis inverse from scratch every this many pivots.
  int refactor_interval = 128;
  /// Consecutive non-improving pivots before switching to Bland's rule.
  int stall_threshold = 60;
};

struct LpSolution {
  SolveStatus status = SolveStatus::NumericalError;
  /// Objective in the model's own sense (max problems report the max value).
  double objective = 0.0;
  std::vector<double> x;
  /// One dual per constraint; see sign convention above.
  std::vector<double> duals;
  std::int64_t iterations = 0;

  bool optimal() const { return status == SolveStatus::Optimal; }
};

/// Solves the model.  The model is not modified.
LpSolution solve_lp(const LpModel& model, const LpOptions& options = {});

/// Solves the model with per-variable bound overrides (used by branch &
/// bound to explore nodes without copying the model).  `lb`/`ub` must have
/// one entry per variable.
LpSolution solve_lp_with_bounds(const LpModel& model,
                                const std::vector<double>& lb,
                                const std::vector<double>& ub,
                                const LpOptions& options = {});

}  // namespace mmwave::lp
