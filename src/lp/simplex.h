// Bounded-variable two-phase revised simplex.
//
// Solves   min/max c'x   s.t.  A x {<=,=,>=} b,   l <= x <= u
// exactly (to tolerance), returning the primal solution and the simplex
// multipliers (dual values), which drive the column-generation pricing step.
//
// Implementation notes:
//  * Computational form: every row gets a slack (bounds encode the sense);
//    phase 1 adds signed artificials and minimizes their sum.
//  * Bounds are handled by the upper-bounded simplex technique (nonbasic
//    variables rest at either bound; the ratio test allows bound flips), so
//    binaries and power caps never cost extra rows.
//  * The basis inverse is kept explicitly (dense) with eta-style row updates
//    and periodic refactorization through LU; problem sizes here are a few
//    thousand rows at most.
//  * Dantzig pricing with a Bland's-rule fallback once a run of degenerate
//    pivots is detected, which guarantees termination.
//
// Dual sign convention (Minimize): a >= row has dual >= 0, a <= row has
// dual <= 0, an = row is unconstrained in sign.  For Maximize models the
// reported duals are for the *maximization* problem (>= row dual <= 0 etc.),
// so user-level duality c'x* = y'b (+ bound terms) always holds as written.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "lp/model.h"

namespace mmwave::lp {

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  NumericalError,
};

const char* to_string(SolveStatus status);

struct LpOptions {
  /// 0 means "choose from problem size".
  std::int64_t max_iterations = 0;
  /// Wall-clock budget for the solve, seconds (0 disables).  Checked every
  /// few pivots; on expiry the solve returns IterationLimit with a
  /// kLimitHit error.  This is what lets a deadline preempt a long LP
  /// mid-solve instead of waiting out the iteration cap.
  double time_limit_sec = 0.0;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  /// Rebuild the basis inverse from scratch every this many pivots.
  int refactor_interval = 128;
  /// Consecutive non-improving pivots before switching to Bland's rule.
  int stall_threshold = 60;
};

struct LpSolution {
  SolveStatus status = SolveStatus::NumericalError;
  /// Objective in the model's own sense (max problems report the max value).
  double objective = 0.0;
  std::vector<double> x;
  /// One dual per constraint; see sign convention above.
  std::vector<double> duals;
  std::int64_t iterations = 0;
  /// True when this solve resumed from a caller-supplied WarmStart basis
  /// (phase 1 was skipped entirely).
  bool warm_started = false;
  /// Structured failure detail: Ok on Optimal, otherwise the error code
  /// (kNumericalBreakdown, kLimitHit, kInfeasible, kUnbounded) plus a
  /// message saying where the solve gave out.
  common::Status error;

  bool optimal() const { return status == SolveStatus::Optimal; }
};

/// Rest state of a nonbasic variable in a WarmStart.
enum class BoundState : std::uint8_t { AtLower, AtUpper, Free };

/// Resumable-basis snapshot of an optimal solve, in a model-independent
/// encoding so it survives column appends: a basis entry >= 0 names a
/// structural variable by index, an entry e < 0 names the slack of row
/// -1 - e.  Structural variables appended after the snapshot default to
/// nonbasic at lower bound, which is exactly the column-generation growth
/// pattern (the old basis stays primal-feasible and phase 1 is skipped;
/// anything else falls back to a cold two-phase solve).
struct WarmStart {
  bool valid = false;
  /// One entry per constraint row.
  std::vector<int> basis;
  /// Rest states of structural variables at export time; variables added
  /// later rest at their lower bound.
  std::vector<BoundState> struct_state;
  /// Rest states of the row slacks (one per constraint).
  std::vector<BoundState> slack_state;
};

/// Solves the model.  The model is not modified.
LpSolution solve_lp(const LpModel& model, const LpOptions& options = {});

/// Solves the model, resuming from `warm` when it holds a compatible basis
/// (same row count; at most as many structural variables as the model).  On
/// an Optimal exit the final basis is exported back into `warm` so the next
/// solve of a grown model can resume again.  The result is the same optimum
/// a cold solve finds (identical objective and, for non-degenerate models,
/// identical duals); only the pivot path differs.
LpSolution solve_lp(const LpModel& model, const LpOptions& options,
                    WarmStart* warm);

/// Solves the model with per-variable bound overrides (used by branch &
/// bound to explore nodes without copying the model).  `lb`/`ub` must have
/// one entry per variable.
LpSolution solve_lp_with_bounds(const LpModel& model,
                                const std::vector<double>& lb,
                                const std::vector<double>& ub,
                                const LpOptions& options = {});

}  // namespace mmwave::lp
