// Pluggable entering-variable pricing for the revised simplex.
//
// Pricing decides which optimality-violating nonbasic column enters the
// basis each pivot; the rule is the single biggest lever on pivot counts.
// Two rules are provided:
//
//   * Dantzig — largest reduced-cost violation.  Zero bookkeeping per
//     pivot; the historical default, and still the cheapest per iteration.
//   * Steepest-edge (Devex reference weights) — largest violation^2 / gamma_j
//     where gamma_j approximates ||B^{-1} a_j||^2 and is updated
//     incrementally from the pivot row after every basis change.  Costs one
//     extra BTRAN plus one sparse dot per nonbasic column per pivot, and
//     typically repays it in far fewer pivots on larger bases.
//
// The simplex stays rule-agnostic: it hands every rule the candidate list
// (column + violation) and, only when the rule asks (wants_pivot_row()),
// the pivot-row alphas needed for incremental weight updates.  Bland's-rule
// anti-cycling bypasses the rule entirely, so the termination guarantee is
// independent of the pricing choice.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mmwave::lp {

enum class PricingRule : std::uint8_t { kDantzig, kSteepestEdge };

const char* to_string(PricingRule rule);

/// Parses "dantzig" | "steepest" | "steepest-edge" (the CLI spellings).
/// Anything else is a structured kInvalidInput naming the accepted values.
[[nodiscard]] common::Expected<PricingRule> parse_pricing_rule(
    std::string_view text);

/// One nonbasic column whose reduced cost violates optimality, as collected
/// by the simplex's pricing pass (violation > tolerance, ascending column
/// order).
struct PricingCandidate {
  int column = 0;
  double violation = 0.0;
};

class Pricing {
 public:
  virtual ~Pricing();
  [[nodiscard]] virtual const char* name() const = 0;

  /// Restarts the rule's reference framework for a model with `num_cols`
  /// columns (called once per solve, before the first pricing pass).
  virtual void reset(int num_cols) = 0;

  /// Picks the entering column from a non-empty candidate list.
  [[nodiscard]] virtual int select(
      const std::vector<PricingCandidate>& candidates) const = 0;

  /// True when update() needs the pivot-row alphas (one BTRAN of e_r plus a
  /// sparse dot per nonbasic column); Dantzig skips that work entirely.
  [[nodiscard]] virtual bool wants_pivot_row() const = 0;

  /// Post-pivot bookkeeping: `entering` replaced the variable `leaving` at
  /// basis position r, d = B^{-1} a_entering (position-indexed, from the
  /// pre-pivot basis), and alphas[j] = (B^{-1} a_j)_r for every nonbasic
  /// column j (alphas[entering] = d[r], the pivot element).  `alphas` is
  /// empty when wants_pivot_row() is false.
  virtual void update(int entering, int leaving, const std::vector<double>& d,
                      int r, const std::vector<double>& alphas) = 0;
};

std::unique_ptr<Pricing> make_pricing(PricingRule rule);

}  // namespace mmwave::lp
