#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/fault_injection.h"
#include "common/log.h"
#include "common/matrix.h"
#include "lp/lu_factor.h"

namespace mmwave::lp {
namespace {

using common::LuFactorization;
using common::Matrix;

enum class VarState : std::uint8_t { Basic, AtLower, AtUpper, FreeNonbasic };

/// Basis-representation engine of the revised simplex.  The iteration loop
/// only ever talks to the basis through these six operations, so the sparse
/// LU + eta-file engine (the default) and the historical dense
/// explicit-inverse engine (LpOptions::dense_basis, the property-test
/// reference) are interchangeable.
///
/// Index conventions: FTRAN results and eta directions are indexed by basis
/// position; BTRAN inputs are position-indexed basic costs and outputs are
/// original-row-indexed duals.
class BasisEngine {
 public:
  virtual ~BasisEngine() = default;
  /// Factorizes the basis whose position-k column is *columns[k].  Returns
  /// false on a singular basis; the previous factorization stays usable.
  virtual bool refactorize(
      const std::vector<const std::vector<Term>*>& columns) = 0;
  /// O(m) install of a diagonal basis (the signed all-artificial start);
  /// `diag` holds the matrix diagonal itself.
  virtual void reset_diagonal(const std::vector<double>& diag) = 0;
  /// d = B^{-1} a for a sparse column a.
  virtual void ftran_column(const std::vector<Term>& a,
                            std::vector<double>& d) = 0;
  /// x = B^{-1} rhs for a dense row-indexed right-hand side.
  virtual void ftran_dense(const std::vector<double>& rhs,
                           std::vector<double>& x) = 0;
  /// y = B^{-T} c.
  virtual void btran_dense(const std::vector<double>& c,
                           std::vector<double>& y) = 0;
  /// rho = B^{-T} e_r — row r of B^{-1}, the pivot row steepest-edge needs.
  virtual void btran_unit(int r, std::vector<double>& rho) = 0;
  /// Applies the basis change of a pivot at position r with FTRAN result d.
  /// False when the pivot element is numerically unusable for an update;
  /// the caller must refactorize instead.
  virtual bool update(const std::vector<double>& d, int r) = 0;
};

/// The pre-revised-simplex engine: B^{-1} held as a dense matrix, pivots
/// apply the explicit rank-one inverse update, refactorization inverts a
/// dense LU.  O(m^2) per operation — kept because it is an independent
/// implementation the sparse engine is property-tested against.
class DenseEngine final : public BasisEngine {
 public:
  explicit DenseEngine(int m) : m_(m), binv_(m, m) {}

  bool refactorize(
      const std::vector<const std::vector<Term>*>& columns) override {
    Matrix basis_matrix(m_, m_);
    for (int k = 0; k < m_; ++k) {
      for (const auto& [row, coef] : *columns[k]) basis_matrix(row, k) += coef;
    }
    LuFactorization lu(std::move(basis_matrix));
    if (!lu.ok()) return false;
    binv_ = lu.inverse();
    return true;
  }

  void reset_diagonal(const std::vector<double>& diag) override {
    binv_ = Matrix(m_, m_);
    for (int i = 0; i < m_; ++i) binv_(i, i) = 1.0 / diag[i];
  }

  void ftran_column(const std::vector<Term>& a,
                    std::vector<double>& d) override {
    d.assign(m_, 0.0);
    for (const auto& [row, coef] : a) {
      for (int k = 0; k < m_; ++k) d[k] += binv_(k, row) * coef;
    }
  }

  void ftran_dense(const std::vector<double>& rhs,
                   std::vector<double>& x) override {
    x.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const double* row = binv_.row(i);
      double v = 0.0;
      for (int k = 0; k < m_; ++k) v += row[k] * rhs[k];
      x[i] = v;
    }
  }

  void btran_dense(const std::vector<double>& c,
                   std::vector<double>& y) override {
    y.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      if (c[i] == 0.0) continue;
      const double* row = binv_.row(i);
      for (int k = 0; k < m_; ++k) y[k] += c[i] * row[k];
    }
  }

  void btran_unit(int r, std::vector<double>& rho) override {
    rho.assign(m_, 0.0);
    const double* row = binv_.row(r);
    for (int k = 0; k < m_; ++k) rho[k] = row[k];
  }

  bool update(const std::vector<double>& d, int r) override {
    const double pivot = d[r];
    if (std::abs(pivot) <= 1e-12) return false;
    double* prow = binv_.row(r);
    const double inv_pivot = 1.0 / pivot;
    for (int k = 0; k < m_; ++k) prow[k] *= inv_pivot;
    for (int i = 0; i < m_; ++i) {
      if (i == r || d[i] == 0.0) continue;
      double* row = binv_.row(i);
      const double factor = d[i];
      for (int k = 0; k < m_; ++k) row[k] -= factor * prow[k];
    }
    return true;
  }

 private:
  int m_;
  Matrix binv_;
};

/// The revised-simplex engine: sparse LU of the basis plus a product-form
/// eta file (lp::LuFactor).  Work per solve scales with the factor's
/// nonzeros, not m^2, and a pivot costs O(nnz(d)) instead of a dense
/// rank-one inverse update.
class SparseEngine final : public BasisEngine {
 public:
  explicit SparseEngine(int m) : m_(m) {}

  bool refactorize(
      const std::vector<const std::vector<Term>*>& columns) override {
    return lu_.factorize(m_, columns);
  }

  void reset_diagonal(const std::vector<double>& diag) override {
    lu_.reset_diagonal(diag);
  }

  void ftran_column(const std::vector<Term>& a,
                    std::vector<double>& d) override {
    d.assign(m_, 0.0);
    for (const auto& [row, coef] : a) d[row] += coef;
    lu_.ftran(d);
  }

  void ftran_dense(const std::vector<double>& rhs,
                   std::vector<double>& x) override {
    x = rhs;
    lu_.ftran(x);
  }

  void btran_dense(const std::vector<double>& c,
                   std::vector<double>& y) override {
    y = c;
    lu_.btran(y);
  }

  void btran_unit(int r, std::vector<double>& rho) override {
    rho.assign(m_, 0.0);
    rho[r] = 1.0;
    lu_.btran(rho);
  }

  bool update(const std::vector<double>& d, int r) override {
    return lu_.push_eta(d, r);
  }

 private:
  int m_;
  LuFactor lu_;
};

/// Internal bounded-variable simplex working on the computational form
///   min c'x  s.t.  A x = b,  l <= x <= u
/// where columns are [structural | slacks | artificials].
class Simplex {
 public:
  Simplex(const LpModel& model, const std::vector<double>& lb_override,
          const std::vector<double>& ub_override, const LpOptions& options)
      : options_(options) {
    if (options_.time_limit_sec > 0.0) {
      deadline_enabled_ = true;
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         options_.time_limit_sec));
    }
    build(model, lb_override, ub_override);
  }

  LpSolution run(const LpModel& model, WarmStart* warm) {
    LpSolution sol;
    sol.stats.pricing_rule = pricing_->name();
    if (bad_bounds_) {
      sol.status = SolveStatus::Infeasible;
      sol.error = common::Status::Error(common::ErrorCode::kInvalidInput,
                                        "inconsistent variable bounds (lb > ub)");
      return sol;
    }
    if (m_ == 0) {
      solve_unconstrained(sol);
      finalize(model, sol);
      sol.error = describe(sol.status);
      return sol;
    }

    SolveStatus st = SolveStatus::NumericalError;
    bool solved = false;
    if (warm != nullptr && warm->valid && install_warm_basis(*warm)) {
      // The old optimal basis is still primal-feasible: skip phase 1 and
      // re-optimize directly (typically a handful of pivots after a column
      // append).
      phase1_ = false;
      st = iterate();
      if (st == SolveStatus::Optimal || st == SolveStatus::IterationLimit) {
        solved = true;
        sol.warm_started = true;
      }
      // Anything else means the stale basis went numerically bad mid-flight;
      // fall through to an ordinary cold start.
    }
    if (!solved) {
      sol.warm_started = false;
      st = run_two_phase();
    }
    sol.iterations = iterations_;
    sol.status = st;
    if (st == SolveStatus::Optimal || st == SolveStatus::IterationLimit) {
      finalize(model, sol);
      sol.status = st;
      if (warm != nullptr && st == SolveStatus::Optimal)
        export_warm_basis(*warm);
    }
    sol.error = describe(st);
    sol.stats = stats_;
    sol.stats.pricing_rule = pricing_->name();
    return sol;
  }

  /// Maps an exit status to the structured error the caller propagates.
  [[nodiscard]] common::Status describe(SolveStatus st) const {
    using common::ErrorCode;
    using common::Status;
    switch (st) {
      case SolveStatus::Optimal:
        return Status::Ok();
      case SolveStatus::Infeasible:
        return Status::Error(ErrorCode::kInfeasible, "LP infeasible");
      case SolveStatus::Unbounded:
        return Status::Error(ErrorCode::kUnbounded, "LP unbounded");
      case SolveStatus::IterationLimit:
        return Status::Error(ErrorCode::kLimitHit,
                             (timed_out_ ? "simplex time limit after "
                                         : "simplex iteration limit after ") +
                                 std::to_string(iterations_) + " pivots");
      case SolveStatus::NumericalError:
        return Status::Error(ErrorCode::kNumericalBreakdown,
                             "simplex numerical breakdown after " +
                                 std::to_string(iterations_) + " pivots" +
                                 (poisoned_ ? " (injected fault)" : ""));
    }
    return Status::Error(ErrorCode::kInternal, "unknown simplex status");
  }

 private:
  //--------------------------------------------------------------------
  // Model construction
  //--------------------------------------------------------------------
  void build(const LpModel& model, const std::vector<double>& lb_override,
             const std::vector<double>& ub_override) {
    n_struct_ = model.num_variables();
    m_ = model.num_constraints();
    n_slack_start_ = n_struct_;
    n_art_start_ = n_struct_ + m_;
    num_cols_ = n_struct_ + 2 * m_;

    maximize_ = model.objective_sense() == ObjSense::Maximize;

    lb_.assign(num_cols_, 0.0);
    ub_.assign(num_cols_, 0.0);
    cost_.assign(num_cols_, 0.0);
    cols_.assign(num_cols_, {});
    b_.assign(m_, 0.0);

    const bool use_override = !lb_override.empty();
    for (int j = 0; j < n_struct_; ++j) {
      const Variable& v = model.variable(j);
      lb_[j] = use_override ? lb_override[j] : v.lb;
      ub_[j] = use_override ? ub_override[j] : v.ub;
      if (lb_[j] > ub_[j] + options_.feasibility_tol) bad_bounds_ = true;
      cost_[j] = maximize_ ? -v.cost : v.cost;
      // Structural columns come straight from the model's incrementally
      // maintained transpose view: O(nnz) instead of re-scanning every row.
      for (const auto& [row, coef] : model.column(j)) {
        if (coef == 0.0) continue;
        cols_[j].emplace_back(row, coef);
      }
    }

    for (int i = 0; i < m_; ++i) {
      const Constraint& row = model.constraint(i);
      b_[i] = row.rhs;
      rhs_scale_ = std::max(rhs_scale_, std::abs(row.rhs));
      // Slack column.
      const int sj = n_slack_start_ + i;
      cols_[sj].emplace_back(i, 1.0);
      switch (row.sense) {
        case Sense::Le:
          lb_[sj] = 0.0;
          ub_[sj] = kInfinity;
          break;
        case Sense::Ge:
          lb_[sj] = -kInfinity;
          ub_[sj] = 0.0;
          break;
        case Sense::Eq:
          lb_[sj] = 0.0;
          ub_[sj] = 0.0;
          break;
      }
    }

    // Sort each structural column by row and merge duplicate entries so the
    // solver sees one coefficient per (row, column) pair.
    for (int j = 0; j < n_struct_; ++j) {
      auto& column = cols_[j];
      std::sort(column.begin(), column.end(),
                [](const Term& a, const Term& b) { return a.first < b.first; });
      std::size_t out = 0;
      for (std::size_t in = 0; in < column.size(); ++in) {
        if (out > 0 && column[out - 1].first == column[in].first) {
          column[out - 1].second += column[in].second;
        } else {
          column[out++] = column[in];
        }
      }
      column.resize(out);
    }

    cost_scale_ = 1.0;
    for (int j = 0; j < n_struct_; ++j)
      cost_scale_ = std::max(cost_scale_, std::abs(cost_[j]));

    max_iterations_ = options_.max_iterations > 0
                          ? options_.max_iterations
                          : std::max<std::int64_t>(
                                2000, 60LL * (m_ + n_struct_));

    if (options_.dense_basis) {
      engine_ = std::make_unique<DenseEngine>(m_);
    } else {
      engine_ = std::make_unique<SparseEngine>(m_);
    }
    pricing_ = make_pricing(options_.pricing);
    pricing_->reset(num_cols_);
    deadline_stride_ = std::max(1, options_.deadline_check_stride);
  }

  /// Places all structural/slack variables at a finite bound (or 0 if free),
  /// installs signed artificials as the starting basis.
  void init_basis() {
    xval_.assign(num_cols_, 0.0);
    state_.assign(num_cols_, VarState::AtLower);
    for (int j = 0; j < n_art_start_; ++j) {
      if (std::isfinite(lb_[j])) {
        state_[j] = VarState::AtLower;
        xval_[j] = lb_[j];
      } else if (std::isfinite(ub_[j])) {
        state_[j] = VarState::AtUpper;
        xval_[j] = ub_[j];
      } else {
        state_[j] = VarState::FreeNonbasic;
        xval_[j] = 0.0;
      }
    }

    std::vector<double> residual = b_;
    for (int j = 0; j < n_art_start_; ++j) {
      if (xval_[j] == 0.0) continue;
      for (const auto& [row, coef] : cols_[j]) residual[row] -= coef * xval_[j];
    }

    basis_.resize(m_);
    for (int i = 0; i < m_; ++i) {
      const int aj = n_art_start_ + i;
      const double sign = residual[i] >= 0.0 ? 1.0 : -1.0;
      cols_[aj].clear();
      cols_[aj].emplace_back(i, sign);
      lb_[aj] = 0.0;
      ub_[aj] = kInfinity;
      basis_[i] = aj;
      state_[aj] = VarState::Basic;
      xval_[aj] = std::abs(residual[i]);
    }
    // The all-artificial basis matrix is diagonal (+/-1), so both engines
    // install it in O(m) instead of running a generic refactorization —
    // which for a few-thousand-row LP costs more than an entire budgeted
    // solve.
    diag_.resize(m_);
    for (int i = 0; i < m_; ++i) diag_[i] = cols_[basis_[i]].front().second;
    engine_->reset_diagonal(diag_);
    pivots_since_refactor_ = 0;
  }

  /// The original cold path: phase 1 from an all-artificial basis, then
  /// phase 2 with the artificials pinned to zero.
  SolveStatus run_two_phase() {
    init_basis();

    // Phase 1: minimize the sum of artificial values.
    phase1_ = true;
    SolveStatus st = iterate();
    if (st != SolveStatus::Optimal) {
      return st == SolveStatus::Unbounded ? SolveStatus::NumericalError : st;
    }
    if (phase1_objective() > 1e-6 * (1.0 + rhs_scale_)) {
      return SolveStatus::Infeasible;
    }

    // Phase 2: fix artificials at zero and optimize the true objective.
    phase1_ = false;
    for (int j = n_art_start_; j < num_cols_; ++j) {
      lb_[j] = 0.0;
      ub_[j] = 0.0;
      if (state_[j] != VarState::Basic) {
        state_[j] = VarState::AtLower;
        xval_[j] = 0.0;
      }
    }
    return iterate();
  }

  /// Installs a caller-supplied basis: nonbasic variables rest at their
  /// recorded bound (appended columns at lower bound), the basis is
  /// refactorized and the basic values recomputed.  Returns true only when
  /// the basis is nonsingular and the resulting point is primal-feasible —
  /// the condition under which phase 1 may be skipped.
  bool install_warm_basis(const WarmStart& ws) {
    if (static_cast<int>(ws.basis.size()) != m_) return false;
    if (static_cast<int>(ws.struct_state.size()) > n_struct_) return false;
    if (static_cast<int>(ws.slack_state.size()) != m_) return false;

    xval_.assign(num_cols_, 0.0);
    state_.assign(num_cols_, VarState::AtLower);
    auto rest = [&](int j, BoundState st) {
      // Honor the recorded side when that bound is finite; otherwise demote
      // to whichever bound exists (or free).
      const bool fl = std::isfinite(lb_[j]);
      const bool fu = std::isfinite(ub_[j]);
      VarState s;
      if (st == BoundState::AtUpper && fu) {
        s = VarState::AtUpper;
      } else if (st == BoundState::AtLower && fl) {
        s = VarState::AtLower;
      } else if (fl) {
        s = VarState::AtLower;
      } else if (fu) {
        s = VarState::AtUpper;
      } else {
        s = VarState::FreeNonbasic;
      }
      state_[j] = s;
      xval_[j] = s == VarState::AtLower   ? lb_[j]
                 : s == VarState::AtUpper ? ub_[j]
                                          : 0.0;
    };
    for (int j = 0; j < n_struct_; ++j) {
      rest(j, j < static_cast<int>(ws.struct_state.size())
                  ? ws.struct_state[j]
                  : BoundState::AtLower);
    }
    for (int i = 0; i < m_; ++i) rest(n_slack_start_ + i, ws.slack_state[i]);
    // Artificials never participate in a warm solve.
    for (int j = n_art_start_; j < num_cols_; ++j) {
      lb_[j] = 0.0;
      ub_[j] = 0.0;
      state_[j] = VarState::AtLower;
      xval_[j] = 0.0;
    }

    basis_.assign(m_, -1);
    std::vector<char> in_basis(static_cast<std::size_t>(num_cols_), 0);
    for (int i = 0; i < m_; ++i) {
      const int e = ws.basis[i];
      int col;
      if (e >= 0) {
        if (e >= n_struct_) return false;
        col = e;
      } else {
        const int row = -1 - e;
        if (row < 0 || row >= m_) return false;
        col = n_slack_start_ + row;
      }
      if (in_basis[col]) return false;
      in_basis[col] = 1;
      basis_[i] = col;
      state_[col] = VarState::Basic;
    }
    if (!refactor_basis()) return false;

    const double tol = options_.feasibility_tol * (1.0 + rhs_scale_);
    for (int i = 0; i < m_; ++i) {
      const int bj = basis_[i];
      if (xval_[bj] < lb_[bj] - tol || xval_[bj] > ub_[bj] + tol) return false;
    }
    return true;
  }

  /// Exports the current (optimal) basis in the model-independent encoding.
  /// A basis still holding an artificial (degenerate equality rows) is not
  /// expressible; the snapshot is invalidated and the next solve runs cold.
  void export_warm_basis(WarmStart& ws) const {
    ws.valid = false;
    ws.basis.assign(m_, 0);
    for (int i = 0; i < m_; ++i) {
      const int bj = basis_[i];
      if (bj < n_struct_) {
        ws.basis[i] = bj;
      } else if (bj < n_art_start_) {
        ws.basis[i] = -1 - (bj - n_slack_start_);
      } else {
        return;
      }
    }
    auto enc = [&](int j) {
      switch (state_[j]) {
        case VarState::AtUpper: return BoundState::AtUpper;
        case VarState::FreeNonbasic: return BoundState::Free;
        default: return BoundState::AtLower;
      }
    };
    ws.struct_state.resize(n_struct_);
    for (int j = 0; j < n_struct_; ++j) ws.struct_state[j] = enc(j);
    ws.slack_state.resize(m_);
    for (int i = 0; i < m_; ++i) ws.slack_state[i] = enc(n_slack_start_ + i);
    ws.valid = true;
  }

  double phase1_objective() const {
    double obj = 0.0;
    for (int i = 0; i < m_; ++i)
      if (basis_[i] >= n_art_start_) obj += xval_[basis_[i]];
    return obj;
  }

  double column_cost(int j) const {
    if (phase1_) return j >= n_art_start_ ? 1.0 : 0.0;
    return j >= n_art_start_ ? 0.0 : cost_[j];
  }

  //--------------------------------------------------------------------
  // Core iteration
  //--------------------------------------------------------------------
  SolveStatus iterate() {
    int stall = 0;
    bool bland = false;
    while (true) {
      if (iterations_ >= max_iterations_) return SolveStatus::IterationLimit;
      // The wall-clock budget preempts long solves mid-flight.  The clock
      // is read only every deadline_check_stride pivots (including pivot
      // 0, so a tiny budget still fires immediately): a steady_clock read
      // is cheap but no longer free next to a sparse pivot, and only
      // solves that opted into a limit pay even the strided cost.
      if (deadline_enabled_ && iterations_ % deadline_stride_ == 0 &&
          Clock::now() >= deadline_) {
        timed_out_ = true;
        return SolveStatus::IterationLimit;
      }
      // Robustness-test hook: a scripted scenario can poison this pivot,
      // modelling the mid-solve numerical breakdowns a singular or badly
      // conditioned basis produces in the wild.  Stays per-pivot — the
      // deadline stride must not change where a scripted fault fires.
      if (common::fault_fires(common::faults::kLpPivotPoison)) {
        poisoned_ = true;
        return SolveStatus::NumericalError;
      }

      compute_duals();
      const int entering = price(bland);
      if (entering < 0) return SolveStatus::Optimal;

      // Direction of travel for the entering variable.
      const double rc = reduced_cost(entering);
      int dir;
      if (state_[entering] == VarState::AtLower) {
        dir = +1;
      } else if (state_[entering] == VarState::AtUpper) {
        dir = -1;
      } else {  // free
        dir = rc < 0.0 ? +1 : -1;
      }

      engine_->ftran_column(cols_[entering], d_);
      ++stats_.ftran_calls;
      const std::vector<double>& d = d_;

      // Ratio test.  Relaxed ratios (bound + feasibility_tol) are used only
      // to *select* the blocking variable (Harris-style, for numerical
      // stability); the actual step is the exact ratio of the winner, so
      // iterates land exactly on bounds.
      double t_relaxed_limit = kInfinity;
      double t_exact = kInfinity;
      int leaving_pos = -1;   // position in basis; -1 => bound flip
      int leaving_hits_upper = 0;
      const double range =
          ub_[entering] - lb_[entering];  // may be infinite
      if (std::isfinite(range)) t_relaxed_limit = range;

      const double pivot_tol = 1e-9;
      double best_pivot_mag = 0.0;
      for (int i = 0; i < m_; ++i) {
        const double delta = -dir * d[i];
        if (std::abs(delta) < pivot_tol) continue;
        const int bj = basis_[i];
        double t_rel, t_ex;
        int hits_upper;
        if (delta > 0) {
          if (!std::isfinite(ub_[bj])) continue;
          t_rel = (ub_[bj] - xval_[bj] + options_.feasibility_tol) / delta;
          t_ex = (ub_[bj] - xval_[bj]) / delta;
          hits_upper = 1;
        } else {
          if (!std::isfinite(lb_[bj])) continue;
          t_rel = (lb_[bj] - xval_[bj] - options_.feasibility_tol) / delta;
          t_ex = (lb_[bj] - xval_[bj]) / delta;
          hits_upper = 0;
        }
        t_rel = std::max(t_rel, 0.0);
        t_ex = std::max(t_ex, 0.0);
        const bool better =
            t_rel < t_relaxed_limit - 1e-12 ||
            (t_rel < t_relaxed_limit + 1e-12 &&
             (bland ? (leaving_pos >= 0 && bj < basis_[leaving_pos])
                    : std::abs(d[i]) > best_pivot_mag));
        if (better) {
          t_relaxed_limit = std::min(t_relaxed_limit, t_rel);
          t_exact = t_ex;
          leaving_pos = i;
          leaving_hits_upper = hits_upper;
          best_pivot_mag = std::abs(d[i]);
        }
      }

      if (!std::isfinite(t_relaxed_limit)) {
        return phase1_ ? SolveStatus::NumericalError : SolveStatus::Unbounded;
      }

      // A pure bound flip when the entering variable's own range binds first.
      const bool bound_flip =
          std::isfinite(range) && (leaving_pos < 0 || range <= t_exact);
      const double t = bound_flip ? range : t_exact;

      ++iterations_;
      if (t <= options_.feasibility_tol) {
        if (++stall > options_.stall_threshold) bland = true;
      } else {
        stall = 0;
        bland = false;
      }

      // Move the entering variable and update all basic values.
      for (int i = 0; i < m_; ++i) {
        if (d[i] == 0.0) continue;
        xval_[basis_[i]] -= dir * t * d[i];
      }
      xval_[entering] += dir * t;

      if (bound_flip) {
        state_[entering] = dir > 0 ? VarState::AtUpper : VarState::AtLower;
        xval_[entering] = dir > 0 ? ub_[entering] : lb_[entering];
        continue;
      }

      // Basis change.
      const int leaving_var = basis_[leaving_pos];
      state_[leaving_var] =
          leaving_hits_upper ? VarState::AtUpper : VarState::AtLower;
      xval_[leaving_var] =
          leaving_hits_upper ? ub_[leaving_var] : lb_[leaving_var];
      basis_[leaving_pos] = entering;
      state_[entering] = VarState::Basic;

      // Steepest-edge needs the pivot row of the PRE-pivot basis inverse,
      // so the weights update runs before the engine absorbs the pivot.
      if (pricing_->wants_pivot_row()) {
        update_pricing_weights(entering, leaving_var, leaving_pos);
      }

      if (!engine_->update(d_, leaving_pos)) {
        // Pivot element too small for a product-form/inverse update: a
        // fresh factorization of the (already changed) basis is the only
        // consistent continuation.
        if (!refactor_basis()) return SolveStatus::NumericalError;
      } else if (++pivots_since_refactor_ >= options_.refactor_interval) {
        // A failed periodic refactorization keeps the eta/update chain
        // alive — tolerances will catch drift — exactly like the old
        // dense path kept its updated inverse.
        (void)refactor_basis();
      }
    }
  }

  void compute_duals() {
    cb_.assign(m_, 0.0);
    bool any = false;
    for (int i = 0; i < m_; ++i) {
      cb_[i] = column_cost(basis_[i]);
      any = any || cb_[i] != 0.0;
    }
    y_.assign(m_, 0.0);
    if (!any) return;
    engine_->btran_dense(cb_, y_);
    ++stats_.btran_calls;
  }

  double reduced_cost(int j) const {
    double rc = column_cost(j);
    for (const auto& [row, coef] : cols_[j]) rc -= y_[row] * coef;
    return rc;
  }

  /// Returns the entering column, or -1 when the current basis is optimal.
  /// Collects every violating candidate and delegates the choice to the
  /// pricing rule; under Bland's rule the first (lowest-index) eligible
  /// column is taken unconditionally, preserving the anti-cycling proof.
  int price(bool bland) {
    const double tol = options_.optimality_tol * (1.0 + cost_scale_);
    candidates_.clear();
    for (int j = 0; j < num_cols_; ++j) {
      if (state_[j] == VarState::Basic) continue;
      if (lb_[j] == ub_[j]) continue;  // fixed, never eligible
      const double rc = reduced_cost(j);
      double violation = 0.0;
      if (state_[j] == VarState::AtLower) {
        violation = -rc;
      } else if (state_[j] == VarState::AtUpper) {
        violation = rc;
      } else {  // free
        violation = std::abs(rc);
      }
      if (violation <= tol) continue;
      if (bland) return j;  // first eligible (lowest index)
      candidates_.push_back({j, violation});
    }
    if (candidates_.empty()) return -1;
    const int pick = pricing_->select(candidates_);
    return pick >= 0 ? pick : candidates_.front().column;
  }

  /// Feeds the pivot row to the pricing rule: rho = B^{-T} e_r from the
  /// pre-pivot basis, alpha_j = rho . a_j for every nonbasic column.
  void update_pricing_weights(int entering, int leaving_var, int r) {
    engine_->btran_unit(r, rho_);
    ++stats_.btran_calls;
    alpha_.assign(num_cols_, 0.0);
    for (int j = 0; j < num_cols_; ++j) {
      if (state_[j] == VarState::Basic || lb_[j] == ub_[j]) continue;
      double a = 0.0;
      for (const auto& [row, coef] : cols_[j]) a += rho_[row] * coef;
      alpha_[j] = a;
    }
    alpha_[entering] = d_[r];
    pricing_->update(entering, leaving_var, d_, r, alpha_);
  }

  /// Refactorizes the current basis through the engine and, on success,
  /// recomputes the basic values from scratch to shed accumulated error.
  /// Returns false when the basis matrix is singular (the engine keeps its
  /// previous state; warm-start installation treats this as "basis
  /// unusable", the pivot loop as "keep limping on the update chain").
  bool refactor_basis() {
    basis_cols_.clear();
    basis_cols_.reserve(m_);
    for (int i = 0; i < m_; ++i) basis_cols_.push_back(&cols_[basis_[i]]);
    if (!engine_->refactorize(basis_cols_)) {
      MMWAVE_LOG_WARN << "simplex: singular basis at refactorization";
      return false;
    }
    ++stats_.refactorizations;
    pivots_since_refactor_ = 0;

    rhs_ = b_;
    for (int j = 0; j < num_cols_; ++j) {
      if (state_[j] == VarState::Basic || xval_[j] == 0.0) continue;
      for (const auto& [row, coef] : cols_[j]) rhs_[row] -= coef * xval_[j];
    }
    engine_->ftran_dense(rhs_, xb_);
    ++stats_.ftran_calls;
    for (int i = 0; i < m_; ++i) xval_[basis_[i]] = xb_[i];
    return true;
  }

  //--------------------------------------------------------------------
  // Result extraction
  //--------------------------------------------------------------------
  void solve_unconstrained(LpSolution& sol) {
    // No constraints: each variable independently sits at its cheaper bound.
    sol.x.assign(n_struct_, 0.0);
    double obj = 0.0;
    for (int j = 0; j < n_struct_; ++j) {
      const double c = cost_[j];
      double v;
      if (c > 0) {
        v = lb_[j];
      } else if (c < 0) {
        v = ub_[j];
      } else {
        v = std::isfinite(lb_[j]) ? lb_[j]
                                  : (std::isfinite(ub_[j]) ? ub_[j] : 0.0);
      }
      if (!std::isfinite(v)) {
        sol.status = SolveStatus::Unbounded;
        return;
      }
      sol.x[j] = v;
      obj += c * v;
    }
    sol.status = SolveStatus::Optimal;
    sol.objective = maximize_ ? -obj : obj;
    sol.duals.clear();
  }

  void finalize(const LpModel& model, LpSolution& sol) {
    if (m_ == 0) return;
    sol.x.assign(n_struct_, 0.0);
    double obj = 0.0;
    for (int j = 0; j < n_struct_; ++j) {
      sol.x[j] = xval_[j];
      obj += cost_[j] * xval_[j];
    }
    sol.objective = maximize_ ? -obj : obj;
    // A limit can fire before the first pricing pass computed any duals
    // (e.g. a time budget that expired during model build); report zeros
    // rather than reading an empty y_.
    sol.duals.assign(m_, 0.0);
    if (static_cast<int>(y_.size()) >= m_) {
      for (int i = 0; i < m_; ++i)
        sol.duals[i] = maximize_ ? -y_[i] : y_[i];
    }
    (void)model;
  }

  //--------------------------------------------------------------------
  const LpOptions options_;
  int n_struct_ = 0;
  int m_ = 0;
  int n_slack_start_ = 0;
  int n_art_start_ = 0;
  int num_cols_ = 0;
  bool maximize_ = false;
  bool bad_bounds_ = false;
  bool phase1_ = false;
  double rhs_scale_ = 0.0;
  double cost_scale_ = 1.0;
  std::int64_t max_iterations_ = 0;
  std::int64_t iterations_ = 0;
  int pivots_since_refactor_ = 0;
  int deadline_stride_ = 1;
  bool poisoned_ = false;  // an injected fault aborted this solve
  using Clock = std::chrono::steady_clock;
  bool deadline_enabled_ = false;
  bool timed_out_ = false;  // IterationLimit exit was the time limit
  Clock::time_point deadline_;

  std::vector<std::vector<Term>> cols_;  // column-wise sparse A
  std::vector<double> b_;
  std::vector<double> lb_, ub_, cost_;
  std::vector<double> xval_;
  std::vector<VarState> state_;
  std::vector<int> basis_;
  std::vector<double> y_;

  std::unique_ptr<BasisEngine> engine_;
  std::unique_ptr<Pricing> pricing_;
  LpStats stats_;
  std::vector<PricingCandidate> candidates_;
  // Reused per-pivot scratch (FTRAN direction, basic costs, pivot row,
  // pricing alphas, refactorization rhs/values, diagonal install).
  std::vector<double> d_, cb_, rho_, alpha_, rhs_, xb_, diag_;
  std::vector<const std::vector<Term>*> basis_cols_;
};

}  // namespace

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "Optimal";
    case SolveStatus::Infeasible: return "Infeasible";
    case SolveStatus::Unbounded: return "Unbounded";
    case SolveStatus::IterationLimit: return "IterationLimit";
    case SolveStatus::NumericalError: return "NumericalError";
  }
  return "Unknown";
}

LpSolution solve_lp(const LpModel& model, const LpOptions& options) {
  Simplex simplex(model, {}, {}, options);
  return simplex.run(model, nullptr);
}

LpSolution solve_lp(const LpModel& model, const LpOptions& options,
                    WarmStart* warm) {
  Simplex simplex(model, {}, {}, options);
  return simplex.run(model, warm);
}

LpSolution solve_lp_with_bounds(const LpModel& model,
                                const std::vector<double>& lb,
                                const std::vector<double>& ub,
                                const LpOptions& options) {
  Simplex simplex(model, lb, ub, options);
  return simplex.run(model, nullptr);
}

}  // namespace mmwave::lp
