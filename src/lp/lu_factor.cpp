#include "lp/lu_factor.h"

#include <algorithm>
#include <cmath>

namespace mmwave::lp {
namespace {

/// A pivot below this (relative to the column's largest entry) is treated
/// as structural zero: the basis is singular to working precision.
constexpr double kSingularTol = 1e-11;
/// Floor for an eta pivot element; the ratio test already rejects pivots
/// below 1e-9, so hitting this means the direction itself is degenerate.
constexpr double kEtaPivotFloor = 1e-12;

}  // namespace

bool LuFactor::factorize(int m, const std::vector<const Column*>& columns) {
  // Build into temporaries and swap on success: a failed factorization must
  // leave the previous factorization (and its eta file) usable.
  std::vector<Column> lcols(m);
  std::vector<std::vector<std::pair<int, double>>> ucols(m);
  std::vector<double> udiag(m, 0.0);
  std::vector<int> prow(m, -1);
  std::vector<int> rowpos(m, -1);
  std::vector<double> work(m, 0.0);

  for (int k = 0; k < m; ++k) {
    // Scatter column k into the dense work vector.
    double cmax = 0.0;
    for (const auto& [row, coef] : *columns[k]) {
      work[row] += coef;
      cmax = std::max(cmax, std::abs(coef));
    }
    // Left-looking elimination: apply the k previous pivots in order; the
    // value sitting in a consumed pivot row is exactly U(j, k).
    for (int j = 0; j < k; ++j) {
      const double ujk = work[prow[j]];
      if (ujk == 0.0) continue;
      ucols[k].emplace_back(j, ujk);
      for (const auto& [r, lv] : lcols[j]) work[r] -= ujk * lv;
    }
    // Partial pivoting over the rows no previous position claimed.
    int piv = -1;
    double best = 0.0;
    for (int r = 0; r < m; ++r) {
      if (rowpos[r] >= 0) continue;
      const double a = std::abs(work[r]);
      if (a > best) {
        best = a;
        piv = r;
      }
    }
    if (piv < 0 || best <= kSingularTol * std::max(1.0, cmax)) {
      return false;  // singular: keep the previous factorization
    }
    udiag[k] = work[piv];
    prow[k] = piv;
    rowpos[piv] = k;
    for (int r = 0; r < m; ++r) {
      if (rowpos[r] >= 0 || work[r] == 0.0) continue;
      lcols[k].emplace_back(r, work[r] / udiag[k]);
    }
    std::fill(work.begin(), work.end(), 0.0);
  }

  m_ = m;
  lcols_ = std::move(lcols);
  ucols_ = std::move(ucols);
  udiag_ = std::move(udiag);
  prow_ = std::move(prow);
  etas_.clear();
  ok_ = true;
  return true;
}

void LuFactor::reset_diagonal(const std::vector<double>& diag) {
  m_ = static_cast<int>(diag.size());
  lcols_.assign(m_, {});
  ucols_.assign(m_, {});
  udiag_ = diag;
  prow_.resize(m_);
  for (int k = 0; k < m_; ++k) prow_[k] = k;
  etas_.clear();
  ok_ = true;
}

bool LuFactor::push_eta(const std::vector<double>& d, int r) {
  if (std::abs(d[r]) <= kEtaPivotFloor) return false;
  Eta e;
  e.r = r;
  e.dr = d[r];
  for (int i = 0; i < m_; ++i) {
    if (i != r && d[i] != 0.0) e.d.emplace_back(i, d[i]);
  }
  etas_.push_back(std::move(e));
  return true;
}

void LuFactor::ftran(std::vector<double>& x) const {
  // L solve, in original-row space: position k's partial result lives in
  // the slot of its pivot row.
  for (int k = 0; k < m_; ++k) {
    const double v = x[prow_[k]];
    if (v == 0.0) continue;
    for (const auto& [r, lv] : lcols_[k]) x[r] -= v * lv;
  }
  // U back-substitution (U stored by column: column k's off-diagonal
  // entries update the pivot rows of earlier positions).
  for (int k = m_ - 1; k >= 0; --k) {
    const double t = x[prow_[k]] / udiag_[k];
    x[prow_[k]] = t;
    if (t == 0.0) continue;
    for (const auto& [j, uv] : ucols_[k]) x[prow_[j]] -= t * uv;
  }
  // Permute into basis-position space.
  scratch_.resize(m_);
  for (int k = 0; k < m_; ++k) scratch_[k] = x[prow_[k]];
  x = scratch_;
  // Product-form etas, oldest to newest: x <- E^{-1} x.
  for (const Eta& e : etas_) {
    const double t = x[e.r] / e.dr;
    if (t != 0.0) {
      for (const auto& [i, di] : e.d) x[i] -= di * t;
    }
    x[e.r] = t;
  }
}

void LuFactor::btran(std::vector<double>& x) const {
  // Eta transposes, newest to oldest: solving E^T w = c changes only the
  // pivot component, w_r = (c_r - sum_{i != r} d_i c_i) / d_r.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = 0.0;
    for (const auto& [i, di] : it->d) s += di * x[i];
    x[it->r] = (x[it->r] - s) / it->dr;
  }
  // U^T is lower triangular in position space; its row k is U's column k.
  scratch_.resize(m_);
  for (int k = 0; k < m_; ++k) {
    double s = x[k];
    for (const auto& [j, uv] : ucols_[k]) s -= uv * scratch_[j];
    scratch_[k] = s / udiag_[k];
  }
  // L^T solve back into original-row space: row k of L^T is L's column k,
  // whose off-diagonal rows are pivot rows of later positions (already
  // solved when sweeping downward).
  for (int k = m_ - 1; k >= 0; --k) {
    double s = scratch_[k];
    for (const auto& [r, lv] : lcols_[k]) s -= lv * x[r];
    x[prow_[k]] = s;
  }
}

}  // namespace mmwave::lp
