// Linear-program model container shared by the LP and MILP solvers.
//
// A model is built column-by-column (add_variable) and row-by-row
// (add_constraint); the solver consumes it read-only, so one model can be
// solved repeatedly under different variable bounds (which is exactly what
// branch & bound does).
#pragma once

#include <cassert>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace mmwave::lp {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { Le, Ge, Eq };
enum class ObjSense { Minimize, Maximize };

/// One (column index, coefficient) entry of a sparse constraint row — or,
/// in a column view (LpModel::column), one (row index, coefficient) entry.
using Term = std::pair<int, double>;

struct Variable {
  double lb = 0.0;
  double ub = kInfinity;
  double cost = 0.0;
  std::string name;
};

struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::Le;
  double rhs = 0.0;
  std::string name;
};

class LpModel {
 public:
  /// Adds a variable and returns its column index.
  int add_variable(double lb, double ub, double cost,
                   std::string name = {}) {
    assert(lb <= ub);
    variables_.push_back({lb, ub, cost, std::move(name)});
    if (columns_.size() < variables_.size()) columns_.resize(variables_.size());
    return static_cast<int>(variables_.size()) - 1;
  }

  /// Adds a constraint and returns its row index.  Duplicate column indices
  /// within `terms` are summed by the solver.
  int add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                     std::string name = {}) {
    const int row = static_cast<int>(constraints_.size());
    for (const Term& t : terms) {
      if (t.first >= static_cast<int>(columns_.size()))
        columns_.resize(static_cast<std::size_t>(t.first) + 1);
      columns_[t.first].emplace_back(row, t.second);
    }
    constraints_.push_back({std::move(terms), sense, rhs, std::move(name)});
    return row;
  }

  /// Appends one term to an existing constraint row.  This is the
  /// incremental-growth hook: the column-generation master appends a
  /// variable and extends the rows it covers in place instead of rebuilding
  /// the whole model each iteration.
  void add_term(int row, int col, double coef) {
    assert(row >= 0 && row < num_constraints());
    assert(col >= 0 && col < num_variables());
    constraints_[row].terms.emplace_back(col, coef);
    columns_[col].emplace_back(row, coef);
  }

  void set_objective_sense(ObjSense sense) { obj_sense_ = sense; }
  ObjSense objective_sense() const { return obj_sense_; }

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  const Variable& variable(int j) const { return variables_[j]; }
  Variable& variable(int j) { return variables_[j]; }
  const Constraint& constraint(int i) const { return constraints_[i]; }

  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Sparse column j as (row index, coefficient) pairs, in the order the
  /// entries were added.  This transpose view is maintained incrementally
  /// by add_constraint/add_term, so the revised simplex builds its
  /// column-wise computational form in O(nnz) instead of re-transposing
  /// every row on every solve.  Entries are unsorted and may repeat a row
  /// (duplicates are summed by the solver, like row terms).
  const std::vector<Term>& column(int j) const { return columns_[j]; }

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  /// Transpose of `constraints_` terms, one entry list per variable.
  std::vector<std::vector<Term>> columns_;
  ObjSense obj_sense_ = ObjSense::Minimize;
};

}  // namespace mmwave::lp
