// Mixed-integer linear programming by LP-relaxation branch & bound.
//
// This stands in for the commercial MIP solvers (Gurobi / MATLAB intlinprog)
// the paper uses for the pricing sub-problem.  Features:
//   * best-first node selection (priority queue on LP bound) — the same
//     strategy as intlinprog's default branch & bound;
//   * most-fractional branching with objective-magnitude tie-break;
//   * rounding heuristic at every node plus caller-supplied warm starts, so
//     a good incumbent (from the greedy pricing heuristic) prunes early;
//   * node / wall-time limits with a *valid dual bound* on exit — truncated
//     pricing still yields correct Theorem-1 lower bounds;
//   * optional target objective: stop as soon as the incumbent is good
//     enough (column generation only needs *an* improving column until the
//     final optimality certificate).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace mmwave::milp {

enum class VarType : std::uint8_t { Continuous, Integer, Binary };

class MilpModel {
 public:
  int add_variable(double lb, double ub, double cost, VarType type,
                   std::string name = {}) {
    if (type == VarType::Binary) {
      lb = std::max(lb, 0.0);
      ub = std::min(ub, 1.0);
    }
    const int j = lp_.add_variable(lb, ub, cost, std::move(name));
    types_.push_back(type);
    return j;
  }

  int add_constraint(std::vector<lp::Term> terms, lp::Sense sense, double rhs,
                     std::string name = {}) {
    return lp_.add_constraint(std::move(terms), sense, rhs, std::move(name));
  }

  void set_objective_sense(lp::ObjSense sense) {
    lp_.set_objective_sense(sense);
  }
  lp::ObjSense objective_sense() const { return lp_.objective_sense(); }

  int num_variables() const { return lp_.num_variables(); }
  int num_constraints() const { return lp_.num_constraints(); }
  VarType type(int j) const { return types_[j]; }

  /// Mutable variable access for model reuse across solves: the cached
  /// pricing skeleton rewrites objective coefficients and activation bounds
  /// between calls instead of rebuilding the constraint matrix.
  lp::Variable& variable(int j) { return lp_.variable(j); }
  const lp::Variable& variable(int j) const { return lp_.variable(j); }
  bool is_integral(int j) const { return types_[j] != VarType::Continuous; }

  const lp::LpModel& lp() const { return lp_; }

 private:
  lp::LpModel lp_;
  std::vector<VarType> types_;
};

enum class MilpStatus {
  Optimal,
  Feasible,     ///< limit hit; incumbent + valid bound reported
  TargetReached,///< stopped early because the incumbent met target_objective
  Infeasible,
  NoSolution,   ///< limit hit before any incumbent was found
  Unbounded,
  Error,
};

const char* to_string(MilpStatus status);

struct MilpOptions {
  std::int64_t max_nodes = 200000;
  double time_limit_sec = 60.0;
  double integrality_tol = 1e-6;
  /// Stop when (incumbent - bound) / max(1, |incumbent|) falls below this.
  double gap_tol = 1e-9;
  /// If finite: stop as soon as the incumbent objective reaches this value
  /// (>= for Maximize models, <= for Minimize).
  double target_objective = std::nan("");
  /// How time_limit_sec is enforced.  false (default): advisory — checked
  /// between branch-and-bound nodes only, so an individual node LP (in
  /// particular the root relaxation) always runs to completion and a
  /// root-integral model still certifies optimality on a slow machine.
  /// true: the remaining budget is pushed into every node LP as a per-pivot
  /// wall-clock limit, so a single call can never overrun the budget —
  /// the anytime mode column generation uses under a real deadline.
  bool hard_time_limit = false;
  lp::LpOptions lp_options;
};

struct MilpSolution {
  MilpStatus status = MilpStatus::Error;
  /// Incumbent objective in the model's own sense; meaningful when
  /// has_solution().
  double objective = 0.0;
  /// Valid dual bound in the model's own sense: bound >= objective for
  /// Maximize models, bound <= objective for Minimize models.
  double best_bound = 0.0;
  std::vector<double> x;
  std::int64_t nodes = 0;
  /// Structured failure detail: Ok on Optimal/TargetReached, kLimitHit on
  /// truncated exits (Feasible/NoSolution — the reported best_bound is
  /// still valid), kNumericalBreakdown when the root LP failed.
  common::Status error;

  bool has_solution() const {
    return status == MilpStatus::Optimal || status == MilpStatus::Feasible ||
           status == MilpStatus::TargetReached;
  }
  /// Relative optimality gap; 0 when solved to optimality.
  double gap() const {
    if (!has_solution()) return std::numeric_limits<double>::infinity();
    return std::abs(objective - best_bound) /
           std::max(1.0, std::abs(objective));
  }
};

/// Solves the model.  `warm_start`, if non-null, must be a feasible point
/// (it is verified; an infeasible warm start is ignored with a warning).
MilpSolution solve_milp(const MilpModel& model, const MilpOptions& options = {},
                        const std::vector<double>* warm_start = nullptr);

/// Checks `x` against all constraints, bounds, and integrality of the model.
bool is_feasible_point(const MilpModel& model, const std::vector<double>& x,
                       double tol = 1e-6);

}  // namespace mmwave::milp
