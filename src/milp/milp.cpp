#include "milp/milp.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <queue>

#include "common/fault_injection.h"
#include "common/log.h"

namespace mmwave::milp {
namespace {

using Clock = std::chrono::steady_clock;

/// Bound tightening relative to the parent node; nodes share ancestors.
struct BoundChange {
  int var;
  double lb;
  double ub;
  std::shared_ptr<const BoundChange> parent;
};

struct Node {
  std::shared_ptr<const BoundChange> chain;
  double lp_bound;  // internal (minimize) sense
  int depth;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.lp_bound != b.lp_bound) return a.lp_bound > b.lp_bound;
    return a.depth < b.depth;  // prefer deeper on ties (dive-ish)
  }
};

class BranchAndBound {
 public:
  BranchAndBound(const MilpModel& model, const MilpOptions& options)
      : model_(model),
        options_(options),
        maximize_(model.objective_sense() == lp::ObjSense::Maximize),
        n_(model.num_variables()) {
    root_lb_.resize(n_);
    root_ub_.resize(n_);
    for (int j = 0; j < n_; ++j) {
      const auto& v = model.lp().variable(j);
      root_lb_[j] = v.lb;
      root_ub_[j] = v.ub;
      if (model.is_integral(j)) {
        // Tighten integral bounds to integers up front.
        if (std::isfinite(root_lb_[j]))
          root_lb_[j] = std::ceil(root_lb_[j] - options.integrality_tol);
        if (std::isfinite(root_ub_[j]))
          root_ub_[j] = std::floor(root_ub_[j] + options.integrality_tol);
      }
    }
  }

  MilpSolution run(const std::vector<double>* warm_start) {
    MilpSolution sol;
    start_ = Clock::now();

    // Robustness-test hook: model the worst truncation a pricing oracle can
    // produce — the limit expires before any incumbent exists.  The trivial
    // dual bound (+/-inf in the model's sense) is still valid, so callers
    // relying on "truncated solves report a valid bound" stay correct.
    if (common::fault_fires(common::faults::kMilpNoSolution)) {
      sol.status = MilpStatus::NoSolution;
      sol.best_bound =
          user_value(-std::numeric_limits<double>::infinity());
      sol.error = common::Status::Error(
          common::ErrorCode::kLimitHit,
          "injected fault: limit hit before first incumbent");
      return sol;
    }

    if (warm_start != nullptr) {
      if (is_feasible_point(model_, *warm_start, options_.integrality_tol)) {
        set_incumbent(*warm_start);
      } else {
        MMWAVE_LOG_WARN << "milp: warm start rejected (infeasible)";
      }
    }

    // Root node.
    std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
    {
      lp::LpSolution root = solve_node(nullptr);
      if (root.status == lp::SolveStatus::Infeasible) {
        sol.status = MilpStatus::Infeasible;
        sol.error = common::Status::Error(common::ErrorCode::kInfeasible,
                                          "root relaxation infeasible");
        sol.nodes = 1;
        return sol;
      }
      if (root.status == lp::SolveStatus::Unbounded) {
        sol.status = MilpStatus::Unbounded;
        sol.error = common::Status::Error(common::ErrorCode::kUnbounded,
                                          "root relaxation unbounded");
        sol.nodes = 1;
        return sol;
      }
      if (root.status != lp::SolveStatus::Optimal) {
        sol.nodes = 1;
        if (root.error.code() == common::ErrorCode::kLimitHit) {
          // The budget expired inside the root relaxation itself.  Report
          // the honest truncation: the incumbent (if a warm start supplied
          // one) with the trivially valid dual bound, never Error.
          if (have_incumbent_) {
            sol.x = incumbent_;
            sol.objective = user_value(incumbent_obj_);
            sol.status = MilpStatus::Feasible;
          } else {
            sol.status = MilpStatus::NoSolution;
          }
          sol.best_bound =
              user_value(-std::numeric_limits<double>::infinity());
          sol.error = common::Status::Error(
              common::ErrorCode::kLimitHit,
              "limit hit inside the root relaxation (" +
                  root.error.message() + ")");
          return sol;
        }
        sol.status = MilpStatus::Error;
        sol.error = common::Status::Error(
            common::ErrorCode::kNumericalBreakdown,
            "root relaxation failed: " + root.error.to_string());
        return sol;
      }
      process(root, nullptr, 0, open);
    }

    bool limit_hit = false;
    while (!open.empty()) {
      if (nodes_ >= options_.max_nodes || elapsed() > options_.time_limit_sec) {
        limit_hit = true;
        break;
      }
      // Robustness-test hook: stop at the first incumbent as if the limit
      // expired there (a Feasible exit with the open-node dual bound).
      if (have_incumbent_ &&
          common::fault_fires(common::faults::kMilpTruncate)) {
        limit_hit = true;
        break;
      }
      if (target_met()) break;

      Node node = open.top();
      open.pop();
      // Prune against the incumbent (it may have improved since enqueue).
      if (have_incumbent_ &&
          node.lp_bound >= incumbent_obj_ - absolute_gap_slack()) {
        continue;
      }
      lp::LpSolution rel = solve_node(node.chain.get());
      if (rel.status == lp::SolveStatus::Infeasible) continue;
      if (rel.status != lp::SolveStatus::Optimal) {
        // The node LP could not be resolved (time/iteration limit or a
        // numerical breakdown).  Silently dropping it would also drop its
        // subtree from the open-node dual bound — overclaiming the reported
        // best_bound.  Keep the node open so its (parent) bound stays in
        // the reckoning, and stop as a limit-hit truncation.
        open.push(node);
        limit_hit = true;
        break;
      }
      process(rel, node.chain, node.depth, open);
    }

    sol.nodes = nodes_;
    const double open_bound =
        open.empty() ? (have_incumbent_
                            ? incumbent_obj_
                            : std::numeric_limits<double>::infinity())
                     : open.top().lp_bound;

    if (have_incumbent_) {
      sol.x = incumbent_;
      sol.objective = user_value(incumbent_obj_);
      if (target_met()) {
        sol.best_bound = user_value(std::min(open_bound, incumbent_obj_));
        sol.status = MilpStatus::TargetReached;
      } else if (limit_hit) {
        sol.best_bound = user_value(std::min(open_bound, incumbent_obj_));
        sol.status = sol.gap() <= options_.gap_tol ? MilpStatus::Optimal
                                                   : MilpStatus::Feasible;
        if (sol.status == MilpStatus::Feasible) {
          sol.error = common::Status::Error(
              common::ErrorCode::kLimitHit,
              "limit hit after " + std::to_string(nodes_) +
                  " nodes; incumbent kept with valid dual bound");
        }
      } else {
        sol.best_bound = sol.objective;
        sol.status = MilpStatus::Optimal;
      }
    } else if (limit_hit) {
      sol.best_bound = user_value(open_bound);
      sol.status = MilpStatus::NoSolution;
      sol.error = common::Status::Error(
          common::ErrorCode::kLimitHit,
          "limit hit after " + std::to_string(nodes_) +
              " nodes before any incumbent");
    } else {
      sol.status = MilpStatus::Infeasible;
      sol.error = common::Status::Error(common::ErrorCode::kInfeasible,
                                        "search tree exhausted, no feasible "
                                        "integral point");
    }
    return sol;
  }

 private:
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Converts an internal (minimize) value back to the model's sense.
  double user_value(double v) const { return maximize_ ? -v : v; }
  /// Converts a model-sense value to internal (minimize).
  double internal_value(double v) const { return maximize_ ? -v : v; }

  double absolute_gap_slack() const {
    return 1e-9 * (1.0 + std::abs(incumbent_obj_));
  }

  bool target_met() const {
    if (!have_incumbent_ || std::isnan(options_.target_objective)) return false;
    return incumbent_obj_ <=
           internal_value(options_.target_objective) + 1e-12;
  }

  lp::LpSolution solve_node(const BoundChange* chain) {
    std::vector<double> lb = root_lb_;
    std::vector<double> ub = root_ub_;
    for (const BoundChange* c = chain; c != nullptr; c = c->parent.get()) {
      lb[c->var] = std::max(lb[c->var], c->lb);
      ub[c->var] = std::min(ub[c->var], c->ub);
    }
    ++nodes_;
    // Hard-budget mode: no single node LP may outlive the MILP's own
    // wall-clock budget, so cap it at the remaining time (small floor so a
    // near-expired budget still produces a definitive timeout instead of a
    // zero-length solve).  In the default advisory mode the budget is only
    // checked between nodes and a node LP runs to completion.
    lp::LpOptions node_options = options_.lp_options;
    if (options_.hard_time_limit && std::isfinite(options_.time_limit_sec)) {
      const double remaining =
          std::max(options_.time_limit_sec - elapsed(), 0.01);
      if (node_options.time_limit_sec <= 0.0 ||
          remaining < node_options.time_limit_sec) {
        node_options.time_limit_sec = remaining;
      }
    }
    return lp::solve_lp_with_bounds(model_.lp(), lb, ub, node_options);
  }

  /// Handles an LP-feasible relaxation: either fathoms it as a new incumbent,
  /// or branches and enqueues the children.
  void process(const lp::LpSolution& rel,
               std::shared_ptr<const BoundChange> chain, int depth,
               std::priority_queue<Node, std::vector<Node>, NodeOrder>& open) {
    const double bound = internal_value(rel.objective);
    if (have_incumbent_ && bound >= incumbent_obj_ - absolute_gap_slack())
      return;

    const int branch_var = pick_branch_variable(rel.x);
    if (branch_var < 0) {
      set_incumbent(rel.x);
      return;
    }

    // Rounding heuristic: snap all integral variables and keep the point if
    // it is feasible; often supplies an early incumbent for pruning.
    try_rounding(rel.x);

    const double frac = rel.x[branch_var];
    const double lo = std::floor(frac);
    // Child with x <= floor.
    {
      auto change = std::make_shared<BoundChange>(
          BoundChange{branch_var, -lp::kInfinity, lo, chain});
      open.push(Node{std::move(change), bound, depth + 1});
    }
    // Child with x >= ceil.
    {
      auto change = std::make_shared<BoundChange>(
          BoundChange{branch_var, lo + 1.0, lp::kInfinity, chain});
      open.push(Node{std::move(change), bound, depth + 1});
    }
  }

  /// Most-fractional integral variable; -1 when integral within tolerance.
  int pick_branch_variable(const std::vector<double>& x) const {
    int best = -1;
    double best_score = options_.integrality_tol;
    for (int j = 0; j < n_; ++j) {
      if (!model_.is_integral(j)) continue;
      const double frac = x[j] - std::floor(x[j]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist <= options_.integrality_tol) continue;
      // Most fractional, weighted slightly by cost magnitude to break ties
      // toward variables that matter for the objective.
      const double score =
          dist + 1e-6 * std::abs(model_.lp().variable(j).cost);
      if (score > best_score) {
        best_score = score;
        best = j;
      }
    }
    return best;
  }

  void try_rounding(const std::vector<double>& x) {
    std::vector<double> rounded = x;
    bool any = false;
    for (int j = 0; j < n_; ++j) {
      if (!model_.is_integral(j)) continue;
      const double snapped = std::round(rounded[j]);
      if (std::abs(snapped - rounded[j]) > options_.integrality_tol)
        any = true;
      rounded[j] = snapped;
    }
    if (!any) return;  // already integral; handled as incumbent by caller
    if (is_feasible_point(model_, rounded, 1e-6)) set_incumbent(rounded);
  }

  void set_incumbent(const std::vector<double>& x) {
    double obj = 0.0;
    for (int j = 0; j < n_; ++j) obj += model_.lp().variable(j).cost * x[j];
    const double internal = internal_value(obj);
    if (have_incumbent_ && internal >= incumbent_obj_) return;
    incumbent_ = x;
    // Snap integral entries exactly.
    for (int j = 0; j < n_; ++j)
      if (model_.is_integral(j)) incumbent_[j] = std::round(incumbent_[j]);
    incumbent_obj_ = internal;
    have_incumbent_ = true;
  }

  const MilpModel& model_;
  const MilpOptions options_;
  const bool maximize_;
  const int n_;
  std::vector<double> root_lb_, root_ub_;

  bool have_incumbent_ = false;
  double incumbent_obj_ = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_;
  std::int64_t nodes_ = 0;
  Clock::time_point start_;
};

}  // namespace

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::Optimal: return "Optimal";
    case MilpStatus::Feasible: return "Feasible";
    case MilpStatus::TargetReached: return "TargetReached";
    case MilpStatus::Infeasible: return "Infeasible";
    case MilpStatus::NoSolution: return "NoSolution";
    case MilpStatus::Unbounded: return "Unbounded";
    case MilpStatus::Error: return "Error";
  }
  return "Unknown";
}

MilpSolution solve_milp(const MilpModel& model, const MilpOptions& options,
                        const std::vector<double>* warm_start) {
  BranchAndBound bnb(model, options);
  return bnb.run(warm_start);
}

bool is_feasible_point(const MilpModel& model, const std::vector<double>& x,
                       double tol) {
  if (static_cast<int>(x.size()) != model.num_variables()) return false;
  for (int j = 0; j < model.num_variables(); ++j) {
    const auto& v = model.lp().variable(j);
    if (x[j] < v.lb - tol || x[j] > v.ub + tol) return false;
    if (model.is_integral(j) &&
        std::abs(x[j] - std::round(x[j])) > tol) {
      return false;
    }
  }
  for (int i = 0; i < model.num_constraints(); ++i) {
    const auto& row = model.lp().constraint(i);
    double lhs = 0.0;
    for (const auto& [col, coef] : row.terms) lhs += coef * x[col];
    const double slack_tol = tol * (1.0 + std::abs(row.rhs));
    switch (row.sense) {
      case lp::Sense::Le:
        if (lhs > row.rhs + slack_tol) return false;
        break;
      case lp::Sense::Ge:
        if (lhs < row.rhs - slack_tol) return false;
        break;
      case lp::Sense::Eq:
        if (std::abs(lhs - row.rhs) > slack_tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace mmwave::milp
