#include "common/cli.h"

#include <cstdlib>
#include <sstream>

namespace mmwave::common {

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag, else a bare
    // boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return true;
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> CliFlags::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace mmwave::common
