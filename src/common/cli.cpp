#include "common/cli.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace mmwave::common {

namespace {

[[nodiscard]] Status flag_error(const std::string& name, const std::string& what) {
  return Status::Error(ErrorCode::kInvalidInput, "--" + name + ": " + what);
}

}  // namespace

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag, else a bare
    // boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return true;
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

[[nodiscard]] Expected<std::int64_t> CliFlags::get_int_checked(const std::string& name,
                                                 std::int64_t def,
                                                 std::int64_t lo,
                                                 std::int64_t hi) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& raw = it->second;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  if (raw.empty() || end != raw.c_str() + raw.size() || errno == ERANGE)
    return flag_error(name, "expected an integer, got '" + raw + "'");
  if (v < lo || v > hi)
    return flag_error(name, "value " + std::to_string(v) +
                                " out of range [" + std::to_string(lo) + ", " +
                                std::to_string(hi) + "]");
  return static_cast<std::int64_t>(v);
}

[[nodiscard]] Expected<double> CliFlags::get_double_checked(const std::string& name,
                                              double def, double lo,
                                              double hi) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& raw = it->second;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end != raw.c_str() + raw.size() || errno == ERANGE)
    return flag_error(name, "expected a number, got '" + raw + "'");
  if (std::isnan(v) || v < lo || v > hi) {
    std::ostringstream os;
    os << "value " << raw << " out of range [" << lo << ", " << hi << "]";
    return flag_error(name, os.str());
  }
  return v;
}

std::vector<std::int64_t> CliFlags::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace mmwave::common
