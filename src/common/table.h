// Plain-text experiment tables and CSV emission.
//
// The bench binaries print each figure/table of the paper as an aligned
// plain-text table (the "rows/series the paper reports") and can mirror the
// same rows into a CSV file for plotting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace mmwave::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& new_row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 3);
  Table& add(std::size_t value);
  Table& add(std::int64_t value);
  Table& add(int value);
  /// "mean ± ci" cell, the format used for every figure with error bars.
  Table& add_ci(double mean, double ci_halfwidth, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Writes headers + rows as CSV.  "±" cells are split is not attempted;
  /// callers wanting machine-readable CIs should add mean and ci as separate
  /// columns.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing-zero stripping).
std::string format_double(double v, int precision = 3);

}  // namespace mmwave::common
