// Minimal --flag=value command-line parsing for the bench and example
// binaries.  Flags are declared with defaults; unknown flags are an error so
// typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace mmwave::common {

class CliFlags {
 public:
  /// Parses argv.  Accepted syntaxes: --name=value, --name value,
  /// --bool-flag (implicit true).  Returns false (and fills error()) on
  /// malformed input; callers typically print usage and exit.
  bool parse(int argc, const char* const* argv);

  const std::string& error() const { return error_; }

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Strict variants: an absent flag yields the default, but a present flag
  /// whose value is not fully numeric ("--links=abc", "--links=10x") or out
  /// of [lo, hi] yields kInvalidInput with a one-line "--name: ..."
  /// diagnosis instead of the silent-zero of the strtoll-based getters.
  [[nodiscard]] Expected<std::int64_t> get_int_checked(
      const std::string& name, std::int64_t def,
      std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
      std::int64_t hi = std::numeric_limits<std::int64_t>::max()) const;
  [[nodiscard]] Expected<double> get_double_checked(
      const std::string& name, double def,
      double lo = -std::numeric_limits<double>::infinity(),
      double hi = std::numeric_limits<double>::infinity()) const;

  /// Comma-separated integer list, e.g. --links=10,15,20.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace mmwave::common
