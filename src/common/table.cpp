#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace mmwave::common {

std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::new_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  assert(!rows_.empty());
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }

Table& Table::add(int value) { return add(std::to_string(value)); }

Table& Table::add_ci(double mean, double ci_halfwidth, int precision) {
  return add(format_double(mean, precision) + " ± " +
             format_double(ci_halfwidth, precision));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total - 2, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      // Quote cells containing commas or quotes.
      if (row[c].find_first_of(",\"") != std::string::npos) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace mmwave::common
