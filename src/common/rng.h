// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library takes an explicit 64-bit seed so
// that experiments are bit-reproducible across runs and platforms.  We use
// xoshiro256** seeded through splitmix64, which is fast, has a 256-bit state,
// and (unlike std::mt19937 with std::uniform_real_distribution) produces an
// identical stream on every standard library implementation.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace mmwave::common {

/// Counter-based stateless mixer; used for seeding and for deriving
/// independent sub-streams from a master seed.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Satisfies std::uniform_random_bit_generator so it can
/// also be plugged into <random> facilities when stream-stability across
/// standard libraries is not required.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent generator for sub-stream `stream` of this
  /// generator's seed.  Used to give each (experiment point, seed) pair its
  /// own stream so adding parameters never perturbs other points.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    std::uint64_t mix = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    return Rng(mix);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  53 mantissa bits of the raw stream.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  Rejection-free Lemire reduction would be
  /// overkill here; modulo bias is negligible for our n << 2^64.
  std::uint64_t uniform_index(std::uint64_t n) { return (*this)() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal such that the *mean* of the distribution is `mean` and the
  /// coefficient of variation is `cv`.  Convenient for frame-size models that
  /// are calibrated to a target bitrate.
  double lognormal_mean_cv(double mean, double cv);

  /// Exponential with the given rate.
  double exponential(double rate);

  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace mmwave::common
