// Central registry of fault-injection site names.
//
// Every `FaultInjector` site string used anywhere in src/ must be declared
// here, exactly once, as a `faults::k...` constant — and solver code must
// refer to the constant, never repeat the literal.  This file is the source
// of truth for the project-invariant linter's family-4 check
// (tools/lint/project_lint.py): the linter parses these declarations and
// verifies that (a) no site string is registered twice, (b) every src/
// `fault_fires` call uses a registry constant rather than a free literal,
// (c) every registered site is reached by solver code, and (d) every
// registered site is exercised by at least one test.  Tests may still arm
// ad-hoc site names ("site.a") to probe the injector mechanics themselves;
// the registry governs only the sites the production solvers check.
//
// Adding a fault site is therefore a three-part change by construction:
// declare the constant here, check it in the solver, and script it in a
// test — the lint gate fails if any leg is missing.
#pragma once

namespace mmwave::common::faults {

/// solve_milp returns NoSolution (limit hit, no incumbent) immediately.
inline constexpr const char* kMilpNoSolution = "milp.force_no_solution";
/// Branch & bound stops at the first incumbent (truncated Feasible exit).
inline constexpr const char* kMilpTruncate = "milp.truncate_incumbent";
/// A simplex pivot is poisoned: the solve aborts with NumericalError.
inline constexpr const char* kLpPivotPoison = "lp.pivot_poison";
/// The column-generation deadline reads as exhausted mid-iteration.
inline constexpr const char* kCgDeadline = "cg.deadline_exhausted";
/// save_checkpoint fails as if the disk write failed (full disk, EIO).
inline constexpr const char* kCheckpointWriteFail = "checkpoint.write_fail";
/// load_checkpoint reads a bit-flipped payload; the checksum must catch it
/// and the caller must degrade to a cold start.
inline constexpr const char* kCheckpointCorrupt = "checkpoint.corrupt_payload";
/// resolve()'s pool repair sees a column invalidated mid-solve (the
/// instance perturbed again under our feet); the column must be dropped,
/// never entered into the master.
inline constexpr const char* kResolveDropColumn = "resolve.drop_column";
/// A v2 checkpoint pool-metadata record reads as semantically bad: the
/// parser must degrade to cold metadata (columns kept, scores reset),
/// never reject the checkpoint or crash.
inline constexpr const char* kCheckpointBadPoolRecord =
    "checkpoint.v2_bad_pool_record";
/// PoolManager eviction picks the wrong (best-scored) victim instead of
/// the worst.  Pool quality decays but the invariants must hold: basis
/// columns stay, and the resolve optimum is unchanged.
inline constexpr const char* kPoolEvictWrongColumn =
    "pool.evict_wrong_column";
/// CheckpointLog::save tears a delta append mid-block (half the bytes land,
/// then EIO).  The writer must report kIoError and force a compaction on
/// the next save; the loader must replay the chain up to the torn block and
/// drop the tail, never crash or apply a partial delta.
inline constexpr const char* kCheckpointDeltaTornWrite =
    "checkpoint.delta_torn_write";
/// CheckpointLog compaction dies after writing a partial temp file, before
/// the rename.  The old base + delta chain must remain fully loadable; the
/// next save retries the compaction.
inline constexpr const char* kCheckpointCompactCrash =
    "checkpoint.compact_crash";
/// A v3 checkpoint session cursor reads as semantically bad: the parser
/// must degrade to "no session" (solver pool kept, stream restarts the
/// session cold), never reject the checkpoint or crash.
inline constexpr const char* kSessionCursorCorrupt =
    "session.cursor_corrupt";
/// A v3 pool-index record (the multi-instance neighbour index) reads as
/// semantically bad: the parser must degrade to an empty index (columns
/// kept, neighbour seeding rebuilt from scratch), never reject the file.
inline constexpr const char* kCheckpointBadIndexRecord =
    "checkpoint.v3_bad_index_record";
/// The client-buffer state carried by a v4 session cursor reads as
/// semantically bad at resume time (NaN occupancy after a torn write, a
/// playing-without-started flags value): run_blockage_session must reject
/// the resume and run fresh from period 0 (warm pool kept), never replay
/// garbage QoE counters and never crash.
inline constexpr const char* kSessionBufferCorrupt =
    "session.buffer_corrupt";
/// A fleet request arrives poisoned (undecodable payload past admission):
/// the server must emit an error record for THAT request and keep serving —
/// one bad piconet never takes down the daemon.
inline constexpr const char* kFleetRequestPoison = "fleet.request_poison";
/// Admission reads the queue as full regardless of real occupancy: the
/// request must be shed with an explicit kOverloaded record, never dropped
/// silently and never enqueued past the bound.
inline constexpr const char* kFleetQueueOverflow = "fleet.queue_overflow";
/// A worker stalls mid-request (solver wedged past its deadline): the
/// watchdog must cancel the request at the hard deadline multiple while the
/// other workers keep draining the queue.
inline constexpr const char* kFleetWorkerStall = "fleet.worker_stall";
/// The drain-time queue checkpoint write dies with a transient kIoError:
/// the per-request retry-with-backoff must land it on a later attempt so a
/// SIGTERM drain still leaves a resumable queue on disk.
inline constexpr const char* kFleetDrainCrash = "fleet.drain_crash";

}  // namespace mmwave::common::faults
