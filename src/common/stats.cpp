#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace mmwave::common {
namespace {

struct TRow {
  std::size_t dof;
  double t90, t95, t99;
};

// Standard two-sided Student-t table.
constexpr TRow kTTable[] = {
    {1, 6.314, 12.706, 63.657}, {2, 2.920, 4.303, 9.925},
    {3, 2.353, 3.182, 5.841},   {4, 2.132, 2.776, 4.604},
    {5, 2.015, 2.571, 4.032},   {6, 1.943, 2.447, 3.707},
    {7, 1.895, 2.365, 3.499},   {8, 1.860, 2.306, 3.355},
    {9, 1.833, 2.262, 3.250},   {10, 1.812, 2.228, 3.169},
    {12, 1.782, 2.179, 3.055},  {14, 1.761, 2.145, 2.977},
    {16, 1.746, 2.120, 2.921},  {18, 1.734, 2.101, 2.878},
    {20, 1.725, 2.086, 2.845},  {25, 1.708, 2.060, 2.787},
    {30, 1.697, 2.042, 2.750},  {40, 1.684, 2.021, 2.704},
    {49, 1.677, 2.010, 2.680},  {60, 1.671, 2.000, 2.660},
    {80, 1.664, 1.990, 2.639},  {120, 1.658, 1.980, 2.617},
};

double pick_level(const TRow& row, double confidence) {
  if (confidence <= 0.905) return row.t90;
  if (confidence <= 0.955) return row.t95;
  return row.t99;
}

}  // namespace

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double t_critical(std::size_t dof, double confidence) {
  if (dof == 0) return 0.0;
  constexpr std::size_t n = sizeof(kTTable) / sizeof(kTTable[0]);
  if (dof > 120) {
    // Normal approximation.
    if (confidence <= 0.905) return 1.645;
    if (confidence <= 0.955) return 1.960;
    return 2.576;
  }
  // Find bracketing rows and interpolate linearly in dof.
  for (std::size_t i = 0; i < n; ++i) {
    if (kTTable[i].dof == dof) return pick_level(kTTable[i], confidence);
    if (kTTable[i].dof > dof) {
      const TRow& lo = kTTable[i - 1];
      const TRow& hi = kTTable[i];
      const double w = static_cast<double>(dof - lo.dof) /
                       static_cast<double>(hi.dof - lo.dof);
      return pick_level(lo, confidence) +
             w * (pick_level(hi, confidence) - pick_level(lo, confidence));
    }
  }
  return pick_level(kTTable[n - 1], confidence);
}

SampleStats summarize(const std::vector<double>& xs, double confidence) {
  RunningStat rs;
  for (double x : xs) rs.add(x);
  SampleStats s;
  s.n = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  if (s.n >= 2) {
    s.ci_halfwidth = t_critical(s.n - 1, confidence) * s.stddev /
                     std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

double jain_index(const std::vector<double>& e) {
  if (e.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (double x : e) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(e.size()) * sumsq);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace mmwave::common
