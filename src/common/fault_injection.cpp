#include "common/fault_injection.h"

namespace mmwave::common {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

}  // namespace mmwave::common
