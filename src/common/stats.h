// Summary statistics and confidence intervals for experiment reporting.
//
// The paper reports 95% confidence intervals over 50 random seeds; the
// SampleStats helper reproduces that (Student-t critical values, since the
// sample sizes are small).
#pragma once

#include <cstddef>
#include <vector>

namespace mmwave::common {

/// Welford online accumulator: numerically stable mean/variance.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value at the given confidence level for
/// `dof` degrees of freedom.  Exact for the tabulated 90/95/99% levels,
/// linearly interpolated over dof, normal-approximated for dof > 120.
double t_critical(std::size_t dof, double confidence = 0.95);

struct SampleStats {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Half-width of the two-sided confidence interval around the mean.
  double ci_halfwidth = 0.0;
};

/// Mean, stddev and confidence-interval half width of a sample.
SampleStats summarize(const std::vector<double>& xs,
                      double confidence = 0.95);

/// Jain's fairness index f(e) = (sum e)^2 / (n * sum e^2); 1.0 when all
/// entries are equal, -> 1/n in the most unfair case.  Returns 1.0 for an
/// all-zero or empty sample (every link equally (un)delayed).
double jain_index(const std::vector<double>& e);

/// Arithmetic mean; 0 for empty input.
double mean_of(const std::vector<double>& xs);

}  // namespace mmwave::common
