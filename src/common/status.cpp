#include "common/status.h"

namespace mmwave::common {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kInvalidInput: return "InvalidInput";
    case ErrorCode::kNumericalBreakdown: return "NumericalBreakdown";
    case ErrorCode::kLimitHit: return "LimitHit";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::kStalled: return "Stalled";
    case ErrorCode::kInfeasible: return "Infeasible";
    case ErrorCode::kUnbounded: return "Unbounded";
    case ErrorCode::kIoError: return "IoError";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (ok()) return "Ok";
  std::string out = common::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mmwave::common
