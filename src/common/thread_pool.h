// Fixed-size thread pool and a deterministic parallel_for.
//
// Built for the bench harness: seed sweeps are embarrassingly parallel
// (each seed builds its own Network from its own RNG), so the only thing
// the pool has to guarantee is that *results* are independent of thread
// count and scheduling.  The contract is:
//
//   * parallel_for(n, threads, fn) invokes fn(i) exactly once for every
//     i in [0, n).  Work items are handed out by an atomic counter, so
//     the assignment of items to threads is nondeterministic — fn must
//     write only to its own index-addressed slot (no shared mutable
//     state, per-item RNGs seeded from the item index).
//   * The caller reduces the slots in index order after the call returns;
//     parallel_for itself is a full barrier.
//   * threads <= 1 (or n <= 1) runs serially on the calling thread: the
//     sequential path is the same code with no pool, so --threads=1 is
//     the reference behavior, bit-identical by construction.
//   * threads == 0 means "auto" (hardware_concurrency) at the call sites
//     that accept user input; parallel_for itself takes the resolved
//     count.
//
// Exceptions thrown by fn propagate to the caller (first one wins; the
// remaining items still run to completion so no index is skipped).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mmwave::common {

/// Resolves a user-facing thread-count argument: n <= 0 means "auto"
/// (hardware_concurrency, at least 1), anything else is taken as-is.
unsigned resolve_threads(int requested);

/// Fixed-size pool of worker threads.  Tasks are submitted with submit()
/// and run FIFO; wait_idle() blocks until every submitted task finished.
/// Destruction drains the queue first.  Not copyable or movable.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task.  Safe to call from multiple threads.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is mid-task.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;   // workers wait for work / stop
  std::condition_variable all_done_;     // wait_idle waits for drain
  std::size_t in_flight_ = 0;            // tasks popped but not finished
  bool stopping_ = false;
};

/// Runs fn(i) for every i in [0, n) using up to `threads` workers (the
/// calling thread participates).  Serial when threads <= 1 or n <= 1.
/// Returns after all items completed (full barrier); rethrows the first
/// exception any item threw.  See the header comment for the determinism
/// contract fn must follow.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mmwave::common
