#include "common/rng.h"

#include <cmath>

namespace mmwave::common {

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  // If X ~ LogNormal(mu, sigma^2) then E[X] = exp(mu + sigma^2/2) and
  // CV^2 = exp(sigma^2) - 1.  Invert for (mu, sigma).
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

double Rng::exponential(double rate) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

}  // namespace mmwave::common
