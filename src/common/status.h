// Structured error propagation for the solver stack.
//
// The solvers historically reported failure through sentinel values (a
// `bool ok`, a NaN objective, an enum with no context).  `Status` carries a
// machine-readable error code plus a human-readable message, and
// `Expected<T>` is a value-or-Status return for fallible constructors and
// parsers.  Neither throws; the whole solve path stays exception-free.
#pragma once

#include <string>
#include <utility>

namespace mmwave::common {

enum class ErrorCode {
  kOk = 0,
  /// Malformed problem data (NaN gains, negative demands, size mismatch...).
  kInvalidInput,
  /// The numerics gave out: singular basis, poisoned pivot, LP error status.
  kNumericalBreakdown,
  /// A node / iteration / time limit truncated the solve (result may still
  /// carry a valid incumbent and dual bound).
  kLimitHit,
  /// The wall-clock deadline expired before the solve finished.
  kDeadlineExceeded,
  /// No progress over a detection window (cycling / duplicate columns).
  kStalled,
  kInfeasible,
  kUnbounded,
  /// A filesystem operation failed (checkpoint read/write, unreadable path).
  kIoError,
  /// Unexpected internal failure (caught exception, broken invariant).
  kInternal,
  /// Admission control rejected the work: the serving queue was at capacity
  /// and the request was shed with an explicit record, never silently
  /// dropped (fleet::Server backpressure, DESIGN section 13).
  kOverloaded,
};

const char* to_string(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status Error(ErrorCode code, std::string message) {
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<code>: <message>".
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Value-or-error return.  Minimal by design: holds the value and a Status
/// side by side (the payloads here are small structs; no union tricks).
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  /// Valid only when ok().
  const T& value() const { return value_; }
  T& value() { return value_; }
  T value_or(T fallback) const { return ok() ? value_ : std::move(fallback); }

 private:
  T value_{};
  Status status_;
};

}  // namespace mmwave::common
