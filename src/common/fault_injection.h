// Scenario-scriptable fault injection for robustness tests.
//
// Production solvers earn their graceful-degradation paths by having them
// exercised; this injector lets a test script the exact failure — "the
// pricing MILP finds no incumbent", "a simplex pivot goes numerically bad
// on the 3rd master solve", "the deadline expires mid-iteration" — and
// assert the solver still returns a verifier-clean, bound-certified answer.
//
// Usage (test side):
//   common::FaultInjector inj(/*seed=*/42);
//   inj.arm("milp.force_no_solution", {.skip = 1, .times = 1});
//   common::FaultScope scope(inj);          // active until scope ends
//   auto result = core::solve_column_generation(net, demands, opts);
//
// Usage (solver side, at the fault site):
//   if (common::fault_fires("lp.pivot_poison")) { ...degrade... }
//
// When no injector is installed (all production runs) a site check is a
// single atomic load of a null pointer.  The injector itself is not
// thread-safe; scenarios are single-threaded by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "common/rng.h"

namespace mmwave::common {

/// Site names used by the solver stack (kept here so tests and solvers
/// cannot drift apart on spelling).
namespace faults {
/// solve_milp returns NoSolution (limit hit, no incumbent) immediately.
inline constexpr const char* kMilpNoSolution = "milp.force_no_solution";
/// Branch & bound stops at the first incumbent (truncated Feasible exit).
inline constexpr const char* kMilpTruncate = "milp.truncate_incumbent";
/// A simplex pivot is poisoned: the solve aborts with NumericalError.
inline constexpr const char* kLpPivotPoison = "lp.pivot_poison";
/// The column-generation deadline reads as exhausted mid-iteration.
inline constexpr const char* kCgDeadline = "cg.deadline_exhausted";
/// save_checkpoint fails as if the disk write failed (full disk, EIO).
inline constexpr const char* kCheckpointWriteFail = "checkpoint.write_fail";
/// load_checkpoint reads a bit-flipped payload; the checksum must catch it
/// and the caller must degrade to a cold start.
inline constexpr const char* kCheckpointCorrupt = "checkpoint.corrupt_payload";
/// resolve()'s pool repair sees a column invalidated mid-solve (the
/// instance perturbed again under our feet); the column must be dropped,
/// never entered into the master.
inline constexpr const char* kResolveDropColumn = "resolve.drop_column";
/// A v2 checkpoint pool-metadata record reads as semantically bad: the
/// parser must degrade to cold metadata (columns kept, scores reset),
/// never reject the checkpoint or crash.
inline constexpr const char* kCheckpointBadPoolRecord =
    "checkpoint.v2_bad_pool_record";
/// PoolManager eviction picks the wrong (best-scored) victim instead of
/// the worst.  Pool quality decays but the invariants must hold: basis
/// columns stay, and the resolve optimum is unchanged.
inline constexpr const char* kPoolEvictWrongColumn =
    "pool.evict_wrong_column";
}  // namespace faults

/// When/how often an armed site fires.  Namespace-scope (not nested) so it
/// can serve as a default argument below — GCC parses nested-class default
/// member initializers too late for that.
struct FaultSpec {
  /// Let this many hits pass before the site starts firing.
  int skip = 0;
  /// Fire at most this many times (default: every hit after `skip`).
  int times = std::numeric_limits<int>::max();
  /// Fire with this probability per eligible hit (seeded, deterministic).
  double probability = 1.0;
};

class FaultInjector {
 public:
  using Spec = FaultSpec;

  explicit FaultInjector(std::uint64_t seed = 0) : rng_(seed) {}

  /// Arms (or re-arms, resetting counters) a site.
  void arm(const std::string& site, Spec spec = {}) {
    sites_[site] = SiteState{spec, 0, 0};
  }
  void disarm(const std::string& site) { sites_.erase(site); }

  /// Called by the solver at the fault site.  Counts the hit and decides
  /// whether the fault fires there.
  bool should_fire(const std::string& site) {
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    SiteState& s = it->second;
    const int hit = s.hits++;
    if (hit < s.spec.skip || s.fired >= s.spec.times) return false;
    if (s.spec.probability < 1.0 &&
        rng_.uniform() >= s.spec.probability) {
      return false;
    }
    ++s.fired;
    return true;
  }

  /// Times the site was reached / actually fired (test assertions).
  int hits(const std::string& site) const {
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hits;
  }
  int fired(const std::string& site) const {
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
  }

  /// The process-wide active injector (null outside a FaultScope).
  static FaultInjector* active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  friend class FaultScope;
  struct SiteState {
    Spec spec;
    int hits = 0;
    int fired = 0;
  };
  std::map<std::string, SiteState> sites_;
  Rng rng_;

  static std::atomic<FaultInjector*> active_;
};

/// RAII activation of an injector as the process-wide active one.  Scopes
/// must not nest or overlap across threads (they restore the previous
/// pointer, so accidental nesting still unwinds correctly).
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& injector)
      : previous_(FaultInjector::active_.exchange(
            &injector, std::memory_order_acq_rel)) {}
  ~FaultScope() {
    FaultInjector::active_.store(previous_, std::memory_order_release);
  }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

/// Solver-side site check: false (one atomic load) when nothing is armed.
inline bool fault_fires(const char* site) {
  FaultInjector* injector = FaultInjector::active();
  return injector != nullptr && injector->should_fire(site);
}

}  // namespace mmwave::common
