// Scenario-scriptable fault injection for robustness tests.
//
// Production solvers earn their graceful-degradation paths by having them
// exercised; this injector lets a test script the exact failure — "the
// pricing MILP finds no incumbent", "a simplex pivot goes numerically bad
// on the 3rd master solve", "the deadline expires mid-iteration" — and
// assert the solver still returns a verifier-clean, bound-certified answer.
//
// Usage (test side):
//   common::FaultInjector inj(/*seed=*/42);
//   inj.arm("milp.force_no_solution", {.skip = 1, .times = 1});
//   common::FaultScope scope(inj);          // active until scope ends
//   auto result = core::solve_column_generation(net, demands, opts);
//
// Usage (solver side, at the fault site):
//   if (common::fault_fires("lp.pivot_poison")) { ...degrade... }
//
// When no injector is installed (all production runs) a site check is a
// single atomic load of a null pointer.  The injector itself is not
// thread-safe; scenarios are single-threaded by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "common/fault_sites.h"
#include "common/rng.h"

namespace mmwave::common {

/// When/how often an armed site fires.  Namespace-scope (not nested) so it
/// can serve as a default argument below — GCC parses nested-class default
/// member initializers too late for that.
struct FaultSpec {
  /// Let this many hits pass before the site starts firing.
  int skip = 0;
  /// Fire at most this many times (default: every hit after `skip`).
  int times = std::numeric_limits<int>::max();
  /// Fire with this probability per eligible hit (seeded, deterministic).
  double probability = 1.0;
};

class FaultInjector {
 public:
  using Spec = FaultSpec;

  explicit FaultInjector(std::uint64_t seed = 0) : rng_(seed) {}

  /// Arms (or re-arms, resetting counters) a site.
  void arm(const std::string& site, Spec spec = {}) {
    sites_[site] = SiteState{spec, 0, 0};
  }
  void disarm(const std::string& site) { sites_.erase(site); }

  /// Called by the solver at the fault site.  Counts the hit and decides
  /// whether the fault fires there.
  bool should_fire(const std::string& site) {
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    SiteState& s = it->second;
    const int hit = s.hits++;
    if (hit < s.spec.skip || s.fired >= s.spec.times) return false;
    if (s.spec.probability < 1.0 &&
        rng_.uniform() >= s.spec.probability) {
      return false;
    }
    ++s.fired;
    return true;
  }

  /// Times the site was reached / actually fired (test assertions).
  int hits(const std::string& site) const {
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hits;
  }
  int fired(const std::string& site) const {
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
  }

  /// The process-wide active injector (null outside a FaultScope).
  static FaultInjector* active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  friend class FaultScope;
  struct SiteState {
    Spec spec;
    int hits = 0;
    int fired = 0;
  };
  std::map<std::string, SiteState> sites_;
  Rng rng_;

  static std::atomic<FaultInjector*> active_;
};

/// RAII activation of an injector as the process-wide active one.  Scopes
/// must not nest or overlap across threads (they restore the previous
/// pointer, so accidental nesting still unwinds correctly).
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& injector)
      : previous_(FaultInjector::active_.exchange(
            &injector, std::memory_order_acq_rel)) {}
  ~FaultScope() {
    FaultInjector::active_.store(previous_, std::memory_order_release);
  }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

/// Solver-side site check: false (one atomic load) when nothing is armed.
inline bool fault_fires(const char* site) {
  FaultInjector* injector = FaultInjector::active();
  return injector != nullptr && injector->should_fire(site);
}

}  // namespace mmwave::common
