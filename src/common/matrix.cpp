#include "common/matrix.h"

#include <algorithm>
#include <cmath>

namespace mmwave::common {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    assert(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* rrow = rhs.row(k);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < rhs.cols_; ++j) orow[j] += aik * rrow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* arow = row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += arow[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  assert(lu_.rows() == lu_.cols());
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude entry on/below the diagonal.
    std::size_t pivot = col;
    double best = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      ok_ = false;
      return;
    }
    if (pivot != col) {
      std::swap(piv_[pivot], piv_[col]);
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(pivot, c), lu_(col, c));
    }
    const double inv_diag = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) * inv_diag;
      lu_(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c)
        lu_(r, c) -= factor * lu_(col, c);
    }
  }
  ok_ = true;
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  assert(ok_);
  const std::size_t n = lu_.rows();
  assert(b.size() == n);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
  // Forward substitution with unit-lower L.
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

std::vector<double> LuFactorization::solve_transpose(
    const std::vector<double>& b) const {
  assert(ok_);
  const std::size_t n = lu_.rows();
  assert(b.size() == n);
  // Solve U^T y = b, then L^T z = y, then undo the permutation.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * y[j];
    y[i] = acc / lu_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * y[j];
    y[ii] = acc;
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[piv_[i]] = y[i];
  return x;
}

Matrix LuFactorization::inverse() const {
  assert(ok_);
  const std::size_t n = lu_.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    std::vector<double> col = solve(e);
    e[c] = 0.0;
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

std::vector<double> solve_linear_system(const Matrix& a,
                                        const std::vector<double>& b) {
  LuFactorization lu(a);
  if (!lu.ok()) return {};
  return lu.solve(b);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace mmwave::common
