#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <utility>

namespace mmwave::common {

unsigned resolve_threads(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  // The calling thread is one of the workers, so `threads` is the total
  // degree of parallelism, not pool size + 1.
  ThreadPool pool(threads - 1);
  for (unsigned t = 0; t + 1 < threads; ++t) pool.submit(drain);
  drain();
  pool.wait_idle();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mmwave::common
