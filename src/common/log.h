// Leveled stderr logging.  Off by default above Warn so solver internals stay
// quiet in benches; tests and examples can raise the level for debugging.
#pragma once

#include <sstream>
#include <string>

namespace mmwave::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& msg);
}

/// Stream-style logger: LogLine(LogLevel::Info) << "x=" << x;
/// The message is emitted (with level prefix) on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::log_write(level_, ss_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

#define MMWAVE_LOG_DEBUG ::mmwave::common::LogLine(::mmwave::common::LogLevel::Debug)
#define MMWAVE_LOG_INFO ::mmwave::common::LogLine(::mmwave::common::LogLevel::Info)
#define MMWAVE_LOG_WARN ::mmwave::common::LogLine(::mmwave::common::LogLevel::Warn)
#define MMWAVE_LOG_ERROR ::mmwave::common::LogLine(::mmwave::common::LogLevel::Error)

}  // namespace mmwave::common
