// Small dense linear-algebra kernel used by the LP solver and the power
// control module.  Row-major, double precision, bounds-checked in debug
// builds.  This is deliberately a minimal kernel: the simplex solver
// maintains its own factorizations; everything else needs only mat-vec,
// LU solves, and inverses of modest matrices.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace mmwave::common {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from a nested initializer list; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw pointer to row r (contiguous, cols() entries).
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  Matrix transpose() const;

  Matrix operator*(const Matrix& rhs) const;
  std::vector<double> operator*(const std::vector<double>& v) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Maximum absolute entry; 0 for an empty matrix.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting.  Factor once, solve many.
class LuFactorization {
 public:
  /// Factors `a` (must be square).  Check ok() before solving.
  explicit LuFactorization(Matrix a);

  /// False if the matrix was numerically singular.
  bool ok() const { return ok_; }

  /// Solves A x = b.  Requires ok().
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A^T x = b.  Requires ok().
  std::vector<double> solve_transpose(const std::vector<double>& b) const;

  /// Inverse of A (column-by-column solves).  Requires ok().
  Matrix inverse() const;

 private:
  Matrix lu_;                    // packed L (unit diagonal) and U
  std::vector<std::size_t> piv_; // row permutation
  bool ok_ = false;
};

/// Convenience one-shot solve of A x = b; returns empty vector on singular A.
std::vector<double> solve_linear_system(const Matrix& a,
                                        const std::vector<double>& b);

/// Dot product; asserts equal sizes.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double norm2(const std::vector<double>& v);

/// Max |a_i - b_i|.
double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace mmwave::common
