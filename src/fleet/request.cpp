#include "fleet/request.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

namespace mmwave::fleet {

const char* to_string(FleetOp op) {
  switch (op) {
    case FleetOp::kSolve: return "solve";
    case FleetOp::kResolve: return "resolve";
    case FleetOp::kStream: return "stream";
  }
  return "unknown";
}

const char* to_string(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk: return "ok";
    case RequestOutcome::kDegraded: return "degraded";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kError: return "error";
    case RequestOutcome::kCancelled: return "cancelled";
  }
  return "unknown";
}

namespace {

using common::ErrorCode;
using common::Status;

[[nodiscard]] Status bad(const std::string& what) {
  return Status::Error(ErrorCode::kInvalidInput, "request: " + what);
}

/// Byte cursor over one request line.
struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }
};

/// Parses a double-quoted JSON string (the minimal escape set).
[[nodiscard]] Status parse_string(Cursor& cur, std::string* out) {
  if (!cur.eat('"')) return bad("expected '\"'");
  out->clear();
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return Status::Ok();
    if (c == '\\') {
      if (cur.pos >= cur.text.size()) break;
      const char esc = cur.text[cur.pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        default: return bad("unsupported string escape");
      }
    } else {
      out->push_back(c);
    }
  }
  return bad("unterminated string");
}

/// Scans one JSON number token into `token` (validation happens at use).
[[nodiscard]] Status parse_number_token(Cursor& cur, std::string* token) {
  cur.skip_ws();
  token->clear();
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+' || c == '.' || c == 'e' || c == 'E') {
      token->push_back(c);
      ++cur.pos;
    } else {
      break;
    }
  }
  if (token->empty()) return bad("expected a number");
  return Status::Ok();
}

[[nodiscard]] Status to_double(const std::string& key,
                               const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return bad(key + ": malformed number '" + token + "'");
  }
  return Status::Ok();
}

[[nodiscard]] Status to_int(const std::string& key, const std::string& token,
                            long long lo, long long hi, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return bad(key + ": expected an integer, got '" + token + "'");
  }
  if (*out < lo || *out > hi) {
    return bad(key + ": " + token + " outside [" + std::to_string(lo) +
               ", " + std::to_string(hi) + "]");
  }
  return Status::Ok();
}

[[nodiscard]] Status range_check(const std::string& key, double value,
                                 double lo, double hi) {
  if (!(value >= lo) || !(value <= hi)) {
    return bad(key + ": value outside [" + std::to_string(lo) + ", " +
               std::to_string(hi) + "]");
  }
  return Status::Ok();
}

}  // namespace

[[nodiscard]] common::Expected<FleetRequest> parse_request_line(
    const std::string& line) {
  Cursor cur{line};
  if (!cur.eat('{')) return bad("expected a JSON object");
  FleetRequest req;
  std::set<std::string> seen;
  bool first = true;
  while (true) {
    if (cur.eat('}')) break;
    if (!first && !cur.eat(',')) return bad("expected ',' or '}'");
    first = false;
    std::string key;
    if (Status st = parse_string(cur, &key); !st.ok()) return st;
    if (!cur.eat(':')) return bad("expected ':' after key '" + key + "'");
    if (!seen.insert(key).second) return bad("duplicate key '" + key + "'");

    if (key == "id" || key == "op" || key == "pricing") {
      std::string value;
      if (Status st = parse_string(cur, &value); !st.ok()) return st;
      if (key == "id") {
        req.id = value;
      } else if (key == "op") {
        if (value == "solve") req.op = FleetOp::kSolve;
        else if (value == "resolve") req.op = FleetOp::kResolve;
        else if (value == "stream") req.op = FleetOp::kStream;
        else return bad("op: expected solve|resolve|stream, got '" + value + "'");
      } else {
        if (value == "heuristic") req.pricing = core::PricingMode::HeuristicOnly;
        else if (value == "hybrid") req.pricing = core::PricingMode::HeuristicThenExact;
        else if (value == "exact") req.pricing = core::PricingMode::ExactAlways;
        else return bad("pricing: expected heuristic|hybrid|exact, got '" +
                        value + "'");
      }
    } else if (key == "block_links") {
      if (!cur.eat('[')) return bad("block_links: expected an array");
      if (!cur.eat(']')) {
        while (true) {
          std::string token;
          if (Status st = parse_number_token(cur, &token); !st.ok()) return st;
          long long v = 0;
          if (Status st = to_int(key, token, 0, 4095, &v); !st.ok()) return st;
          req.block_links.push_back(static_cast<int>(v));
          if (cur.eat(']')) break;
          if (!cur.eat(',')) return bad("block_links: expected ',' or ']'");
        }
      }
    } else {
      std::string token;
      if (Status st = parse_number_token(cur, &token); !st.ok()) return st;
      long long iv = 0;
      double dv = 0.0;
      if (key == "links") {
        if (Status st = to_int(key, token, 1, 4096, &iv); !st.ok()) return st;
        req.links = static_cast<int>(iv);
      } else if (key == "channels") {
        if (Status st = to_int(key, token, 1, 1024, &iv); !st.ok()) return st;
        req.channels = static_cast<int>(iv);
      } else if (key == "levels") {
        if (Status st = to_int(key, token, 1, 64, &iv); !st.ok()) return st;
        req.levels = static_cast<int>(iv);
      } else if (key == "gops") {
        if (Status st = to_int(key, token, 1, 1'000'000, &iv); !st.ok())
          return st;
        req.gops = static_cast<int>(iv);
      } else if (key == "seed") {
        if (Status st = to_int(key, token, 0,
                               std::numeric_limits<long long>::max(), &iv);
            !st.ok())
          return st;
        req.seed = static_cast<std::uint64_t>(iv);
      } else if (key == "gamma_scale") {
        if (Status st = to_double(key, token, &dv); !st.ok()) return st;
        if (Status st = range_check(key, dv, 1e-9, 1e9); !st.ok()) return st;
        req.gamma_scale = dv;
      } else if (key == "demand_scale") {
        if (Status st = to_double(key, token, &dv); !st.ok()) return st;
        if (Status st = range_check(key, dv, 1e-18, 1e18); !st.ok()) return st;
        req.demand_scale = dv;
      } else if (key == "deadline") {
        if (Status st = to_double(key, token, &dv); !st.ok()) return st;
        if (Status st = range_check(key, dv, 0.0, 1e9); !st.ok()) return st;
        req.deadline_sec = dv;
      } else if (key == "block_atten") {
        if (Status st = to_double(key, token, &dv); !st.ok()) return st;
        if (Status st = range_check(key, dv, 0.0, 1.0); !st.ok()) return st;
        req.block_atten = dv;
      } else if (key == "p_block") {
        if (Status st = to_double(key, token, &dv); !st.ok()) return st;
        if (Status st = range_check(key, dv, 0.0, 1.0); !st.ok()) return st;
        req.p_block = dv;
      } else {
        return bad("unknown key '" + key + "'");
      }
    }
  }
  if (!cur.at_end()) return bad("trailing bytes after the object");
  if (req.id.empty()) return bad("missing required key 'id'");
  for (int l : req.block_links) {
    if (l >= req.links) {
      return bad("block_links: link " + std::to_string(l) + " outside [0, " +
                 std::to_string(req.links) + ")");
    }
  }
  return req;
}

std::string RequestRecord::to_json_line() const {
  auto escape = [](const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else if (c == '\t') {
        out += "\\t";
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        out.push_back(c);
      }
    }
    return out;
  };
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"total_slots\":%.17g,\"iterations\":%d,"
                "\"converged\":%s,\"wait_seconds\":%.6f,"
                "\"exec_seconds\":%.6f",
                total_slots, iterations, converged ? "true" : "false",
                wait_seconds, exec_seconds);
  std::string out = "{\"id\":\"" + escape(id) + "\",\"index\":" +
                    std::to_string(index) + ",\"op\":\"" +
                    fleet::to_string(op) + "\",\"outcome\":\"" +
                    fleet::to_string(outcome) + "\",\"code\":\"" +
                    common::to_string(code) + "\",\"message\":\"" +
                    escape(message) + "\"," + buf + "}";
  return out;
}

}  // namespace mmwave::fleet
