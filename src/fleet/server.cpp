#include "fleet/server.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/column_generation.h"
#include "core/resolve.h"
#include "mmwave/blockage.h"
#include "mmwave/network.h"
#include "stream/blockage_session.h"
#include "video/demand.h"

namespace mmwave::fleet {

namespace {

using Clock = std::chrono::steady_clock;
using common::ErrorCode;
using common::Status;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void backoff_sleep(double base_sec, int attempt) {
  const double sec = base_sec * (attempt + 1);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(sec > 0.0 ? sec : 0.0));
}

net::NetworkParams params_of(const FleetRequest& req) {
  net::NetworkParams params;
  params.num_links = req.links;
  params.num_channels = req.channels;
  params.sinr_thresholds.resize(req.levels);
  for (int q = 0; q < req.levels; ++q) {
    params.sinr_thresholds[q] = 0.1 * (q + 1) * req.gamma_scale;
  }
  return params;
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

// ---------------------------------------------------------------------------
// Queue manifest: the drain-time record of which requests finished and which
// were parked, written atomically next to the shared-pool log.
//
//   mmwave-fleet-queue v1
//   done <id>
//   pending <raw request line>
//   end fnv=0x<fnv1a of the body lines>
// ---------------------------------------------------------------------------

struct QueueManifest {
  bool loaded = false;
  std::set<std::string> done;
  std::vector<std::string> pending;
};

QueueManifest load_queue_manifest(const std::string& path) {
  QueueManifest manifest;
  std::ifstream in(path);
  if (!in) return manifest;  // missing = fresh serve run, not an error
  std::string line;
  if (!std::getline(in, line) || line != "mmwave-fleet-queue v1") {
    return manifest;  // damaged header: degrade to a cold (full) run
  }
  std::string body;
  std::set<std::string> done;
  std::vector<std::string> pending;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.rfind("end fnv=0x", 0) == 0) {
      if (line.substr(10) != hex64(fnv1a(body))) return manifest;
      saw_end = true;
      break;
    }
    body += line;
    body += '\n';
    if (line.rfind("done ", 0) == 0) {
      done.insert(line.substr(5));
    } else if (line.rfind("pending ", 0) == 0) {
      pending.push_back(line.substr(8));
    } else {
      return manifest;  // unknown record kind: treat the file as damaged
    }
  }
  if (!saw_end) return manifest;  // torn tail: degrade to a cold run
  manifest.loaded = true;
  manifest.done = std::move(done);
  manifest.pending = std::move(pending);
  return manifest;
}

[[nodiscard]] Status write_manifest_once(const std::string& path,
                                         const std::string& body) {
  if (common::fault_fires(common::faults::kFleetDrainCrash)) {
    return Status::Error(ErrorCode::kIoError,
                         "injected fault: fleet.drain_crash");
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error(ErrorCode::kIoError,
                         "queue manifest: cannot open " + tmp);
  }
  const std::string full =
      "mmwave-fleet-queue v1\n" + body + "end fnv=0x" + hex64(fnv1a(body)) +
      "\n";
  const std::size_t written = std::fwrite(full.data(), 1, full.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != full.size() || !closed) {
    std::remove(tmp.c_str());
    return Status::Error(ErrorCode::kIoError,
                         "queue manifest: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error(ErrorCode::kIoError,
                         "queue manifest: rename to " + path + " failed");
  }
  return Status::Ok();
}

[[nodiscard]] Status write_manifest_with_retry(const std::string& path,
                                               const std::string& body,
                                               int retries,
                                               double backoff_sec) {
  Status st = Status::Ok();
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) backoff_sleep(backoff_sec, attempt - 1);
    st = write_manifest_once(path, body);
    if (st.ok() || st.code() != ErrorCode::kIoError) return st;
  }
  return st;
}

// ---------------------------------------------------------------------------
// Per-run serving state shared between the admission loop, the workers and
// the watchdog.  Slot references stay valid for the whole run (std::deque
// never relocates elements), but the deque itself must only be indexed
// under `mu` — push_back can grow the block map concurrently.
// ---------------------------------------------------------------------------

struct Slot {
  std::string raw;
  FleetRequest req;
  RequestRecord record;
  std::atomic<bool> cancel{false};
  enum class State { kQueued, kRunning, kDone, kParked };
  State state = State::kQueued;
  Clock::time_point admit_time{};
  Clock::time_point start_time{};
};

struct RunState {
  std::mutex mu;
  std::condition_variable watchdog_cv;
  std::deque<Slot> slots;
  std::size_t next_emit = 0;
  int queued = 0;   ///< admitted, not yet started (the bounded queue)
  int running = 0;  ///< started, not yet finished
  bool draining = false;
  bool watchdog_stop = false;
  ServerReport report;
  /// id -> slot index of every admitted (queued/running/finished) request.
  std::map<std::string, std::size_t> by_id;
  /// Finished ids from the resume manifest: skipped on re-feed.
  std::set<std::string> done_ids;
  /// Base checkpoint the shared-pool export rides on (first finished solve
  /// wins; which one it is only shapes the file, never any result).
  bool has_base = false;
  core::CgCheckpoint base;
};

/// Emits finished records in admission order; parked slots emit nothing
/// (they live on in the queue manifest instead).  Caller holds rs.mu.
void flush_records_locked(RunState& rs, const RecordSink& sink) {
  while (rs.next_emit < rs.slots.size()) {
    Slot& slot = rs.slots[rs.next_emit];
    if (slot.state == Slot::State::kDone) {
      sink(slot.record);
      ++rs.next_emit;
    } else if (slot.state == Slot::State::kParked) {
      ++rs.next_emit;
    } else {
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Request executors.  Instances are built exactly the way the CLI commands
// of the same names build them, so fleet records are comparable to
// per-process runs.
// ---------------------------------------------------------------------------

void fill_from_cg(const core::CgResult& result, RequestRecord* rec) {
  rec->total_slots = result.total_slots;
  rec->iterations = result.iterations;
  rec->converged = result.converged;
  if (result.stop_reason == core::CgStopReason::kInvalidInput) {
    rec->outcome = RequestOutcome::kError;
    rec->code = result.status.code();
    rec->message = result.status.message();
  } else if (result.degraded) {
    rec->outcome = RequestOutcome::kDegraded;
    rec->code = result.status.code();
    rec->message = core::to_string(result.stop_reason);
  } else {
    rec->outcome = RequestOutcome::kOk;
    rec->code = ErrorCode::kOk;
  }
}

/// Seeds from the shared pool (feasibility-repaired), solves, stores the
/// result back and feeds the adaptive-cap controller.  The warm-equivalence
/// invariant keeps the certified optimum independent of pool content.
void solve_with_shared_pool(const ServerOptions& options,
                            core::SharedPoolManager* pool, RunState* rs,
                            const net::Network& net,
                            const std::vector<video::LinkDemand>& demands,
                            core::CgOptions opts, RequestRecord* rec) {
  core::InstanceSignature sig;
  if (options.share_pool) {
    sig = core::make_signature(net, demands);
    const std::vector<sched::Schedule> candidates = pool->seed(sig);
    if (!candidates.empty()) {
      core::RepairStats repair_stats;
      opts.warm_pool = core::repair_pool(net, candidates, &repair_stats);
    }
  }
  const core::CgResult result =
      core::solve_column_generation(net, demands, opts);
  fill_from_cg(result, rec);
  if (result.stop_reason == core::CgStopReason::kInvalidInput) return;
  if (options.share_pool) {
    pool->store(sig, net, result);
    pool->observe(result.profile.warm_hit_rate(),
                  result.profile.master_seconds);
  }
  if (rs != nullptr) {
    std::lock_guard<std::mutex> lock(rs->mu);
    if (!rs->has_base) {
      rs->base = core::make_checkpoint(net, demands, result);
      rs->has_base = true;
    }
  }
}

void run_solve_request(const ServerOptions& options,
                       core::SharedPoolManager* pool, RunState* rs,
                       const FleetRequest& req, RequestRecord* rec) {
  common::Rng rng(req.seed);
  net::NetworkParams params = params_of(req);
  core::CgOptions opts;
  opts.pricing = req.pricing;
  opts.deadline_sec = req.deadline_sec;
  video::DemandConfig dcfg;
  dcfg.demand_scale = req.demand_scale;
  if (req.op == FleetOp::kSolve) {
    net::Network net = net::Network::table_i(params, rng);
    common::Rng drng = rng.fork(0x5EED);
    const auto demands = video::make_link_demands(req.links, dcfg, drng);
    solve_with_shared_pool(options, pool, rs, net, demands, opts, rec);
  } else {
    // resolve: same gain/demand streams as solve, with the blocked links'
    // receivers attenuated (the CLI resolve construction).
    net::TableIChannelModel base(req.links, req.channels, params.noise_watts,
                                 rng);
    common::Rng drng = rng.fork(0x5EED);
    const auto demands = video::make_link_demands(req.links, dcfg, drng);
    std::vector<double> scales(req.links, 1.0);
    for (int l : req.block_links) scales[l] = req.block_atten;
    net::Network net(params, std::make_unique<net::RxScaledChannelModel>(
                                 &base, std::move(scales)));
    solve_with_shared_pool(options, pool, rs, net, demands, opts, rec);
  }
}

void run_stream_request(const ServerOptions& options, const FleetRequest& req,
                        RequestRecord* rec) {
  common::Rng rng(req.seed);
  net::NetworkParams params = params_of(req);
  net::TableIChannelModel base(req.links, req.channels, params.noise_watts,
                               rng);
  stream::BlockageSessionConfig cfg;
  cfg.session.num_gops = req.gops;
  cfg.session.demand_scale = req.demand_scale;
  cfg.blockage.p_block = req.p_block;
  cfg.blockage.attenuation = 0.05;
  cfg.session_fingerprint =
      stream::blockage_session_fingerprint(cfg, req.links, req.seed);

  // Streams run on a PRIVATE context, not the shared pool: the session's
  // plan-digest chain is the determinism witness, and it must depend only
  // on this request — not on whatever columns other piconets pooled.
  stream::SolverContext context(options.pool);
  stream::CgSchedulerOptions sched_opts;
  sched_opts.heuristic_only = req.pricing == core::PricingMode::HeuristicOnly;

  stream::BlockageRunControl control;
  core::StreamCursor resume_cursor;
  std::unique_ptr<core::CheckpointLog> log;
  if (!options.state_path.empty()) {
    sched_opts.capture_checkpoint = true;
    log = std::make_unique<core::CheckpointLog>(options.state_path + ".req_" +
                                                req.id);
    const core::CheckpointLogLoad loaded = log->open();
    if (loaded.loaded) {
      context.manager.import_checkpoint(loaded.state);
      if (loaded.state.has_session) {
        resume_cursor = loaded.state.session;
        control.resume = &resume_cursor;
      }
    }
    control.on_period = [&](const core::StreamCursor& cursor, int) {
      if (context.has_last_checkpoint) {
        core::CgCheckpoint ckpt =
            context.manager.export_checkpoint(context.last_checkpoint);
        ckpt.has_session = true;
        ckpt.session = cursor;
        const Status st = save_with_retry(*log, ckpt, options.io_retries,
                                          options.retry_backoff_sec);
        if (!st.ok()) {
          // Keep streaming: the log self-heals (compacts) on the next save
          // and the previous on-disk state still loads.
        }
      }
      return true;
    };
  }
  common::Rng session_rng = rng.fork(1);
  const stream::BlockageSessionMetrics metrics = stream::run_blockage_session(
      base, params, cfg, stream::make_cg_scheduler(sched_opts, &context),
      session_rng, &context, &control);
  rec->total_slots = metrics.base.total_stall_slots;
  rec->iterations = req.gops;
  rec->converged = metrics.base.all_served;
  rec->message = "digest=0x" + hex64(metrics.plan_digest_chain);
  if (metrics.resume_rejected) rec->message += " resume_rejected";
  rec->outcome = RequestOutcome::kOk;
  rec->code = ErrorCode::kOk;
}

/// Worker body for one admitted slot: cancellation point, poison check,
/// op execution, record finish + in-order emission.
void execute_slot(const ServerOptions& options, core::SharedPoolManager* pool,
                  RunState& rs, std::size_t index, const RecordSink& sink) {
  Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(rs.mu);
    slot = &rs.slots[index];
    --rs.queued;
    if (rs.draining) {
      // Park: this request was admitted but never started; the drain
      // manifest carries it to the next serve run.
      slot->state = Slot::State::kParked;
      ++rs.report.parked;
      flush_records_locked(rs, sink);
      return;
    }
    slot->state = Slot::State::kRunning;
    ++rs.running;
    slot->start_time = Clock::now();
  }

  // Watchdog cancellation point.  A wedged solver is simulated by the
  // worker-stall fault: spin (bounded) until the watchdog cancels us.
  if (common::fault_fires(common::faults::kFleetWorkerStall)) {
    const Clock::time_point stall_start = Clock::now();
    while (!slot->cancel.load(std::memory_order_acquire) &&
           seconds_between(stall_start, Clock::now()) < 5.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  RequestRecord rec;
  if (slot->cancel.load(std::memory_order_acquire)) {
    rec.outcome = RequestOutcome::kCancelled;
    rec.code = ErrorCode::kDeadlineExceeded;
    rec.message = "watchdog cancelled: request exceeded its hard deadline "
                  "multiple";
  } else if (common::fault_fires(common::faults::kFleetRequestPoison)) {
    rec.outcome = RequestOutcome::kError;
    rec.code = ErrorCode::kInvalidInput;
    rec.message = "poisoned request payload";
  } else if (slot->req.op == FleetOp::kStream) {
    run_stream_request(options, slot->req, &rec);
  } else {
    run_solve_request(options, pool, &rs, slot->req, &rec);
  }

  {
    std::lock_guard<std::mutex> lock(rs.mu);
    rec.id = slot->req.id;
    rec.index = slot->record.index;
    rec.op = slot->req.op;
    rec.wait_seconds = seconds_between(slot->admit_time, slot->start_time);
    rec.exec_seconds = seconds_between(slot->start_time, Clock::now());
    slot->record = rec;
    slot->state = Slot::State::kDone;
    --rs.running;
    switch (rec.outcome) {
      case RequestOutcome::kOk: ++rs.report.completed; break;
      case RequestOutcome::kDegraded: ++rs.report.degraded; break;
      case RequestOutcome::kCancelled: ++rs.report.cancelled; break;
      default: ++rs.report.errors; break;
    }
    flush_records_locked(rs, sink);
  }
}

}  // namespace

[[nodiscard]] Status save_with_retry(core::CheckpointLog& log,
                                     const core::CgCheckpoint& ckpt,
                                     int retries, double backoff_sec) {
  Status st = Status::Ok();
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) backoff_sleep(backoff_sec, attempt - 1);
    st = log.save(ckpt);
    if (st.ok() || st.code() != ErrorCode::kIoError) return st;
  }
  return st;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), pool_(options_.pool) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;
}

ServerReport Server::run(const std::vector<std::string>& lines,
                         const RecordSink& sink,
                         const std::function<bool()>& should_stop) {
  std::size_t next = 0;
  return run(
      [&lines, &next](std::string* out) {
        if (next >= lines.size()) return false;
        *out = lines[next++];
        return true;
      },
      sink, should_stop);
}

ServerReport Server::run(const LineSource& next_line, const RecordSink& sink,
                         const std::function<bool()>& should_stop) {
  RunState rs;

  // Bind to durable state: warm the shared pool from its CheckpointLog and
  // load the queue manifest of a drained previous run.  Any damaged state
  // degrades to a cold (full) run, never an error.
  std::unique_ptr<core::CheckpointLog> pool_log;
  std::vector<std::string> manifest_pending;
  if (!options_.state_path.empty()) {
    pool_log = std::make_unique<core::CheckpointLog>(options_.state_path);
    const core::CheckpointLogLoad loaded = pool_log->open();
    if (loaded.loaded) {
      pool_.import_checkpoint(loaded.state);
      rs.base = loaded.state;
      rs.has_base = true;
    }
    QueueManifest manifest =
        load_queue_manifest(options_.state_path + ".queue");
    if (manifest.loaded) {
      rs.done_ids = std::move(manifest.done);
      manifest_pending = std::move(manifest.pending);
    }
  }

  auto workers = std::make_unique<common::ThreadPool>(
      common::resolve_threads(options_.workers));

  std::thread watchdog([this, &rs] {
    std::unique_lock<std::mutex> lock(rs.mu);
    while (!rs.watchdog_stop) {
      rs.watchdog_cv.wait_for(
          lock, std::chrono::duration<double>(options_.watchdog_poll_sec),
          [&rs] { return rs.watchdog_stop; });
      if (rs.watchdog_stop) break;
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < rs.slots.size(); ++i) {
        Slot& slot = rs.slots[i];
        if (slot.state != Slot::State::kRunning) continue;
        const double deadline = slot.req.deadline_sec;
        if (deadline <= 0.0) continue;
        if (seconds_between(slot.start_time, now) >
            options_.watchdog_multiple * deadline) {
          slot.cancel.store(true, std::memory_order_release);
        }
      }
    }
  });

  const auto stop_requested = [&should_stop] {
    return should_stop && should_stop();
  };

  // Admits one line: parse -> dedupe/skip -> bounded-queue check -> enqueue.
  const auto admit = [this, &rs, &sink, &workers](const std::string& line) {
    const auto parsed = parse_request_line(line);
    std::lock_guard<std::mutex> lock(rs.mu);
    const int index = static_cast<int>(rs.slots.size());
    if (!parsed.ok()) {
      Slot& slot = rs.slots.emplace_back();
      slot.raw = line;
      slot.record.index = index;
      slot.record.outcome = RequestOutcome::kError;
      slot.record.code = parsed.status().code();
      slot.record.message = parsed.status().message();
      slot.state = Slot::State::kDone;
      ++rs.report.errors;
      flush_records_locked(rs, sink);
      return;
    }
    const FleetRequest& req = parsed.value();
    if (rs.done_ids.count(req.id) != 0) {
      // Finished in the run this one resumes: skipping is what makes
      // "re-feed the full request list" safe (nothing double-executes).
      ++rs.report.resume_skipped;
      return;
    }
    const auto known = rs.by_id.find(req.id);
    if (known != rs.by_id.end()) {
      if (rs.slots[known->second].raw == line) {
        ++rs.report.resume_skipped;  // verbatim re-feed of an admitted line
        return;
      }
      Slot& slot = rs.slots.emplace_back();
      slot.raw = line;
      slot.record.id = req.id;
      slot.record.index = index;
      slot.record.op = req.op;
      slot.record.outcome = RequestOutcome::kError;
      slot.record.code = ErrorCode::kInvalidInput;
      slot.record.message = "duplicate request id '" + req.id + "'";
      slot.state = Slot::State::kDone;
      ++rs.report.errors;
      flush_records_locked(rs, sink);
      return;
    }
    if (common::fault_fires(common::faults::kFleetQueueOverflow) ||
        rs.queued >= options_.max_queue) {
      // Backpressure is explicit: the caller gets a kOverloaded record,
      // never a silently vanished request.
      Slot& slot = rs.slots.emplace_back();
      slot.raw = line;
      slot.record.id = req.id;
      slot.record.index = index;
      slot.record.op = req.op;
      slot.record.outcome = RequestOutcome::kShed;
      slot.record.code = ErrorCode::kOverloaded;
      slot.record.message =
          "queue at capacity (max_queue=" +
          std::to_string(options_.max_queue) + ")";
      slot.state = Slot::State::kDone;
      ++rs.report.shed;
      flush_records_locked(rs, sink);
      return;
    }
    Slot& slot = rs.slots.emplace_back();
    slot.raw = line;
    slot.req = req;
    slot.record.id = req.id;
    slot.record.index = index;
    slot.record.op = req.op;
    slot.admit_time = Clock::now();
    slot.state = Slot::State::kQueued;
    rs.by_id[req.id] = static_cast<std::size_t>(index);
    ++rs.queued;
    ++rs.report.admitted;
    const std::size_t slot_index = static_cast<std::size_t>(index);
    workers->submit([this, &rs, slot_index, &sink] {
      execute_slot(options_, &pool_, rs, slot_index, sink);
    });
  };

  const auto is_blank = [](const std::string& line) {
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') return false;
    }
    return true;
  };

  bool stopped = false;
  for (const std::string& line : manifest_pending) {
    if (stop_requested()) {
      stopped = true;
      break;
    }
    if (!is_blank(line)) admit(line);
  }
  std::string line;
  while (!stopped) {
    if (stop_requested()) {
      stopped = true;
      break;
    }
    if (!next_line(&line)) break;
    if (!is_blank(line)) admit(line);
  }
  if (stopped) {
    std::lock_guard<std::mutex> lock(rs.mu);
    rs.draining = true;
  }

  // Wait for the queue to settle: every admitted slot finished or parked.
  // A stop arriving here still drains — in-flight requests finish, queued
  // ones park when their task runs.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(rs.mu);
      if (rs.queued == 0 && rs.running == 0) break;
      if (!stopped && stop_requested()) {
        stopped = true;
        rs.draining = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  workers.reset();  // joins: all tasks have already settled

  {
    std::lock_guard<std::mutex> lock(rs.mu);
    rs.watchdog_stop = true;
  }
  rs.watchdog_cv.notify_all();
  watchdog.join();

  rs.report.drained = stopped;
  {
    std::lock_guard<std::mutex> lock(rs.mu);
    flush_records_locked(rs, sink);
  }

  // Persist the drain state: finished ids + parked request lines in the
  // manifest, warm pool capital through the CheckpointLog.  Transient IO
  // faults retry with backoff (faults::kFleetDrainCrash scripts one).
  if (!options_.state_path.empty()) {
    std::string body;
    for (const Slot& slot : rs.slots) {
      if (slot.state == Slot::State::kDone && !slot.record.id.empty()) {
        body += "done " + slot.record.id + "\n";
      } else if (slot.state == Slot::State::kParked) {
        body += "pending " + slot.raw + "\n";
      }
    }
    for (const std::string& id : rs.done_ids) body += "done " + id + "\n";
    Status manifest_st = write_manifest_with_retry(
        options_.state_path + ".queue", body, options_.io_retries,
        options_.retry_backoff_sec);
    Status pool_st = Status::Ok();
    if (rs.has_base) {
      core::CgCheckpoint ckpt = pool_.export_checkpoint(rs.base);
      ckpt.has_session = false;
      pool_st = save_with_retry(*pool_log, ckpt, options_.io_retries,
                                options_.retry_backoff_sec);
    }
    rs.report.state_status = manifest_st.ok() ? pool_st : manifest_st;
  }
  return rs.report;
}

}  // namespace mmwave::fleet
