// Fleet serve-mode request protocol: newline-delimited JSON in, one result
// record line out per request (DESIGN.md section 13).
//
// A request line is one flat JSON object — string/number/bool values plus
// one integer-array key (block_links); no nesting.  The parser is strict
// the way the instance-spec parser is strict: an unknown key, a malformed
// value, or an out-of-range field is a structured kInvalidInput naming the
// offence, never a silently defaulted request that solves the wrong
// piconet.  A malformed line costs exactly one error record; it never
// takes the daemon down (faults::kFleetRequestPoison scripts the
// past-admission variant of that contract).
//
// Records are emitted in admission (index) order with a stable key order
// and %.17g doubles, so two runs over the same request list are
// line-comparable: the chaos soak's resumed-equals-uninterrupted check and
// the fleet bench both diff them directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/column_generation.h"

namespace mmwave::fleet {

/// What one request asks the daemon to run.  The ops mirror the CLI
/// commands of the same names and build their instances identically, so a
/// fleet record is comparable to a per-process `mmwave_cli <op>` run.
enum class FleetOp {
  kSolve,    ///< one column-generation solve
  kResolve,  ///< warm re-solve under receiver-side blockage attenuation
  kStream,   ///< multi-GOP blockage streaming session
};

const char* to_string(FleetOp op);

struct FleetRequest {
  std::string id;  ///< caller-chosen, unique per serve run
  FleetOp op = FleetOp::kSolve;

  // Instance shape (same defaults and bounds as the CLI instance flags).
  int links = 6;
  int channels = 3;
  int levels = 3;
  double gamma_scale = 1.0;
  std::uint64_t seed = 1;
  double demand_scale = 1e-3;
  /// Per-request wall-clock budget, seconds (CgOptions::deadline_sec);
  /// also the base of the watchdog's hard-cancel threshold.  0 = none.
  double deadline_sec = 0.0;
  core::PricingMode pricing = core::PricingMode::HeuristicThenExact;

  // resolve-only:
  std::vector<int> block_links;
  double block_atten = 0.05;

  // stream-only:
  int gops = 4;
  double p_block = 0.0;
};

/// Parses one request line.  Strict: every key must be known, every value
/// well-typed and in range, `id` present and non-empty.
[[nodiscard]] common::Expected<FleetRequest> parse_request_line(
    const std::string& line);

/// Terminal state of one request.
enum class RequestOutcome {
  kOk,         ///< ran to a clean (certified or fixed-point) finish
  kDegraded,   ///< anytime contract: incumbent returned, reason in `code`
  kShed,       ///< admission rejected it (queue full) — never executed
  kError,      ///< malformed/poisoned/invalid: no solve happened
  kCancelled,  ///< watchdog cancelled it past the hard deadline multiple
};

const char* to_string(RequestOutcome outcome);

/// One result line.  For solve/resolve, total_slots/iterations/converged
/// are the CgResult fields; for stream, total_slots carries the session's
/// total stall slots, converged its all-served flag, and `message` the
/// plan-digest chain (the determinism witness).
struct RequestRecord {
  std::string id;
  int index = 0;  ///< admission order within the serve run
  FleetOp op = FleetOp::kSolve;
  RequestOutcome outcome = RequestOutcome::kOk;
  common::ErrorCode code = common::ErrorCode::kOk;
  std::string message;
  double total_slots = 0.0;
  int iterations = 0;
  bool converged = false;
  /// Admission-to-start / start-to-finish wall clock (not compared by the
  /// determinism checks — timing is the one legitimately variable field).
  double wait_seconds = 0.0;
  double exec_seconds = 0.0;

  /// Stable-key-order JSON line (ends without newline).
  std::string to_json_line() const;
};

}  // namespace mmwave::fleet
