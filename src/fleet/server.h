// fleet::Server — a long-running multi-piconet scheduling daemon.
//
// One Server instance accepts solve/resolve/stream requests for many
// independent piconets (newline-delimited JSON, fleet/request.h), runs them
// on a common::ThreadPool under per-request CgOptions deadlines, and shares
// one column pool (core::SharedPoolManager) across every solve so piconet
// B's warm-start capital speeds up piconet A.  Results are emitted as one
// record line per request, in admission order.
//
// Robustness contract (DESIGN.md section 13; every clause is fault-site
// scripted and test-enforced by tests/fleet/fleet_server_test.cpp and the
// chaos soak's --fleet leg):
//
//   * Admission control, never silent drops: the pending queue is bounded
//     by ServerOptions::max_queue; a request arriving at a full queue (or
//     under faults::kFleetQueueOverflow) is shed with an explicit
//     kOverloaded record.  Every admitted line ends in exactly one record.
//   * Per-request fault isolation: a malformed line, a poisoned payload
//     (faults::kFleetRequestPoison), an invalid instance, a poisoned LP
//     pivot or an expired deadline degrades THAT request — the record says
//     so — while the daemon and every other request stay healthy.
//   * Watchdog: requests that overrun watchdog_multiple times their own
//     deadline get their cancel flag set by a dedicated watchdog thread;
//     the in-solver cancellation point (scripted by
//     faults::kFleetWorkerStall) turns that into a kCancelled record.
//     Ordinary overruns are already bounded by CgOptions::deadline_sec —
//     the watchdog is the second line of defense for a wedged worker.
//   * Graceful drain: when should_stop() turns true, admission stops,
//     in-flight requests finish, queued-but-unstarted requests are parked
//     and written (with the finished ids) to the queue manifest at
//     state_path + ".queue"; the shared pool is checkpointed through
//     core::CheckpointLog at state_path.  A restarted run with the same
//     state_path skips the finished ids and runs only the remainder: no
//     request is lost or executed twice.  Manifest and pool writes retry
//     with backoff on transient kIoError (faults::kFleetDrainCrash).
//
// Determinism: records (minus the timing fields) are a pure function of
// the request list for any worker count.  Shared-pool seeding only ever
// hands the master feasibility-repaired columns, and extra feasible
// columns cannot change the certified optimum (the warm-equivalence
// invariant) — concurrency moves which requests warm-start, never what
// they answer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/checkpoint_log.h"
#include "core/pool_manager.h"
#include "core/shared_pool.h"
#include "fleet/request.h"

namespace mmwave::fleet {

struct ServerOptions {
  /// Worker threads executing requests (>= 1).  Fault-injection scenarios
  /// run workers = 1: common::FaultInjector is not thread-safe, and the
  /// site-per-thread discipline (one armed site per firing thread) is only
  /// trivially guaranteed there.
  int workers = 1;
  /// Admitted-but-unstarted requests held before admission sheds
  /// (kOverloaded).  >= 1.
  int max_queue = 64;
  /// Watchdog cancels a running request once it exceeds this multiple of
  /// its own deadline (requests with deadline 0 are never cancelled).
  double watchdog_multiple = 8.0;
  /// Watchdog poll period, seconds.
  double watchdog_poll_sec = 0.002;
  /// Transient-kIoError retries for manifest / pool-checkpoint / stream-
  /// checkpoint writes, with linear backoff between attempts.
  int io_retries = 3;
  double retry_backoff_sec = 0.001;
  /// Share one column pool across every solve/resolve request.  Off = each
  /// request solves cold (the per-process baseline the soak compares to).
  bool share_pool = true;
  /// Options of the shared pool (and of each stream request's private
  /// SolverContext pool).
  core::PoolManagerOptions pool;
  /// Durable-state base path: the shared-pool CheckpointLog lives at this
  /// path, the queue manifest at state_path + ".queue", and stream
  /// requests' session logs at state_path + ".req_<id>".  Empty disables
  /// persistence (no drain manifest, no resume).
  std::string state_path;
};

struct ServerReport {
  std::int64_t admitted = 0;   ///< requests that entered the queue
  std::int64_t completed = 0;  ///< clean finishes (outcome ok)
  std::int64_t degraded = 0;   ///< anytime-contract finishes
  std::int64_t shed = 0;       ///< kOverloaded admission rejections
  std::int64_t errors = 0;     ///< malformed / poisoned / invalid requests
  std::int64_t cancelled = 0;  ///< watchdog cancellations
  /// Source lines skipped because the resume manifest already marks their
  /// id finished (or the line duplicates an already-admitted one verbatim).
  std::int64_t resume_skipped = 0;
  /// Admitted requests parked un-executed by a drain (now in the manifest).
  std::int64_t parked = 0;
  /// True when the run ended on should_stop() rather than source EOF.
  bool drained = false;
  /// Outcome of the drain-time manifest + pool persistence (Ok when
  /// persistence is disabled).
  common::Status state_status;
};

/// Pulls the next request line; false = source exhausted (EOF).
using LineSource = std::function<bool(std::string*)>;
/// Receives each finished record, in admission order, exactly once.
using RecordSink = std::function<void(const RequestRecord&)>;

class Server {
 public:
  explicit Server(ServerOptions options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until the source is exhausted (then finishes the queue) or
  /// should_stop() turns true (then drains).  Reentrant-per-instance: each
  /// call is one serve run; the shared pool's warm capital carries over.
  ServerReport run(const LineSource& next_line, const RecordSink& sink,
                   const std::function<bool()>& should_stop = {});

  /// Convenience overload over a fixed request list.
  ServerReport run(const std::vector<std::string>& lines,
                   const RecordSink& sink,
                   const std::function<bool()>& should_stop = {});

  const ServerOptions& options() const { return options_; }
  core::SharedPoolManager& shared_pool() { return pool_; }

 private:
  ServerOptions options_;
  core::SharedPoolManager pool_;
};

/// Saves `ckpt` through `log`, retrying transient kIoError up to `retries`
/// times with linear backoff (`backoff_sec`, 2x, 3x, ...).  Non-IO errors
/// do not retry.  Exposed for the drain/restore tests.
[[nodiscard]] common::Status save_with_retry(core::CheckpointLog& log,
                                             const core::CgCheckpoint& ckpt,
                                             int retries, double backoff_sec);

}  // namespace mmwave::fleet
