#include "video/demand.h"

namespace mmwave::video {

std::vector<LinkDemand> make_link_demands(int num_links,
                                          const DemandConfig& config,
                                          common::Rng& rng) {
  std::vector<LinkDemand> demands;
  demands.reserve(num_links);
  for (int l = 0; l < num_links; ++l) {
    common::Rng stream = rng.fork(static_cast<std::uint64_t>(l));
    VideoConfig video = config.video;
    if (config.bitrate_cv > 0.0) {
      video.mean_bitrate_bps = stream.lognormal_mean_cv(
          config.video.mean_bitrate_bps, config.bitrate_cv);
    }
    const VideoTrace trace = VideoTrace::generate(
        video, static_cast<int>(video.gop_pattern.size()), stream);
    const GopDemand gop = per_gop_demands(trace, config.scalable)[0];
    demands.push_back({gop.hp_bits * config.demand_scale,
                       gop.lp_bits * config.demand_scale});
  }
  return demands;
}

double total_demand_bits(const std::vector<LinkDemand>& demands) {
  double sum = 0.0;
  for (const LinkDemand& d : demands) sum += d.total();
  return sum;
}

}  // namespace mmwave::video
