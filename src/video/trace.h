// Synthetic scalable-video traces.
//
// The paper drives its simulation with H.264 traces from the ASU video
// trace library (4096x1744 @ 24 fps, ~171.44 Mbps).  Those traces are not
// redistributable, so this module generates GOP-structured synthetic traces
// calibrated to the same frame rate and mean bitrate: I/P/B frame types in a
// configurable GOP pattern, lognormal frame sizes with per-type mean ratios,
// and deterministic seeding.  The optimizer only consumes per-GOP HP/LP bit
// volumes (see scalable.h), so matching first-order statistics preserves
// the experiment.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

namespace mmwave::video {

enum class FrameType : int { I = 0, P = 1, B = 2 };

const char* to_string(FrameType t);

struct Frame {
  FrameType type = FrameType::I;
  double bits = 0.0;
};

struct VideoConfig {
  double fps = 24.0;
  /// Mean bitrate target; the paper computes 171.44 Mbps for its HD trace.
  double mean_bitrate_bps = 171.44e6;
  /// GOP pattern, e.g. "IBBPBBPBBPBB"; must start with 'I'.
  std::string gop_pattern = "IBBPBBPBBPBB";
  /// Coefficient of variation of frame sizes within a type.
  double size_cv = 0.25;
  /// Mean-size ratios: I:P and P:B.
  double i_to_p_ratio = 4.0;
  double p_to_b_ratio = 2.5;
};

class VideoTrace {
 public:
  /// Generates `num_frames` frames (rounded up to whole GOPs).
  static VideoTrace generate(const VideoConfig& config, int num_frames,
                             common::Rng& rng);

  const std::vector<Frame>& frames() const { return frames_; }
  const VideoConfig& config() const { return config_; }
  int gop_length() const {
    return static_cast<int>(config_.gop_pattern.size());
  }
  int num_gops() const {
    return static_cast<int>(frames_.size()) / gop_length();
  }

  double total_bits() const;
  double duration_seconds() const {
    return static_cast<double>(frames_.size()) / config_.fps;
  }
  double mean_bitrate_bps() const {
    return total_bits() / duration_seconds();
  }
  /// Seconds spanned by one GOP.
  double gop_seconds() const {
    return static_cast<double>(gop_length()) / config_.fps;
  }

  /// Sum of frame bits in GOP `g`.
  double gop_bits(int g) const;

 private:
  VideoConfig config_;
  std::vector<Frame> frames_;
};

/// Mean frame sizes (bits) per type that hit the configured mean bitrate
/// exactly for the configured GOP pattern.  Exposed for tests.
struct TypeMeans {
  double i_bits = 0.0;
  double p_bits = 0.0;
  double b_bits = 0.0;
};
TypeMeans calibrate_type_means(const VideoConfig& config);

}  // namespace mmwave::video
