#include "video/trace.h"

#include <cassert>
#include <cmath>

namespace mmwave::video {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::I: return "I";
    case FrameType::P: return "P";
    case FrameType::B: return "B";
  }
  return "?";
}

TypeMeans calibrate_type_means(const VideoConfig& config) {
  assert(!config.gop_pattern.empty() && config.gop_pattern[0] == 'I');
  int n_i = 0, n_p = 0, n_b = 0;
  for (char c : config.gop_pattern) {
    switch (c) {
      case 'I': ++n_i; break;
      case 'P': ++n_p; break;
      case 'B': ++n_b; break;
      default: assert(false && "GOP pattern may contain only I/P/B");
    }
  }
  const double gop_len = static_cast<double>(config.gop_pattern.size());
  const double mean_frame_bits = config.mean_bitrate_bps / config.fps;
  // With B-mean = s:  P = r_pb s,  I = r_ip r_pb s.
  const double r_pb = config.p_to_b_ratio;
  const double r_ip = config.i_to_p_ratio;
  const double weight = n_i * r_ip * r_pb + n_p * r_pb + n_b;
  const double s = gop_len * mean_frame_bits / weight;
  return {r_ip * r_pb * s, r_pb * s, s};
}

VideoTrace VideoTrace::generate(const VideoConfig& config, int num_frames,
                                common::Rng& rng) {
  VideoTrace trace;
  trace.config_ = config;
  const int gop_len = static_cast<int>(config.gop_pattern.size());
  assert(gop_len > 0);
  const int gops = (num_frames + gop_len - 1) / gop_len;
  const TypeMeans means = calibrate_type_means(config);

  trace.frames_.reserve(static_cast<std::size_t>(gops) * gop_len);
  for (int g = 0; g < gops; ++g) {
    for (char c : config.gop_pattern) {
      Frame f;
      double mean;
      switch (c) {
        case 'I':
          f.type = FrameType::I;
          mean = means.i_bits;
          break;
        case 'P':
          f.type = FrameType::P;
          mean = means.p_bits;
          break;
        default:
          f.type = FrameType::B;
          mean = means.b_bits;
          break;
      }
      f.bits = config.size_cv > 0.0
                   ? rng.lognormal_mean_cv(mean, config.size_cv)
                   : mean;
      trace.frames_.push_back(f);
    }
  }
  return trace;
}

double VideoTrace::total_bits() const {
  double sum = 0.0;
  for (const Frame& f : frames_) sum += f.bits;
  return sum;
}

double VideoTrace::gop_bits(int g) const {
  const int len = gop_length();
  double sum = 0.0;
  for (int i = g * len; i < (g + 1) * len; ++i) sum += frames_[i].bits;
  return sum;
}

}  // namespace mmwave::video
