// Medium-Grain Scalable (MGS) HP/LP layering and the PSNR quality model.
//
// Following the paper (Section III) and its reference [17], each video
// session is split into High-Priority data (base layer: parameter sets,
// motion vectors, low-frequency coefficients) and Low-Priority enhancement
// data.  HP fractions are per frame type: I frames are mostly
// base-layer-critical, B frames mostly enhancement.
//
// Reconstructed quality follows eq. (1):  PSNR = alpha + beta * r_sum,
// with (alpha, beta) codec/sequence constants.
#pragma once

#include <vector>

#include "video/trace.h"

namespace mmwave::video {

struct ScalableConfig {
  /// Fraction of each frame type's bits that is High-Priority.
  double hp_fraction_i = 0.60;
  double hp_fraction_p = 0.45;
  double hp_fraction_b = 0.30;
};

/// HP/LP bit volumes of one GOP period — the per-link traffic demand
/// (d_l(hp), d_l(lp)) of the optimization.
struct GopDemand {
  double hp_bits = 0.0;
  double lp_bits = 0.0;

  double total() const { return hp_bits + lp_bits; }
};

/// Splits every GOP of the trace into HP/LP volumes.
std::vector<GopDemand> per_gop_demands(const VideoTrace& trace,
                                       const ScalableConfig& config = {});

/// HP fraction applicable to one frame type.
double hp_fraction(const ScalableConfig& config, FrameType type);

/// Eq. (1): PSNR(dB) of MGS video reconstructed at total received rate
/// r_sum (bits/s).  beta is per Mbps to keep the constants readable.
struct PsnrModel {
  double alpha_db = 30.0;
  double beta_db_per_mbps = 0.08;

  double psnr(double r_sum_bps) const {
    return alpha_db + beta_db_per_mbps * (r_sum_bps / 1e6);
  }
};

}  // namespace mmwave::video
