#include "video/scalable.h"

namespace mmwave::video {

double hp_fraction(const ScalableConfig& config, FrameType type) {
  switch (type) {
    case FrameType::I: return config.hp_fraction_i;
    case FrameType::P: return config.hp_fraction_p;
    case FrameType::B: return config.hp_fraction_b;
  }
  return 0.0;
}

std::vector<GopDemand> per_gop_demands(const VideoTrace& trace,
                                       const ScalableConfig& config) {
  std::vector<GopDemand> demands(trace.num_gops());
  const int len = trace.gop_length();
  for (int g = 0; g < trace.num_gops(); ++g) {
    GopDemand& d = demands[g];
    for (int i = g * len; i < (g + 1) * len; ++i) {
      const Frame& f = trace.frames()[i];
      const double hp = hp_fraction(config, f.type) * f.bits;
      d.hp_bits += hp;
      d.lp_bits += f.bits - hp;
    }
  }
  return demands;
}

}  // namespace mmwave::video
