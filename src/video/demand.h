// Per-link traffic demands for one scheduling period.
//
// Each link carries one video session; its demand is the HP/LP bit volume
// of the next GOP period (Section III: "the data volume of its video
// session that needs to be transmitted in the next period of time (e.g.,
// the next Group of Pictures (GOP) period)").
#pragma once

#include <vector>

#include "common/rng.h"
#include "video/scalable.h"
#include "video/trace.h"

namespace mmwave::video {

struct LinkDemand {
  double hp_bits = 0.0;
  double lp_bits = 0.0;

  double total() const { return hp_bits + lp_bits; }
};

struct DemandConfig {
  VideoConfig video;
  ScalableConfig scalable;
  /// Uniform scaling applied to every link's demand (the Fig. 2 sweep).
  double demand_scale = 1.0;
  /// Coefficient of variation of the per-link mean bitrate around
  /// video.mean_bitrate_bps (lognormal).  0 = every session is the same
  /// source, the paper's setup; >0 models a mixed-session piconet.
  double bitrate_cv = 0.0;
};

/// Draws an independent single-GOP demand for each of `num_links` links.
/// Each link gets its own trace sub-stream of `rng`, so demands for link i
/// are identical across runs that share a master seed regardless of how many
/// links follow it.
std::vector<LinkDemand> make_link_demands(int num_links,
                                          const DemandConfig& config,
                                          common::Rng& rng);

/// Total demand volume (bits) across links.
double total_demand_bits(const std::vector<LinkDemand>& demands);

}  // namespace mmwave::video
