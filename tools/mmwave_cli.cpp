// mmwave_cli — command-line front end to the library.
//
//   mmwave_cli solve   [instance flags] [--csv=plan.csv] [--profile]
//                      [--warm-start=0|1] [--checkpoint=FILE] [--resume]
//       Solve one instance with column generation; print the solution and
//       optionally dump the (schedule, tau) plan as CSV.  --profile prints
//       the per-phase wall-clock breakdown (master solves, pivots,
//       warm-start hit rate, greedy/MILP pricing); --warm-start=0 forces
//       cold two-phase master solves for A/B comparison.  --checkpoint
//       saves the solver state (column pool, duals, bounds) after the
//       solve; --resume additionally warm-starts from that file first,
//       requiring its fingerprint to match the instance (a mismatched or
//       corrupt checkpoint degrades to a cold start, never an error).
//   mmwave_cli compare [instance flags]
//       Run CG, Benchmark 1, Benchmark 2 and TDMA on the same instance and
//       print the metric table.
//   mmwave_cli stream  [instance flags] [--gops=N] [--p-block=p]
//                      [--demand-policy=blind|drain-risk] [--buffer-*=s]
//       Multi-GOP streaming session (optionally under Markov blockage),
//       with per-link client playout buffers and an optional drain-risk
//       demand-shaping policy (QoE: stall seconds, layer-delivery ratio).
//   mmwave_cli resolve --checkpoint=FILE [instance flags]
//                      [--block-links=0,3] [--block-atten=a] [--update]
//       Warm re-solve from a saved checkpoint against the (optionally
//       perturbed) instance: blocked links attenuate all paths into their
//       receivers by --block-atten, the pooled columns are repaired against
//       the perturbed gains, and CG runs warm from the survivors.  An
//       unusable checkpoint falls back to a cold solve.  --update rewrites
//       the checkpoint with the new state afterwards.
//   mmwave_cli check   [instance flags]
//       Solve with the certificate checkers enabled (CgOptions::verify) and
//       independently re-verify the emitted plan; exit non-zero on any
//       failed certificate.  This is the verifier leg of the pre-merge gate
//       (tools/run_analysis.sh).
//   mmwave_cli serve   [--requests=FILE|FIFO|-] [--out=FILE] [--workers=N]
//                      [--max-queue=N] [--watchdog-multiple=x]
//                      [--state=PATH] [--share-pool=0|1] [--io-retries=N]
//       Fleet daemon (fleet::Server): newline-delimited JSON requests in,
//       one record line per request out, admission order.  SIGTERM/SIGINT
//       drains gracefully: in-flight requests finish, the queue is
//       checkpointed under --state, and a restarted serve with the same
//       --state resumes without losing or repeating a request.
//
// Instance flags (shared): --links --channels --levels --gamma-scale
//   --seed --demand-scale --pricing=MODE[,RULE] where MODE is the CG
//   pricing mode (heuristic|hybrid|exact) and RULE the master-LP simplex
//   pricing rule (dantzig|steepest)
//   --instance=FILE (key=value spec, flags override) --deadline=SECONDS
//
// Exit status (DESIGN.md section 7):
//   0  success (solve/compare/stream completed; check passed)
//   1  verification failure (check) or unknown command
//   2  invalid input: malformed flag value, unreadable/invalid --instance
//      spec, or an instance rejected by check::validate_instance
//   3  degraded solve: the anytime contract returned an incumbent (deadline,
//      stall, solver breakdown) instead of a certified answer
#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "baselines/baselines.h"
#include "check/instance_validator.h"
#include "check/schedule_verifier.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/checkpoint.h"
#include "core/checkpoint_log.h"
#include "core/pool_manager.h"
#include "core/column_generation.h"
#include "core/resolve.h"
#include "fleet/server.h"
#include "mmwave/blockage.h"
#include "sched/quantize.h"
#include "sched/timeline.h"
#include "stream/blockage_session.h"
#include "video/demand.h"

namespace {

using namespace mmwave;

constexpr int kExitOk = 0;
constexpr int kExitCheckFailed = 1;
constexpr int kExitInvalidInput = 2;
constexpr int kExitDegraded = 3;

struct InstanceFlags {
  int links = 10;
  int channels = 5;
  int levels = 5;
  double gamma_scale = 1.0;
  std::uint64_t seed = 1;
  double demand_scale = 1e-3;
  double deadline_sec = 0.0;
  core::PricingMode pricing = core::PricingMode::HeuristicThenExact;
  lp::PricingRule lp_pricing = lp::PricingRule::kDantzig;
};

/// Strict instance-flag parsing: a malformed value ("--links=abc",
/// "--channels=-3", an unreadable --instance file) is a structured error
/// the caller prints once and exits kExitInvalidInput on — never a silent
/// zero that solves the wrong instance.
[[nodiscard]] common::Expected<InstanceFlags> parse_instance(
    const common::CliFlags& flags) {
  InstanceFlags f;
  if (flags.has("instance")) {
    const std::string path = flags.get_string("instance", "");
    std::ifstream in(path);
    if (!in) {
      return common::Status::Error(
          common::ErrorCode::kInvalidInput,
          "--instance: cannot open '" + path + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto spec = check::parse_instance_spec(buf.str());
    if (!spec.ok()) return spec.status();
    f.links = spec.value().links;
    f.channels = spec.value().channels;
    f.levels = spec.value().levels;
    f.gamma_scale = spec.value().gamma_scale;
    f.seed = spec.value().seed;
    f.demand_scale = spec.value().demand_scale;
  }

  const auto links = flags.get_int_checked("links", f.links, 1, 4096);
  if (!links.ok()) return links.status();
  f.links = static_cast<int>(links.value());
  const auto channels = flags.get_int_checked("channels", f.channels, 1, 1024);
  if (!channels.ok()) return channels.status();
  f.channels = static_cast<int>(channels.value());
  const auto levels = flags.get_int_checked("levels", f.levels, 1, 64);
  if (!levels.ok()) return levels.status();
  f.levels = static_cast<int>(levels.value());
  const auto gamma = flags.get_double_checked("gamma-scale", f.gamma_scale,
                                              1e-9, 1e9);
  if (!gamma.ok()) return gamma.status();
  f.gamma_scale = gamma.value();
  const auto seed = flags.get_int_checked(
      "seed", static_cast<std::int64_t>(f.seed), 0);
  if (!seed.ok()) return seed.status();
  f.seed = static_cast<std::uint64_t>(seed.value());
  const auto dscale = flags.get_double_checked("demand-scale", f.demand_scale,
                                               1e-18, 1e18);
  if (!dscale.ok()) return dscale.status();
  f.demand_scale = dscale.value();
  const auto deadline =
      flags.get_double_checked("deadline", f.deadline_sec, 0.0, 1e9);
  if (!deadline.ok()) return deadline.status();
  f.deadline_sec = deadline.value();

  // --pricing takes a comma-separated token list mixing the CG pricing mode
  // (heuristic|hybrid|exact) with the master-LP simplex pricing rule
  // (dantzig|steepest), e.g. --pricing=hybrid,steepest.  Either kind may
  // appear alone; unknown tokens are a structured error.
  std::string pricing = flags.get_string("pricing", "hybrid");
  while (!pricing.empty()) {
    const std::size_t comma = pricing.find(',');
    const std::string token = pricing.substr(0, comma);
    pricing = comma == std::string::npos ? "" : pricing.substr(comma + 1);
    if (token == "heuristic") {
      f.pricing = core::PricingMode::HeuristicOnly;
    } else if (token == "exact") {
      f.pricing = core::PricingMode::ExactAlways;
    } else if (token == "hybrid") {
      f.pricing = core::PricingMode::HeuristicThenExact;
    } else {
      const auto rule = lp::parse_pricing_rule(token);
      if (!rule.ok()) {
        return common::Status::Error(
            common::ErrorCode::kInvalidInput,
            "--pricing: expected heuristic|hybrid|exact and/or "
            "dantzig|steepest, got '" + token + "'");
      }
      f.lp_pricing = rule.value();
    }
  }
  return f;
}

/// Prints the anytime-contract outcome; returns the process exit status.
int report_solve_health(const core::CgResult& result) {
  if (result.stop_reason == core::CgStopReason::kInvalidInput) {
    std::fprintf(stderr, "error: %s\n", result.status.message().c_str());
    return kExitInvalidInput;
  }
  if (result.degraded) {
    std::printf("DEGRADED (%s): %s\n", core::to_string(result.stop_reason),
                result.status.message().c_str());
    return kExitDegraded;
  }
  return kExitOk;
}

net::NetworkParams params_of(const InstanceFlags& f) {
  net::NetworkParams params;
  params.num_links = f.links;
  params.num_channels = f.channels;
  params.sinr_thresholds.resize(f.levels);
  for (int q = 0; q < f.levels; ++q)
    params.sinr_thresholds[q] = 0.1 * (q + 1) * f.gamma_scale;
  return params;
}

struct Instance {
  net::Network net;
  std::vector<video::LinkDemand> demands;
};

Instance build_instance(const InstanceFlags& f) {
  common::Rng rng(f.seed);
  net::Network net = net::Network::table_i(params_of(f), rng);
  video::DemandConfig dcfg;
  dcfg.demand_scale = f.demand_scale;
  common::Rng drng = rng.fork(0x5EED);
  auto demands = video::make_link_demands(f.links, dcfg, drng);
  return {std::move(net), std::move(demands)};
}

/// --pool-cap / --pool-policy: the column-pool lifecycle knobs (core::
/// PoolManager).  Cap 0 = unbounded (the pre-lifecycle behaviour).
[[nodiscard]] common::Expected<core::PoolManagerOptions> parse_pool_flags(
    const common::CliFlags& flags) {
  core::PoolManagerOptions opts;
  const auto cap = flags.get_int_checked("pool-cap", 0, 0, 1 << 20);
  if (!cap.ok()) return cap.status();
  opts.cap = static_cast<int>(cap.value());
  const auto policy = core::parse_pool_policy(
      flags.get_string("pool-policy", core::to_string(opts.policy)));
  if (!policy.ok()) {
    return common::Status::Error(
        common::ErrorCode::kInvalidInput,
        "--pool-policy: " + policy.status().message());
  }
  opts.policy = policy.value();
  return opts;
}

/// --repair: how SINR-violated pooled transmissions are fixed (drop them,
/// or first step down the rate ladder — core::RepairPolicy).
[[nodiscard]] common::Expected<core::RepairPolicy> parse_repair_flag(
    const common::CliFlags& flags) {
  const std::string repair = flags.get_string("repair", "drop");
  if (repair == "drop") return core::RepairPolicy::kDropTransmissions;
  if (repair == "downgrade") return core::RepairPolicy::kDowngradeRate;
  return common::Status::Error(
      common::ErrorCode::kInvalidInput,
      "--repair: expected drop|downgrade, got '" + repair + "'");
}

/// Prints the outcome of a checkpoint-assisted solve's repair pass.
void report_checkpoint_use(const core::ResolveResult& r) {
  if (r.used_checkpoint) {
    std::printf("checkpoint: pool %d loaded | %d intact | %d repaired "
                "(%d transmissions dropped, %d downgraded) | %d dropped | "
                "hit rate %.0f%%\n",
                r.repair.loaded, r.repair.intact, r.repair.repaired,
                r.repair.transmissions_dropped,
                r.repair.transmissions_downgraded, r.repair.dropped,
                100.0 * r.repair.hit_rate());
    if (!r.fingerprint_matched)
      std::printf("checkpoint: fingerprint differs (perturbed instance)\n");
  } else {
    std::printf("checkpoint: unusable, cold start (%s)\n",
                r.checkpoint_status.message().c_str());
  }
}

/// Saves the post-solve state to `path`; false (with a message) on failure.
/// When `manager` is non-null its eviction policy trims the saved pool to
/// its cap first (a no-op at cap 0).
bool write_checkpoint(const net::Network& net,
                      const std::vector<video::LinkDemand>& demands,
                      const core::CgResult& result, const std::string& path,
                      const core::PoolManager* manager = nullptr) {
  core::CgCheckpoint ckpt = core::make_checkpoint(net, demands, result);
  if (manager != nullptr) manager->trim_checkpoint(&ckpt);
  const common::Status st = core::save_checkpoint(ckpt, path);
  if (!st.ok()) {
    std::fprintf(stderr, "error: checkpoint save: %s\n",
                 st.message().c_str());
    return false;
  }
  std::printf("checkpoint written to %s (%zu columns)\n", path.c_str(),
              ckpt.pool.size());
  return true;
}

int cmd_solve(const common::CliFlags& flags) {
  const auto parsed = parse_instance(flags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().message().c_str());
    return kExitInvalidInput;
  }
  const InstanceFlags f = parsed.value();
  const std::string ckpt_path = flags.get_string("checkpoint", "");
  const bool resume = flags.has("resume");
  if (resume && ckpt_path.empty()) {
    std::fprintf(stderr, "error: --resume requires --checkpoint=FILE\n");
    return kExitInvalidInput;
  }
  const auto pool_flags = parse_pool_flags(flags);
  if (!pool_flags.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 pool_flags.status().message().c_str());
    return kExitInvalidInput;
  }
  const core::PoolManager pool_manager(pool_flags.value());
  Instance inst = build_instance(f);
  core::CgOptions opts;
  opts.pricing = f.pricing;
  opts.lp_pricing = f.lp_pricing;
  opts.deadline_sec = f.deadline_sec;
  opts.warm_start_master = flags.get_int("warm-start", 1) != 0;
  core::CgResult result;
  if (resume) {
    // --resume asserts the instance is the one checkpointed, so the
    // fingerprint must match; anything else degrades to a cold start.
    core::ResolveOptions ropts;
    ropts.require_fingerprint_match = true;
    const core::ResolveResult r = core::resolve_from_file(
        ckpt_path, inst.net, inst.demands, opts, ropts);
    report_checkpoint_use(r);
    result = r.cg;
  } else {
    result = core::solve_column_generation(inst.net, inst.demands, opts);
  }
  const int health = report_solve_health(result);
  if (health == kExitInvalidInput) return health;
  if (!ckpt_path.empty() &&
      !write_checkpoint(inst.net, inst.demands, result, ckpt_path,
                        &pool_manager)) {
    return kExitInvalidInput;
  }

  std::printf("instance: L=%d K=%d Q=%d gamma x%.1f seed=%llu\n", f.links,
              f.channels, f.levels, f.gamma_scale,
              static_cast<unsigned long long>(f.seed));
  std::printf("status:   %s after %d iterations, %zu schedules in plan "
              "(%.3f s, stop: %s)\n",
              result.converged ? "optimal (certified)" : "feasible",
              result.iterations, result.timeline.size(),
              result.solve_seconds, core::to_string(result.stop_reason));
  std::printf("slots:    %.2f", result.total_slots);
  if (!std::isnan(result.lower_bound))
    std::printf("   (Theorem-1 LB %.2f, gap %.2e)", result.lower_bound,
                result.gap());
  std::printf("\n");
  for (int l : result.unserved_links)
    std::printf("WARNING: link %d unservable (no reachable rate level)\n", l);

  const auto quant =
      sched::quantize_timeline(inst.net, result.timeline, inst.demands);
  std::printf("whole-slot plan: %.0f slots (quantization overhead %.3f%%)\n",
              quant.quantized_slots, 100.0 * quant.overhead());

  if (flags.has("profile")) {
    const core::CgProfile& p = result.profile;
    std::printf("profile:\n");
    std::printf("  master_solve    %8.3f ms  (%d solves, %lld pivots, "
                "%.1f pivots/solve)\n",
                1e3 * p.master_seconds, p.master_solves,
                static_cast<long long>(p.master_pivots),
                p.pivots_per_solve());
    std::printf("  warm starts     %d/%d master solves resumed "
                "(hit rate %.0f%%)\n",
                p.master_warm_hits, p.master_solves,
                100.0 * p.warm_hit_rate());
    std::printf("  lp engine       pricing=%s  %lld ftran, %lld btran, "
                "%d refactorizations\n",
                p.lp_pricing_rule, static_cast<long long>(p.lp_ftran_calls),
                static_cast<long long>(p.lp_btran_calls),
                p.lp_refactorizations);
    std::printf("  pricing_greedy  %8.3f ms  (%d calls)\n",
                1e3 * p.greedy_seconds, p.greedy_calls);
    std::printf("  pricing_milp    %8.3f ms  (%d calls)\n",
                1e3 * p.milp_seconds, p.milp_calls);
  }

  if (flags.has("csv")) {
    common::Table table(
        {"schedule", "slots", "link", "layer", "rate_level", "channel",
         "power_watts"});
    int idx = 0;
    for (const auto& ts : result.timeline) {
      for (const auto& tx : ts.schedule.transmissions()) {
        table.new_row()
            .add(idx)
            .add(ts.slots, 3)
            .add(tx.link)
            .add(net::to_string(tx.layer))
            .add(tx.rate_level)
            .add(tx.channel)
            .add(tx.power_watts, 5);
      }
      ++idx;
    }
    const std::string path = flags.get_string("csv", "plan.csv");
    table.write_csv(path);
    std::printf("plan written to %s\n", path.c_str());
  }
  return health;
}

int cmd_compare(const common::CliFlags& flags) {
  const auto parsed = parse_instance(flags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().message().c_str());
    return kExitInvalidInput;
  }
  const InstanceFlags f = parsed.value();
  Instance inst = build_instance(f);

  common::Table table({"algorithm", "total slots", "avg delay", "fairness",
                       "served"});
  auto row = [&](const char* name,
                 const std::vector<sched::TimedSchedule>& timeline,
                 bool served, sched::ExecutionOrder order) {
    const auto exec =
        sched::execute_timeline(inst.net, timeline, inst.demands, order);
    table.new_row()
        .add(name)
        .add(exec.total_slots, 1)
        .add(exec.average_delay(), 1)
        .add(exec.delay_fairness(), 4)
        .add(served && exec.all_demands_met ? "yes" : "NO");
  };

  core::CgOptions opts;
  opts.pricing = f.pricing;
  opts.lp_pricing = f.lp_pricing;
  opts.deadline_sec = f.deadline_sec;
  const auto cg = core::solve_column_generation(inst.net, inst.demands, opts);
  const int health = report_solve_health(cg);
  if (health == kExitInvalidInput) return health;
  row("column generation", cg.timeline, true,
      sched::ExecutionOrder::CompletionAware);
  const auto b1 = baselines::benchmark1(inst.net, inst.demands);
  row("benchmark 1", b1.timeline, b1.served_all,
      sched::ExecutionOrder::AsGiven);
  const auto b2 = baselines::benchmark2(inst.net, inst.demands);
  row("benchmark 2", b2.timeline, b2.served_all,
      sched::ExecutionOrder::AsGiven);
  const auto td = baselines::tdma(inst.net, inst.demands);
  row("TDMA", td.timeline, td.served_all, sched::ExecutionOrder::AsGiven);
  table.print(std::cout);
  return health;
}

int cmd_stream(const common::CliFlags& flags) {
  const auto parsed = parse_instance(flags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().message().c_str());
    return kExitInvalidInput;
  }
  const InstanceFlags f = parsed.value();
  const auto gops_flag = flags.get_int_checked("gops", 8, 1, 1'000'000);
  const auto p_block_flag =
      flags.get_double_checked("p-block", 0.0, 0.0, 1.0);
  if (!gops_flag.ok() || !p_block_flag.ok()) {
    const common::Status& bad =
        gops_flag.ok() ? p_block_flag.status() : gops_flag.status();
    std::fprintf(stderr, "error: %s\n", bad.message().c_str());
    return kExitInvalidInput;
  }
  const int gops = static_cast<int>(gops_flag.value());
  const double p_block = p_block_flag.value();
  // Client-buffer model + demand-shaping policy (PR: QoE-centric sessions).
  const auto buf_startup =
      flags.get_double_checked("buffer-startup", 0.5, 0.0, 3600.0);
  const auto buf_rebuffer =
      flags.get_double_checked("buffer-rebuffer", 0.5, 0.0, 3600.0);
  const auto buf_target =
      flags.get_double_checked("buffer-target", 2.0, 0.0, 3600.0);
  const auto buf_boost =
      flags.get_double_checked("buffer-boost", 1.0, 0.0, 100.0);
  const auto buf_yield =
      flags.get_double_checked("buffer-yield", 0.5, 0.0, 0.99);
  for (const auto* checked :
       {&buf_startup, &buf_rebuffer, &buf_target, &buf_boost, &buf_yield}) {
    if (!checked->ok()) {
      std::fprintf(stderr, "error: %s\n",
                   checked->status().message().c_str());
      return kExitInvalidInput;
    }
  }
  const std::string policy_name =
      flags.get_string("demand-policy", "blind");
  const std::string ckpt_path = flags.get_string("checkpoint", "");
  const bool resume = flags.has("resume");
  const bool metrics_json = flags.has("metrics-json");
  if (resume && ckpt_path.empty()) {
    std::fprintf(stderr, "error: --resume requires --checkpoint=FILE\n");
    return kExitInvalidInput;
  }
  const auto pool_flags = parse_pool_flags(flags);
  const auto repair = parse_repair_flag(flags);
  if (!pool_flags.ok() || !repair.ok()) {
    const common::Status& bad =
        pool_flags.ok() ? repair.status() : pool_flags.status();
    std::fprintf(stderr, "error: %s\n", bad.message().c_str());
    return kExitInvalidInput;
  }

  common::Rng rng(f.seed);
  net::NetworkParams params = params_of(f);
  net::TableIChannelModel base(f.links, f.channels, params.noise_watts, rng);

  stream::BlockageSessionConfig cfg;
  cfg.session.num_gops = gops;
  cfg.session.demand_scale = f.demand_scale;
  cfg.blockage.p_block = p_block;
  cfg.blockage.attenuation = 0.05;
  cfg.buffer.startup_seconds = buf_startup.value();
  cfg.buffer.rebuffer_seconds = buf_rebuffer.value();
  cfg.buffer.target_seconds = buf_target.value();
  cfg.buffer.boost_gain = buf_boost.value();
  cfg.buffer.yield_fraction = buf_yield.value();
  const std::unique_ptr<stream::DemandPolicy> policy =
      stream::make_demand_policy(policy_name, cfg.buffer);
  if (policy == nullptr) {
    std::fprintf(stderr,
                 "error: --demand-policy: unknown policy '%s' "
                 "(expected blind|drain-risk)\n",
                 policy_name.c_str());
    return kExitInvalidInput;
  }
  cfg.demand_policy = policy.get();
  cfg.session_fingerprint =
      stream::blockage_session_fingerprint(cfg, f.links, f.seed);

  stream::SolverContext context(pool_flags.value());
  stream::CgSchedulerOptions sched_opts;
  sched_opts.heuristic_only = f.pricing == core::PricingMode::HeuristicOnly;
  sched_opts.repair = repair.value();
  sched_opts.capture_checkpoint = !ckpt_path.empty();

  // --checkpoint persists the session through a delta log (base + deltas,
  // compacted periodically); --resume replays the stream cursor saved there
  // and continues mid-session.  Any unusable state degrades down the ladder
  // — delta chain, last good base, cold start — never into an error.
  stream::BlockageRunControl control;
  core::StreamCursor resume_cursor;
  std::unique_ptr<core::CheckpointLog> log;
  if (!ckpt_path.empty()) {
    log = std::make_unique<core::CheckpointLog>(ckpt_path);
    const core::CheckpointLogLoad loaded = log->open();
    if (loaded.loaded) {
      // The saved pool is warm capital with or without a cursor.
      context.manager.import_checkpoint(loaded.state);
      if (resume && loaded.state.has_session) {
        resume_cursor = loaded.state.session;
        control.resume = &resume_cursor;
        std::printf("resume: cursor at gop %d/%d (%d deltas applied%s)\n",
                    resume_cursor.next_gop, resume_cursor.num_gops,
                    loaded.deltas_applied,
                    loaded.tail_dropped ? ", torn tail dropped" : "");
      } else if (resume) {
        std::printf("resume: checkpoint has no usable session cursor; "
                    "starting fresh (pool kept)\n");
      }
    } else if (resume) {
      std::printf("resume: no usable checkpoint at %s; cold start\n",
                  ckpt_path.c_str());
    }
  }
  if (log != nullptr || metrics_json) {
    control.on_period = [&](const core::StreamCursor& cur, int gop) {
      if (metrics_json && !cur.gops.empty()) {
        std::printf("%s\n", stream::period_json_line(cur).c_str());
      }
      if (log != nullptr && context.has_last_checkpoint) {
        core::CgCheckpoint ckpt =
            context.manager.export_checkpoint(context.last_checkpoint);
        ckpt.has_session = true;
        ckpt.session = cur;
        const common::Status st = log->save(ckpt);
        if (!st.ok()) {
          std::fprintf(stderr,
                       "warning: checkpoint save failed at gop %d: %s\n",
                       gop, st.message().c_str());
        }
      }
      return true;
    };
  }

  common::Rng session_rng = rng.fork(1);
  const auto metrics = stream::run_blockage_session(
      base, params, cfg, stream::make_cg_scheduler(sched_opts, &context),
      session_rng, &context, &control);

  if (metrics_json) std::printf("%s\n", metrics.to_json_line().c_str());
  if (metrics.resume_rejected)
    std::printf("resume: cursor rejected (stale or wrong session); "
                "ran fresh\n");
  std::printf("streaming %d GOPs (p_block=%.2f, policy=%s%s):\n", gops,
              p_block, policy->name(),
              metrics.start_gop > 0 ? ", resumed" : "");
  std::printf("  on-time GOPs:   %.1f%%\n", 100.0 * metrics.base.on_time_ratio);
  std::printf("  total stall:    %.1f slots\n",
              metrics.base.total_stall_slots);
  std::printf("  mean PSNR:      %.2f dB\n", metrics.base.mean_psnr_db);
  std::printf("  blocked frac:   %.3f\n", metrics.mean_blocked_fraction);
  std::printf("  all served:     %s\n",
              metrics.base.all_served ? "yes" : "NO");
  std::printf("  playback stall: %.2f s (%d rebuffer events)\n",
              metrics.stall_seconds, metrics.rebuffer_events);
  std::printf("  layer delivery: %.1f%% (%d/%d layer-GOPs)\n",
              100.0 * metrics.layer_delivery_ratio,
              metrics.layer_gops_delivered, metrics.layer_gops_offered);
  if (log != nullptr) {
    const core::CheckpointLogStats& s = log->stats();
    std::printf("  checkpoints:    %lld saves (%lld delta, %lld full), "
                "%lld delta bytes, %lld full bytes\n",
                static_cast<long long>(s.saves),
                static_cast<long long>(s.delta_saves),
                static_cast<long long>(s.full_saves),
                static_cast<long long>(s.delta_bytes),
                static_cast<long long>(s.full_bytes));
  }
  return 0;
}

int cmd_resolve(const common::CliFlags& flags) {
  const auto parsed = parse_instance(flags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().message().c_str());
    return kExitInvalidInput;
  }
  const InstanceFlags f = parsed.value();
  const std::string ckpt_path = flags.get_string("checkpoint", "");
  if (ckpt_path.empty()) {
    std::fprintf(stderr, "error: resolve requires --checkpoint=FILE\n");
    return kExitInvalidInput;
  }
  const auto atten =
      flags.get_double_checked("block-atten", 0.05, 0.0, 1.0);
  if (!atten.ok()) {
    std::fprintf(stderr, "error: %s\n", atten.status().message().c_str());
    return kExitInvalidInput;
  }
  const auto pool_flags = parse_pool_flags(flags);
  const auto repair = parse_repair_flag(flags);
  if (!pool_flags.ok() || !repair.ok()) {
    const common::Status& bad =
        pool_flags.ok() ? repair.status() : pool_flags.status();
    std::fprintf(stderr, "error: %s\n", bad.message().c_str());
    return kExitInvalidInput;
  }
  core::PoolManager pool_manager(pool_flags.value());
  const std::vector<std::int64_t> blocked =
      flags.get_int_list("block-links", {});
  for (std::int64_t l : blocked) {
    if (l < 0 || l >= f.links) {
      std::fprintf(stderr,
                   "error: --block-links: link %lld outside [0, %d)\n",
                   static_cast<long long>(l), f.links);
      return kExitInvalidInput;
    }
  }

  // Same rng stream as build_instance, so an unperturbed resolve
  // fingerprints identically to `solve` on the same flags; the blockage is
  // layered on top as a receiver-side attenuation.
  common::Rng rng(f.seed);
  net::NetworkParams params = params_of(f);
  net::TableIChannelModel base(f.links, f.channels, params.noise_watts, rng);
  video::DemandConfig dcfg;
  dcfg.demand_scale = f.demand_scale;
  common::Rng drng = rng.fork(0x5EED);
  const auto demands = video::make_link_demands(f.links, dcfg, drng);
  std::vector<double> scales(f.links, 1.0);
  for (std::int64_t l : blocked) scales[l] = atten.value();
  net::Network net(params, std::make_unique<net::RxScaledChannelModel>(
                               &base, std::move(scales)));

  core::CgOptions opts;
  opts.pricing = f.pricing;
  opts.lp_pricing = f.lp_pricing;
  opts.deadline_sec = f.deadline_sec;
  core::ResolveOptions ropts;
  ropts.repair = repair.value();
  core::ResolveResult r;
  const auto loaded = core::load_checkpoint(ckpt_path);
  if (loaded.ok() && pool_manager.options().cap > 0) {
    // Route the saved pool through the lifecycle manager so resolve seeds
    // from at most --pool-cap columns (eviction under --pool-policy).
    const std::size_t saved = loaded.value().pool.size();
    pool_manager.import_checkpoint(loaded.value());
    const core::CgCheckpoint capped =
        pool_manager.export_checkpoint(loaded.value());
    std::printf("pool: cap %d (%s): %zu of %zu saved columns retained\n",
                pool_manager.options().cap,
                core::to_string(pool_manager.options().policy),
                capped.pool.size(), saved);
    r = core::resolve(net, demands, capped, opts, ropts);
  } else {
    // Unbounded pool, or an unusable file: resolve_from_file keeps the
    // established degrade-to-cold behaviour (and its diagnostics).
    r = core::resolve_from_file(ckpt_path, net, demands, opts, ropts);
  }
  report_checkpoint_use(r);
  const int health = report_solve_health(r.cg);
  if (health == kExitInvalidInput) return health;

  std::printf("instance: L=%d K=%d Q=%d gamma x%.1f seed=%llu "
              "(%zu blocked links, atten %.3g)\n",
              f.links, f.channels, f.levels, f.gamma_scale,
              static_cast<unsigned long long>(f.seed), blocked.size(),
              atten.value());
  std::printf("status:   %s after %d iterations, %zu schedules in plan "
              "(%.3f s, stop: %s)\n",
              r.cg.converged ? "optimal (certified)" : "feasible",
              r.cg.iterations, r.cg.timeline.size(), r.cg.solve_seconds,
              core::to_string(r.cg.stop_reason));
  std::printf("slots:    %.2f", r.cg.total_slots);
  if (!std::isnan(r.cg.lower_bound))
    std::printf("   (Theorem-1 LB %.2f, gap %.2e)", r.cg.lower_bound,
                r.cg.gap());
  std::printf("\n");
  for (int l : r.cg.unserved_links)
    std::printf("WARNING: link %d unservable (no reachable rate level)\n", l);

  if (flags.has("update") &&
      !write_checkpoint(net, demands, r.cg, ckpt_path, &pool_manager)) {
    return kExitInvalidInput;
  }
  return health;
}

int cmd_check(const common::CliFlags& flags) {
  const auto parsed = parse_instance(flags);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().message().c_str());
    return kExitInvalidInput;
  }
  const InstanceFlags f = parsed.value();
  Instance inst = build_instance(f);
  core::CgOptions opts;
  opts.pricing = f.pricing;
  opts.lp_pricing = f.lp_pricing;
  opts.deadline_sec = f.deadline_sec;
  opts.verify = true;
  const auto result =
      core::solve_column_generation(inst.net, inst.demands, opts);
  const int health = report_solve_health(result);
  if (health == kExitInvalidInput) return health;

  std::printf("instance: L=%d K=%d Q=%d gamma x%.1f seed=%llu\n", f.links,
              f.channels, f.levels, f.gamma_scale,
              static_cast<unsigned long long>(f.seed));
  std::printf("solve:    %s, %.2f slots, %d iterations (stop: %s)\n",
              result.converged ? "optimal (certified)" : "feasible",
              result.total_slots, result.iterations,
              core::to_string(result.stop_reason));

  int failures = 0;
  const auto& v = result.verification;
  std::printf("in-loop:  %d LP certificates, %d columns, %d bound checks\n",
              v.lp_certificates, v.columns_verified, v.bound_checks);
  for (const std::string& e : v.errors) {
    std::printf("FAIL: %s\n", e.c_str());
    ++failures;
  }

  // Belt and braces: re-verify the emitted plan with a fresh referee, the
  // way an operator auditing a dumped plan would.
  check::ScheduleVerifier referee(inst.net);
  std::vector<video::LinkDemand> audited = inst.demands;
  for (int l : result.unserved_links) audited[l] = {};
  const check::VerifyReport plan =
      referee.verify_timeline(result.timeline, audited);
  if (!plan.ok()) {
    std::printf("FAIL: plan re-verification: %s\n", plan.to_string().c_str());
    ++failures;
  }

  // Theorem-1 invariant over the recorded history: every valid lower bound
  // below every upper bound (the MP objective is monotone over iterations
  // only per column pool, but LB <= UB must hold pointwise).
  for (const auto& it : result.history) {
    if (std::isnan(it.lower_bound)) continue;
    if (it.lower_bound > it.master_objective * (1.0 + 1e-9) + 1e-9) {
      std::printf("FAIL: iteration %d: LB %.6f above UB %.6f\n", it.iteration,
                  it.lower_bound, it.master_objective);
      ++failures;
    }
  }

  if (failures == 0) {
    std::printf("verification PASSED (%zu schedules in plan)\n",
                result.timeline.size());
    return health;  // 0, or kExitDegraded for a verified-but-degraded plan
  }
  std::printf("verification FAILED: %d finding(s)\n", failures);
  return kExitCheckFailed;
}

// ---------------------------------------------------------------------------
// serve: the fleet daemon front end.
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_serve_stop = 0;
void serve_signal_handler(int) { g_serve_stop = 1; }

/// Line reader over a poll()ed file descriptor: works for regular files,
/// pipes and FIFOs alike, and stays interruptible — a SIGTERM mid-wait
/// turns into a clean end-of-input so the server can drain.  A FIFO is
/// opened O_RDWR so writers may come and go without tearing an EOF; only
/// the signal ends a FIFO-fed serve.
struct FdLineReader {
  int fd = -1;
  std::string buffer;
  bool eof = false;

  bool next(std::string* out) {
    while (true) {
      const std::size_t newline = buffer.find('\n');
      if (newline != std::string::npos) {
        *out = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        return true;
      }
      if (eof) {
        if (!buffer.empty()) {
          *out = buffer;
          buffer.clear();
          return true;
        }
        return false;
      }
      if (g_serve_stop != 0) return false;
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, 100);
      if (g_serve_stop != 0) return false;
      if (ready <= 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n > 0) {
        buffer.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        eof = true;
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        eof = true;
      }
    }
  }
};

int cmd_serve(const common::CliFlags& flags) {
  const auto workers = flags.get_int_checked("workers", 1, 1, 256);
  const auto max_queue = flags.get_int_checked("max-queue", 64, 1, 1 << 20);
  const auto watchdog =
      flags.get_double_checked("watchdog-multiple", 8.0, 1.0, 1e6);
  const auto io_retries = flags.get_int_checked("io-retries", 3, 0, 100);
  const auto pool_flags = parse_pool_flags(flags);
  for (const common::Status& st :
       {workers.ok() ? common::Status::Ok() : workers.status(),
        max_queue.ok() ? common::Status::Ok() : max_queue.status(),
        watchdog.ok() ? common::Status::Ok() : watchdog.status(),
        io_retries.ok() ? common::Status::Ok() : io_retries.status(),
        pool_flags.ok() ? common::Status::Ok() : pool_flags.status()}) {
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.message().c_str());
      return kExitInvalidInput;
    }
  }
  fleet::ServerOptions opts;
  opts.workers = static_cast<int>(workers.value());
  opts.max_queue = static_cast<int>(max_queue.value());
  opts.watchdog_multiple = watchdog.value();
  opts.io_retries = static_cast<int>(io_retries.value());
  opts.share_pool = flags.get_int("share-pool", 1) != 0;
  opts.pool = pool_flags.value();
  opts.state_path = flags.get_string("state", "");

  const std::string requests = flags.get_string("requests", "-");
  int fd = 0;
  bool close_fd = false;
  if (requests != "-") {
    struct stat st;
    const bool is_fifo =
        ::stat(requests.c_str(), &st) == 0 && S_ISFIFO(st.st_mode);
    fd = ::open(requests.c_str(),
                is_fifo ? (O_RDWR | O_NONBLOCK) : (O_RDONLY | O_NONBLOCK));
    if (fd < 0) {
      std::fprintf(stderr, "error: --requests: cannot open '%s'\n",
                   requests.c_str());
      return kExitInvalidInput;
    }
    close_fd = true;
  }
  const std::string out_path = flags.get_string("out", "");
  std::FILE* out = stdout;
  if (!out_path.empty()) {
    // Append: a drained-and-resumed serve keeps writing the same record
    // stream (segment 2 continues where segment 1 stopped).
    out = std::fopen(out_path.c_str(), "a");
    if (out == nullptr) {
      std::fprintf(stderr, "error: --out: cannot open '%s'\n",
                   out_path.c_str());
      if (close_fd) ::close(fd);
      return kExitInvalidInput;
    }
  }

  g_serve_stop = 0;
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);

  FdLineReader reader;
  reader.fd = fd;
  fleet::Server server(opts);
  const fleet::ServerReport report = server.run(
      [&reader](std::string* line) { return reader.next(line); },
      [out](const fleet::RequestRecord& record) {
        std::fprintf(out, "%s\n", record.to_json_line().c_str());
        std::fflush(out);
      },
      [] { return g_serve_stop != 0; });

  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  if (out != stdout) std::fclose(out);
  if (close_fd) ::close(fd);

  std::printf("serve: %lld admitted | %lld ok | %lld degraded | %lld shed | "
              "%lld errors | %lld cancelled | %lld skipped | %lld parked%s\n",
              static_cast<long long>(report.admitted),
              static_cast<long long>(report.completed),
              static_cast<long long>(report.degraded),
              static_cast<long long>(report.shed),
              static_cast<long long>(report.errors),
              static_cast<long long>(report.cancelled),
              static_cast<long long>(report.resume_skipped),
              static_cast<long long>(report.parked),
              report.drained ? " (drained)" : "");
  if (!report.state_status.ok()) {
    std::fprintf(stderr, "warning: serve state: %s\n",
                 report.state_status.message().c_str());
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags;
  flags.parse(argc, argv);
  const std::string cmd =
      flags.positional().empty() ? "help" : flags.positional()[0];
  if (cmd == "solve") return cmd_solve(flags);
  if (cmd == "compare") return cmd_compare(flags);
  if (cmd == "stream") return cmd_stream(flags);
  if (cmd == "resolve") return cmd_resolve(flags);
  if (cmd == "check") return cmd_check(flags);
  if (cmd == "serve") return cmd_serve(flags);
  std::printf(
      "usage: mmwave_cli <solve|compare|stream|resolve|check|serve>"
      " [--links=N]\n"
      "       [--channels=K] [--levels=Q] [--gamma-scale=x] [--seed=s]\n"
      "       [--demand-scale=d] [--pricing=MODE[,RULE]]\n"
      "       [--instance=FILE] [--deadline=SECONDS]\n"
      "  --pricing combines the CG mode (heuristic|hybrid|exact) with the\n"
      "          master-LP simplex rule (dantzig|steepest), e.g.\n"
      "          --pricing=hybrid,steepest; either may appear alone\n"
      "  solve   also accepts --csv=plan.csv --profile --warm-start=0|1\n"
      "          --checkpoint=FILE (save solver state) --resume (warm-start\n"
      "          from that checkpoint; fingerprint must match)\n"
      "          --pool-cap=N --pool-policy=lru|rc-hybrid (trim the saved\n"
      "          pool to N columns; 0 = unbounded)\n"
      "  stream  also accepts --gops=N --p-block=p --metrics-json\n"
      "          --checkpoint=FILE (persist the session as base+delta\n"
      "          checkpoints at every GOP boundary) --resume (continue a\n"
      "          checkpointed session mid-stream) --pool-cap=N\n"
      "          --pool-policy=... --repair=drop|downgrade\n"
      "          --demand-policy=blind|drain-risk (shape next-period\n"
      "          demands from client-buffer state) --buffer-startup=s\n"
      "          --buffer-rebuffer=s --buffer-target=s (playout thresholds)\n"
      "          --buffer-boost=g --buffer-yield=y (drain-risk shaping)\n"
      "  resolve requires --checkpoint=FILE; also accepts\n"
      "          --block-links=0,3 --block-atten=a --update: repairs the\n"
      "          saved column pool against the perturbed instance and\n"
      "          re-solves warm (corrupt/mismatched checkpoint = cold start)\n"
      "          --pool-cap=N --pool-policy=lru|rc-hybrid cap the seeded pool\n"
      "          --repair=drop|downgrade (step SINR-violated transmissions\n"
      "          down the rate ladder instead of dropping them)\n"
      "  check   runs the solve under the certificate checkers and exits\n"
      "          non-zero on any violated certificate\n"
      "  serve   fleet daemon: --requests=FILE|FIFO|- (JSON lines)\n"
      "          --out=FILE --workers=N --max-queue=N\n"
      "          --watchdog-multiple=x --state=PATH --share-pool=0|1\n"
      "          --io-retries=N; SIGTERM drains (queue checkpointed under\n"
      "          --state, restart resumes without losing a request)\n"
      "exit status: 0 ok | 1 check failed / unknown command |\n"
      "             2 invalid flag value or instance | 3 degraded solve\n");
  return cmd == "help" ? 0 : 1;
}
