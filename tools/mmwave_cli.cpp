// mmwave_cli — command-line front end to the library.
//
//   mmwave_cli solve   [instance flags] [--csv=plan.csv] [--profile]
//                      [--warm-start=0|1]
//       Solve one instance with column generation; print the solution and
//       optionally dump the (schedule, tau) plan as CSV.  --profile prints
//       the per-phase wall-clock breakdown (master solves, pivots,
//       warm-start hit rate, greedy/MILP pricing); --warm-start=0 forces
//       cold two-phase master solves for A/B comparison.
//   mmwave_cli compare [instance flags]
//       Run CG, Benchmark 1, Benchmark 2 and TDMA on the same instance and
//       print the metric table.
//   mmwave_cli stream  [instance flags] [--gops=N] [--p-block=p]
//       Multi-GOP streaming session (optionally under Markov blockage).
//   mmwave_cli check   [instance flags]
//       Solve with the certificate checkers enabled (CgOptions::verify) and
//       independently re-verify the emitted plan; exit non-zero on any
//       failed certificate.  This is the verifier leg of the pre-merge gate
//       (tools/run_analysis.sh).
//
// Instance flags (shared): --links --channels --levels --gamma-scale
//   --seed --demand-scale --pricing=heuristic|hybrid|exact
#include <cstdio>
#include <iostream>
#include <string>

#include "baselines/baselines.h"
#include "check/schedule_verifier.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/column_generation.h"
#include "sched/quantize.h"
#include "sched/timeline.h"
#include "stream/blockage_session.h"
#include "video/demand.h"

namespace {

using namespace mmwave;

struct InstanceFlags {
  int links = 10;
  int channels = 5;
  int levels = 5;
  double gamma_scale = 1.0;
  std::uint64_t seed = 1;
  double demand_scale = 1e-3;
  core::PricingMode pricing = core::PricingMode::HeuristicThenExact;
};

InstanceFlags parse_instance(const common::CliFlags& flags) {
  InstanceFlags f;
  f.links = static_cast<int>(flags.get_int("links", f.links));
  f.channels = static_cast<int>(flags.get_int("channels", f.channels));
  f.levels = static_cast<int>(flags.get_int("levels", f.levels));
  f.gamma_scale = flags.get_double("gamma-scale", f.gamma_scale);
  f.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  f.demand_scale = flags.get_double("demand-scale", f.demand_scale);
  const std::string pricing = flags.get_string("pricing", "hybrid");
  if (pricing == "heuristic") {
    f.pricing = core::PricingMode::HeuristicOnly;
  } else if (pricing == "exact") {
    f.pricing = core::PricingMode::ExactAlways;
  } else {
    f.pricing = core::PricingMode::HeuristicThenExact;
  }
  return f;
}

net::NetworkParams params_of(const InstanceFlags& f) {
  net::NetworkParams params;
  params.num_links = f.links;
  params.num_channels = f.channels;
  params.sinr_thresholds.resize(f.levels);
  for (int q = 0; q < f.levels; ++q)
    params.sinr_thresholds[q] = 0.1 * (q + 1) * f.gamma_scale;
  return params;
}

struct Instance {
  net::Network net;
  std::vector<video::LinkDemand> demands;
};

Instance build_instance(const InstanceFlags& f) {
  common::Rng rng(f.seed);
  net::Network net = net::Network::table_i(params_of(f), rng);
  video::DemandConfig dcfg;
  dcfg.demand_scale = f.demand_scale;
  common::Rng drng = rng.fork(0x5EED);
  auto demands = video::make_link_demands(f.links, dcfg, drng);
  return {std::move(net), std::move(demands)};
}

int cmd_solve(const common::CliFlags& flags) {
  const InstanceFlags f = parse_instance(flags);
  Instance inst = build_instance(f);
  core::CgOptions opts;
  opts.pricing = f.pricing;
  opts.warm_start_master = flags.get_int("warm-start", 1) != 0;
  const auto result =
      core::solve_column_generation(inst.net, inst.demands, opts);

  std::printf("instance: L=%d K=%d Q=%d gamma x%.1f seed=%llu\n", f.links,
              f.channels, f.levels, f.gamma_scale,
              static_cast<unsigned long long>(f.seed));
  std::printf("status:   %s after %d iterations, %zu schedules in plan\n",
              result.converged ? "optimal (certified)" : "feasible",
              result.iterations, result.timeline.size());
  std::printf("slots:    %.2f", result.total_slots);
  if (!std::isnan(result.lower_bound))
    std::printf("   (Theorem-1 LB %.2f, gap %.2e)", result.lower_bound,
                result.gap());
  std::printf("\n");
  for (int l : result.unserved_links)
    std::printf("WARNING: link %d unservable (no reachable rate level)\n", l);

  const auto quant =
      sched::quantize_timeline(inst.net, result.timeline, inst.demands);
  std::printf("whole-slot plan: %.0f slots (quantization overhead %.3f%%)\n",
              quant.quantized_slots, 100.0 * quant.overhead());

  if (flags.has("profile")) {
    const core::CgProfile& p = result.profile;
    std::printf("profile:\n");
    std::printf("  master_solve    %8.3f ms  (%d solves, %lld pivots, "
                "%.1f pivots/solve)\n",
                1e3 * p.master_seconds, p.master_solves,
                static_cast<long long>(p.master_pivots),
                p.pivots_per_solve());
    std::printf("  warm starts     %d/%d master solves resumed "
                "(hit rate %.0f%%)\n",
                p.master_warm_hits, p.master_solves,
                100.0 * p.warm_hit_rate());
    std::printf("  pricing_greedy  %8.3f ms  (%d calls)\n",
                1e3 * p.greedy_seconds, p.greedy_calls);
    std::printf("  pricing_milp    %8.3f ms  (%d calls)\n",
                1e3 * p.milp_seconds, p.milp_calls);
  }

  if (flags.has("csv")) {
    common::Table table(
        {"schedule", "slots", "link", "layer", "rate_level", "channel",
         "power_watts"});
    int idx = 0;
    for (const auto& ts : result.timeline) {
      for (const auto& tx : ts.schedule.transmissions()) {
        table.new_row()
            .add(idx)
            .add(ts.slots, 3)
            .add(tx.link)
            .add(net::to_string(tx.layer))
            .add(tx.rate_level)
            .add(tx.channel)
            .add(tx.power_watts, 5);
      }
      ++idx;
    }
    const std::string path = flags.get_string("csv", "plan.csv");
    table.write_csv(path);
    std::printf("plan written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_compare(const common::CliFlags& flags) {
  const InstanceFlags f = parse_instance(flags);
  Instance inst = build_instance(f);

  common::Table table({"algorithm", "total slots", "avg delay", "fairness",
                       "served"});
  auto row = [&](const char* name,
                 const std::vector<sched::TimedSchedule>& timeline,
                 bool served, sched::ExecutionOrder order) {
    const auto exec =
        sched::execute_timeline(inst.net, timeline, inst.demands, order);
    table.new_row()
        .add(name)
        .add(exec.total_slots, 1)
        .add(exec.average_delay(), 1)
        .add(exec.delay_fairness(), 4)
        .add(served && exec.all_demands_met ? "yes" : "NO");
  };

  core::CgOptions opts;
  opts.pricing = f.pricing;
  const auto cg = core::solve_column_generation(inst.net, inst.demands, opts);
  row("column generation", cg.timeline, true,
      sched::ExecutionOrder::CompletionAware);
  const auto b1 = baselines::benchmark1(inst.net, inst.demands);
  row("benchmark 1", b1.timeline, b1.served_all,
      sched::ExecutionOrder::AsGiven);
  const auto b2 = baselines::benchmark2(inst.net, inst.demands);
  row("benchmark 2", b2.timeline, b2.served_all,
      sched::ExecutionOrder::AsGiven);
  const auto td = baselines::tdma(inst.net, inst.demands);
  row("TDMA", td.timeline, td.served_all, sched::ExecutionOrder::AsGiven);
  table.print(std::cout);
  return 0;
}

int cmd_stream(const common::CliFlags& flags) {
  const InstanceFlags f = parse_instance(flags);
  const int gops = static_cast<int>(flags.get_int("gops", 8));
  const double p_block = flags.get_double("p-block", 0.0);

  common::Rng rng(f.seed);
  net::NetworkParams params = params_of(f);
  net::TableIChannelModel base(f.links, f.channels, params.noise_watts, rng);

  stream::BlockageSessionConfig cfg;
  cfg.session.num_gops = gops;
  cfg.session.demand_scale = f.demand_scale;
  cfg.blockage.p_block = p_block;
  cfg.blockage.attenuation = 0.05;

  stream::CgSchedulerOptions sched_opts;
  sched_opts.heuristic_only = f.pricing == core::PricingMode::HeuristicOnly;
  common::Rng session_rng = rng.fork(1);
  const auto metrics = stream::run_blockage_session(
      base, params, cfg, stream::make_cg_scheduler(sched_opts), session_rng);

  std::printf("streaming %d GOPs (p_block=%.2f):\n", gops, p_block);
  std::printf("  on-time GOPs:   %.1f%%\n", 100.0 * metrics.base.on_time_ratio);
  std::printf("  total stall:    %.1f slots\n",
              metrics.base.total_stall_slots);
  std::printf("  mean PSNR:      %.2f dB\n", metrics.base.mean_psnr_db);
  std::printf("  blocked frac:   %.3f\n", metrics.mean_blocked_fraction);
  std::printf("  all served:     %s\n",
              metrics.base.all_served ? "yes" : "NO");
  return 0;
}

int cmd_check(const common::CliFlags& flags) {
  const InstanceFlags f = parse_instance(flags);
  Instance inst = build_instance(f);
  core::CgOptions opts;
  opts.pricing = f.pricing;
  opts.verify = true;
  const auto result =
      core::solve_column_generation(inst.net, inst.demands, opts);

  std::printf("instance: L=%d K=%d Q=%d gamma x%.1f seed=%llu\n", f.links,
              f.channels, f.levels, f.gamma_scale,
              static_cast<unsigned long long>(f.seed));
  std::printf("solve:    %s, %.2f slots, %d iterations\n",
              result.converged ? "optimal (certified)" : "feasible",
              result.total_slots, result.iterations);

  int failures = 0;
  const auto& v = result.verification;
  std::printf("in-loop:  %d LP certificates, %d columns, %d bound checks\n",
              v.lp_certificates, v.columns_verified, v.bound_checks);
  for (const std::string& e : v.errors) {
    std::printf("FAIL: %s\n", e.c_str());
    ++failures;
  }

  // Belt and braces: re-verify the emitted plan with a fresh referee, the
  // way an operator auditing a dumped plan would.
  check::ScheduleVerifier referee(inst.net);
  std::vector<video::LinkDemand> audited = inst.demands;
  for (int l : result.unserved_links) audited[l] = {};
  const check::VerifyReport plan =
      referee.verify_timeline(result.timeline, audited);
  if (!plan.ok()) {
    std::printf("FAIL: plan re-verification: %s\n", plan.to_string().c_str());
    ++failures;
  }

  // Theorem-1 invariant over the recorded history: every valid lower bound
  // below every upper bound (the MP objective is monotone over iterations
  // only per column pool, but LB <= UB must hold pointwise).
  for (const auto& it : result.history) {
    if (std::isnan(it.lower_bound)) continue;
    if (it.lower_bound > it.master_objective * (1.0 + 1e-9) + 1e-9) {
      std::printf("FAIL: iteration %d: LB %.6f above UB %.6f\n", it.iteration,
                  it.lower_bound, it.master_objective);
      ++failures;
    }
  }

  if (failures == 0) {
    std::printf("verification PASSED (%zu schedules in plan)\n",
                result.timeline.size());
    return 0;
  }
  std::printf("verification FAILED: %d finding(s)\n", failures);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags;
  flags.parse(argc, argv);
  const std::string cmd =
      flags.positional().empty() ? "help" : flags.positional()[0];
  if (cmd == "solve") return cmd_solve(flags);
  if (cmd == "compare") return cmd_compare(flags);
  if (cmd == "stream") return cmd_stream(flags);
  if (cmd == "check") return cmd_check(flags);
  std::printf(
      "usage: mmwave_cli <solve|compare|stream|check> [--links=N]\n"
      "       [--channels=K] [--levels=Q] [--gamma-scale=x] [--seed=s]\n"
      "       [--demand-scale=d] [--pricing=heuristic|hybrid|exact]\n"
      "  solve   also accepts --csv=plan.csv --profile --warm-start=0|1\n"
      "  stream  also accepts --gops=N --p-block=p\n"
      "  check   runs the solve under the certificate checkers and exits\n"
      "          non-zero on any violated certificate\n");
  return cmd == "help" ? 0 : 1;
}
