// chaos_soak — seeded crash-recovery soak driver for streaming sessions.
//
// Property under test (the PR's acceptance bar): for every seed, a blockage
// streaming session that is killed at randomized-but-deterministic GOP
// boundaries and resumed from its delta-checkpoint log produces EXACTLY the
// uninterrupted run's results — every per-GOP record equal to 1e-7 and the
// plan digest chain bit-identical — including legs where the registered
// fault sites tear delta writes (checkpoint.delta_torn_write), crash
// compactions (checkpoint.compact_crash) and corrupt the saved cursor
// (session.cursor_corrupt).  Client-buffer QoE state (stall seconds,
// rebuffer events, layer-delivery counts) rides the same cursor and must
// replay exactly too; the demand policy rotates by seed parity so both the
// blind baseline and the drain-risk shaper soak through crashes.  Injected
// damage may cost re-solved periods
// (degrading delta chain -> last good base -> cold start); it must never
// cost correctness and never crash.
//
//   chaos_soak [--seeds=N] [--seed-base=S] [--gops=G] [--links --channels
//              --levels] [--p-block=p] [--out=BENCH_soak.json]
//
// --fleet switches to the fleet-serve soak: for every seed, a fleet::Server
// run over a deterministic solve/resolve/stream request list is stopped
// after a randomized-but-deterministic number of emitted records (a SIGTERM
// drain), then restarted with the same state path against the same list.
// The two segments together must reproduce the uninterrupted run exactly —
// same record-id set, no request served twice, per-id outcome/code/optimum
// equal to 1e-7 and stream digest messages bit-identical — including legs
// that fault the drain manifest write (fleet.drain_crash), the pool
// checkpoint write (checkpoint.write_fail) and a request payload
// (fleet.request_poison).  Answer-changing faults (poison) are armed
// identically on the reference run so it stays comparable; persistence
// faults must be absorbed by retry/degradation without touching records.
//
// Exit status: 0 when every seed's soak matched, 1 otherwise.  The JSON
// report also records the delta-vs-full save cost (CheckpointLog's
// track_full_equiv accounting), the evidence that delta saves are cheaper
// than rewriting the full checkpoint every period.
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/checkpoint_log.h"
#include "fleet/server.h"
#include "mmwave/channel.h"
#include "mmwave/network.h"
#include "stream/blockage_session.h"
#include "stream/session.h"

namespace {

using namespace mmwave;

struct SoakSetup {
  int links = 4;
  int channels = 2;
  int levels = 3;
  int gops = 10;
  double p_block = 0.3;
  double demand_scale = 1e-3;
};

net::NetworkParams params_of(const SoakSetup& s) {
  net::NetworkParams params;
  params.num_links = s.links;
  params.num_channels = s.channels;
  params.sinr_thresholds.resize(s.levels);
  for (int q = 0; q < s.levels; ++q)
    params.sinr_thresholds[q] = 0.1 * (q + 1);
  return params;
}

/// Demand policy under soak rotates by seed parity so both the blind
/// baseline and the drain-risk shaper get crash/resume coverage.  The
/// policy object must outlive the session config that points at it.
const stream::DemandPolicy* soak_policy(std::uint64_t seed) {
  static const std::unique_ptr<stream::DemandPolicy> blind =
      stream::make_blind_policy();
  static const std::unique_ptr<stream::DemandPolicy> drain =
      stream::make_drain_risk_policy(stream::ClientBufferConfig{});
  return (seed % 2 == 0) ? drain.get() : blind.get();
}

stream::BlockageSessionConfig config_of(const SoakSetup& s,
                                        std::uint64_t seed) {
  stream::BlockageSessionConfig cfg;
  cfg.session.num_gops = s.gops;
  cfg.session.demand_scale = s.demand_scale;
  cfg.blockage.p_block = s.p_block;
  cfg.blockage.attenuation = 0.05;
  cfg.demand_policy = soak_policy(seed);
  cfg.session_fingerprint =
      stream::blockage_session_fingerprint(cfg, s.links, seed);
  return cfg;
}

/// One process lifetime: builds the session world deterministically from
/// `seed`, opens the checkpoint log at `path`, resumes from its cursor when
/// one is present, and runs until `kill_gop` (on_period refuses to continue
/// there, simulating a crash at that GOP boundary; -1 = run to completion).
/// Every completed period is persisted through the log.
///
/// Degradation-ladder discipline: the pool is imported ONLY together with a
/// usable cursor.  A lifetime whose cursor is missing, degraded, or
/// rejected replays the whole session fully cold — determinism then makes
/// the cold rerun bit-identical to the uninterrupted run, which is exactly
/// the property the soak asserts.  (A warm pool without its cursor could
/// steer column generation to a different optimal timeline: same objective,
/// different digest chain.)
stream::BlockageSessionMetrics run_lifetime(const SoakSetup& s,
                                            std::uint64_t seed,
                                            const std::string& path,
                                            int kill_gop,
                                            core::CheckpointLogStats* stats,
                                            bool allow_resume = true) {
  common::Rng rng(seed);
  net::NetworkParams params = params_of(s);
  net::TableIChannelModel base(s.links, s.channels, params.noise_watts, rng);
  const stream::BlockageSessionConfig cfg = config_of(s, seed);

  stream::SolverContext context;
  stream::CgSchedulerOptions sched_opts;
  sched_opts.heuristic_only = true;
  sched_opts.capture_checkpoint = true;

  core::CheckpointLogOptions log_opts;
  log_opts.track_full_equiv = true;
  core::CheckpointLog log(path, log_opts);
  const core::CheckpointLogLoad loaded = log.open();
  core::StreamCursor cursor;
  stream::BlockageRunControl control;
  if (allow_resume && loaded.loaded && loaded.state.has_session) {
    context.manager.import_checkpoint(loaded.state);
    cursor = loaded.state.session;
    control.resume = &cursor;
  }
  control.on_period = [&](const core::StreamCursor& cur, int gop) {
    if (context.has_last_checkpoint) {
      core::CgCheckpoint ckpt =
          context.manager.export_checkpoint(context.last_checkpoint);
      ckpt.has_session = true;
      ckpt.session = cur;
      // Save failures (torn writes, crashed compactions) are the scenario,
      // not an error: the next save escalates to a compaction and the next
      // restart recovers from the last good state.
      (void)log.save(ckpt).ok();  // lint: discard
    }
    return gop != kill_gop;
  };

  common::Rng session_rng = rng.fork(1);
  const auto metrics = stream::run_blockage_session(
      base, params, cfg, stream::make_cg_scheduler(sched_opts, &context),
      session_rng, &context, &control);
  if (stats != nullptr) {
    stats->saves += log.stats().saves;
    stats->delta_saves += log.stats().delta_saves;
    stats->full_saves += log.stats().full_saves;
    stats->compactions += log.stats().compactions;
    stats->delta_bytes += log.stats().delta_bytes;
    stats->full_bytes += log.stats().full_bytes;
    stats->full_equiv_bytes += log.stats().full_equiv_bytes;
  }
  if (metrics.resume_rejected && allow_resume) {
    // The session itself refused the cursor (stale replay / fingerprint /
    // injected corruption): bottom of the ladder, rerun fully cold.
    return run_lifetime(s, seed, path, kill_gop, stats,
                        /*allow_resume=*/false);
  }
  return metrics;
}

/// The uninterrupted run every chaos variant must reproduce.
stream::BlockageSessionMetrics run_reference(const SoakSetup& s,
                                             std::uint64_t seed) {
  common::Rng rng(seed);
  net::NetworkParams params = params_of(s);
  net::TableIChannelModel base(s.links, s.channels, params.noise_watts, rng);
  const stream::BlockageSessionConfig cfg = config_of(s, seed);
  stream::SolverContext context;
  stream::CgSchedulerOptions sched_opts;
  sched_opts.heuristic_only = true;
  common::Rng session_rng = rng.fork(1);
  return stream::run_blockage_session(
      base, params, cfg, stream::make_cg_scheduler(sched_opts, &context),
      session_rng, &context);
}

bool close_to(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return std::fabs(a - b) <= 1e-7 * std::max(1.0, std::max(std::fabs(a),
                                                           std::fabs(b)));
}

int compare_runs(const stream::BlockageSessionMetrics& ref,
                 const stream::BlockageSessionMetrics& got,
                 std::uint64_t seed) {
  int mismatches = 0;
  auto fail = [&](const char* what, double want, double have) {
    std::fprintf(stderr,
                 "MISMATCH seed=%llu %s: reference %.17g, resumed %.17g\n",
                 static_cast<unsigned long long>(seed), what, want, have);
    ++mismatches;
  };
  if (ref.plan_digest_chain != got.plan_digest_chain) {
    std::fprintf(stderr,
                 "MISMATCH seed=%llu plan_digest_chain: reference "
                 "0x%016" PRIx64 ", resumed 0x%016" PRIx64 "\n",
                 static_cast<unsigned long long>(seed), ref.plan_digest_chain,
                 got.plan_digest_chain);
    ++mismatches;
  }
  if (ref.base.gops.size() != got.base.gops.size()) {
    fail("gop count", static_cast<double>(ref.base.gops.size()),
         static_cast<double>(got.base.gops.size()));
    return mismatches;
  }
  for (std::size_t g = 0; g < ref.base.gops.size(); ++g) {
    const stream::GopRecord& a = ref.base.gops[g];
    const stream::GopRecord& b = got.base.gops[g];
    if (!close_to(a.demand_bits, b.demand_bits))
      fail("gop demand_bits", a.demand_bits, b.demand_bits);
    if (!close_to(a.schedule_slots, b.schedule_slots))
      fail("gop schedule_slots", a.schedule_slots, b.schedule_slots);
    if (!close_to(a.stall_slots, b.stall_slots))
      fail("gop stall_slots", a.stall_slots, b.stall_slots);
    if (a.on_time != b.on_time)
      fail("gop on_time", a.on_time ? 1.0 : 0.0, b.on_time ? 1.0 : 0.0);
  }
  if (!close_to(ref.base.on_time_ratio, got.base.on_time_ratio))
    fail("on_time_ratio", ref.base.on_time_ratio, got.base.on_time_ratio);
  if (!close_to(ref.base.total_stall_slots, got.base.total_stall_slots))
    fail("total_stall_slots", ref.base.total_stall_slots,
         got.base.total_stall_slots);
  if (!close_to(ref.base.mean_psnr_db, got.base.mean_psnr_db))
    fail("mean_psnr_db", ref.base.mean_psnr_db, got.base.mean_psnr_db);
  if (!close_to(ref.mean_blocked_fraction, got.mean_blocked_fraction))
    fail("mean_blocked_fraction", ref.mean_blocked_fraction,
         got.mean_blocked_fraction);
  // Client-buffer QoE state rides the checkpoint cursor: a resumed session
  // must replay playback stall, rebuffer counts and the layer-delivery
  // ratio exactly, not just the scheduling records.
  if (!close_to(ref.stall_seconds, got.stall_seconds))
    fail("stall_seconds", ref.stall_seconds, got.stall_seconds);
  if (ref.rebuffer_events != got.rebuffer_events)
    fail("rebuffer_events", static_cast<double>(ref.rebuffer_events),
         static_cast<double>(got.rebuffer_events));
  if (ref.layer_gops_offered != got.layer_gops_offered)
    fail("layer_gops_offered", static_cast<double>(ref.layer_gops_offered),
         static_cast<double>(got.layer_gops_offered));
  if (ref.layer_gops_delivered != got.layer_gops_delivered)
    fail("layer_gops_delivered",
         static_cast<double>(ref.layer_gops_delivered),
         static_cast<double>(got.layer_gops_delivered));
  if (!close_to(ref.layer_delivery_ratio, got.layer_delivery_ratio))
    fail("layer_delivery_ratio", ref.layer_delivery_ratio,
         got.layer_delivery_ratio);
  return mismatches;
}

struct SeedOutcome {
  std::uint64_t seed = 0;
  int lifetimes = 0;
  int fault_legs = 0;
  int mismatches = 0;
  core::CheckpointLogStats stats;
};

/// Runs the chaos variant for one seed: a deterministic kill schedule, each
/// lifetime under a cycling fault leg, final lifetime running to completion.
SeedOutcome soak_seed(const SoakSetup& s, std::uint64_t seed,
                      const std::string& dir) {
  SeedOutcome out;
  out.seed = seed;
  const std::string path =
      dir + "/soak_" + std::to_string(seed) + ".ckpt";
  std::remove(path.c_str());
  std::remove((path + ".delta").c_str());

  const auto reference = run_reference(s, seed);

  // Deterministic kill schedule: 1..3 kills at boundaries before the last
  // period, strictly increasing so every lifetime makes progress.
  common::Rng kr(seed ^ 0xC4A05011ULL);
  const int num_kills =
      1 + static_cast<int>(kr.uniform_index(std::min(3, s.gops - 1)));
  std::vector<int> kills;
  int lo = 0;
  for (int i = 0; i < num_kills && lo < s.gops - 1; ++i) {
    const int k = lo + static_cast<int>(kr.uniform_index(
                           static_cast<std::uint64_t>(s.gops - 1 - lo)));
    kills.push_back(k);
    lo = k + 1;
  }
  kills.push_back(-1);  // final lifetime: run to completion

  stream::BlockageSessionMetrics last;
  for (std::size_t i = 0; i < kills.size(); ++i) {
    // Cycle the fault legs so every site gets exercised across the soak:
    // 0 none, 1 torn delta append, 2 crashed compaction, 3 corrupted
    // cursor (forces a cold-start session that must still match).
    common::FaultInjector injector(seed ^ (0xFA017ULL + i));
    const int leg = static_cast<int>(i % 4);
    if (leg == 1) {
      injector.arm(common::faults::kCheckpointDeltaTornWrite,
                   {.skip = static_cast<int>(i % 2), .times = 1});
      ++out.fault_legs;
    } else if (leg == 2) {
      injector.arm(common::faults::kCheckpointCompactCrash, {.times = 1});
      ++out.fault_legs;
    } else if (leg == 3) {
      injector.arm(common::faults::kSessionCursorCorrupt, {.times = 1});
      ++out.fault_legs;
    }
    common::FaultScope scope(injector);
    last = run_lifetime(s, seed, path, kills[i], &out.stats);
    ++out.lifetimes;
  }
  if (!last.completed) {
    std::fprintf(stderr, "MISMATCH seed=%llu: final lifetime incomplete\n",
                 static_cast<unsigned long long>(seed));
    ++out.mismatches;
  }
  out.mismatches += compare_runs(reference, last, seed);
  std::remove(path.c_str());
  std::remove((path + ".delta").c_str());
  return out;
}

// ---------------------------------------------------------------------------
// --fleet: drain/restart soak for the multi-piconet serve mode.

/// Deterministic request list for one fleet seed: a solve/resolve/stream
/// mix over small instances, no deadlines (deadline nondeterminism would
/// break the equality property, which is about drain/restart, not timing).
std::vector<std::string> fleet_request_lines(std::uint64_t seed, int n) {
  std::vector<std::string> lines;
  char buf[320];
  for (int i = 0; i < n; ++i) {
    const unsigned long long rs = static_cast<unsigned long long>(
        seed * 100 + static_cast<std::uint64_t>(i) + 1);
    if (i % 3 == 0) {
      std::snprintf(buf, sizeof buf,
                    "{\"id\":\"s%02d\",\"op\":\"solve\",\"links\":5,"
                    "\"channels\":2,\"levels\":3,\"seed\":%llu}",
                    i, rs);
    } else if (i % 3 == 1) {
      std::snprintf(buf, sizeof buf,
                    "{\"id\":\"r%02d\",\"op\":\"resolve\",\"links\":5,"
                    "\"channels\":2,\"levels\":3,\"seed\":%llu,"
                    "\"block_links\":[1],\"block_atten\":0.1}",
                    i, rs);
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"id\":\"t%02d\",\"op\":\"stream\",\"links\":4,"
                    "\"channels\":2,\"levels\":3,\"seed\":%llu,\"gops\":3,"
                    "\"p_block\":0.3,\"pricing\":\"heuristic\"}",
                    i, rs);
    }
    lines.emplace_back(buf);
  }
  return lines;
}

/// Removes every durable artifact a serve run at `path` can leave behind:
/// the pool log, the queue manifest, and each stream request's session log.
void fleet_cleanup(const std::string& path,
                   const std::vector<std::string>& lines) {
  std::remove(path.c_str());
  std::remove((path + ".delta").c_str());
  std::remove((path + ".queue").c_str());
  for (const std::string& line : lines) {
    const auto parsed = fleet::parse_request_line(line);
    if (!parsed.ok()) continue;
    const std::string req = path + ".req_" + parsed.value().id;
    std::remove(req.c_str());
    std::remove((req + ".delta").c_str());
  }
}

/// One serve-process lifetime.  `stop_after_records` >= 0 drains the server
/// once that many records have been emitted (-1 runs to completion).
/// Records land in `records` keyed by id; an id seen twice bumps
/// `duplicates` — the no-double-execution clause of the drain contract.
fleet::ServerReport run_fleet_segment(
    const std::vector<std::string>& lines, const std::string& state_path,
    int stop_after_records,
    std::map<std::string, fleet::RequestRecord>* records, int* duplicates) {
  fleet::ServerOptions opts;
  opts.workers = 1;  // FaultInjector is not thread-safe
  opts.max_queue = static_cast<int>(lines.size()) + 8;  // no shedding here
  opts.state_path = state_path;
  fleet::Server server(opts);
  std::atomic<int> emitted{0};
  const auto sink = [&](const fleet::RequestRecord& rec) {
    emitted.fetch_add(1, std::memory_order_relaxed);
    if (!records->emplace(rec.id, rec).second) ++*duplicates;
  };
  std::function<bool()> stop;
  if (stop_after_records >= 0) {
    stop = [&emitted, stop_after_records] {
      return emitted.load(std::memory_order_relaxed) >= stop_after_records;
    };
  }
  return server.run(lines, sink, stop);
}

struct FleetSeedOutcome {
  std::uint64_t seed = 0;
  int leg = 0;
  int stop_after = 0;
  int mismatches = 0;
  std::int64_t parked = 0;
  std::int64_t resume_skipped = 0;
  bool drained = false;
};

/// Reference (uninterrupted) vs chaos (drain at a deterministic record
/// count, then restart) serve runs under one fault leg, compared per id.
FleetSeedOutcome fleet_soak_seed(std::uint64_t seed, int leg,
                                 const std::string& dir, int n) {
  FleetSeedOutcome out;
  out.seed = seed;
  out.leg = leg;
  const std::vector<std::string> lines = fleet_request_lines(seed, n);
  const std::string ref_path =
      dir + "/fleet_ref_" + std::to_string(seed) + ".ckpt";
  const std::string chaos_path =
      dir + "/fleet_chaos_" + std::to_string(seed) + ".ckpt";
  fleet_cleanup(ref_path, lines);
  fleet_cleanup(chaos_path, lines);

  // Legs 1/2 fault persistence (answer-neutral: retry or degradation must
  // absorb them); leg 3 faults a request payload (answer-changing, so the
  // reference arms it identically — execution order is deterministic at
  // workers=1, both runs poison the same request).
  const auto arm = [leg](common::FaultInjector* injector) {
    if (leg == 1)
      injector->arm(common::faults::kFleetDrainCrash, {.times = 1});
    else if (leg == 2)
      injector->arm(common::faults::kCheckpointWriteFail, {.times = 1});
    else if (leg == 3)
      injector->arm(common::faults::kFleetRequestPoison, {.times = 1});
  };
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "MISMATCH seed=%llu fleet: %s\n",
                 static_cast<unsigned long long>(seed), what);
    ++out.mismatches;
  };

  std::map<std::string, fleet::RequestRecord> ref_records;
  int duplicates = 0;
  {
    common::FaultInjector injector(seed ^ 0xF1EE70FAULL);
    arm(&injector);
    common::FaultScope scope(injector);
    (void)run_fleet_segment(lines, ref_path, -1, &ref_records, &duplicates);
  }
  if (static_cast<int>(ref_records.size()) != n || duplicates != 0)
    fail("reference run did not emit exactly one record per request");

  common::Rng kr(seed ^ 0xF1EE7C4AULL);
  out.stop_after = 1 + static_cast<int>(kr.uniform_index(
                           static_cast<std::uint64_t>(n - 1)));
  std::map<std::string, fleet::RequestRecord> chaos_records;
  int chaos_duplicates = 0;
  {
    common::FaultInjector injector(seed ^ 0xF1EE70FBULL);
    arm(&injector);
    common::FaultScope scope(injector);
    const fleet::ServerReport first =
        run_fleet_segment(lines, chaos_path, out.stop_after, &chaos_records,
                          &chaos_duplicates);
    out.drained = first.drained;
    out.parked = first.parked;
    const fleet::ServerReport second = run_fleet_segment(
        lines, chaos_path, -1, &chaos_records, &chaos_duplicates);
    out.resume_skipped = second.resume_skipped;
    if (first.shed + second.shed != 0)
      fail("unexpected shedding with max_queue >= request count");
  }
  if (chaos_duplicates != 0)
    fail("a request id was served twice across the drain/restart pair");

  for (const auto& [id, want] : ref_records) {
    const auto it = chaos_records.find(id);
    if (it == chaos_records.end()) {
      std::fprintf(stderr,
                   "MISMATCH seed=%llu fleet id=%s: lost across restart\n",
                   static_cast<unsigned long long>(seed), id.c_str());
      ++out.mismatches;
      continue;
    }
    const fleet::RequestRecord& got = it->second;
    if (got.outcome != want.outcome || got.code != want.code ||
        got.converged != want.converged || got.message != want.message) {
      std::fprintf(stderr,
                   "MISMATCH seed=%llu fleet id=%s: reference %s/%s "
                   "\"%s\", resumed %s/%s \"%s\"\n",
                   static_cast<unsigned long long>(seed), id.c_str(),
                   fleet::to_string(want.outcome),
                   common::to_string(want.code), want.message.c_str(),
                   fleet::to_string(got.outcome),
                   common::to_string(got.code), got.message.c_str());
      ++out.mismatches;
    }
    if (!close_to(want.total_slots, got.total_slots)) {
      std::fprintf(stderr,
                   "MISMATCH seed=%llu fleet id=%s total_slots: reference "
                   "%.17g, resumed %.17g\n",
                   static_cast<unsigned long long>(seed), id.c_str(),
                   want.total_slots, got.total_slots);
      ++out.mismatches;
    }
  }
  for (const auto& [id, rec] : chaos_records) {
    (void)rec;
    if (ref_records.find(id) == ref_records.end()) {
      std::fprintf(stderr,
                   "MISMATCH seed=%llu fleet id=%s: extra record not in "
                   "the reference run\n",
                   static_cast<unsigned long long>(seed), id.c_str());
      ++out.mismatches;
    }
  }

  fleet_cleanup(ref_path, lines);
  fleet_cleanup(chaos_path, lines);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags;
  flags.parse(argc, argv);
  SoakSetup s;
  s.links = static_cast<int>(flags.get_int("links", s.links));
  s.channels = static_cast<int>(flags.get_int("channels", s.channels));
  s.levels = static_cast<int>(flags.get_int("levels", s.levels));
  s.gops = static_cast<int>(flags.get_int("gops", s.gops));
  s.p_block = flags.get_double("p-block", s.p_block);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));
  const std::uint64_t seed_base =
      static_cast<std::uint64_t>(flags.get_int("seed-base", 1));
  const std::string out_path = flags.get_string("out", "");
  const std::string dir = flags.get_string("dir", ".");
  if (s.gops < 2 || seeds < 1) {
    std::fprintf(stderr, "error: need --gops>=2 and --seeds>=1\n");
    return 1;
  }

  if (flags.get_bool("fleet", false)) {
    const int n = static_cast<int>(flags.get_int("requests", 9));
    if (n < 2) {
      std::fprintf(stderr, "error: --fleet needs --requests>=2\n");
      return 1;
    }
    std::vector<FleetSeedOutcome> outcomes;
    int total_mismatches = 0;
    for (int i = 0; i < seeds; ++i) {
      const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
      // Cycle the fleet fault legs: 0 none, 1 drain-manifest kIoError,
      // 2 pool checkpoint write failure, 3 poisoned request payload.
      FleetSeedOutcome o = fleet_soak_seed(seed, i % 4, dir, n);
      std::printf("seed %llu: fleet leg %d, drain after %d record(s), "
                  "%lld parked, %lld resume-skipped: %s\n",
                  static_cast<unsigned long long>(o.seed), o.leg,
                  o.stop_after, static_cast<long long>(o.parked),
                  static_cast<long long>(o.resume_skipped),
                  o.mismatches == 0 ? "MATCH" : "MISMATCH");
      total_mismatches += o.mismatches;
      outcomes.push_back(o);
    }
    if (!out_path.empty()) {
      std::FILE* f = std::fopen(out_path.c_str(), "w");
      if (f != nullptr) {
        std::fprintf(f,
                     "{\"bench\":\"chaos_soak_fleet\",\"requests\":%d,"
                     "\"seeds\":%d,\"all_match\":%s,\"runs\":[",
                     n, seeds, total_mismatches == 0 ? "true" : "false");
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          const FleetSeedOutcome& o = outcomes[i];
          std::fprintf(f,
                       "%s{\"seed\":%llu,\"leg\":%d,\"stop_after\":%d,"
                       "\"drained\":%s,\"parked\":%lld,"
                       "\"resume_skipped\":%lld,\"mismatches\":%d}",
                       i == 0 ? "" : ",",
                       static_cast<unsigned long long>(o.seed), o.leg,
                       o.stop_after, o.drained ? "true" : "false",
                       static_cast<long long>(o.parked),
                       static_cast<long long>(o.resume_skipped),
                       o.mismatches);
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::printf("report written to %s\n", out_path.c_str());
      } else {
        std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
      }
    }
    if (total_mismatches == 0) {
      std::printf("fleet chaos soak PASSED: %d seed(s), drained/restarted "
                  "serve runs identical to uninterrupted runs\n", seeds);
      return 0;
    }
    std::printf("fleet chaos soak FAILED: %d mismatch(es)\n",
                total_mismatches);
    return 1;
  }

  std::vector<SeedOutcome> outcomes;
  int total_mismatches = 0;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    SeedOutcome o = soak_seed(s, seed, dir);
    std::printf("seed %llu [%s]: %d lifetimes (%d fault legs), %lld saves "
                "(%lld delta / %lld full), delta %lld B vs full-equiv "
                "%lld B: %s\n",
                static_cast<unsigned long long>(seed),
                soak_policy(seed)->name(), o.lifetimes,
                o.fault_legs, static_cast<long long>(o.stats.saves),
                static_cast<long long>(o.stats.delta_saves),
                static_cast<long long>(o.stats.full_saves),
                static_cast<long long>(o.stats.delta_bytes),
                static_cast<long long>(o.stats.full_equiv_bytes),
                o.mismatches == 0 ? "MATCH" : "MISMATCH");
    total_mismatches += o.mismatches;
    outcomes.push_back(std::move(o));
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"chaos_soak\",\"links\":%d,\"channels\":%d,"
                   "\"gops\":%d,\"p_block\":%.17g,\"seeds\":%d,"
                   "\"all_match\":%s,\"runs\":[",
                   s.links, s.channels, s.gops, s.p_block, seeds,
                   total_mismatches == 0 ? "true" : "false");
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SeedOutcome& o = outcomes[i];
        std::fprintf(
            f,
            "%s{\"seed\":%llu,\"lifetimes\":%d,\"fault_legs\":%d,"
            "\"mismatches\":%d,\"saves\":%lld,\"delta_saves\":%lld,"
            "\"full_saves\":%lld,\"compactions\":%lld,"
            "\"delta_bytes\":%lld,"
            "\"full_equiv_bytes\":%lld,\"delta_savings\":%.4f}",
            i == 0 ? "" : ",", static_cast<unsigned long long>(o.seed),
            o.lifetimes, o.fault_legs, o.mismatches,
            static_cast<long long>(o.stats.saves),
            static_cast<long long>(o.stats.delta_saves),
            static_cast<long long>(o.stats.full_saves),
            static_cast<long long>(o.stats.compactions),
            static_cast<long long>(o.stats.delta_bytes),
            static_cast<long long>(o.stats.full_equiv_bytes),
            o.stats.full_equiv_bytes > 0
                ? 1.0 - static_cast<double>(o.stats.delta_bytes +
                                            o.stats.full_bytes) /
                            static_cast<double>(o.stats.full_equiv_bytes)
                : 0.0);
      }
      std::fprintf(f, "]}\n");
      std::fclose(f);
      std::printf("report written to %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
    }
  }

  if (total_mismatches == 0) {
    std::printf("chaos soak PASSED: %d seed(s), resumed runs identical to "
                "uninterrupted runs\n", seeds);
    return 0;
  }
  std::printf("chaos soak FAILED: %d mismatch(es)\n", total_mismatches);
  return 1;
}
