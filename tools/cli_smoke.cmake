# Exit-status contract smoke test for mmwave_cli (run by ctest as
# `cmake -DCLI=<binary> -DWORK_DIR=<dir> -P cli_smoke.cmake`).
#
# The contract under test (DESIGN.md section 7):
#   0  success
#   1  verification found violations / unknown command
#   2  invalid input (malformed flags or instance spec)
#   3  solve degraded (deadline, stall, solver breakdown)
#
# PASS_REGULAR_EXPRESSION cannot assert exit codes, hence this script:
# each case runs the CLI and compares the real exit status (and, where it
# matters, stderr) against the contract.
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to mmwave_cli>")
endif()
if(NOT DEFINED WORK_DIR)
  set(WORK_DIR "${CMAKE_CURRENT_BINARY_DIR}")
endif()

set(failures 0)

# run(<expected-exit> <output-must-match-or-empty> args...)
# The regex is matched against stdout + stderr combined (errors go to
# stderr, the DEGRADED status line to stdout).
function(run expected out_regex)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 120)
  if(NOT code STREQUAL "${expected}")
    message(SEND_ERROR
      "mmwave_cli ${ARGN}: expected exit ${expected}, got '${code}'\n"
      "stdout: ${out}\nstderr: ${err}")
    math(EXPR failures "${failures}+1")
    set(failures ${failures} PARENT_SCOPE)
    return()
  endif()
  if(NOT out_regex STREQUAL "" AND NOT "${out}${err}" MATCHES "${out_regex}")
    message(SEND_ERROR
      "mmwave_cli ${ARGN}: output does not match '${out_regex}'\n"
      "stdout: ${out}\nstderr: ${err}")
    math(EXPR failures "${failures}+1")
    set(failures ${failures} PARENT_SCOPE)
  endif()
endfunction()

# --- exit 0: clean runs -----------------------------------------------------
run(0 "" solve --links=4 --channels=2 --pricing=heuristic)
run(0 "" help)

# --- master-LP pricing rule: --pricing combines the CG mode with the simplex
# rule as comma-separated tokens; --profile reports the rule that ran plus
# the basis-engine work counters.
run(0 "" solve --links=4 --channels=2 --pricing=dantzig)
run(0 "" solve --links=4 --channels=2 --pricing=heuristic,steepest)
run(0 "lp engine +pricing=steepest-edge.*ftran.*btran.*refactorizations"
    solve --links=4 --channels=2 --pricing=heuristic,steepest --profile)
run(0 "lp engine +pricing=dantzig"
    solve --links=4 --channels=2 --pricing=heuristic --profile)
run(2 "error: --pricing: expected heuristic\\|hybrid\\|exact"
    solve --links=4 --pricing=hybrid,quantum)

# --- exit 1: unknown command ------------------------------------------------
run(1 "" frobnicate)

# --- exit 2: malformed flags, one-line error on stderr ----------------------
run(2 "error: .*expected an integer" solve --links=lots)
run(2 "error: .*out of range"        solve --links=0)
run(2 "error: .*out of range"        solve --links=4 --channels=-3)
run(2 "error: "                      solve --links=4 --pricing=quantum)
run(2 "error: .*expected a number"   solve --links=4 --gamma-scale=big)
run(2 "error: .*out of range"        solve --links=4 --deadline=-1)
run(2 "error: "                      stream --links=4 --channels=2 --p-block=2)
run(2 "error: .*expected an integer" check --links=4 --seed=1.5)

# --- exit 2: malformed instance spec files ----------------------------------
file(WRITE "${WORK_DIR}/bad_spec.txt" "links = twenty\n")
run(2 "error: .*instance spec line 1" solve --instance=${WORK_DIR}/bad_spec.txt)
file(WRITE "${WORK_DIR}/bad_key.txt" "links = 4\nwat = 1\n")
run(2 "error: .*unknown key"          solve --instance=${WORK_DIR}/bad_key.txt)
run(2 "error: "                       solve --instance=${WORK_DIR}/no_such_file.txt)

# --- exit 0: a well-formed instance spec actually drives the solve ----------
file(WRITE "${WORK_DIR}/good_spec.txt"
  "# tiny instance\nlinks = 4\nchannels = 2\nlevels = 2\nseed = 3\n")
run(0 "" solve --instance=${WORK_DIR}/good_spec.txt --pricing=heuristic)

# --- checkpoint / resume / resolve ------------------------------------------
# solve --checkpoint persists the pool; --resume reloads it (fingerprint
# must match) and reports the repair outcome; resolve re-solves against a
# perturbed instance.  A corrupt checkpoint degrades to a cold start with
# exit 0 — robustness means the file can never make the solve fail.
set(CKPT "${WORK_DIR}/smoke.ckpt")
file(REMOVE "${CKPT}")
run(0 "checkpoint written to"
    solve --links=4 --channels=2 --seed=3 --checkpoint=${CKPT})
if(NOT EXISTS "${CKPT}")
  message(SEND_ERROR "solve --checkpoint did not write ${CKPT}")
  math(EXPR failures "${failures}+1")
endif()
run(0 "checkpoint: pool [0-9]+ loaded \\| [0-9]+ intact"
    solve --links=4 --channels=2 --seed=3 --checkpoint=${CKPT} --resume)
run(0 "checkpoint: pool [0-9]+ loaded"
    resolve --checkpoint=${CKPT} --links=4 --channels=2 --seed=3
            --block-links=0 --block-atten=0.05)
run(2 "error: --resume requires --checkpoint"
    solve --links=4 --channels=2 --resume)
run(2 "error: resolve requires --checkpoint"
    resolve --links=4 --channels=2)
file(WRITE "${WORK_DIR}/corrupt.ckpt" "mmwave-cg-checkpoint v1\nchecksum = 0x0123456789abcdef\nnot a checkpoint\n")
run(0 "checkpoint: unusable, cold start"
    solve --links=4 --channels=2 --seed=3
          --checkpoint=${WORK_DIR}/corrupt.ckpt --resume)

# --- pool lifecycle flags ---------------------------------------------------
# --pool-cap=0 means unbounded: a plain solve must run clean; a malformed
# policy is an exit-2 flag error like any other.
run(0 "" solve --links=4 --channels=2 --seed=3 --pool-cap=0)
run(2 "error: --pool-policy: .*expected lru\\|rc-hybrid"
    solve --links=4 --channels=2 --pool-policy=bogus)
run(2 "error: .*out of range" solve --links=4 --channels=2 --pool-cap=-1)

# A v1 checkpoint (no pool_meta section) must still load under the v2-aware
# parser: columns kept, lifecycle metadata cold, exit 0.  The checksum is the
# repo's FNV-1a over the payload, precomputed for exactly these bytes — edit
# the payload and it becomes (correctly) a corrupt-checkpoint case.
file(WRITE "${WORK_DIR}/v1_compat.ckpt"
  "mmwave-cg-checkpoint v1\n"
  "checksum = 0xfc15082131e73c01\n"
  "fingerprint = 0x0000000000000000\n"
  "links = 4\n"
  "channels = 2\n"
  "iterations = 1\n"
  "converged = 1\n"
  "total_slots = 0\n"
  "lower_bound = 0\n"
  "duals_hp = 0 0 0 0\n"
  "duals_lp = 0 0 0 0\n"
  "columns = 0\n"
  "end\n")
run(0 "checkpoint: pool [0-9]+ loaded"
    resolve --checkpoint=${WORK_DIR}/v1_compat.ckpt --links=4 --channels=2
            --seed=3 --block-links=0 --block-atten=0.05)

# --- stream crash recovery (checkpoint v3 delta log + session cursor) -------
# stream --checkpoint writes a base + delta chain and reports the save mix;
# --resume replays the saved cursor (or falls back down the ladder with exit
# 0 when the state is unusable); --metrics-json emits one JSON line per GOP
# plus a session summary line.  --repair validates like any other enum flag.
set(SLOG "${WORK_DIR}/smoke_stream.ckpt")
file(REMOVE "${SLOG}" "${SLOG}.delta")
run(0 "checkpoints: +[0-9]+ saves"
    stream --links=4 --channels=2 --seed=7 --gops=4 --p-block=0.2
           --checkpoint=${SLOG})
if(NOT EXISTS "${SLOG}")
  message(SEND_ERROR "stream --checkpoint did not write ${SLOG}")
  math(EXPR failures "${failures}+1")
endif()
# The finished session resumes as a no-op continuation: the cursor sits at
# num_gops, so the run reports itself as resumed and replays nothing.
run(0 "resume: cursor at gop 4/4"
    stream --links=4 --channels=2 --seed=7 --gops=4 --p-block=0.2
           --checkpoint=${SLOG} --resume)
# A different session (other seed) must reject the cursor and run fresh.
run(0 "resume: cursor rejected"
    stream --links=4 --channels=2 --seed=8 --gops=4 --p-block=0.2
           --checkpoint=${SLOG} --resume)
# A torn delta tail degrades, never errors: append garbage to the chain.
file(APPEND "${SLOG}.delta" "delta = 999 999 128 0xdeadbeefdeadbeef\ntorn")
run(0 "" stream --links=4 --channels=2 --seed=7 --gops=4 --p-block=0.2
         --checkpoint=${SLOG} --resume)
# Resuming against a missing file is a cold start, exit 0.  (The run
# itself then writes that checkpoint, so clear it for re-runs.)
file(REMOVE "${WORK_DIR}/absent_stream.ckpt"
            "${WORK_DIR}/absent_stream.ckpt.delta")
run(0 "resume: no usable checkpoint"
    stream --links=4 --channels=2 --seed=7 --gops=2
           --checkpoint=${WORK_DIR}/absent_stream.ckpt --resume)
run(0 "\"type\":\"gop\".*\"type\":\"session\""
    stream --links=4 --channels=2 --seed=7 --gops=3 --p-block=0.1
           --metrics-json)
run(0 "" stream --links=4 --channels=2 --seed=7 --gops=3 --repair=downgrade)
run(2 "error: --repair: expected drop\\|downgrade"
    stream --links=4 --channels=2 --gops=3 --repair=polish)
run(2 "error: --resume requires --checkpoint"
    stream --links=4 --channels=2 --gops=3 --resume)
# QoE flags: drain-risk shaping runs; the per-GOP lines carry the buffer
# fields; bogus policy names and out-of-range thresholds fail fast.
run(0 "policy=drain-risk"
    stream --links=4 --channels=2 --seed=7 --gops=3 --p-block=0.3
           --demand-policy=drain-risk --buffer-target=3)
run(0 "\"buffer_seconds\":.*\"rebuffer_events\":"
    stream --links=4 --channels=2 --seed=7 --gops=3 --p-block=0.1
           --metrics-json)
run(2 "error: --demand-policy: unknown policy"
    stream --links=4 --channels=2 --gops=3 --demand-policy=psychic)
run(2 "error: "
    stream --links=4 --channels=2 --gops=3 --buffer-startup=-1)

# --- serve: fleet daemon exit contract ---------------------------------------
# Flag validation happens before stdin is ever read, so bogus values fail
# fast with exit 2 like every other command.
run(2 "error: .*expected an integer" serve --workers=lots)
run(2 "error: .*out of range"        serve --workers=0)
run(2 "error: .*expected an integer" serve --max-queue=many)
run(2 "error: .*out of range"        serve --max-queue=0)

# A malformed request line costs exactly one error record; the lines around
# it still run, and the daemon itself exits 0 — bad input is a per-request
# outcome, never a process failure.  Records appear in admission order.
file(WRITE "${WORK_DIR}/serve_requests.jsonl"
  "{\"id\":\"a\",\"op\":\"solve\",\"links\":4,\"channels\":2,\"seed\":3,\"pricing\":\"heuristic\"}\n"
  "this is not a request\n"
  "{\"id\":\"b\",\"op\":\"solve\",\"links\":4,\"channels\":2,\"seed\":4,\"pricing\":\"heuristic\"}\n")
run(0 "\"id\":\"a\".*\"outcome\":\"ok\".*\"outcome\":\"error\".*\"id\":\"b\".*\"outcome\":\"ok\""
    serve --requests=${WORK_DIR}/serve_requests.jsonl --workers=1)

# SIGTERM drains: in-flight requests finish, the queue manifest lands under
# --state, and the process exits 0 (a handled signal is a graceful stop, not
# a crash).  A restarted serve with the same --state then finishes the fleet
# without repeating a request — each id appears exactly once across both
# segments' shared --out file.
set(FLEET_DIR "${WORK_DIR}/serve_drain")
file(REMOVE_RECURSE "${FLEET_DIR}")
file(MAKE_DIRECTORY "${FLEET_DIR}")
file(WRITE "${FLEET_DIR}/requests.jsonl"
  "{\"id\":\"f1\",\"op\":\"solve\",\"links\":4,\"channels\":2,\"seed\":11,\"pricing\":\"heuristic\"}\n"
  "{\"id\":\"f2\",\"op\":\"solve\",\"links\":4,\"channels\":2,\"seed\":12,\"pricing\":\"heuristic\"}\n"
  "{\"id\":\"f3\",\"op\":\"stream\",\"links\":4,\"channels\":2,\"seed\":13,\"gops\":2,\"p_block\":0.3,\"pricing\":\"heuristic\"}\n"
  "{\"id\":\"f4\",\"op\":\"solve\",\"links\":4,\"channels\":2,\"seed\":14,\"pricing\":\"heuristic\"}\n")
# The FIFO keeps the serve blocked on input (O_RDWR: no torn EOF), so only
# the SIGTERM ends segment 1 — the drain path is exercised deterministically
# no matter how fast the first two requests solve.
file(WRITE "${FLEET_DIR}/drain.sh"
  "set -u\n"
  "cd '${FLEET_DIR}'\n"
  "rm -f req.fifo\n"
  "mkfifo req.fifo\n"
  "'${CLI}' serve --requests=req.fifo --out=records.jsonl \\\n"
  "  --state=fleet.state --workers=1 &\n"
  "pid=$!\n"
  "exec 3<> req.fifo\n"
  "head -n 2 requests.jsonl >&3\n"
  "sleep 1\n"
  "kill -TERM $pid\n"
  "wait $pid\n"
  "exit $?\n")
execute_process(
  COMMAND bash "${FLEET_DIR}/drain.sh"
  RESULT_VARIABLE drain_code
  OUTPUT_VARIABLE drain_out
  ERROR_VARIABLE drain_err
  TIMEOUT 120)
if(NOT drain_code STREQUAL "0")
  message(SEND_ERROR
    "serve SIGTERM drain: expected exit 0, got '${drain_code}'\n"
    "stdout: ${drain_out}\nstderr: ${drain_err}")
  math(EXPR failures "${failures}+1")
endif()
if(NOT EXISTS "${FLEET_DIR}/fleet.state.queue")
  message(SEND_ERROR "serve drain did not write the queue manifest")
  math(EXPR failures "${failures}+1")
else()
  file(READ "${FLEET_DIR}/fleet.state.queue" drain_manifest)
  if(NOT drain_manifest MATCHES "^mmwave-fleet-queue v1\n")
    message(SEND_ERROR
      "queue manifest header is wrong:\n${drain_manifest}")
    math(EXPR failures "${failures}+1")
  endif()
  if(NOT drain_manifest MATCHES "end fnv=0x")
    message(SEND_ERROR
      "queue manifest has no end/fnv seal:\n${drain_manifest}")
    math(EXPR failures "${failures}+1")
  endif()
endif()
# Segment 2: re-feed the FULL request list against the drained state.  Ids
# the manifest marks done are skipped verbatim; the rest run to completion.
run(0 "[1-9][0-9]* skipped"
    serve --requests=${FLEET_DIR}/requests.jsonl
          --out=${FLEET_DIR}/records.jsonl
          --state=${FLEET_DIR}/fleet.state --workers=1)
if(EXISTS "${FLEET_DIR}/records.jsonl")
  file(READ "${FLEET_DIR}/records.jsonl" fleet_records)
  foreach(rid f1 f2 f3 f4)
    string(REGEX MATCHALL "\"id\":\"${rid}\"" hits "${fleet_records}")
    list(LENGTH hits n)
    if(NOT n EQUAL 1)
      message(SEND_ERROR
        "request '${rid}' has ${n} records across drain+resume (want 1):\n"
        "${fleet_records}")
      math(EXPR failures "${failures}+1")
    endif()
  endforeach()
else()
  message(SEND_ERROR "serve drain+resume wrote no records file")
  math(EXPR failures "${failures}+1")
endif()

# --- exit 3: degraded solve (deadline far too small for exact pricing) ------
run(3 "DEGRADED" solve --links=25 --channels=5 --pricing=exact --deadline=0.2)

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} CLI smoke case(s) failed")
endif()
message(STATUS "cli_smoke: all exit-status contract cases passed")
