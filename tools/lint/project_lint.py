#!/usr/bin/env python3
"""Project-invariant linter for the mmWave scheduler.

Enforces the contracts the compiler never checks (same philosophy as
tools/coverage_report.py: python3 stdlib only — no libclang, no external
packages).  Four rule families, documented in DESIGN.md §10:

  1. Status discipline
     - status-nodiscard:  every function returning common::Status or
       common::Expected<T> *by value* carries [[nodiscard]] on every
       declaration, definitions included.
     - status-discarded:  every statement-level call to such a function
       consumes the result (assign, return, compare, branch).  An explicit
       `(void)` cast is allowed only with a `// lint: discard` justification
       on one of the statement's lines.

  2. Module-boundary no-throw (DESIGN §7)
     - boundary-throw:  no `throw` in src/lp, src/milp, src/core,
       src/stream, src/check.  Intentional internal uses go in
       tools/lint/throw_allowlist.txt (format documented there).

  3. Determinism (thread-pool contract, DESIGN §5)
     - nondeterminism:  rand()/srand(), std::random_device, time(),
       gettimeofday, std::chrono::system_clock are forbidden in the
       output-affecting modules src/{lp,milp,core,sched,stream}.
     - unordered-iteration:  range-for over std::unordered_map /
       std::unordered_set in those modules leaks hash order into results.
     Either finding is suppressed by a `// lint: order-independent`
     justification on the offending line.

  4. Fault-site registry (src/common/fault_sites.h)
     - fault-site-literal:    src/ code must pass faults:: constants to
       fault_fires()/should_fire()/arm(), never free string literals.
     - fault-site-duplicate:  a site string registered more than once.
     - fault-site-unused:     a registered site no solver code checks.
     - fault-site-untested:   a registered site no test exercises.

Usage:
  project_lint.py [--root DIR]            lint the whole repository
  project_lint.py [--as-module MOD] FILE...   lint specific files (fixture
                                          mode; files are treated as living
                                          in src/MOD, default `core`, and
                                          registry cross-checks are skipped)

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

import os
import re
import sys

# Modules whose boundary may not throw (family 2).
NOTHROW_MODULES = ("lp", "milp", "core", "stream", "check", "fleet")
# Output-affecting modules under the determinism contract (family 3).
DETERMINISTIC_MODULES = ("lp", "milp", "core", "sched", "stream", "fleet")
# Scan roots relative to the repo root, and accepted extensions.
SCAN_DIRS = ("src", "tests", "bench", "tools")
EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")
# The linter's own test corpus is deliberately full of violations.
EXCLUDE_PARTS = ("tests/tools/fixtures",)

REGISTRY_RELPATH = os.path.join("src", "common", "fault_sites.h")
ALLOWLIST_RELPATH = os.path.join("tools", "lint", "throw_allowlist.txt")

JUSTIFY_RE = re.compile(r"//\s*lint:\s*(discard|order-independent)\b")

# A function declaration returning Status/Expected by value.  Anchored at a
# statement boundary (or access specifier) so `return Status::Error(...)`
# and local variables of type Status never match: the name must be directly
# followed by the parameter list's `(`.
DECL_RE = re.compile(
    r"(?:^|[;{}]|\b(?:public|private|protected)\s*:)"
    r"(?P<prefix>(?:\s*(?:\[\[[^\]]*\]\]|static|inline|constexpr|friend|"
    r"virtual|explicit|const))*)"
    r"\s*(?P<ret>(?:mmwave\s*::\s*)?(?:common\s*::\s*)?"
    r"(?:Status|Expected\s*<[^;{}()]*>))"
    r"\s*(?P<ref>[&*]?)\s*"
    r"(?P<name>(?:\w+\s*::\s*)*[A-Za-z_]\w*)\s*\(",
    re.MULTILINE,
)

NONDET_PATTERNS = (
    (re.compile(r"\bsrand\s*\("), "srand() seeds global libc state"),
    (re.compile(r"(?:(?<![\w.:])|(?<=\bstd::))rand\s*\("),
     "rand() is seed- and libc-dependent"),
    (re.compile(r"\brandom_device\b"), "std::random_device is nondeterministic"),
    (re.compile(r"\bstd\s*::\s*time\s*\("), "std::time() reads the wall clock"),
    (re.compile(r"(?<![\w.:])time\s*\("), "time() reads the wall clock"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday reads the wall clock"),
    (re.compile(r"\bsystem_clock\b"),
     "system_clock is wall-clock time (use steady_clock for durations)"),
)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{}]*?>\s*&?\s*(\w+)\s*[;={(),]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^();]*?):([^();]*?)\)")

REGISTRY_CONST_RE = re.compile(
    r"constexpr\s+const\s+char\s*\*\s+(k\w+)\s*=\s*\"([^\"]+)\"")
FAULT_LITERAL_RE = re.compile(
    r"(?:\bfault_fires|\bshould_fire|\.arm)\s*\(\s*\"([^\"]+)\"")

STMT_SKIP_HEADS = frozenset((
    "return", "co_return", "if", "else", "while", "for", "do", "switch",
    "case", "default", "break", "continue", "goto", "throw", "using",
    "namespace", "delete", "new", "typedef", "template", "class", "struct",
    "enum", "friend", "extern", "public", "private", "protected", "try",
    "catch", "static_assert",
))


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root):
        rel = os.path.relpath(self.path, root) if root else self.path
        return "%s:%d: [%s] %s" % (rel, self.line, self.rule, self.message)


def strip_code(text, keep_strings=False):
    """Blank comments — and, unless keep_strings, string/char literal
    *contents* — with spaces, preserving line structure and the quote
    characters themselves."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail to code to stay line-stable
                state = "code"
                out.append(c)
            else:
                out.append(c if keep_strings else " ")
        elif state == "chr":
            if c == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append(c)
            elif c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(c if keep_strings else " ")
        i += 1
    return "".join(out)


def blank_preprocessor(stripped):
    """Blank preprocessor directives so #include <...> and macro bodies do
    not confuse the statement splitter."""
    lines = stripped.split("\n")
    for idx, line in enumerate(lines):
        if line.lstrip().startswith("#"):
            lines[idx] = " " * len(line)
    return "\n".join(lines)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class SourceFile:
    def __init__(self, path, module, scope):
        self.path = path
        self.module = module  # src module name ("core", ...) or None
        self.scope = scope    # "src", "tests", "bench", "tools"
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            self.raw = fh.read()
        self.stripped = blank_preprocessor(strip_code(self.raw))
        # Comments blanked but string literals intact: what the fault-site
        # scan reads (doc comments may legitimately quote site names).
        self.code_with_strings = strip_code(self.raw, keep_strings=True)
        self.justified = {}  # line -> kind
        for idx, line in enumerate(self.raw.split("\n"), start=1):
            m = JUSTIFY_RE.search(line)
            if m:
                self.justified[idx] = m.group(1)


def split_statements(text):
    """Yield (start_line, end_line, statement_text) split on ; { } at paren
    depth zero.  Brace boundaries terminate statements so function headers
    and block contents separate naturally."""
    start = 0
    depth = 0
    line = 1
    start_line = 1
    for i, c in enumerate(text):
        if c == "\n":
            line += 1
            continue
        if c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        elif c in ";{}" and depth == 0:
            stmt = text[start:i].strip()
            if stmt:
                yield start_line, line, stmt
            start = i + 1
            start_line = line
    tail = text[start:].strip()
    if tail:
        yield start_line, line, tail


def paren_contents(text, open_pos):
    """Text between the paren at open_pos and its match (best effort)."""
    depth = 0
    for i in range(open_pos, min(len(text), open_pos + 4000)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_pos + 1:i]
    return text[open_pos + 1:open_pos + 4000]


# A parenthesized *initializer* rather than a parameter list:
# `Expected<int> e(42)`, `Expected<int> e(Status::Error(...))`.  Parameter
# lists start with a type; initializers start with a literal, a unary
# operator, or an identifier-chain that is immediately called/dereferenced.
INITIALIZER_RE = re.compile(
    r'^\s*(?:[0-9"\'\-+!~*]|[A-Za-z_][\w:]*\s*[(.]|[A-Za-z_][\w:]*\s*->)')


def scan_declarations(src, findings):
    """Family 1a.  Returns the set of Status/Expected-returning function
    names declared in this file (nodiscard or not)."""
    names = set()
    for m in DECL_RE.finditer(src.stripped):
        if m.group("ref"):  # reference/pointer return: discard is harmless
            continue
        args = paren_contents(src.stripped, m.end() - 1)
        if INITIALIZER_RE.match(args):  # variable with paren initializer
            continue
        name = re.sub(r"\s+", "", m.group("name")).split("::")[-1]
        if name in ("operator", "if", "while", "for", "switch", "return"):
            continue
        names.add(name)
        if "nodiscard" not in m.group("prefix"):
            findings.append(Finding(
                src.path, line_of(src.stripped, m.start("ret")),
                "status-nodiscard",
                "function '%s' returns %s by value but is not [[nodiscard]]"
                % (name, re.sub(r"\s+", "", m.group("ret")))))
    return names


CALL_HEAD_RE = re.compile(
    r"^(?P<void>\(\s*void\s*\)\s*)?"
    r"(?P<chain>(?:[A-Za-z_]\w*(?:\s*::\s*|\s*\.\s*|\s*->\s*))*)"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")


def scan_discarded_calls(src, nodiscard_names, findings):
    """Family 1b: statement-level calls whose result evaporates."""
    for start_line, end_line, stmt in split_statements(src.stripped):
        head = re.match(r"[A-Za-z_]\w*", stmt)
        if head and head.group(0) in STMT_SKIP_HEADS:
            continue
        if "=" in stmt:  # assignment or initialized declaration
            continue
        m = CALL_HEAD_RE.match(stmt)
        if not m or m.group("name") not in nodiscard_names:
            continue
        justified = any(
            src.justified.get(ln) == "discard"
            for ln in range(start_line, end_line + 1))
        if m.group("void"):
            if not justified:
                findings.append(Finding(
                    src.path, start_line, "status-discarded",
                    "(void)-discarded result of '%s' lacks a "
                    "`// lint: discard` justification" % m.group("name")))
        else:
            findings.append(Finding(
                src.path, start_line, "status-discarded",
                "result of '%s' is ignored (assign it, branch on it, or "
                "`(void)` it with a `// lint: discard` justification)"
                % m.group("name")))


def scan_throws(src, allowlist, findings):
    """Family 2: `throw` inside the no-throw boundary."""
    if src.scope != "src" or src.module not in NOTHROW_MODULES:
        return
    for m in re.finditer(r"\bthrow\b", src.stripped):
        line = line_of(src.stripped, m.start())
        content = src.stripped.split("\n")[line - 1]
        allowed = any(
            os.path.normpath(path) in os.path.normpath(src.path)
            and (sub == "*" or sub in content)
            for path, sub in allowlist)
        if not allowed:
            findings.append(Finding(
                src.path, line, "boundary-throw",
                "`throw` inside the no-throw solver boundary (DESIGN §7); "
                "return common::Status, or allowlist this line in "
                "tools/lint/throw_allowlist.txt"))


def scan_determinism(src, findings):
    """Family 3: wall-clock / libc randomness / hash-order leaks."""
    if src.scope != "src" or src.module not in DETERMINISTIC_MODULES:
        return
    flagged = set()
    for pattern, why in NONDET_PATTERNS:
        for m in pattern.finditer(src.stripped):
            line = line_of(src.stripped, m.start())
            if src.justified.get(line) == "order-independent":
                continue
            if (line, why) in flagged:
                continue
            flagged.add((line, why))
            findings.append(Finding(
                src.path, line, "nondeterminism",
                why + " (deterministic-output module)"))
    unordered_vars = set(UNORDERED_DECL_RE.findall(src.stripped))
    for m in RANGE_FOR_RE.finditer(src.stripped):
        range_expr = m.group(2)
        over_unordered = "unordered_" in range_expr or any(
            re.search(r"\b%s\b" % re.escape(v), range_expr)
            for v in unordered_vars)
        if not over_unordered:
            continue
        line = line_of(src.stripped, m.start())
        if src.justified.get(line) == "order-independent":
            continue
        findings.append(Finding(
            src.path, line, "unordered-iteration",
            "range-for over an unordered container leaks hash order into "
            "module output; iterate a sorted copy or justify with "
            "`// lint: order-independent`"))


def parse_registry(path, findings):
    """Family 4 source of truth.  Returns {const_name: site_string}."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    sites = {}
    seen_strings = {}
    for m in REGISTRY_CONST_RE.finditer(text):
        const, site = m.group(1), m.group(2)
        line = line_of(text, m.start())
        if const in sites:
            findings.append(Finding(
                path, line, "fault-site-duplicate",
                "constant '%s' declared more than once" % const))
        if site in seen_strings:
            findings.append(Finding(
                path, line, "fault-site-duplicate",
                "site string \"%s\" registered twice (also %s)"
                % (site, seen_strings[site])))
        sites[const] = site
        seen_strings.setdefault(site, const)
    return sites


def scan_fault_literals(src, findings):
    """Family 4b: free site-string literals at injector call sites in src/."""
    if src.scope != "src":
        return
    for m in FAULT_LITERAL_RE.finditer(src.code_with_strings):
        findings.append(Finding(
            src.path, line_of(src.code_with_strings, m.start()),
            "fault-site-literal",
            "free site string \"%s\" at an injector call site; use a "
            "faults:: constant from src/common/fault_sites.h" % m.group(1)))


def cross_check_registry(sites, registry_path, sources, findings):
    """Family 4c/4d: every registered site is checked by solver code and
    exercised by at least one test."""
    src_text = []
    test_text = []
    for s in sources:
        if os.path.normpath(s.path) == os.path.normpath(registry_path):
            continue
        if s.scope == "src":
            src_text.append(s.stripped)
        elif s.scope == "tests":
            test_text.append(s.stripped)
    src_blob = "\n".join(src_text)
    test_blob = "\n".join(test_text)
    with open(registry_path, "r", encoding="utf-8") as fh:
        reg_text = fh.read()
    for const, site in sorted(sites.items()):
        m = re.search(r"\b%s\b" % const, reg_text)
        line = line_of(reg_text, m.start()) if m else 1
        if not re.search(r"\b%s\b" % const, src_blob):
            findings.append(Finding(
                registry_path, line, "fault-site-unused",
                "registered site '%s' (\"%s\") is never checked by solver "
                "code" % (const, site)))
        if not re.search(r"\b%s\b" % const, test_blob):
            findings.append(Finding(
                registry_path, line, "fault-site-untested",
                "registered site '%s' (\"%s\") is not exercised by any test"
                % (const, site)))


def load_allowlist(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            entries.append((parts[0], parts[1] if len(parts) > 1 else "*"))
    return entries


def classify(path, root):
    """(module, scope) of a repo file."""
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    scope = rel.split("/", 1)[0]
    module = None
    if scope == "src":
        parts = rel.split("/")
        if len(parts) > 2:
            module = parts[1]
    return module, scope


def collect_repo_files(root):
    files = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            rel = os.path.relpath(dirpath, root).replace(os.sep, "/")
            if any(part in rel for part in EXCLUDE_PARTS):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def usage_error(msg):
    sys.stderr.write("project_lint: %s\n" % msg)
    sys.stderr.write(__doc__.split("Usage:")[1])
    return 2


def main(argv):
    root = None
    as_module = "core"
    explicit = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--root":
            if i + 1 >= len(argv):
                return usage_error("--root needs a directory")
            root = argv[i + 1]
            i += 2
        elif arg.startswith("--root="):
            root = arg.split("=", 1)[1]
            i += 1
        elif arg == "--as-module":
            if i + 1 >= len(argv):
                return usage_error("--as-module needs a module name")
            as_module = argv[i + 1]
            i += 2
        elif arg.startswith("--as-module="):
            as_module = arg.split("=", 1)[1]
            i += 1
        elif arg in ("-h", "--help"):
            sys.stdout.write(__doc__)
            return 0
        elif arg.startswith("-"):
            return usage_error("unknown option %r" % arg)
        else:
            explicit.append(arg)
            i += 1

    if explicit and root:
        return usage_error("--root and explicit FILEs are mutually exclusive")
    if not explicit:
        root = root or os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        if not os.path.isdir(root):
            return usage_error("root %r is not a directory" % root)

    findings = []
    sources = []
    if explicit:
        for path in explicit:
            if not os.path.isfile(path):
                return usage_error("no such file: %r" % path)
            sources.append(SourceFile(path, as_module, "src"))
        display_root = None
    else:
        for path in collect_repo_files(root):
            module, scope = classify(path, root)
            sources.append(SourceFile(path, module, scope))
        display_root = root

    allowlist = load_allowlist(
        os.path.join(root, ALLOWLIST_RELPATH) if root else ALLOWLIST_RELPATH)

    # Family 1a across everything first: the call-site pass needs the full
    # name set so a header's declaration covers its .cpp's callers.
    nodiscard_names = set()
    for src in sources:
        nodiscard_names |= scan_declarations(src, findings)

    for src in sources:
        scan_discarded_calls(src, nodiscard_names, findings)
        scan_throws(src, allowlist, findings)
        scan_determinism(src, findings)
        scan_fault_literals(src, findings)

    if not explicit:
        registry_path = os.path.join(root, REGISTRY_RELPATH)
        if os.path.isfile(registry_path):
            sites = parse_registry(registry_path, findings)
            cross_check_registry(sites, registry_path, sources, findings)
        else:
            findings.append(Finding(
                registry_path, 1, "fault-site-unused",
                "fault-site registry header is missing"))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render(display_root))
    print("project_lint: %d finding(s) across %d file(s)"
          % (len(findings), len(sources)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
