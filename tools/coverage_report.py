#!/usr/bin/env python3
"""Aggregate gcov line coverage and gate it against recorded floors.

Walks a build tree compiled with MMWAVE_COVERAGE=ON (gcc --coverage), runs
`gcov --json-format` on every .gcda, and unions the per-TU line counters per
source file: a line is covered if ANY translation unit executed it (headers
are compiled into many TUs).  Only files under the configured prefixes are
scored.  Exits non-zero if any prefix falls below its floor.

No gcovr/lcov dependency: the container ships bare gcov + python3 only.

Usage:
  tools/coverage_report.py --build build-analysis-cov \
      [--root .] [--baseline tools/coverage_baseline.txt]
"""

import argparse
import json
import os
import subprocess
import sys


def parse_baseline(path):
    """Return {prefix: floor_percent} from 'prefix floor' lines."""
    floors = {}
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            prefix, floor = line.split()
            floors[prefix] = float(floor)
    if not floors:
        raise ValueError(f"{path}: no floors recorded")
    return floors


def gcov_json(gcda, build_dir):
    """Run gcov on one .gcda and yield its parsed per-file records."""
    proc = subprocess.run(
        ["gcov", "--stdout", "--json-format", gcda],
        cwd=os.path.dirname(gcda) or build_dir,
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        print(f"warning: gcov failed on {gcda}: {proc.stderr.strip()}",
              file=sys.stderr)
        return
    # One JSON document per .gcno referenced by the .gcda (usually one).
    for doc in proc.stdout.splitlines():
        doc = doc.strip()
        if not doc:
            continue
        try:
            data = json.loads(doc)
        except json.JSONDecodeError:
            continue
        cwd = data.get("current_working_directory", "")
        for record in data.get("files", []):
            path = record.get("file", "")
            if not os.path.isabs(path):
                path = os.path.normpath(os.path.join(cwd, path))
            yield path, record.get("lines", [])


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", required=True, help="build tree with .gcda files")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--baseline", default=None,
                    help="floor file (default: <root>/tools/coverage_baseline.txt)")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    baseline = args.baseline or os.path.join(root, "tools",
                                             "coverage_baseline.txt")
    floors = parse_baseline(baseline)

    gcdas = []
    for dirpath, _, names in os.walk(os.path.abspath(args.build)):
        gcdas.extend(os.path.join(dirpath, n)
                     for n in names if n.endswith(".gcda"))
    if not gcdas:
        print("error: no .gcda files found -- was the build configured with "
              "MMWAVE_COVERAGE=ON and the test suite run?", file=sys.stderr)
        return 2

    # file -> {line_number: max count across TUs}
    lines_by_file = {}
    for gcda in gcdas:
        for path, lines in gcov_json(gcda, args.build):
            rel = os.path.relpath(path, root)
            if not any(rel.startswith(p.rstrip("/") + "/") for p in floors):
                continue
            counts = lines_by_file.setdefault(rel, {})
            for entry in lines:
                num = entry["line_number"]
                counts[num] = max(counts.get(num, 0), entry["count"])

    failed = False
    for prefix in sorted(floors):
        total = covered = 0
        scored = []
        for rel in sorted(lines_by_file):
            if not rel.startswith(prefix.rstrip("/") + "/"):
                continue
            counts = lines_by_file[rel]
            hit = sum(1 for c in counts.values() if c > 0)
            scored.append((rel, hit, len(counts)))
            total += len(counts)
            covered += hit
        if total == 0:
            print(f"{prefix}: NO DATA (floor {floors[prefix]:.1f}%) -- FAIL")
            failed = True
            continue
        pct = 100.0 * covered / total
        verdict = "ok" if pct >= floors[prefix] else "FAIL"
        if verdict == "FAIL":
            failed = True
        print(f"{prefix}: {pct:.2f}% line coverage "
              f"({covered}/{total} lines, floor {floors[prefix]:.1f}%) -- "
              f"{verdict}")
        for rel, hit, n in scored:
            if n > 0:
                print(f"  {rel}: {100.0 * hit / n:.1f}% ({hit}/{n})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
