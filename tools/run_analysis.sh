#!/usr/bin/env bash
# Pre-merge correctness gate for the mmWave scheduler.
#
# Builds and tests the tree under a matrix of analysis configurations and
# exits non-zero if ANY leg fails:
#
#   1. RelWithDebInfo, -Werror            full ctest suite
#   2. ASan + UBSan, -Werror              full ctest suite under sanitizers
#   3. clang-tidy over src/               zero findings allowed
#                                         (skipped loudly if the tool is not
#                                          installed; see .clang-tidy)
#   4. certificate verifier               mmwave_cli check on the seed
#                                         Fig. 1 / Fig. 4 scenarios, run on
#                                         the *sanitized* binaries
#   5. ThreadSanitizer                    thread-pool + warm-equivalence
#                                         tests and a --threads bench smoke
#                                         under MMWAVE_SANITIZE=thread
#   6. perf bench                         perf_solvers + perf_resolve +
#                                         perf_pool (google-benchmark) on the
#                                         plain build; writes BENCH_cg.json
#                                         (warm/cold CG master comparison),
#                                         BENCH_resolve.json (checkpoint
#                                         restart/repair economics) and
#                                         BENCH_pool.json (master-LP time and
#                                         warm-hit rate vs pool cap)
#   7. robustness                         fault-injection + anytime-contract
#                                         + checkpoint/resolve/pool suites
#                                         re-run under ASan+UBSan, plus the
#                                         instance-spec and checkpoint fuzz
#                                         harnesses (a 30 s libFuzzer run
#                                         each when a clang fuzzer build
#                                         exists, the deterministic
#                                         corpus-replay battery otherwise)
#   8. coverage                           gcov line-coverage gate: Debug +
#                                         MMWAVE_COVERAGE=ON build, full
#                                         ctest, then tools/coverage_report.py
#                                         fails if src/core or src/stream
#                                         drops below the floors recorded in
#                                         tools/coverage_baseline.txt
#   9. project lint                       tools/lint/project_lint.py — the
#                                         repo's own invariants made static:
#                                         [[nodiscard]] Status discipline,
#                                         the DESIGN §7 no-throw boundary,
#                                         the determinism contract, and the
#                                         fault-site registry cross-check
#                                         (zero findings allowed; DESIGN §10)
#  10. chaos soak                         tools/chaos_soak on the sanitized
#                                         build: seeded kill/restart sessions
#                                         resumed from the delta-checkpoint
#                                         log must match the uninterrupted
#                                         runs to 1e-7 (digest chains
#                                         bit-identical), including legs with
#                                         torn delta writes, compaction
#                                         crashes and corrupted cursors;
#                                         writes BENCH_soak.json with the
#                                         delta-vs-full save economics
#  11. fleet gate                          the multi-piconet serve mode on the
#                                         sanitized build: the fleet server /
#                                         shared-pool ctest suites, the
#                                         chaos_soak --fleet drain/restart
#                                         sweep (records must match the
#                                         uninterrupted fleet exactly across
#                                         poison / overflow / drain-crash
#                                         legs), and perf_fleet, which both
#                                         measures req/s + latency quantiles
#                                         and enforces record-equality across
#                                         worker counts; writes
#                                         BENCH_fleet.json
#  12. QoE gate                           the client-buffer sessions on the
#                                         sanitized build: the ClientBuffer /
#                                         DemandPolicy / BlockageSession
#                                         suites, then perf_qoe, which is
#                                         both the stall-reduction bench and
#                                         its own acceptance gate (drain-risk
#                                         must strictly beat blind on enough
#                                         seeds with no stall or layer-ratio
#                                         regression); writes BENCH_qoe.json
#
# Usage:  tools/run_analysis.sh [--fast|--robustness|--coverage|--lint|--soak|--fleet|--qoe]
#   --fast        skip legs 1, 6 and 8 (the plain build, the perf bench and
#                 the coverage gate) — the sanitized legs still run the full
#                 suite, so this is the quick pre-push variant.
#   --robustness  the CI degraded-path gate: build the ASan+UBSan tree and
#                 run only legs 4 and 7 (certificate verifier + fault/fuzz
#                 batteries).  Skips the full sanitized ctest sweep, the
#                 plain build, clang-tidy, TSan, the perf bench and coverage.
#   --coverage    the CI coverage gate: run only leg 8 (instrumented build +
#                 full ctest + coverage_report.py against the recorded
#                 floors).
#   --lint        the CI static-analysis gate: run only legs 3 and 9
#                 (clang-tidy + project lint).  Configures a build tree for
#                 the compilation database but compiles nothing.
#   --soak        the CI crash-recovery gate: build the ASan+UBSan tree and
#                 run only leg 10 (the chaos-soak driver, deeper seed sweep
#                 than the smoke ctest) plus the checkpoint-log suites.
#   --fleet       the CI fleet gate: build the ASan+UBSan tree and run only
#                 leg 11 (fleet/shared-pool suites + chaos_soak --fleet with
#                 a deeper seed sweep + perf_fleet).
#   --qoe         the CI QoE gate: build the ASan+UBSan tree and run only
#                 leg 12 (buffer/policy/session suites + perf_qoe with a
#                 deeper seed sweep than the smoke ctest).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
ROBUSTNESS=0
COVERAGE_ONLY=0
LINT_ONLY=0
SOAK_ONLY=0
FLEET_ONLY=0
QOE_ONLY=0
case "${1:-}" in
  --fast) FAST=1 ;;
  --robustness) ROBUSTNESS=1 ;;
  --coverage) COVERAGE_ONLY=1 ;;
  --lint) LINT_ONLY=1 ;;
  --soak) SOAK_ONLY=1 ;;
  --fleet) FLEET_ONLY=1 ;;
  --qoe) QOE_ONLY=1 ;;
esac

failures=()
note() { printf '\n==== %s ====\n' "$*"; }
leg_failed() { failures+=("$1"); printf 'LEG FAILED: %s\n' "$1" >&2; }

configure_and_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$ROOT" -DMMWAVE_WERROR=ON "$@" || return 1
  cmake --build "$dir" -j "$JOBS" || return 1
}

run_ctest() {
  local dir="$1"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
}

# ---- Leg 1: plain RelWithDebInfo + Werror ---------------------------------
if [[ "$FAST" == 0 && "$ROBUSTNESS" == 0 && "$COVERAGE_ONLY" == 0 \
      && "$LINT_ONLY" == 0 && "$SOAK_ONLY" == 0 && "$FLEET_ONLY" == 0 \
      && "$QOE_ONLY" == 0 ]]; then
  note "leg 1: RelWithDebInfo + -Werror"
  if configure_and_build "$ROOT/build-analysis-rel" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo; then
    run_ctest "$ROOT/build-analysis-rel" || leg_failed "ctest (RelWithDebInfo)"
  else
    leg_failed "build (RelWithDebInfo + Werror)"
  fi
else
  note "leg 1 skipped"
fi

# ---- Leg 2: ASan + UBSan --------------------------------------------------
note "leg 2: AddressSanitizer + UndefinedBehaviorSanitizer + -Werror"
ASAN_DIR="$ROOT/build-analysis-asan"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
if [[ "$COVERAGE_ONLY" == 1 || "$LINT_ONLY" == 1 ]]; then
  echo "leg 2 skipped (--coverage/--lint)"
elif configure_and_build "$ASAN_DIR" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      "-DMMWAVE_SANITIZE=address;undefined"; then
  if [[ "$ROBUSTNESS" == 0 && "$SOAK_ONLY" == 0 && "$FLEET_ONLY" == 0 \
        && "$QOE_ONLY" == 0 ]]; then
    run_ctest "$ASAN_DIR" || leg_failed "ctest (ASan+UBSan)"
  else
    echo "(--robustness/--soak/--fleet/--qoe: full sanitized ctest sweep skipped; later legs use this build)"
  fi
else
  leg_failed "build (ASan+UBSan)"
fi

# ---- Leg 3: clang-tidy over src/ ------------------------------------------
note "leg 3: clang-tidy"
if [[ "$ROBUSTNESS" == 1 || "$COVERAGE_ONLY" == 1 || "$SOAK_ONLY" == 1 \
      || "$FLEET_ONLY" == 1 || "$QOE_ONLY" == 1 ]]; then
  echo "leg 3 skipped"
elif command -v clang-tidy > /dev/null 2>&1; then
  TIDY_DIR="$ASAN_DIR"
  [[ -d "$ROOT/build-analysis-rel" && "$FAST" == 0 ]] && TIDY_DIR="$ROOT/build-analysis-rel"
  if [[ "$LINT_ONLY" == 1 ]]; then
    # --lint skips the sanitized build; configure (not compile) a plain
    # tree so the tidy target has a compilation database to run against.
    TIDY_DIR="$ROOT/build-analysis-rel"
    cmake -B "$TIDY_DIR" -S "$ROOT" -DMMWAVE_WERROR=ON \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null \
      || leg_failed "configure (clang-tidy compilation database)"
  fi
  cmake --build "$TIDY_DIR" -j "$JOBS" --target tidy || leg_failed "clang-tidy"
else
  echo "clang-tidy not found on PATH -- static-analysis leg SKIPPED" >&2
  echo "(install clang-tidy to make this gate complete)" >&2
fi

# ---- Leg 4: certificate verifier on the seed figure scenarios -------------
# Runs on the sanitized binary: the verifier exercises the full CG pipeline,
# so this leg doubles as a deep sanitizer workout of the hot path.
note "leg 4: solver certificate verifier (mmwave_cli check)"
CLI="$ASAN_DIR/tools/mmwave_cli"
if [[ "$COVERAGE_ONLY" == 1 || "$LINT_ONLY" == 1 || "$SOAK_ONLY" == 1 \
      || "$FLEET_ONLY" == 1 || "$QOE_ONLY" == 1 ]]; then
  echo "leg 4 skipped (--coverage/--lint/--soak/--fleet/--qoe)"
elif [[ -x "$CLI" ]]; then
  # Fig. 1 scenario family: Table I ladder, K = 5, hybrid pricing.
  "$CLI" check --links=10 --channels=5 --seed=1 \
    || leg_failed "verifier (Fig. 1 scenario)"
  # Fig. 4 convergence scenario: binding interference, exact pricing.
  "$CLI" check --links=8 --channels=2 --levels=3 --gamma-scale=3 \
    --pricing=exact --seed=1 \
    || leg_failed "verifier (Fig. 4 scenario)"
else
  leg_failed "verifier (mmwave_cli missing: sanitized build failed?)"
fi

# ---- Leg 5: ThreadSanitizer over the parallel paths -----------------------
# The thread pool and the warm-equivalence pipeline are the two places data
# races could hide; run exactly those tests (plus a --threads bench smoke)
# under TSan rather than the whole suite — TSan slows everything ~10x.
note "leg 5: ThreadSanitizer (thread pool + warm equivalence)"
TSAN_DIR="$ROOT/build-analysis-tsan"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
if [[ "$ROBUSTNESS" == 1 || "$COVERAGE_ONLY" == 1 || "$LINT_ONLY" == 1 \
      || "$SOAK_ONLY" == 1 || "$FLEET_ONLY" == 1 || "$QOE_ONLY" == 1 ]]; then
  echo "leg 5 skipped"
elif configure_and_build "$TSAN_DIR" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      "-DMMWAVE_SANITIZE=thread"; then
  (cd "$TSAN_DIR" && ctest --output-on-failure -j "$JOBS" \
      -R 'ThreadPool|ParallelFor|ResolveThreads|WarmEquivalence|SimplexWarm') \
    || leg_failed "ctest (TSan: parallel paths)"
  FIG1="$TSAN_DIR/bench/fig1_sched_time"
  if [[ -x "$FIG1" ]]; then
    "$FIG1" --links=8 --seeds=4 --threads=2 --gamma-scale=1 > /dev/null \
      || leg_failed "fig1_sched_time --threads=2 under TSan"
  else
    leg_failed "fig1_sched_time missing (TSan build incomplete?)"
  fi
else
  leg_failed "build (TSan)"
fi

# ---- Leg 6: perf bench (BENCH_cg.json) ------------------------------------
# The warm/cold CG master comparison the PR-level perf claims come from,
# plus the revised-vs-dense simplex engine and Dantzig-vs-steepest pricing
# arms (BM_RevisedVsDense{,Warm}, BM_SimplexPricing) — perf_solvers runs
# its full suite, so new arms land in BENCH_cg.json automatically.
# A missing binary is a failure, not a skip: the bench target silently
# falling out of the build would otherwise go unnoticed.
if [[ "$FAST" == 0 && "$ROBUSTNESS" == 0 && "$COVERAGE_ONLY" == 0 \
      && "$LINT_ONLY" == 0 && "$SOAK_ONLY" == 0 && "$FLEET_ONLY" == 0 \
      && "$QOE_ONLY" == 0 ]]; then
  note "leg 6: perf bench (perf_solvers -> BENCH_cg.json, perf_resolve -> BENCH_resolve.json, perf_pool -> BENCH_pool.json)"
  PERF="$ROOT/build-analysis-rel/bench/perf_solvers"
  if [[ -x "$PERF" ]]; then
    "$PERF" --benchmark_min_time=0.1 \
        --benchmark_out="$ROOT/BENCH_cg.json" --benchmark_out_format=json \
      || leg_failed "perf_solvers"
    [[ -s "$ROOT/BENCH_cg.json" ]] || leg_failed "BENCH_cg.json not written"
  else
    leg_failed "perf_solvers missing (bench targets fell out of the build?)"
  fi
  PERF_RESOLVE="$ROOT/build-analysis-rel/bench/perf_resolve"
  if [[ -x "$PERF_RESOLVE" ]]; then
    "$PERF_RESOLVE" --benchmark_min_time=0.1 \
        --benchmark_out="$ROOT/BENCH_resolve.json" --benchmark_out_format=json \
      || leg_failed "perf_resolve"
    [[ -s "$ROOT/BENCH_resolve.json" ]] || leg_failed "BENCH_resolve.json not written"
  else
    leg_failed "perf_resolve missing (bench targets fell out of the build?)"
  fi
  PERF_POOL="$ROOT/build-analysis-rel/bench/perf_pool"
  if [[ -x "$PERF_POOL" ]]; then
    "$PERF_POOL" --benchmark_min_time=0.1 \
        --benchmark_out="$ROOT/BENCH_pool.json" --benchmark_out_format=json \
      || leg_failed "perf_pool"
    [[ -s "$ROOT/BENCH_pool.json" ]] || leg_failed "BENCH_pool.json not written"
  else
    leg_failed "perf_pool missing (bench targets fell out of the build?)"
  fi
else
  note "leg 6 skipped"
fi

# ---- Leg 7: robustness (fault injection + fuzz) ---------------------------
# Re-run the degraded-path suites under the sanitized build: every fault
# scenario must return a verifier-clean incumbent without tripping ASan or
# UBSan on the error paths (the places instrumentation matters most, since
# ordinary runs rarely take them).
note "leg 7: robustness (fault-injection + checkpoint suites, both fuzz harnesses)"

# run_fuzz <name> <corpus-dir>: libFuzzer with a bounded budget on a clang
# -DMMWAVE_FUZZ=ON build, the deterministic corpus-replay battery otherwise.
run_fuzz() {
  local name="$1" corpus="$2"
  local bin="$ASAN_DIR/tests/fuzz/$name"
  if [[ ! -x "$bin" ]]; then
    leg_failed "$name missing (sanitized build incomplete?)"
    return
  fi
  if "$bin" -help=1 > /dev/null 2>&1 && \
     "$bin" -help=1 2>/dev/null | grep -q libFuzzer; then
    "$bin" -max_total_time=30 "$corpus" \
      || leg_failed "libFuzzer ($name, 30 s)"
  else
    "$bin" "$corpus"/* \
      || leg_failed "fuzz corpus replay ($name)"
  fi
}

if [[ "$COVERAGE_ONLY" == 1 || "$LINT_ONLY" == 1 || "$SOAK_ONLY" == 1 \
      || "$FLEET_ONLY" == 1 || "$QOE_ONLY" == 1 ]]; then
  echo "leg 7 skipped (--coverage/--lint/--soak/--fleet/--qoe)"
elif [[ -d "$ASAN_DIR" ]]; then
  (cd "$ASAN_DIR" && ctest --output-on-failure -j "$JOBS" \
      -R 'CgAnytime|Theorem1Guard|MilpLimits|FaultInjector|InstanceValidator|ParseInstanceSpec|CgCheckpoint|CheckpointLog|CgResolve|PoolManager|PoolPolicy|InstanceSignature|BlockageSession|cli_smoke') \
    || leg_failed "ctest (robustness suites under ASan+UBSan)"
  run_fuzz instance_spec_fuzz "$ROOT/tests/fuzz/corpus"
  run_fuzz checkpoint_fuzz "$ROOT/tests/fuzz/corpus_checkpoint"
else
  leg_failed "robustness (sanitized build dir missing)"
fi

# ---- Leg 8: coverage gate --------------------------------------------------
# Instrumented Debug build + full suite, then gcov aggregation over src/core
# and src/stream against the floors in tools/coverage_baseline.txt.  The
# floors are a ratchet: they record the coverage the tree actually has, so a
# PR that adds untested solver/session code fails here before review.
if [[ "$FAST" == 0 && "$ROBUSTNESS" == 0 && "$LINT_ONLY" == 0 \
      && "$SOAK_ONLY" == 0 && "$FLEET_ONLY" == 0 && "$QOE_ONLY" == 0 ]]; then
  note "leg 8: coverage gate (gcov, src/core + src/stream floors)"
  COV_DIR="$ROOT/build-analysis-cov"
  if configure_and_build "$COV_DIR" \
        -DCMAKE_BUILD_TYPE=Debug -DMMWAVE_COVERAGE=ON; then
    # Stale counters from a previous run would inflate the numbers.
    find "$COV_DIR" -name '*.gcda' -delete
    run_ctest "$COV_DIR" || leg_failed "ctest (coverage build)"
    python3 "$ROOT/tools/coverage_report.py" --build "$COV_DIR" --root "$ROOT" \
      || leg_failed "coverage below recorded floors (tools/coverage_baseline.txt)"
  else
    leg_failed "build (coverage)"
  fi
else
  note "leg 8 skipped"
fi

# ---- Leg 9: project-invariant lint ----------------------------------------
# The repo's own contracts, machine-checked (DESIGN §10): [[nodiscard]]
# Status discipline, the §7 no-throw boundary, the determinism contract,
# and the fault-site registry.  Pure python3 over the sources — no build
# needed — so it runs in every mode except the narrowly-scoped CI gates.
if [[ "$ROBUSTNESS" == 0 && "$COVERAGE_ONLY" == 0 && "$SOAK_ONLY" == 0 \
      && "$FLEET_ONLY" == 0 && "$QOE_ONLY" == 0 ]]; then
  note "leg 9: project lint (tools/lint/project_lint.py)"
  if command -v python3 > /dev/null 2>&1; then
    python3 "$ROOT/tools/lint/project_lint.py" --root "$ROOT" \
      || leg_failed "project lint (tools/lint/project_lint.py)"
  else
    leg_failed "project lint (python3 not found)"
  fi
else
  note "leg 9 skipped"
fi

# ---- Leg 10: chaos soak (crash-recovery property) --------------------------
# Seeded kill/restart sessions resumed from the delta-checkpoint log must
# match the uninterrupted runs exactly (1e-7 per record, digest chains
# bit-identical) with the registered fault sites firing.  Runs on the
# sanitized build so the recovery paths are instrumented; --soak sweeps
# more seeds than the default pre-merge pass.
if [[ "$FAST" == 0 && "$ROBUSTNESS" == 0 && "$COVERAGE_ONLY" == 0 \
      && "$LINT_ONLY" == 0 && "$FLEET_ONLY" == 0 && "$QOE_ONLY" == 0 ]]; then
  note "leg 10: chaos soak (tools/chaos_soak -> BENCH_soak.json)"
  SOAK="$ASAN_DIR/tools/chaos_soak"
  SOAK_SEEDS=5
  [[ "$SOAK_ONLY" == 1 ]] && SOAK_SEEDS=10
  if [[ -x "$SOAK" ]]; then
    if [[ "$SOAK_ONLY" == 1 ]]; then
      (cd "$ASAN_DIR" && ctest --output-on-failure -j "$JOBS" \
          -R 'CheckpointLog|CgCheckpoint|BlockageSession|chaos_soak_smoke|cli_smoke') \
        || leg_failed "ctest (checkpoint-log + session suites under ASan+UBSan)"
    fi
    SOAK_DIR="$ASAN_DIR/soak-work"
    mkdir -p "$SOAK_DIR"
    "$SOAK" --seeds="$SOAK_SEEDS" --gops=10 --dir="$SOAK_DIR" \
        --out="$ROOT/BENCH_soak.json" \
      || leg_failed "chaos_soak (resumed runs diverged from uninterrupted)"
    [[ -s "$ROOT/BENCH_soak.json" ]] || leg_failed "BENCH_soak.json not written"
  else
    leg_failed "chaos_soak missing (sanitized build incomplete?)"
  fi
else
  note "leg 10 skipped"
fi

# ---- Leg 11: fleet gate (serve mode) ---------------------------------------
# The multi-piconet serve mode end to end on the sanitized build: the fleet
# server / shared-pool unit suites, the chaos_soak --fleet drain/restart
# sweep (the fleet analogue of leg 10: resumed record streams must match the
# uninterrupted ones exactly, with the fleet fault sites firing), and
# perf_fleet, which is both the throughput/latency bench and the cross-worker
# record-equality check.  --fleet sweeps more seeds than the pre-merge pass.
if [[ "$ROBUSTNESS" == 0 && "$COVERAGE_ONLY" == 0 && "$LINT_ONLY" == 0 \
      && "$SOAK_ONLY" == 0 && "$QOE_ONLY" == 0 ]]; then
  note "leg 11: fleet gate (fleet suites + chaos_soak --fleet + perf_fleet -> BENCH_fleet.json)"
  FLEET_SEEDS=4
  [[ "$FLEET_ONLY" == 1 ]] && FLEET_SEEDS=8
  if [[ "$FLEET_ONLY" == 1 ]]; then
    (cd "$ASAN_DIR" && ctest --output-on-failure -j "$JOBS" \
        -R 'FleetServer|FleetRequest|SharedPoolManager|PoolManager|chaos_soak_fleet_smoke|bench_fleet_smoke|cli_smoke') \
      || leg_failed "ctest (fleet + shared-pool suites under ASan+UBSan)"
  fi
  FLEET_SOAK="$ASAN_DIR/tools/chaos_soak"
  if [[ -x "$FLEET_SOAK" ]]; then
    FLEET_DIR="$ASAN_DIR/fleet-work"
    mkdir -p "$FLEET_DIR"
    "$FLEET_SOAK" --fleet --seeds="$FLEET_SEEDS" --requests=9 \
        --dir="$FLEET_DIR" \
      || leg_failed "chaos_soak --fleet (drained fleets diverged from uninterrupted)"
  else
    leg_failed "chaos_soak missing (sanitized build incomplete?)"
  fi
  PERF_FLEET="$ASAN_DIR/bench/perf_fleet"
  if [[ -x "$PERF_FLEET" ]]; then
    "$PERF_FLEET" --requests=24 --workers=1,4,16 \
        --out="$ROOT/BENCH_fleet.json" \
      || leg_failed "perf_fleet (records diverged across worker counts)"
    [[ -s "$ROOT/BENCH_fleet.json" ]] || leg_failed "BENCH_fleet.json not written"
  else
    leg_failed "perf_fleet missing (bench targets fell out of the build?)"
  fi
else
  note "leg 11 skipped"
fi

# ---- Leg 12: QoE gate (client-buffer sessions) -----------------------------
# The buffer/policy/session suites plus perf_qoe on the sanitized build.
# perf_qoe is its own acceptance gate: the drain-risk demand policy must
# STRICTLY reduce stall seconds on enough seeded traces, never regress any
# seed's stall, and hold every layer-delivery ratio no worse than blind's.
# --qoe sweeps more seeds/GOPs than the pre-merge pass.
if [[ "$ROBUSTNESS" == 0 && "$COVERAGE_ONLY" == 0 && "$LINT_ONLY" == 0 \
      && "$SOAK_ONLY" == 0 && "$FLEET_ONLY" == 0 ]]; then
  note "leg 12: QoE gate (buffer suites + perf_qoe -> BENCH_qoe.json)"
  QOE_SEEDS=8
  QOE_GOPS=24
  if [[ "$QOE_ONLY" == 1 ]]; then
    QOE_SEEDS=12
    QOE_GOPS=32
    (cd "$ASAN_DIR" && ctest --output-on-failure -j "$JOBS" \
        -R 'ClientBuffer|DemandPolicy|BlockageSession|bench_perf_qoe_smoke|cli_smoke') \
      || leg_failed "ctest (buffer/policy/session suites under ASan+UBSan)"
  fi
  PERF_QOE="$ASAN_DIR/bench/perf_qoe"
  if [[ -x "$PERF_QOE" ]]; then
    "$PERF_QOE" --seeds="$QOE_SEEDS" --gops="$QOE_GOPS" --min-improved=3 \
        --out="$ROOT/BENCH_qoe.json" \
      || leg_failed "perf_qoe (drain-risk failed its stall/layer-ratio gate)"
    [[ -s "$ROOT/BENCH_qoe.json" ]] || leg_failed "BENCH_qoe.json not written"
  else
    leg_failed "perf_qoe missing (bench targets fell out of the build?)"
  fi
else
  note "leg 12 skipped"
fi

# ---- Summary --------------------------------------------------------------
note "summary"
if (( ${#failures[@]} )); then
  printf 'ANALYSIS FAILED (%d leg(s)):\n' "${#failures[@]}"
  printf '  - %s\n' "${failures[@]}"
  exit 1
fi
echo "all analysis legs passed"
