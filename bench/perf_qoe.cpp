// perf_qoe — client-buffer QoE bench: drain-risk demand shaping vs the
// buffer-blind baseline on seeded Markov blockage traces.
//
// For each seed the SAME session (network, demand streams, blockage chain)
// runs twice — once per demand policy — and the per-link client buffers
// report playback stall seconds, rebuffer events and the layer-delivery
// ratio.  Blockage here is deep (attenuation pushes blocked links below
// every SINR threshold), so a blocked period delivers nothing and a
// buffer-blind session stalls through it; the drain-risk policy prefetches
// on unblocked periods (at-risk links bid higher) to ride the streaks out.
//
// The bench is also the acceptance gate for that mechanism (exit 1 if it
// fails): the drain-risk policy must STRICTLY reduce total stall seconds on
// at least --min-improved seeded traces, never increase any seed's stall,
// and hold every seed's layer-delivery ratio no worse than blind's.
//
//   perf_qoe [--seeds=N] [--gops=G] [--links --channels] [--p-block=p]
//            [--p-recover=r] [--block-atten=a] [--min-improved=K]
//            [--out=BENCH_qoe.json]
//
// Everything reported is deterministic (no timing fields), so the JSON is a
// pinnable artifact of the policy's effect, not a machine-speed sample.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.h"
#include "stream/blockage_session.h"

namespace {

using namespace mmwave;

struct RunResult {
  double stall_seconds = 0.0;
  int rebuffer_events = 0;
  double layer_delivery_ratio = 0.0;
  double on_time_ratio = 0.0;
  double mean_blocked_fraction = 0.0;
};

struct BenchConfig {
  int links = 5;
  int channels = 2;
  int gops = 24;
  double p_block = 0.4;
  double p_recover = 0.5;
  double attenuation = 1e-3;
};

RunResult run_once(const BenchConfig& bc, std::uint64_t seed,
                   const stream::DemandPolicy* policy) {
  net::NetworkParams params;
  params.num_links = bc.links;
  params.num_channels = bc.channels;
  common::Rng model_rng(seed);
  net::TableIChannelModel model(bc.links, bc.channels, params.noise_watts,
                                model_rng);

  stream::BlockageSessionConfig cfg;
  cfg.session.num_gops = bc.gops;
  cfg.session.demand_scale = 1e-4;  // ample capacity: QoE is blockage-bound
  cfg.blockage.p_block = bc.p_block;
  cfg.blockage.p_recover = bc.p_recover;
  cfg.blockage.attenuation = bc.attenuation;
  cfg.demand_policy = policy;

  stream::SolverContext context;
  common::Rng session_rng = model_rng.fork(1);
  const stream::BlockageSessionMetrics m = stream::run_blockage_session(
      model, params, cfg, stream::make_cg_scheduler({}, &context),
      session_rng, &context);

  RunResult r;
  r.stall_seconds = m.stall_seconds;
  r.rebuffer_events = m.rebuffer_events;
  r.layer_delivery_ratio = m.layer_delivery_ratio;
  r.on_time_ratio = m.base.on_time_ratio;
  r.mean_blocked_fraction = m.mean_blocked_fraction;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags;
  flags.parse(argc, argv);
  BenchConfig bc;
  const int seeds = static_cast<int>(flags.get_int("seeds", 8));
  bc.gops = static_cast<int>(flags.get_int("gops", 24));
  bc.links = static_cast<int>(flags.get_int("links", 5));
  bc.channels = static_cast<int>(flags.get_int("channels", 2));
  bc.p_block = flags.get_double("p-block", 0.4);
  bc.p_recover = flags.get_double("p-recover", 0.5);
  bc.attenuation = flags.get_double("block-atten", 1e-3);
  const int min_improved =
      static_cast<int>(flags.get_int("min-improved", 3));
  const std::string out_path = flags.get_string("out", "");
  if (seeds < 1 || bc.gops < 1 || bc.links < 1 || bc.channels < 1 ||
      min_improved > seeds) {
    std::fprintf(stderr,
                 "error: need --seeds>=1, --gops>=1, --links>=1, "
                 "--channels>=1 and --min-improved<=--seeds\n");
    return 1;
  }

  const std::unique_ptr<stream::DemandPolicy> blind =
      stream::make_blind_policy();
  stream::ClientBufferConfig buffer_cfg;  // session defaults
  const std::unique_ptr<stream::DemandPolicy> drain =
      stream::make_drain_risk_policy(buffer_cfg);

  struct Row {
    std::uint64_t seed = 0;
    RunResult blind;
    RunResult drain;
  };
  std::vector<Row> rows;
  int improved = 0, stall_regressions = 0, ratio_regressions = 0;
  double blind_stall_total = 0.0, drain_stall_total = 0.0;
  for (int i = 0; i < seeds; ++i) {
    Row row;
    row.seed = 101 + 37 * static_cast<std::uint64_t>(i);
    row.blind = run_once(bc, row.seed, blind.get());
    row.drain = run_once(bc, row.seed, drain.get());
    blind_stall_total += row.blind.stall_seconds;
    drain_stall_total += row.drain.stall_seconds;
    if (row.drain.stall_seconds < row.blind.stall_seconds - 1e-9) ++improved;
    if (row.drain.stall_seconds > row.blind.stall_seconds + 1e-9) {
      std::fprintf(stderr,
                   "REGRESSION seed=%llu: drain-risk stall %.6f s > blind "
                   "%.6f s\n",
                   static_cast<unsigned long long>(row.seed),
                   row.drain.stall_seconds, row.blind.stall_seconds);
      ++stall_regressions;
    }
    if (row.drain.layer_delivery_ratio <
        row.blind.layer_delivery_ratio - 1e-9) {
      std::fprintf(stderr,
                   "REGRESSION seed=%llu: drain-risk layer ratio %.6f < "
                   "blind %.6f\n",
                   static_cast<unsigned long long>(row.seed),
                   row.drain.layer_delivery_ratio,
                   row.blind.layer_delivery_ratio);
      ++ratio_regressions;
    }
    std::printf(
        "seed=%4llu (blocked %4.1f%%): stall %7.3f -> %7.3f s | rebuffers "
        "%3d -> %3d | layer ratio %.3f -> %.3f\n",
        static_cast<unsigned long long>(row.seed),
        100.0 * row.blind.mean_blocked_fraction, row.blind.stall_seconds,
        row.drain.stall_seconds, row.blind.rebuffer_events,
        row.drain.rebuffer_events, row.blind.layer_delivery_ratio,
        row.drain.layer_delivery_ratio);
    rows.push_back(row);
  }

  const double reduction =
      blind_stall_total > 0.0
          ? 1.0 - drain_stall_total / blind_stall_total
          : 0.0;
  std::printf(
      "total stall: blind %.3f s, drain-risk %.3f s (%.1f%% reduction); "
      "improved on %d/%d seeds\n",
      blind_stall_total, drain_stall_total, 100.0 * reduction, improved,
      seeds);

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"perf_qoe\",\"seeds\":%d,\"gops\":%d,"
                   "\"links\":%d,\"channels\":%d,\"p_block\":%.17g,"
                   "\"p_recover\":%.17g,\"block_atten\":%.17g,"
                   "\"blind_stall_seconds\":%.17g,"
                   "\"drain_risk_stall_seconds\":%.17g,"
                   "\"stall_reduction\":%.17g,\"improved_seeds\":%d,"
                   "\"rows\":[",
                   seeds, bc.gops, bc.links, bc.channels, bc.p_block,
                   bc.p_recover, bc.attenuation, blind_stall_total,
                   drain_stall_total, reduction, improved);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "%s{\"seed\":%llu,\"blocked_fraction\":%.17g,"
            "\"blind\":{\"stall_seconds\":%.17g,\"rebuffer_events\":%d,"
            "\"layer_delivery_ratio\":%.17g,\"on_time_ratio\":%.17g},"
            "\"drain_risk\":{\"stall_seconds\":%.17g,"
            "\"rebuffer_events\":%d,\"layer_delivery_ratio\":%.17g,"
            "\"on_time_ratio\":%.17g}}",
            i == 0 ? "" : ",", static_cast<unsigned long long>(r.seed),
            r.blind.mean_blocked_fraction, r.blind.stall_seconds,
            r.blind.rebuffer_events, r.blind.layer_delivery_ratio,
            r.blind.on_time_ratio, r.drain.stall_seconds,
            r.drain.rebuffer_events, r.drain.layer_delivery_ratio,
            r.drain.on_time_ratio);
      }
      std::fprintf(f, "]}\n");
      std::fclose(f);
      std::printf("report written to %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
    }
  }

  if (improved >= min_improved && stall_regressions == 0 &&
      ratio_regressions == 0) {
    return 0;
  }
  std::printf(
      "perf_qoe FAILED: improved %d/%d (need >= %d), %d stall regression(s), "
      "%d layer-ratio regression(s)\n",
      improved, seeds, min_improved, stall_regressions, ratio_regressions);
  return 1;
}
