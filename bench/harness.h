// Shared experiment harness for the figure-reproduction binaries.
//
// Every bench builds paper-configured instances (Table I), runs the
// algorithms under comparison over a seed batch, and prints the same
// rows/series the paper's figure reports (mean ± 95% CI).
//
// Common flags (each bench may add its own):
//   --seeds=N          number of random seeds per point (paper: 50)
//   --links=a,b,c      sweep over ||L||
//   --channels=K       number of channels (paper: 5)
//   --demand-scale=x   scaling of the per-GOP video demand
//   --threads=N        seeds solved concurrently (1 = serial reference,
//                      0 = auto / hardware_concurrency)
//   --csv=path         also write the table as CSV
//
// Seed count: the paper averages every figure point over 50 random
// topologies; the default here is 10 to keep a full sweep interactive.
// The paper-faithful invocation is `--seeds=50 --threads=0`, which
// produces the same numbers as `--seeds=50 --threads=1` (each seed is an
// independent instance keyed only by its index, and results are reduced
// in index order), just wall-clock faster on multi-core machines.
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "check/instance_validator.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/column_generation.h"
#include "mmwave/network.h"
#include "sched/timeline.h"
#include "video/demand.h"

namespace mmwave::bench {

struct Instance {
  net::Network net;
  std::vector<video::LinkDemand> demands;
};

struct HarnessConfig {
  std::vector<std::int64_t> link_counts{10, 15, 20, 25, 30};
  int channels = 5;
  int seeds = 10;
  /// The paper's full per-GOP demand (~86 Mbit/link) makes absolute slot
  /// counts astronomically large but scales the LP exactly linearly; the
  /// default keeps runtimes friendly while preserving every comparison.
  double demand_scale = 1e-3;
  /// Multiplier on the Table I SINR threshold ladder.  1.0 is the paper's
  /// exact Gamma = {0.1..0.5}; larger values put the network into a
  /// binding-interference regime (see EXPERIMENTS.md).
  double gamma_scale = 1.0;
  /// Seeds solved concurrently (each on its own instance).  1 = serial
  /// reference run; 0 = auto (hardware_concurrency).  Results are
  /// identical for every value — see the determinism note above.
  int threads = 1;
  std::optional<std::string> csv_path;
  core::CgOptions cg;
};

/// Parses the common flags over the defaults in `cfg`.  Malformed values
/// ("--seeds=lots", "--channels=-1") abort the sweep with a one-line error
/// instead of silently running a zero-sized experiment.
inline HarnessConfig parse_common_flags(int argc, char** argv,
                                        HarnessConfig cfg = {}) {
  common::CliFlags flags;
  flags.parse(argc, argv);
  const auto require = [](auto expected) {
    if (!expected.ok()) {
      std::cerr << "error: " << expected.status().message() << "\n";
      std::exit(2);
    }
    return expected.value();
  };
  cfg.link_counts = flags.get_int_list("links", cfg.link_counts);
  cfg.channels = static_cast<int>(
      require(flags.get_int_checked("channels", cfg.channels, 1, 1024)));
  cfg.seeds = static_cast<int>(
      require(flags.get_int_checked("seeds", cfg.seeds, 1, 1'000'000)));
  cfg.demand_scale = require(
      flags.get_double_checked("demand-scale", cfg.demand_scale, 1e-18, 1e18));
  cfg.gamma_scale = require(
      flags.get_double_checked("gamma-scale", cfg.gamma_scale, 1e-9, 1e9));
  cfg.threads = static_cast<int>(
      require(flags.get_int_checked("threads", cfg.threads, 0, 4096)));
  if (flags.has("csv")) cfg.csv_path = flags.get_string("csv", "");
  return cfg;
}

/// Builds the paper's simulation instance: Table I network + per-link
/// single-GOP video demands.
inline Instance make_instance(int links, int channels, double demand_scale,
                              std::uint64_t seed, double gamma_scale = 1.0) {
  common::Rng rng(seed);
  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = channels;
  for (double& g : params.sinr_thresholds) g *= gamma_scale;
  net::Network net = net::Network::table_i(params, rng);

  video::DemandConfig dcfg;
  dcfg.demand_scale = demand_scale;
  common::Rng demand_rng = rng.fork(0x5EED);
  auto demands = video::make_link_demands(links, dcfg, demand_rng);

  // Generated instances are validated the same way user-supplied ones are:
  // a sweep point that would feed NaN gains or absurd demands to every
  // algorithm under comparison aborts loudly instead of charting garbage.
  const check::InstanceReport report = check::validate_instance(net, demands);
  if (!report.ok()) {
    std::cerr << "error: generated instance (links=" << links
              << ", seed=" << seed << ") failed validation:\n"
              << report.to_string() << "\n";
    std::exit(2);
  }
  return {std::move(net), std::move(demands)};
}

/// Prints the Table I parameter block every bench runs under.
inline void print_config_banner(const HarnessConfig& cfg,
                                const std::string& what) {
  std::cout << "=== " << what << " ===\n";
  std::cout << "Table I: Pmax=1W rho=0.1W W=200MHz Gamma={0.1..0.5}x"
            << cfg.gamma_scale << " | K=" << cfg.channels
            << " | seeds=" << cfg.seeds
            << " (95% CI) | demand scale=" << cfg.demand_scale << "\n\n";
}

/// Per-algorithm metrics of one run.
struct RunMetrics {
  double total_slots = 0.0;
  double avg_delay = 0.0;
  double fairness = 1.0;
  bool served = false;
};

inline RunMetrics metrics_of(const net::Network& net,
                             const std::vector<video::LinkDemand>& demands,
                             const std::vector<sched::TimedSchedule>& timeline,
                             sched::ExecutionOrder order, bool served) {
  const auto exec = sched::execute_timeline(net, timeline, demands, order);
  RunMetrics m;
  m.total_slots = exec.total_slots;
  m.avg_delay = exec.average_delay();
  m.fairness = exec.delay_fairness();
  m.served = served && exec.all_demands_met;
  return m;
}

/// The three algorithms of the paper's figures.
struct ComparisonPoint {
  std::vector<double> cg, b1, b2;          // total slots
  std::vector<double> cg_d, b1_d, b2_d;    // average delay
  std::vector<double> cg_f, b1_f, b2_f;    // fairness
  /// Runs where the uncoordinated/heuristic scheme never cleared a demand
  /// (excluded from the aggregates above, reported alongside).
  int b1_failures = 0;
  int b2_failures = 0;
};

/// All three algorithms' metrics for one seed (one slot of the parallel
/// sweep; reduced into a ComparisonPoint in index order afterwards).
struct SeedOutcome {
  RunMetrics cg, b1, b2;
};

/// Solves one seed of the sweep.  Self-contained: builds its own instance
/// from the seed index, shares no mutable state — safe to call from
/// parallel_for workers.
inline SeedOutcome run_seed(int links, const HarnessConfig& cfg, int s) {
  const Instance inst = make_instance(
      links, cfg.channels, cfg.demand_scale,
      0xC0FFEE + 1000003ULL * static_cast<std::uint64_t>(s),
      cfg.gamma_scale);

  SeedOutcome out;
  const auto cg =
      core::solve_column_generation(inst.net, inst.demands, cfg.cg);
  out.cg = metrics_of(inst.net, inst.demands, cg.timeline,
                      sched::ExecutionOrder::CompletionAware, true);

  const auto b1 = baselines::benchmark1(inst.net, inst.demands);
  out.b1 = metrics_of(inst.net, inst.demands, b1.timeline,
                      sched::ExecutionOrder::AsGiven, b1.served_all);

  const auto b2 = baselines::benchmark2(inst.net, inst.demands);
  out.b2 = metrics_of(inst.net, inst.demands, b2.timeline,
                      sched::ExecutionOrder::AsGiven, b2.served_all);
  return out;
}

/// Runs all three algorithms over the seed batch at one sweep point.
/// Seeds are solved concurrently under cfg.threads (0 = auto, 1 = serial)
/// into index-addressed slots, then reduced here in index order — the
/// returned point is byte-identical for every thread count.
inline ComparisonPoint run_comparison(int links, const HarnessConfig& cfg) {
  std::vector<SeedOutcome> outcomes(static_cast<std::size_t>(cfg.seeds));
  common::parallel_for(outcomes.size(), common::resolve_threads(cfg.threads),
                       [&](std::size_t s) {
                         outcomes[s] =
                             run_seed(links, cfg, static_cast<int>(s));
                       });

  ComparisonPoint point;
  for (const SeedOutcome& out : outcomes) {
    point.cg.push_back(out.cg.total_slots);
    point.cg_d.push_back(out.cg.avg_delay);
    point.cg_f.push_back(out.cg.fairness);

    if (out.b1.served) {
      point.b1.push_back(out.b1.total_slots);
      point.b1_d.push_back(out.b1.avg_delay);
      point.b1_f.push_back(out.b1.fairness);
    } else {
      ++point.b1_failures;
    }

    if (out.b2.served) {
      point.b2.push_back(out.b2.total_slots);
      point.b2_d.push_back(out.b2.avg_delay);
      point.b2_f.push_back(out.b2.fairness);
    } else {
      ++point.b2_failures;
    }
  }
  return point;
}

inline void finish_table(common::Table& table,
                         const HarnessConfig& cfg) {
  table.print(std::cout);
  if (cfg.csv_path && !cfg.csv_path->empty()) {
    table.write_csv(*cfg.csv_path);
    std::cout << "\n(csv written to " << *cfg.csv_path << ")\n";
  }
}

}  // namespace mmwave::bench
