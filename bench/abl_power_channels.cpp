// Ablations for the two design choices the formulation adds over prior
// work: (a) power adaptation (Section IV-D) and (b) multi-channel
// allocation (the paper's delta over single-channel schedulers [9][10]).
//
//   (a) CG with min-power control vs CG with all-active-links-at-Pmax.
//   (b) CG optimum versus the number of available channels K.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  bench::HarnessConfig cfg;
  cfg.link_counts = {12};
  cfg.cg.pricing = core::PricingMode::HeuristicOnly;
  cfg = bench::parse_common_flags(argc, argv, cfg);
  const int links = static_cast<int>(cfg.link_counts[0]);
  bench::print_config_banner(cfg, "Ablations — power adaptation & channels");

  // (a) Power adaptation on/off, across interference regimes.  Under the
  // permissive Table I ladder power control barely matters (everything
  // packs at Pmax anyway); its value appears as the thresholds bind.
  {
    common::Table table({"Gamma scale", "adaptive (slots)",
                         "fixed Pmax (slots)", "fixed/adaptive"});
    for (double gamma : {1.0, 3.0, 5.0}) {
      std::vector<double> adaptive, fixed;
      for (int s = 0; s < cfg.seeds; ++s) {
        const auto inst = bench::make_instance(
            links, cfg.channels, cfg.demand_scale,
            0xAB1E + 7919ULL * static_cast<std::uint64_t>(s), gamma);
        core::CgOptions on = cfg.cg;
        const auto r_on =
            core::solve_column_generation(inst.net, inst.demands, on);
        core::CgOptions off = cfg.cg;
        off.greedy.fixed_power = true;
        off.exact.fixed_power = true;
        const auto r_off =
            core::solve_column_generation(inst.net, inst.demands, off);
        adaptive.push_back(r_on.total_slots);
        fixed.push_back(r_off.total_slots);
      }
      const auto a = common::summarize(adaptive);
      const auto f = common::summarize(fixed);
      table.new_row()
          .add(gamma, 1)
          .add_ci(a.mean, a.ci_halfwidth, 0)
          .add_ci(f.mean, f.ci_halfwidth, 0)
          .add(a.mean > 0 ? f.mean / a.mean : 0.0, 3);
    }
    std::cout << "(a) power adaptation, L=" << links << "\n";
    table.print(std::cout);
  }

  // (b) Channel count sweep.
  {
    common::Table table({"channels K", "CG sched time (slots)",
                         "vs K=1"});
    double base_mean = 0.0;
    for (int k : {1, 2, 3, 5, 8}) {
      std::vector<double> slots;
      for (int s = 0; s < cfg.seeds; ++s) {
        const auto inst = bench::make_instance(
            links, k, cfg.demand_scale,
            0xC4A2 + 104729ULL * static_cast<std::uint64_t>(s));
        const auto r =
            core::solve_column_generation(inst.net, inst.demands, cfg.cg);
        slots.push_back(r.total_slots);
      }
      const auto st = common::summarize(slots);
      if (k == 1) base_mean = st.mean;
      table.new_row()
          .add(k)
          .add_ci(st.mean, st.ci_halfwidth, 0)
          .add(base_mean > 0 ? st.mean / base_mean : 0.0, 3);
    }
    std::cout << "\n(b) channel diversity, L=" << links << "\n";
    table.print(std::cout);
  }
  return 0;
}
