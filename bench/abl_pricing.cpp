// Ablation: pricing strategy.
//
// The paper solves the pricing sub-problem exactly (MILP, "Gurobi /
// intlinprog").  This library layers a greedy power-controlled packing
// heuristic in front of / instead of the exact solver.  This bench
// quantifies the trade: solution quality (vs the certified optimum),
// iterations, and wall time for the three pricing modes.
#include <chrono>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  bench::HarnessConfig cfg;
  cfg.link_counts = {6};
  cfg.channels = 2;
  cfg.seeds = 3;
  cfg.gamma_scale = 3.0;  // binding regime: pricing actually works here
  // Exact pricing is the expensive mode under study; keep its per-solve
  // limits tight so the whole comparison finishes in about a minute.
  cfg.cg.exact.milp.time_limit_sec = 2.0;
  cfg.cg.exact.milp.max_nodes = 15'000;
  cfg = bench::parse_common_flags(argc, argv, cfg);
  const int links = static_cast<int>(cfg.link_counts[0]);
  bench::print_config_banner(cfg, "Ablation — pricing strategy");

  struct Mode {
    const char* name;
    core::PricingMode mode;
  };
  const Mode modes[] = {
      {"heuristic only", core::PricingMode::HeuristicOnly},
      {"heuristic + exact certificate", core::PricingMode::HeuristicThenExact},
      {"exact every iteration", core::PricingMode::ExactAlways},
  };

  common::Table table({"pricing", "sched time (slots)", "vs best",
                       "iterations", "certified", "wall ms/instance"});
  std::vector<double> best_per_seed(cfg.seeds,
                                    std::numeric_limits<double>::infinity());
  struct Row {
    std::vector<double> slots;
    double iters = 0.0;
    int certified = 0;
    double ms = 0.0;
  };
  std::vector<Row> rows(3);

  for (int m = 0; m < 3; ++m) {
    for (int s = 0; s < cfg.seeds; ++s) {
      const auto inst = bench::make_instance(
          links, cfg.channels, cfg.demand_scale,
          0xF00D + 65537ULL * static_cast<std::uint64_t>(s),
          cfg.gamma_scale);
      core::CgOptions opts = cfg.cg;
      opts.pricing = modes[m].mode;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r =
          core::solve_column_generation(inst.net, inst.demands, opts);
      const auto t1 = std::chrono::steady_clock::now();
      rows[m].slots.push_back(r.total_slots);
      rows[m].iters += r.iterations;
      rows[m].certified += r.converged ? 1 : 0;
      rows[m].ms +=
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      best_per_seed[s] = std::min(best_per_seed[s], r.total_slots);
    }
  }

  for (int m = 0; m < 3; ++m) {
    double ratio = 0.0;
    for (int s = 0; s < cfg.seeds; ++s)
      ratio += rows[m].slots[s] / best_per_seed[s];
    const auto st = common::summarize(rows[m].slots);
    table.new_row()
        .add(modes[m].name)
        .add_ci(st.mean, st.ci_halfwidth, 1)
        .add(ratio / cfg.seeds, 4)
        .add(rows[m].iters / cfg.seeds, 1)
        .add(std::to_string(rows[m].certified) + "/" +
             std::to_string(cfg.seeds))
        .add(rows[m].ms / cfg.seeds, 1);
  }
  bench::finish_table(table, cfg);
  return 0;
}
