// Microbenchmarks (google-benchmark) for the three hot substrates:
// the dense bounded-variable simplex, the branch & bound MILP, and the
// Foschini–Miljanic power-control solve — plus one end-to-end column
// generation solve.  These are wall-clock regression guards, not figures.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "core/column_generation.h"
#include "lp/simplex.h"
#include "milp/milp.h"
#include "mmwave/power_control.h"
#include "video/demand.h"

namespace {

using namespace mmwave;

// Shared random covering LP (the CG master's shape): min c'x, sparse
// A x >= b, 0 <= x <= 100, density 0.3.
lp::LpModel make_covering_lp(int rows, int cols, std::uint64_t seed) {
  common::Rng rng(seed);
  lp::LpModel model;
  for (int j = 0; j < cols; ++j)
    model.add_variable(0.0, 100.0, rng.uniform(0.5, 2.0));
  for (int i = 0; i < rows; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < cols; ++j) {
      if (rng.bernoulli(0.3)) terms.emplace_back(j, rng.uniform(0.1, 1.0));
    }
    if (terms.empty()) terms.emplace_back(i % cols, 1.0);
    model.add_constraint(std::move(terms), lp::Sense::Ge,
                         rng.uniform(1.0, 5.0));
  }
  return model;
}

void BM_SimplexCoveringLp(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const lp::LpModel model = make_covering_lp(rows, 2 * rows, 42);
  for (auto _ : state) {
    auto sol = lp::solve_lp(model);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_SimplexCoveringLp)->Arg(20)->Arg(60)->Arg(120);

// Head-to-head cold solve: sparse LU + eta engine (dense=0) vs the dense
// explicit-inverse reference (dense=1), small and large bases.
void BM_RevisedVsDense(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const bool dense = state.range(1) != 0;
  const lp::LpModel model = make_covering_lp(rows, 2 * rows, 42);
  lp::LpOptions opt;
  opt.dense_basis = dense;
  std::int64_t pivots = 0;
  for (auto _ : state) {
    auto sol = lp::solve_lp(model, opt);
    benchmark::DoNotOptimize(sol.objective);
    pivots += sol.iterations;
  }
  state.counters["pivots"] =
      static_cast<double>(pivots) /
      std::max<std::int64_t>(1, state.iterations());
}
BENCHMARK(BM_RevisedVsDense)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({160, 0})
    ->Args({160, 1})
    ->ArgNames({"rows", "dense"});

// CG-style warm resume: solve once, append a handful of columns, then
// benchmark the warm re-solve from the exported basis.
void BM_RevisedVsDenseWarm(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const bool dense = state.range(1) != 0;
  lp::LpModel model = make_covering_lp(rows, 2 * rows, 42);
  lp::LpOptions opt;
  opt.dense_basis = dense;
  lp::WarmStart base_warm;
  auto seed_sol = lp::solve_lp(model, opt, &base_warm);
  // Grow the model the way column generation does: new covering columns.
  common::Rng rng(43);
  for (int a = 0; a < 8; ++a) {
    const int j = model.add_variable(0.0, 100.0, rng.uniform(0.3, 1.5));
    for (int i = 0; i < rows; ++i)
      if (rng.bernoulli(0.3)) model.add_term(i, j, rng.uniform(0.1, 1.0));
  }
  for (auto _ : state) {
    lp::WarmStart warm = base_warm;
    auto sol = lp::solve_lp(model, opt, &warm);
    benchmark::DoNotOptimize(sol.objective);
  }
  benchmark::DoNotOptimize(seed_sol.objective);
}
BENCHMARK(BM_RevisedVsDenseWarm)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({160, 0})
    ->Args({160, 1})
    ->ArgNames({"rows", "dense"});

// Pricing-rule arm on the sparse engine: Dantzig vs steepest-edge, pivots
// and wall clock head-to-head.
void BM_SimplexPricing(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const bool steepest = state.range(1) != 0;
  const lp::LpModel model = make_covering_lp(rows, 2 * rows, 42);
  lp::LpOptions opt;
  opt.pricing = steepest ? lp::PricingRule::kSteepestEdge
                         : lp::PricingRule::kDantzig;
  std::int64_t pivots = 0;
  for (auto _ : state) {
    auto sol = lp::solve_lp(model, opt);
    benchmark::DoNotOptimize(sol.objective);
    pivots += sol.iterations;
  }
  state.counters["pivots"] =
      static_cast<double>(pivots) /
      std::max<std::int64_t>(1, state.iterations());
}
BENCHMARK(BM_SimplexPricing)
    ->Args({60, 0})
    ->Args({60, 1})
    ->Args({160, 0})
    ->Args({160, 1})
    ->ArgNames({"rows", "steepest"});

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(7);
  milp::MilpModel model;
  model.set_objective_sense(lp::ObjSense::Maximize);
  std::vector<lp::Term> row;
  for (int i = 0; i < n; ++i) {
    const int v = model.add_variable(0, 1, rng.uniform(1.0, 10.0),
                                     milp::VarType::Binary);
    row.emplace_back(v, rng.uniform(1.0, 5.0));
  }
  model.add_constraint(row, lp::Sense::Le, n * 1.2);
  for (auto _ : state) {
    auto sol = milp::solve_milp(model);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(15)->Arg(25);

void BM_PowerControl(benchmark::State& state) {
  const int active = static_cast<int>(state.range(0));
  common::Rng rng(3);
  net::NetworkParams params;
  params.num_links = active;
  params.num_channels = 1;
  net::Network net = net::Network::table_i(params, rng);
  std::vector<int> links(active);
  std::vector<double> gammas(active, 0.1);
  for (int i = 0; i < active; ++i) links[i] = i;
  for (auto _ : state) {
    auto result = net::min_power_assignment(net, 0, links, gammas);
    benchmark::DoNotOptimize(result.feasible);
  }
}
BENCHMARK(BM_PowerControl)->Arg(5)->Arg(15)->Arg(30);

void BM_ColumnGenerationHeuristic(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  common::Rng rng(11);
  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = 5;
  net::Network net = net::Network::table_i(params, rng);
  video::DemandConfig dcfg;
  dcfg.demand_scale = 1e-3;
  common::Rng drng = rng.fork(1);
  const auto demands = video::make_link_demands(links, dcfg, drng);
  core::CgOptions opts;
  opts.pricing = core::PricingMode::HeuristicOnly;
  for (auto _ : state) {
    auto result = core::solve_column_generation(net, demands, opts);
    benchmark::DoNotOptimize(result.total_slots);
  }
}
BENCHMARK(BM_ColumnGenerationHeuristic)->Arg(10)->Arg(30);

// End-to-end CG master-LP comparison: warm-started incremental solves vs
// cold two-phase solves on the paper's L=20, K=5 point.  The counters are
// what BENCH_cg.json is read for: simplex pivots per master solve and the
// warm-start hit rate (0 for the cold variant by construction).
void BM_ColumnGenerationMaster(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  const int links = 20;
  common::Rng rng(11);
  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = 5;
  net::Network net = net::Network::table_i(params, rng);
  video::DemandConfig dcfg;
  dcfg.demand_scale = 1e-3;
  common::Rng drng = rng.fork(1);
  const auto demands = video::make_link_demands(links, dcfg, drng);
  core::CgOptions opts;
  opts.pricing = core::PricingMode::HeuristicOnly;
  opts.warm_start_master = warm;

  std::int64_t pivots = 0;
  std::int64_t solves = 0;
  std::int64_t warm_hits = 0;
  std::int64_t cg_iterations = 0;
  double master_seconds = 0.0;
  for (auto _ : state) {
    auto result = core::solve_column_generation(net, demands, opts);
    benchmark::DoNotOptimize(result.total_slots);
    pivots += result.profile.master_pivots;
    solves += result.profile.master_solves;
    warm_hits += result.profile.master_warm_hits;
    cg_iterations += result.iterations;
    master_seconds += result.profile.master_seconds;
  }
  const double n = std::max<std::int64_t>(1, state.iterations());
  state.counters["pivots_per_solve"] =
      solves > 0 ? static_cast<double>(pivots) / solves : 0.0;
  state.counters["warm_hit_rate"] =
      solves > 0 ? static_cast<double>(warm_hits) / solves : 0.0;
  state.counters["cg_iterations"] = static_cast<double>(cg_iterations) / n;
  state.counters["master_seconds"] = master_seconds / n;
}
BENCHMARK(BM_ColumnGenerationMaster)
    ->Arg(0)  // cold: two-phase solve every iteration
    ->Arg(1)  // warm: resume from the previous basis
    ->ArgName("warm");

}  // namespace

BENCHMARK_MAIN();
