// Figure 2: average per-link delay.
//
// The figure caption sweeps the number of links; the body text discusses
// the sweep "under various link traffic demand" — we emit both tables.
// Delay of a link = time from the start of the scheduling period until its
// HP+LP demand is fully served.  Expected shape: CG lowest everywhere,
// growing with both L and the demand volume.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  bench::HarnessConfig base;
  base.cg.pricing = core::PricingMode::HeuristicOnly;
  base = bench::parse_common_flags(argc, argv, base);
  bench::print_config_banner(base, "Fig. 2 — average delay");

  common::CliFlags regime_flags;
  regime_flags.parse(argc, argv);
  std::vector<double> regimes =
      regime_flags.has("gamma-scale")
          ? std::vector<double>{base.gamma_scale}
          : std::vector<double>{1.0, 3.0};
  bench::HarnessConfig cfg = base;  // regime for part (b) set below
  std::cout << "(a) delay vs number of links\n";
  for (double gamma : regimes) {
    cfg = base;
    cfg.gamma_scale = gamma;
    std::cout << "Gamma x" << gamma << ":\n";
    common::Table by_links({"links", "CG delay (slots)", "Benchmark 1",
                            "Benchmark 2"});
    for (std::int64_t links : cfg.link_counts) {
      const auto point = bench::run_comparison(static_cast<int>(links), cfg);
      const auto cg = common::summarize(point.cg_d);
      const auto b1 = common::summarize(point.b1_d);
      const auto b2 = common::summarize(point.b2_d);
      by_links.new_row()
          .add(links)
          .add_ci(cg.mean, cg.ci_halfwidth, 0)
          .add_ci(b1.mean, b1.ci_halfwidth, 0)
          .add_ci(b2.mean, b2.ci_halfwidth, 0);
    }
    bench::finish_table(by_links, cfg);
    std::cout << "\n";
  }

  // (b) delay vs traffic demand at fixed L (the text's sweep).
  const int fixed_links =
      static_cast<int>(cfg.link_counts[cfg.link_counts.size() / 2]);
  common::Table by_demand({"demand scale", "CG delay (slots)", "Benchmark 1",
                           "Benchmark 2"});
  for (double mult : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    bench::HarnessConfig scaled = cfg;
    scaled.demand_scale = cfg.demand_scale * mult;
    scaled.csv_path.reset();
    const auto point = bench::run_comparison(fixed_links, scaled);
    const auto cg = common::summarize(point.cg_d);
    const auto b1 = common::summarize(point.b1_d);
    const auto b2 = common::summarize(point.b2_d);
    by_demand.new_row()
        .add(mult, 1)
        .add_ci(cg.mean, cg.ci_halfwidth, 0)
        .add_ci(b1.mean, b1.ci_halfwidth, 0)
        .add_ci(b2.mean, b2.ci_halfwidth, 0);
  }
  std::cout << "\n(b) delay vs traffic demand (x base scale, L="
            << fixed_links << ")\n";
  by_demand.print(std::cout);
  return 0;
}
