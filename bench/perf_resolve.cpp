// Warm-resolve vs cold-solve microbenchmark (google-benchmark): the
// checkpoint layer's economics.  A deterministic Markov blockage trace
// perturbs one instance period by period; the cold arm re-solves every
// period from scratch, the warm arm repairs the previous period's column
// pool and seeds the survivors (core::resolve).  Counters report iteration
// savings and pool hit rate alongside wall time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/resolve.h"
#include "mmwave/blockage.h"
#include "video/demand.h"

namespace {

using namespace mmwave;

constexpr int kLinks = 6;
constexpr int kChannels = 2;
constexpr int kLevels = 3;
constexpr int kPeriods = 6;

struct Trace {
  net::NetworkParams params;
  std::unique_ptr<net::TableIChannelModel> base;
  /// Per-period receiver attenuation vectors (the blockage states).
  std::vector<std::vector<double>> scales;
  std::vector<video::LinkDemand> demands;
};

Trace make_trace(std::uint64_t seed) {
  Trace t;
  t.params.num_links = kLinks;
  t.params.num_channels = kChannels;
  t.params.sinr_thresholds.resize(kLevels);
  for (int q = 0; q < kLevels; ++q)
    t.params.sinr_thresholds[q] = 0.1 * (q + 1);
  common::Rng rng(seed);
  t.base = std::make_unique<net::TableIChannelModel>(
      kLinks, kChannels, t.params.noise_watts, rng);

  net::BlockageConfig bcfg;
  bcfg.p_block = 0.3;
  bcfg.attenuation = 0.05;
  common::Rng brng = rng.fork(0xB10C);
  net::BlockageProcess process(kLinks, bcfg, brng);
  for (int g = 0; g < kPeriods; ++g) {
    if (g > 0) process.advance(brng);
    std::vector<double> s(kLinks);
    for (int l = 0; l < kLinks; ++l) s[l] = process.rx_attenuation(l);
    t.scales.push_back(std::move(s));
  }

  common::Rng drng = rng.fork(0x5EED);
  t.demands.resize(kLinks);
  for (auto& d : t.demands) {
    d.hp_bits = drng.uniform(500.0, 2000.0);
    d.lp_bits = drng.uniform(500.0, 2000.0);
  }
  return t;
}

net::Network period_net(const Trace& t, int g) {
  return net::Network(t.params, std::make_unique<net::RxScaledChannelModel>(
                                    t.base.get(), t.scales[g]));
}

core::CgOptions solve_options() {
  core::CgOptions opts;
  opts.pricing = core::PricingMode::HeuristicThenExact;
  return opts;
}

/// Cold arm: every period solved from scratch.
void BM_ResolveColdTrace(benchmark::State& state) {
  const Trace t = make_trace(17);
  std::int64_t iterations = 0;
  double slots = 0.0;
  for (auto _ : state) {
    for (int g = 0; g < kPeriods; ++g) {
      const net::Network net = period_net(t, g);
      const core::CgResult r =
          core::solve_column_generation(net, t.demands, solve_options());
      iterations += r.iterations;
      slots += r.total_slots;
      benchmark::DoNotOptimize(slots);
    }
  }
  const double n =
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["cg_iterations"] = static_cast<double>(iterations) / n;
  state.counters["slots"] = slots / n;
}
BENCHMARK(BM_ResolveColdTrace);

/// Warm arm: each period resolves from the previous period's checkpoint,
/// repairing the pool against the new blockage state.
void BM_ResolveWarmTrace(benchmark::State& state) {
  const Trace t = make_trace(17);
  std::int64_t iterations = 0;
  std::int64_t loaded = 0;
  std::int64_t reused = 0;
  double slots = 0.0;
  for (auto _ : state) {
    core::CgCheckpoint ckpt;
    bool have_ckpt = false;
    for (int g = 0; g < kPeriods; ++g) {
      const net::Network net = period_net(t, g);
      core::CgResult r;
      if (have_ckpt) {
        const core::ResolveResult rr =
            core::resolve(net, t.demands, ckpt, solve_options());
        loaded += rr.repair.loaded;
        reused += rr.repair.survivors();
        r = std::move(rr.cg);
      } else {
        r = core::solve_column_generation(net, t.demands, solve_options());
      }
      iterations += r.iterations;
      slots += r.total_slots;
      benchmark::DoNotOptimize(slots);
      ckpt = core::make_checkpoint(net, t.demands, r);
      have_ckpt = true;
    }
  }
  const double n =
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["cg_iterations"] = static_cast<double>(iterations) / n;
  state.counters["slots"] = slots / n;
  state.counters["pool_hit_rate"] =
      loaded > 0 ? static_cast<double>(reused) / loaded : 0.0;
}
BENCHMARK(BM_ResolveWarmTrace);

/// Crash-restart pair: the same instance solved cold vs resolved warm from
/// its own checkpoint (the `solve --resume` path).  This is where the
/// checkpoint pays hardest — the warm master re-certifies the old optimum
/// in one or two iterations instead of re-deriving the pool.
void BM_RestartCold(benchmark::State& state) {
  const Trace t = make_trace(17);
  const net::Network net = period_net(t, 0);
  std::int64_t iterations = 0;
  for (auto _ : state) {
    const core::CgResult r =
        core::solve_column_generation(net, t.demands, solve_options());
    iterations += r.iterations;
    benchmark::DoNotOptimize(iterations);
  }
  const double n =
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["cg_iterations"] = static_cast<double>(iterations) / n;
}
BENCHMARK(BM_RestartCold);

void BM_RestartWarm(benchmark::State& state) {
  const Trace t = make_trace(17);
  const net::Network net = period_net(t, 0);
  const core::CgResult first =
      core::solve_column_generation(net, t.demands, solve_options());
  const core::CgCheckpoint ckpt = core::make_checkpoint(net, t.demands, first);
  std::int64_t iterations = 0;
  for (auto _ : state) {
    const core::ResolveResult r =
        core::resolve(net, t.demands, ckpt, solve_options());
    iterations += r.cg.iterations;
    benchmark::DoNotOptimize(iterations);
  }
  const double n =
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["cg_iterations"] = static_cast<double>(iterations) / n;
}
BENCHMARK(BM_RestartWarm);

/// Repair-policy comparison on the blockage trace (the `stream --repair`
/// decision): drop discards every SINR-violated transmission, downgrade
/// first steps the rate level down the SINR ladder and only drops from the
/// ladder floor.  Downgrade keeps more of the pool alive across blockage
/// transitions (higher pool_hit_rate, more columns seeded warm) for a
/// slightly costlier repair pass; the two arms quantify that trade.
template <core::RepairPolicy Policy>
void BM_RepairPolicyTrace(benchmark::State& state) {
  const Trace t = make_trace(17);
  core::ResolveOptions ropts;
  ropts.repair = Policy;
  std::int64_t iterations = 0;
  std::int64_t loaded = 0;
  std::int64_t reused = 0;
  std::int64_t dropped_tx = 0;
  std::int64_t downgraded_tx = 0;
  double slots = 0.0;
  for (auto _ : state) {
    core::CgCheckpoint ckpt;
    bool have_ckpt = false;
    for (int g = 0; g < kPeriods; ++g) {
      const net::Network net = period_net(t, g);
      core::CgResult r;
      if (have_ckpt) {
        const core::ResolveResult rr =
            core::resolve(net, t.demands, ckpt, solve_options(), ropts);
        loaded += rr.repair.loaded;
        reused += rr.repair.survivors();
        dropped_tx += rr.repair.transmissions_dropped;
        downgraded_tx += rr.repair.transmissions_downgraded;
        r = std::move(rr.cg);
      } else {
        r = core::solve_column_generation(net, t.demands, solve_options());
      }
      iterations += r.iterations;
      slots += r.total_slots;
      benchmark::DoNotOptimize(slots);
      ckpt = core::make_checkpoint(net, t.demands, r);
      have_ckpt = true;
    }
  }
  const double n =
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["cg_iterations"] = static_cast<double>(iterations) / n;
  state.counters["slots"] = slots / n;
  state.counters["pool_hit_rate"] =
      loaded > 0 ? static_cast<double>(reused) / loaded : 0.0;
  state.counters["tx_dropped"] = static_cast<double>(dropped_tx) / n;
  state.counters["tx_downgraded"] = static_cast<double>(downgraded_tx) / n;
}
BENCHMARK(BM_RepairPolicyTrace<core::RepairPolicy::kDropTransmissions>)
    ->Name("BM_RepairDropTrace");
BENCHMARK(BM_RepairPolicyTrace<core::RepairPolicy::kDowngradeRate>)
    ->Name("BM_RepairDowngradeTrace");

/// Serialization overhead: the full save path (serialize + checksum) and
/// the strict parse, on a real solved checkpoint.
void BM_CheckpointRoundTrip(benchmark::State& state) {
  const Trace t = make_trace(17);
  const net::Network net = period_net(t, 0);
  const core::CgResult r =
      core::solve_column_generation(net, t.demands, solve_options());
  const core::CgCheckpoint ckpt = core::make_checkpoint(net, t.demands, r);
  for (auto _ : state) {
    const std::string text = core::serialize_checkpoint(ckpt);
    auto parsed = core::parse_checkpoint(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.counters["bytes"] =
      static_cast<double>(core::serialize_checkpoint(ckpt).size());
}
BENCHMARK(BM_CheckpointRoundTrip);

}  // namespace

BENCHMARK_MAIN();
