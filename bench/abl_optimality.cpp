// Ablation: optimality audit.
//
// On instances small enough for exhaustive feasible-schedule enumeration,
// compare the column-generation optimum against the true P1 optimum and
// report the gap (it must be ~0 when CG certifies convergence), plus how
// many columns CG needed versus the full schedule space — the paper's core
// complexity argument.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 4));
  const int channels = static_cast<int>(flags.get_int("channels", 2));
  const int levels = static_cast<int>(flags.get_int("levels", 2));
  const int seeds = static_cast<int>(flags.get_int("seeds", 10));

  std::cout << "=== Ablation — CG vs exhaustive P1 optimum ===\n";
  std::cout << "L=" << links << " K=" << channels << " Q=" << levels
            << " over " << seeds << " seeds\n\n";

  common::Table table({"seed", "exhaustive (slots)", "CG (slots)",
                       "rel gap", "schedules enumerated", "CG columns",
                       "CG iterations"});
  double worst_gap = 0.0;
  for (int s = 0; s < seeds; ++s) {
    common::Rng rng(0xA110 + 37ULL * static_cast<std::uint64_t>(s));
    net::NetworkParams params;
    params.num_links = links;
    params.num_channels = channels;
    params.sinr_thresholds.resize(levels);
    for (int q = 0; q < levels; ++q)
      params.sinr_thresholds[q] = 0.1 * (q + 1);
    net::Network net = net::Network::table_i(params, rng);

    video::DemandConfig dcfg;
    dcfg.demand_scale = 1e-4;
    common::Rng demand_rng = rng.fork(0x5EED);
    const auto demands =
        video::make_link_demands(links, dcfg, demand_rng);

    const auto exact = baselines::exhaustive_optimal(net, demands);
    core::CgOptions opts;
    opts.pricing = core::PricingMode::ExactAlways;
    const auto cg = core::solve_column_generation(net, demands, opts);

    const double gap =
        exact.ok ? (cg.total_slots - exact.total_slots) /
                       std::max(1e-12, exact.total_slots)
                 : std::nan("");
    worst_gap = std::max(worst_gap, std::abs(gap));
    table.new_row()
        .add(s)
        .add(exact.ok ? common::format_double(exact.total_slots, 2)
                      : std::string("(truncated)"))
        .add(cg.total_slots, 2)
        .add(gap, 8)
        .add(exact.num_feasible_schedules)
        .add(cg.timeline.size())
        .add(cg.iterations);
  }
  table.print(std::cout);
  std::cout << "\nworst |relative gap| = "
            << common::format_double(worst_gap, 10) << "\n";
  return 0;
}
