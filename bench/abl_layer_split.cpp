// Ablation: the layer-split extension.
//
// The paper's Section III remarks that a session's HP and LP data "may be
// carried on different channels at each time slot", yet its constraint (30)
// forbids exactly that.  This bench quantifies what the relaxed formulation
// buys: optimal scheduling time with strict (30) versus with per-layer
// channel assignments, across interference regimes.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 5));
  const int channels = static_cast<int>(flags.get_int("channels", 2));
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));

  std::cout << "=== Ablation — HP/LP layer splitting across channels ===\n";
  std::cout << "L=" << links << " K=" << channels
            << " Q=2, exact pricing, seeds=" << seeds << "\n\n";

  common::Table table({"Gamma scale", "strict (30) slots",
                       "layer split slots", "split/strict"});
  for (double gamma : {1.0, 3.0, 5.0}) {
    std::vector<double> strict_slots, split_slots;
    for (int s = 0; s < seeds; ++s) {
      common::Rng rng(0x5917 + 4099ULL * static_cast<std::uint64_t>(s));
      net::NetworkParams params;
      params.num_links = links;
      params.num_channels = channels;
      params.sinr_thresholds = {0.1 * gamma, 0.2 * gamma};
      net::Network net = net::Network::table_i(params, rng);
      video::DemandConfig dcfg;
      dcfg.demand_scale = 1e-4;
      common::Rng drng = rng.fork(0x5EED);
      const auto demands =
          video::make_link_demands(links, dcfg, drng);

      core::CgOptions strict;
      strict.pricing = core::PricingMode::ExactAlways;
      strict.exact.milp.time_limit_sec = 2.0;
      strict.exact.milp.max_nodes = 20'000;
      const auto base =
          core::solve_column_generation(net, demands, strict);
      core::CgOptions split = strict;
      split.exact.allow_layer_split = true;
      const auto ext = core::solve_column_generation(net, demands, split);
      strict_slots.push_back(base.total_slots);
      split_slots.push_back(ext.total_slots);
    }
    const auto a = common::summarize(strict_slots);
    const auto b = common::summarize(split_slots);
    table.new_row()
        .add(gamma, 1)
        .add_ci(a.mean, a.ci_halfwidth, 1)
        .add_ci(b.mean, b.ci_halfwidth, 1)
        .add(a.mean > 0 ? b.mean / a.mean : 0.0, 4);
  }
  table.print(std::cout);
  std::cout << "\nsplit/strict <= 1 by construction; the gap is the value "
               "of letting HP and LP ride different channels.\n";
  return 0;
}
