// Figure 4: convergence of the column-generation algorithm.
//
// Per-iteration series on a single instance with *exact* MILP pricing:
//   * the restricted master objective (upper bound) — non-increasing;
//   * the Theorem-1 lower bound and its running best — converging upward
//     (the paper notes the raw bound need not be monotone);
//   * the most negative reduced cost Phi — rising to 0 at optimality.
//
// Exact pricing bounds the instance size.  Defaults (L=8, K=2, Q=3,
// gamma-scale=3) put the network in a binding-interference regime where the
// curve is informative and the run takes seconds; under the raw Table I
// parameters (K=5, Gamma <= 0.5) spatial reuse is so easy that CG certifies
// optimality within ~3 iterations — run with --channels=5 --gamma-scale=1
// to see that, and see EXPERIMENTS.md for the discussion.
#include <cmath>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 8));
  const int channels = static_cast<int>(flags.get_int("channels", 2));
  const int levels = static_cast<int>(flags.get_int("levels", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double demand_scale = flags.get_double("demand-scale", 1e-3);
  // Table I's Gamma = {0.1..0.5} is so permissive that almost every link
  // set packs concurrently and CG converges in a couple of iterations (the
  // curve is a step).  Scaling the thresholds makes pricing combinatorial
  // and reproduces the paper's gradual convergence shape; --gamma-scale=1
  // recovers the raw Table I ladder.
  const double gamma_scale = flags.get_double("gamma-scale", 3.0);
  const double milp_time = flags.get_double("milp-time", 5.0);
  const std::int64_t milp_nodes = flags.get_int("milp-nodes", 200'000);

  std::cout << "=== Fig. 4 — column-generation convergence ===\n";
  std::cout << "L=" << links << " K=" << channels << " Q=" << levels
            << " gamma-scale=" << gamma_scale << " seed=" << seed
            << " (exact MILP pricing every iteration)\n\n";

  common::Rng rng(seed);
  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = channels;
  params.sinr_thresholds.resize(levels);
  for (int q = 0; q < levels; ++q)
    params.sinr_thresholds[q] = 0.1 * (q + 1) * gamma_scale;
  net::Network net = net::Network::table_i(params, rng);

  video::DemandConfig dcfg;
  dcfg.demand_scale = demand_scale;
  common::Rng demand_rng = rng.fork(0x5EED);
  const auto demands = video::make_link_demands(links, dcfg, demand_rng);

  core::CgOptions opts;
  opts.pricing = core::PricingMode::ExactAlways;
  opts.exact.milp.max_nodes = milp_nodes;
  opts.exact.milp.time_limit_sec = milp_time;
  const auto result = core::solve_column_generation(net, demands, opts);

  common::Table table({"iteration", "OFV upper bound", "lower bound",
                       "best lower bound", "Phi"});
  for (const auto& it : result.history) {
    table.new_row()
        .add(it.iteration)
        .add(it.master_objective, 1)
        .add(std::isnan(it.lower_bound)
                 ? std::string("-")
                 : common::format_double(it.lower_bound, 1))
        .add(std::isnan(it.best_lower_bound)
                 ? std::string("-")
                 : common::format_double(it.best_lower_bound, 1))
        .add(it.phi, 6);
  }
  table.print(std::cout);

  std::cout << "\nConverged: " << (result.converged ? "yes" : "no")
            << " | optimum " << common::format_double(result.total_slots, 1)
            << " slots | certified gap "
            << common::format_double(result.gap(), 8) << "\n";
  return 0;
}
