// Pool-lifecycle economics (google-benchmark): master-LP time and warm-hit
// rate vs the PoolManager cap on a long blockage trace.  Each period the
// manager seeds the nearest known instances' surviving columns into the
// solve and stores the result back under the cap/eviction policy; the
// counters report what bounding the pool costs (or doesn't): repair hit
// rate, per-resolve hit rate, evicted columns, neighbour-seeded columns and
// master solve time.  Written to BENCH_pool.json by run_analysis leg 6.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/pool_manager.h"
#include "core/resolve.h"
#include "mmwave/blockage.h"
#include "video/demand.h"

namespace {

using namespace mmwave;

constexpr int kLinks = 6;
constexpr int kChannels = 2;
constexpr int kLevels = 3;
/// Long enough for blockage states to recur, so the multi-instance index
/// has revisits to pay off on.
constexpr int kPeriods = 16;

struct Trace {
  net::NetworkParams params;
  std::unique_ptr<net::TableIChannelModel> base;
  std::vector<std::vector<double>> scales;
  std::vector<video::LinkDemand> demands;
};

Trace make_trace(std::uint64_t seed) {
  Trace t;
  t.params.num_links = kLinks;
  t.params.num_channels = kChannels;
  t.params.sinr_thresholds.resize(kLevels);
  for (int q = 0; q < kLevels; ++q)
    t.params.sinr_thresholds[q] = 0.1 * (q + 1);
  common::Rng rng(seed);
  t.base = std::make_unique<net::TableIChannelModel>(
      kLinks, kChannels, t.params.noise_watts, rng);

  net::BlockageConfig bcfg;
  bcfg.p_block = 0.3;
  bcfg.p_recover = 0.5;  // short blockage episodes: states revisit often
  bcfg.attenuation = 0.05;
  common::Rng brng = rng.fork(0xB10C);
  net::BlockageProcess process(kLinks, bcfg, brng);
  for (int g = 0; g < kPeriods; ++g) {
    if (g > 0) process.advance(brng);
    std::vector<double> s(kLinks);
    for (int l = 0; l < kLinks; ++l) s[l] = process.rx_attenuation(l);
    t.scales.push_back(std::move(s));
  }

  common::Rng drng = rng.fork(0x5EED);
  t.demands.resize(kLinks);
  for (auto& d : t.demands) {
    d.hp_bits = drng.uniform(500.0, 2000.0);
    d.lp_bits = drng.uniform(500.0, 2000.0);
  }
  return t;
}

net::Network period_net(const Trace& t, int g) {
  return net::Network(t.params, std::make_unique<net::RxScaledChannelModel>(
                                    t.base.get(), t.scales[g]));
}

core::CgOptions solve_options() {
  core::CgOptions opts;
  opts.pricing = core::PricingMode::HeuristicThenExact;
  return opts;
}

/// One blockage trace solved through a PoolManager with cap = Arg(0)
/// (0 = unbounded).  The manager's multi-instance index means a period
/// whose blockage state resembles ANY earlier period seeds warm — not just
/// the immediately previous one (the perf_resolve warm arm's limit).
void BM_PoolTrace(benchmark::State& state) {
  const Trace t = make_trace(17);
  const int cap = static_cast<int>(state.range(0));
  std::int64_t loaded = 0, reused = 0, resolves = 0, hits = 0;
  std::int64_t evicted = 0, neighbour_seeded = 0;
  double master_seconds = 0.0;
  double slots = 0.0;
  int pool_size = 0;
  for (auto _ : state) {
    core::PoolManagerOptions opts;
    opts.cap = cap;
    core::PoolManager manager(opts);
    for (int g = 0; g < kPeriods; ++g) {
      const net::Network net = period_net(t, g);
      const core::InstanceSignature sig =
          core::make_signature(net, t.demands);
      core::CgOptions cg = solve_options();
      core::RepairStats stats;
      const std::vector<sched::Schedule> candidates = manager.seed(sig);
      if (!candidates.empty())
        cg.warm_pool = core::repair_pool(net, candidates, &stats);
      const core::CgResult r =
          core::solve_column_generation(net, t.demands, cg);
      manager.store(sig, net, r);
      loaded += stats.loaded;
      reused += stats.survivors();
      ++resolves;
      if (stats.survivors() > 0) ++hits;
      master_seconds += r.profile.master_seconds;
      slots += r.total_slots;
      benchmark::DoNotOptimize(slots);
    }
    evicted += manager.metrics().evicted;
    neighbour_seeded += manager.metrics().neighbour_seeded;
    pool_size = manager.size();
  }
  const double n =
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["pool_hit_rate"] =
      loaded > 0 ? static_cast<double>(reused) / loaded : 0.0;
  state.counters["resolve_hit_rate"] =
      resolves > 0 ? static_cast<double>(hits) / resolves : 0.0;
  state.counters["master_ms"] = 1e3 * master_seconds / n;
  state.counters["evicted"] = static_cast<double>(evicted) / n;
  state.counters["neighbour_seeded"] =
      static_cast<double>(neighbour_seeded) / n;
  state.counters["pool_size"] = static_cast<double>(pool_size);
  state.counters["slots"] = slots / n;
}
BENCHMARK(BM_PoolTrace)->Arg(0)->Arg(16)->Arg(8)->Arg(4);

/// Baseline arm for the same trace with no pool at all: what the lifecycle
/// layer's hit rate is worth in master-LP time.
void BM_PoolTraceCold(benchmark::State& state) {
  const Trace t = make_trace(17);
  double master_seconds = 0.0;
  double slots = 0.0;
  for (auto _ : state) {
    for (int g = 0; g < kPeriods; ++g) {
      const net::Network net = period_net(t, g);
      const core::CgResult r =
          core::solve_column_generation(net, t.demands, solve_options());
      master_seconds += r.profile.master_seconds;
      slots += r.total_slots;
      benchmark::DoNotOptimize(slots);
    }
  }
  const double n =
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["master_ms"] = 1e3 * master_seconds / n;
  state.counters["slots"] = slots / n;
}
BENCHMARK(BM_PoolTraceCold);

}  // namespace

BENCHMARK_MAIN();
