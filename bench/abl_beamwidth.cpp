// Ablation: antenna beamwidth on the geometric indoor model.
//
// The paper motivates modelling co-channel interference by the wide beams
// of indoor mmWave deployments (narrow outdoor beams are "pseudowired").
// This bench sweeps the beamwidth of the geometric channel model and shows
// the optimal scheduling time rising as beams widen — i.e. exactly when the
// paper's interference-aware formulation matters versus naive scheduling
// that ignores interference (Benchmark 1).
#include <memory>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 10));
  const int channels = static_cast<int>(flags.get_int("channels", 3));
  const int seeds = static_cast<int>(flags.get_int("seeds", 10));
  // Path-loss gains with a realistic noise floor leave tens of dB of SINR
  // headroom; scale the Table I ladder up so the thresholds describe real
  // indoor mmWave MCS operating points and actually bind.
  const double gamma_scale = flags.get_double("gamma-scale", 20.0);

  std::cout << "=== Ablation — beamwidth vs scheduling time (geometric "
               "model) ===\n";
  std::cout << "L=" << links << " K=" << channels
            << ", 10m x 10m room, seeds=" << seeds << "\n\n";

  common::Table table({"beamwidth (rad)", "CG (slots)", "Benchmark 1",
                       "B1/CG"});
  for (double beamwidth : {0.2, 0.4, 0.8, 1.2, 2.0}) {
    std::vector<double> cg_slots, b1_slots;
    for (int s = 0; s < seeds; ++s) {
      common::Rng rng(0xBEA0 + 7907ULL * static_cast<std::uint64_t>(s));
      net::NetworkParams params;
      params.num_links = links;
      params.num_channels = channels;
      params.noise_watts = 1e-4;  // geometric gains need a real link margin
      for (double& g : params.sinr_thresholds) g *= gamma_scale;
      net::GeometricChannelConfig gcfg;
      gcfg.beamwidth_rad = beamwidth;
      auto model = std::make_unique<net::GeometricChannelModel>(
          links, channels, params.noise_watts, gcfg, rng);
      net::Network net(params, std::move(model));

      video::DemandConfig dcfg;
      dcfg.demand_scale = 1e-4;
      common::Rng drng = rng.fork(0x5EED);
      const auto demands = video::make_link_demands(links, dcfg, drng);

      core::CgOptions opts;
      opts.pricing = core::PricingMode::HeuristicOnly;
      const auto cg = core::solve_column_generation(net, demands, opts);
      cg_slots.push_back(cg.total_slots);
      const auto b1 = baselines::benchmark1(net, demands);
      if (b1.served_all) b1_slots.push_back(b1.total_slots);
    }
    const auto a = common::summarize(cg_slots);
    const auto b = common::summarize(b1_slots);
    table.new_row()
        .add(beamwidth, 1)
        .add_ci(a.mean, a.ci_halfwidth, 1)
        .add_ci(b.mean, b.ci_halfwidth, 1)
        .add(a.mean > 0 ? b.mean / a.mean : 0.0, 3);
  }
  table.print(std::cout);
  std::cout << "\nNarrow beams ~ pseudowired (cheap reuse, small B1/CG "
               "gap); wide beams couple the links and coordination pays.\n";
  return 0;
}
