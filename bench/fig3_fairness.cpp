// Figure 3: Jain fairness index of per-link delay versus number of links.
//
// f({e}) = (sum e)^2 / (L * sum e^2) over per-link delays e_l.  Expected
// shape: CG consistently highest (its min-total-time objective has a minmax
// flavor over link completion times); benchmarks lower and noisier, with
// confidence intervals tightening as L grows.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  bench::HarnessConfig base;
  base.cg.pricing = core::PricingMode::HeuristicOnly;
  base = bench::parse_common_flags(argc, argv, base);
  bench::print_config_banner(base,
                             "Fig. 3 — delay fairness vs number of links");

  common::CliFlags flags;
  flags.parse(argc, argv);
  std::vector<double> regimes = flags.has("gamma-scale")
                                    ? std::vector<double>{base.gamma_scale}
                                    : std::vector<double>{1.0, 3.0};
  for (double gamma : regimes) {
    bench::HarnessConfig cfg = base;
    cfg.gamma_scale = gamma;
    std::cout << "Gamma x" << gamma << ":\n";
    common::Table table({"links", "CG fairness", "Benchmark 1",
                         "Benchmark 2"});
    for (std::int64_t links : cfg.link_counts) {
      const auto point = bench::run_comparison(static_cast<int>(links), cfg);
      const auto cg = common::summarize(point.cg_f);
      const auto b1 = common::summarize(point.b1_f);
      const auto b2 = common::summarize(point.b2_f);
      table.new_row()
          .add(links)
          .add_ci(cg.mean, cg.ci_halfwidth, 4)
          .add_ci(b1.mean, b1.ci_halfwidth, 4)
          .add_ci(b2.mean, b2.ci_halfwidth, 4);
    }
    bench::finish_table(table, cfg);
    std::cout << "\n";
  }
  return 0;
}
