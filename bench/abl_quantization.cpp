// Ablation: slot quantization of the fluid relaxation.
//
// P1 allows fractional schedule durations; a deployed PNC grants whole
// slots.  This bench rounds the optimal fluid plan to integral slots (while
// still meeting every demand) and reports the relative overhead versus the
// fluid optimum as the demand volume grows — showing the paper's fluid
// relaxation is asymptotically exact and quantifying the error at small
// GOP volumes.
#include "harness.h"
#include "sched/quantize.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 10));
  const int channels = static_cast<int>(flags.get_int("channels", 3));
  const int seeds = static_cast<int>(flags.get_int("seeds", 10));

  std::cout << "=== Ablation — slot quantization overhead ===\n";
  std::cout << "L=" << links << " K=" << channels << " seeds=" << seeds
            << "\n\n";

  common::Table table({"demand scale", "fluid slots", "quantized slots",
                       "overhead %"});
  for (double scale : {1e-5, 1e-4, 1e-3, 1e-2}) {
    std::vector<double> fluid, quantized, overhead;
    for (int s = 0; s < seeds; ++s) {
      const auto inst = bench::make_instance(
          links, channels, scale,
          0x0A17 + 13007ULL * static_cast<std::uint64_t>(s));
      core::CgOptions opts;
      opts.pricing = core::PricingMode::HeuristicOnly;
      const auto cg =
          core::solve_column_generation(inst.net, inst.demands, opts);
      const auto q =
          sched::quantize_timeline(inst.net, cg.timeline, inst.demands);
      fluid.push_back(q.fluid_slots);
      quantized.push_back(q.quantized_slots);
      overhead.push_back(100.0 * q.overhead());
    }
    const auto f = common::summarize(fluid);
    const auto qn = common::summarize(quantized);
    const auto ov = common::summarize(overhead);
    table.new_row()
        .add(scale, 5)
        .add_ci(f.mean, f.ci_halfwidth, 1)
        .add_ci(qn.mean, qn.ci_halfwidth, 1)
        .add_ci(ov.mean, ov.ci_halfwidth, 2);
  }
  table.print(std::cout);
  std::cout << "\nOverhead ~ (#schedules / total slots): negligible at GOP "
               "volumes, visible only for tiny demands.\n";
  return 0;
}
