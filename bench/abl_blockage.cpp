// Ablation: dynamic link blockage (extension experiment).
//
// The paper optimizes one static period; its companion works ([4]-[6])
// study blockage-prone 60 GHz links.  This bench replays the paper's
// per-period optimization over a multi-GOP streaming horizon with a
// two-state Markov blockage process and compares per-period re-solving
// against a blockage-oblivious schedule, across blockage intensities.
#include "harness.h"
#include "stream/blockage_session.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int links = static_cast<int>(flags.get_int("links", 8));
  const int channels = static_cast<int>(flags.get_int("channels", 3));
  const int gops = static_cast<int>(flags.get_int("gops", 10));
  const int seeds = static_cast<int>(flags.get_int("seeds", 8));

  std::cout << "=== Ablation — streaming under Markov blockage ===\n";
  std::cout << "L=" << links << " K=" << channels << " horizon=" << gops
            << " GOPs, -20 dB blockage, seeds=" << seeds << "\n\n";

  common::Table table({"p(block)", "policy", "on-time GOPs",
                       "stall (slots)", "mean PSNR (dB)"});
  for (double p_block : {0.0, 0.15, 0.3, 0.5}) {
    for (int aware = 1; aware >= 0; --aware) {
      std::vector<double> on_time, stall, psnr;
      for (int s = 0; s < seeds; ++s) {
        net::NetworkParams params;
        params.num_links = links;
        params.num_channels = channels;
        common::Rng model_rng(0xB10C + 257ULL * s);
        net::TableIChannelModel base(links, channels, params.noise_watts,
                                     model_rng);
        stream::BlockageSessionConfig cfg;
        cfg.session.num_gops = gops;
        cfg.session.demand_scale = 2e-3;
        cfg.blockage.p_block = p_block;
        cfg.blockage.p_recover = 0.5;
        cfg.blockage.attenuation = 0.05;  // -13 dB: partial blockage
        cfg.reschedule_each_period = aware == 1;
        common::Rng rng(1000 + s);
        const auto m = stream::run_blockage_session(
            base, params, cfg, stream::make_cg_scheduler({}), rng);
        on_time.push_back(m.base.on_time_ratio);
        stall.push_back(m.base.total_stall_slots);
        psnr.push_back(m.base.mean_psnr_db);
      }
      const auto ot = common::summarize(on_time);
      const auto st = common::summarize(stall);
      const auto ps = common::summarize(psnr);
      table.new_row()
          .add(p_block, 2)
          .add(aware ? "re-solve each period" : "oblivious")
          .add_ci(100.0 * ot.mean, 100.0 * ot.ci_halfwidth, 1)
          .add_ci(st.mean, st.ci_halfwidth, 0)
          .add_ci(ps.mean, ps.ci_halfwidth, 2);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: both policies identical at p=0; the "
               "oblivious policy's PSNR and on-time ratio degrade much "
               "faster with blockage intensity.\n";
  return 0;
}
