// perf_fleet — fleet serve-mode throughput / latency / shedding bench.
//
// Feeds one deterministic solve/resolve request list through fleet::Server
// at several worker counts and reports, per count:
//
//   * requests/sec and p50/p99 request latency (admission-to-finish wall
//     clock) on an ample queue (nothing sheds), and
//   * the shed rate plus the admitted requests' p99 latency on a
//     deliberately tiny queue (the overload leg) — overload must cost
//     explicit kOverloaded records and bounded latency for what was
//     admitted, never silent drops or collapse.
//
// The bench double-checks the warm-equivalence invariant while it is at
// it: every worker count (shared pool on) must report the same per-request
// optimum as the workers=1 shared-pool-off baseline — the per-process
// solve each fleet record claims to be comparable to.  A mismatch fails
// the bench (exit 1): a throughput number for a server that changes
// answers under concurrency would be meaningless.
//
//   perf_fleet [--requests=M] [--workers=1,4,16] [--overload-queue=Q]
//              [--links --channels --levels] [--out=BENCH_fleet.json]
//
// Timing fields are machine-dependent; the JSON is evidence of shape
// (bounded p99, explicit shedding), not a regression-pinned artifact.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/cli.h"
#include "fleet/server.h"

namespace {

using namespace mmwave;

std::vector<std::string> request_lines(int n, int links, int channels,
                                       int levels) {
  std::vector<std::string> lines;
  char buf[320];
  for (int i = 0; i < n; ++i) {
    const unsigned long long rs = 1000003ULL * static_cast<unsigned>(i) + 7;
    if (i % 2 == 0) {
      std::snprintf(buf, sizeof buf,
                    "{\"id\":\"s%04d\",\"op\":\"solve\",\"links\":%d,"
                    "\"channels\":%d,\"levels\":%d,\"seed\":%llu}",
                    i, links, channels, levels, rs);
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"id\":\"r%04d\",\"op\":\"resolve\",\"links\":%d,"
                    "\"channels\":%d,\"levels\":%d,\"seed\":%llu,"
                    "\"block_links\":[0],\"block_atten\":0.1}",
                    i, links, channels, levels, rs);
    }
    lines.emplace_back(buf);
  }
  return lines;
}

/// Nearest-rank percentile of an unsorted sample (q in [0,1]).
double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[rank == 0 ? 0 : rank - 1];
}

struct LegResult {
  double wall_seconds = 0.0;
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::map<std::string, double> slots_by_id;  // executed requests only
};

LegResult run_leg(const std::vector<std::string>& lines, int workers,
                  int max_queue, bool share_pool) {
  fleet::ServerOptions opts;
  opts.workers = workers;
  opts.max_queue = max_queue;
  opts.share_pool = share_pool;
  fleet::Server server(opts);

  LegResult leg;
  std::vector<double> latencies;
  const auto sink = [&](const fleet::RequestRecord& rec) {
    if (rec.outcome == fleet::RequestOutcome::kShed) {
      ++leg.shed;
      return;
    }
    ++leg.completed;
    latencies.push_back(rec.wait_seconds + rec.exec_seconds);
    leg.slots_by_id.emplace(rec.id, rec.total_slots);
  };
  const auto start = std::chrono::steady_clock::now();
  (void)server.run(lines, sink);
  leg.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  leg.p50_latency = percentile(latencies, 0.50);
  leg.p99_latency = percentile(latencies, 0.99);
  return leg;
}

bool close_to(double a, double b) {
  return std::fabs(a - b) <=
         1e-7 * std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
}

}  // namespace

int main(int argc, char** argv) {
  common::CliFlags flags;
  flags.parse(argc, argv);
  const int requests =
      static_cast<int>(flags.get_int("requests", 48));
  const int links = static_cast<int>(flags.get_int("links", 6));
  const int channels = static_cast<int>(flags.get_int("channels", 2));
  const int levels = static_cast<int>(flags.get_int("levels", 3));
  const int overload_queue =
      static_cast<int>(flags.get_int("overload-queue", 4));
  const std::vector<std::int64_t> workers =
      flags.get_int_list("workers", {1, 4, 16});
  const std::string out_path = flags.get_string("out", "");
  if (requests < 1 || overload_queue < 1 || workers.empty()) {
    std::fprintf(stderr,
                 "error: need --requests>=1, --overload-queue>=1 and a "
                 "non-empty --workers list\n");
    return 1;
  }

  const std::vector<std::string> lines =
      request_lines(requests, links, channels, levels);

  // The per-process answer sheet every worker count must reproduce.
  const LegResult baseline =
      run_leg(lines, /*workers=*/1, requests + 8, /*share_pool=*/false);

  struct Row {
    int workers = 0;
    LegResult ample;
    LegResult overload;
  };
  std::vector<Row> rows;
  int mismatches = 0;
  for (const std::int64_t w64 : workers) {
    const int w = static_cast<int>(w64);
    Row row;
    row.workers = w;
    row.ample = run_leg(lines, w, requests + 8, /*share_pool=*/true);
    row.overload = run_leg(lines, w, overload_queue, /*share_pool=*/true);

    if (row.ample.shed != 0 || row.ample.completed != requests) {
      std::fprintf(stderr,
                   "MISMATCH workers=%d: ample leg shed %lld / completed "
                   "%lld of %d\n",
                   w, static_cast<long long>(row.ample.shed),
                   static_cast<long long>(row.ample.completed), requests);
      ++mismatches;
    }
    for (const auto& [id, want] : baseline.slots_by_id) {
      const auto it = row.ample.slots_by_id.find(id);
      if (it == row.ample.slots_by_id.end() || !close_to(want, it->second)) {
        std::fprintf(stderr,
                     "MISMATCH workers=%d id=%s: per-process %.17g, fleet "
                     "%.17g\n",
                     w, id.c_str(), want,
                     it == row.ample.slots_by_id.end() ? NAN : it->second);
        ++mismatches;
      }
    }
    if (row.overload.shed + row.overload.completed !=
        static_cast<std::int64_t>(requests)) {
      std::fprintf(stderr,
                   "MISMATCH workers=%d: overload leg lost records (%lld "
                   "shed + %lld completed != %d)\n",
                   w, static_cast<long long>(row.overload.shed),
                   static_cast<long long>(row.overload.completed), requests);
      ++mismatches;
    }

    std::printf(
        "workers=%2d: %7.1f req/s | p50 %.4fs p99 %.4fs | overload "
        "(queue=%d): %lld/%d shed (%.0f%%), admitted p99 %.4fs\n",
        w, static_cast<double>(requests) / row.ample.wall_seconds,
        row.ample.p50_latency, row.ample.p99_latency, overload_queue,
        static_cast<long long>(row.overload.shed), requests,
        100.0 * static_cast<double>(row.overload.shed) / requests,
        row.overload.p99_latency);
    rows.push_back(std::move(row));
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\"bench\":\"perf_fleet\",\"requests\":%d,\"links\":%d,"
                   "\"channels\":%d,\"levels\":%d,\"overload_queue\":%d,"
                   "\"deterministic\":%s,\"rows\":[",
                   requests, links, channels, levels, overload_queue,
                   mismatches == 0 ? "true" : "false");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "%s{\"workers\":%d,\"requests_per_sec\":%.17g,"
            "\"p50_latency_sec\":%.17g,\"p99_latency_sec\":%.17g,"
            "\"overload_shed\":%lld,\"overload_shed_rate\":%.17g,"
            "\"overload_admitted_p99_sec\":%.17g}",
            i == 0 ? "" : ",", r.workers,
            static_cast<double>(requests) / r.ample.wall_seconds,
            r.ample.p50_latency, r.ample.p99_latency,
            static_cast<long long>(r.overload.shed),
            static_cast<double>(r.overload.shed) / requests,
            r.overload.p99_latency);
      }
      std::fprintf(f, "]}\n");
      std::fclose(f);
      std::printf("report written to %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
    }
  }

  if (mismatches == 0) return 0;
  std::printf("perf_fleet FAILED: %d mismatch(es)\n", mismatches);
  return 1;
}
