// Figure 1: overall scheduling time versus number of links.
//
// Paper series: proposed column-generation algorithm vs Benchmark 1 [17]
// and Benchmark 2 [9][10] (both combined with the [8] channel allocator),
// L in {10..30}, K = 5, 95% confidence intervals over repeated seeds.
// Expected shape: all curves increase with L; CG lowest at every L with the
// gap widening as interference coupling grows.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace mmwave;
  bench::HarnessConfig base;
  base.cg.pricing = core::PricingMode::HeuristicOnly;
  base = bench::parse_common_flags(argc, argv, base);
  bench::print_config_banner(base,
                             "Fig. 1 — scheduling time vs number of links");

  // Two regimes unless the caller pinned one: the literal Table I ladder
  // and the binding-interference x3 ladder (see EXPERIMENTS.md).
  common::CliFlags flags;
  flags.parse(argc, argv);
  std::vector<double> regimes = flags.has("gamma-scale")
                                    ? std::vector<double>{base.gamma_scale}
                                    : std::vector<double>{1.0, 3.0};
  for (double gamma : regimes) {
    bench::HarnessConfig cfg = base;
    cfg.gamma_scale = gamma;
    std::cout << "Gamma x" << gamma << ":\n";
    common::Table table({"links", "CG (slots)", "Benchmark 1", "Benchmark 2",
                         "B1/B2 unserved", "CG/B2"});
    for (std::int64_t links : cfg.link_counts) {
      const auto point = bench::run_comparison(static_cast<int>(links), cfg);
      const auto cg = common::summarize(point.cg);
      const auto b1 = common::summarize(point.b1);
      const auto b2 = common::summarize(point.b2);
      table.new_row()
          .add(links)
          .add_ci(cg.mean, cg.ci_halfwidth, 0)
          .add_ci(b1.mean, b1.ci_halfwidth, 0)
          .add_ci(b2.mean, b2.ci_halfwidth, 0)
          .add(std::to_string(point.b1_failures) + "/" +
               std::to_string(point.b2_failures))
          .add(b2.mean > 0 ? cg.mean / b2.mean : 0.0, 3);
    }
    bench::finish_table(table, cfg);
    std::cout << "\n";
  }
  return 0;
}
