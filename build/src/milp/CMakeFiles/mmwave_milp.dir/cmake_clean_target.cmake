file(REMOVE_RECURSE
  "libmmwave_milp.a"
)
