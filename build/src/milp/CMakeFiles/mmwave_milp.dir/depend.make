# Empty dependencies file for mmwave_milp.
# This may be replaced when dependencies are built.
