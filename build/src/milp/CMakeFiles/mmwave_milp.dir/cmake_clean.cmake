file(REMOVE_RECURSE
  "CMakeFiles/mmwave_milp.dir/milp.cpp.o"
  "CMakeFiles/mmwave_milp.dir/milp.cpp.o.d"
  "libmmwave_milp.a"
  "libmmwave_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
