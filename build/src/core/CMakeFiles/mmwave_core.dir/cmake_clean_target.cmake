file(REMOVE_RECURSE
  "libmmwave_core.a"
)
