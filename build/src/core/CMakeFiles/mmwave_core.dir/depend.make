# Empty dependencies file for mmwave_core.
# This may be replaced when dependencies are built.
