file(REMOVE_RECURSE
  "CMakeFiles/mmwave_core.dir/column_generation.cpp.o"
  "CMakeFiles/mmwave_core.dir/column_generation.cpp.o.d"
  "CMakeFiles/mmwave_core.dir/master.cpp.o"
  "CMakeFiles/mmwave_core.dir/master.cpp.o.d"
  "CMakeFiles/mmwave_core.dir/pricing_greedy.cpp.o"
  "CMakeFiles/mmwave_core.dir/pricing_greedy.cpp.o.d"
  "CMakeFiles/mmwave_core.dir/pricing_milp.cpp.o"
  "CMakeFiles/mmwave_core.dir/pricing_milp.cpp.o.d"
  "libmmwave_core.a"
  "libmmwave_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
