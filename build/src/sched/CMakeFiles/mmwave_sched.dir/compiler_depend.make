# Empty compiler generated dependencies file for mmwave_sched.
# This may be replaced when dependencies are built.
