
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/quantize.cpp" "src/sched/CMakeFiles/mmwave_sched.dir/quantize.cpp.o" "gcc" "src/sched/CMakeFiles/mmwave_sched.dir/quantize.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/mmwave_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/mmwave_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/timeline.cpp" "src/sched/CMakeFiles/mmwave_sched.dir/timeline.cpp.o" "gcc" "src/sched/CMakeFiles/mmwave_sched.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mmwave/CMakeFiles/mmwave_mmwave.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/mmwave_video.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmwave_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
