file(REMOVE_RECURSE
  "libmmwave_sched.a"
)
