file(REMOVE_RECURSE
  "CMakeFiles/mmwave_sched.dir/quantize.cpp.o"
  "CMakeFiles/mmwave_sched.dir/quantize.cpp.o.d"
  "CMakeFiles/mmwave_sched.dir/schedule.cpp.o"
  "CMakeFiles/mmwave_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/mmwave_sched.dir/timeline.cpp.o"
  "CMakeFiles/mmwave_sched.dir/timeline.cpp.o.d"
  "libmmwave_sched.a"
  "libmmwave_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
