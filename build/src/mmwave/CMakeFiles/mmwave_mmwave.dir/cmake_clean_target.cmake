file(REMOVE_RECURSE
  "libmmwave_mmwave.a"
)
