file(REMOVE_RECURSE
  "CMakeFiles/mmwave_mmwave.dir/antenna.cpp.o"
  "CMakeFiles/mmwave_mmwave.dir/antenna.cpp.o.d"
  "CMakeFiles/mmwave_mmwave.dir/blockage.cpp.o"
  "CMakeFiles/mmwave_mmwave.dir/blockage.cpp.o.d"
  "CMakeFiles/mmwave_mmwave.dir/channel.cpp.o"
  "CMakeFiles/mmwave_mmwave.dir/channel.cpp.o.d"
  "CMakeFiles/mmwave_mmwave.dir/geometry.cpp.o"
  "CMakeFiles/mmwave_mmwave.dir/geometry.cpp.o.d"
  "CMakeFiles/mmwave_mmwave.dir/network.cpp.o"
  "CMakeFiles/mmwave_mmwave.dir/network.cpp.o.d"
  "CMakeFiles/mmwave_mmwave.dir/power_control.cpp.o"
  "CMakeFiles/mmwave_mmwave.dir/power_control.cpp.o.d"
  "libmmwave_mmwave.a"
  "libmmwave_mmwave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_mmwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
