
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmwave/antenna.cpp" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/antenna.cpp.o" "gcc" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/antenna.cpp.o.d"
  "/root/repo/src/mmwave/blockage.cpp" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/blockage.cpp.o" "gcc" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/blockage.cpp.o.d"
  "/root/repo/src/mmwave/channel.cpp" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/channel.cpp.o" "gcc" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/channel.cpp.o.d"
  "/root/repo/src/mmwave/geometry.cpp" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/geometry.cpp.o" "gcc" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/geometry.cpp.o.d"
  "/root/repo/src/mmwave/network.cpp" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/network.cpp.o" "gcc" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/network.cpp.o.d"
  "/root/repo/src/mmwave/power_control.cpp" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/power_control.cpp.o" "gcc" "src/mmwave/CMakeFiles/mmwave_mmwave.dir/power_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmwave_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
