# Empty dependencies file for mmwave_mmwave.
# This may be replaced when dependencies are built.
