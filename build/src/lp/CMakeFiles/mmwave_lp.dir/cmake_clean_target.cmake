file(REMOVE_RECURSE
  "libmmwave_lp.a"
)
