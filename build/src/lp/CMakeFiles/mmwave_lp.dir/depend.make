# Empty dependencies file for mmwave_lp.
# This may be replaced when dependencies are built.
