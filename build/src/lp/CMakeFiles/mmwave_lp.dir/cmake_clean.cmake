file(REMOVE_RECURSE
  "CMakeFiles/mmwave_lp.dir/simplex.cpp.o"
  "CMakeFiles/mmwave_lp.dir/simplex.cpp.o.d"
  "libmmwave_lp.a"
  "libmmwave_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
