file(REMOVE_RECURSE
  "libmmwave_baselines.a"
)
