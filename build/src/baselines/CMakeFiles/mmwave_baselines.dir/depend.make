# Empty dependencies file for mmwave_baselines.
# This may be replaced when dependencies are built.
