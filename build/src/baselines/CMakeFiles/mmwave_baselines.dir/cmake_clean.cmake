file(REMOVE_RECURSE
  "CMakeFiles/mmwave_baselines.dir/benchmark1.cpp.o"
  "CMakeFiles/mmwave_baselines.dir/benchmark1.cpp.o.d"
  "CMakeFiles/mmwave_baselines.dir/benchmark2.cpp.o"
  "CMakeFiles/mmwave_baselines.dir/benchmark2.cpp.o.d"
  "CMakeFiles/mmwave_baselines.dir/channel_alloc.cpp.o"
  "CMakeFiles/mmwave_baselines.dir/channel_alloc.cpp.o.d"
  "CMakeFiles/mmwave_baselines.dir/exhaustive.cpp.o"
  "CMakeFiles/mmwave_baselines.dir/exhaustive.cpp.o.d"
  "CMakeFiles/mmwave_baselines.dir/tdma.cpp.o"
  "CMakeFiles/mmwave_baselines.dir/tdma.cpp.o.d"
  "libmmwave_baselines.a"
  "libmmwave_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
