file(REMOVE_RECURSE
  "CMakeFiles/mmwave_stream.dir/blockage_session.cpp.o"
  "CMakeFiles/mmwave_stream.dir/blockage_session.cpp.o.d"
  "CMakeFiles/mmwave_stream.dir/session.cpp.o"
  "CMakeFiles/mmwave_stream.dir/session.cpp.o.d"
  "libmmwave_stream.a"
  "libmmwave_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
