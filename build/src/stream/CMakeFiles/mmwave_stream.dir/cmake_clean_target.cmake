file(REMOVE_RECURSE
  "libmmwave_stream.a"
)
