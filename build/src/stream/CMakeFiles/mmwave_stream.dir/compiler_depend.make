# Empty compiler generated dependencies file for mmwave_stream.
# This may be replaced when dependencies are built.
