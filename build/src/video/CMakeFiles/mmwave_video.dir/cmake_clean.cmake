file(REMOVE_RECURSE
  "CMakeFiles/mmwave_video.dir/demand.cpp.o"
  "CMakeFiles/mmwave_video.dir/demand.cpp.o.d"
  "CMakeFiles/mmwave_video.dir/scalable.cpp.o"
  "CMakeFiles/mmwave_video.dir/scalable.cpp.o.d"
  "CMakeFiles/mmwave_video.dir/trace.cpp.o"
  "CMakeFiles/mmwave_video.dir/trace.cpp.o.d"
  "libmmwave_video.a"
  "libmmwave_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
