
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/demand.cpp" "src/video/CMakeFiles/mmwave_video.dir/demand.cpp.o" "gcc" "src/video/CMakeFiles/mmwave_video.dir/demand.cpp.o.d"
  "/root/repo/src/video/scalable.cpp" "src/video/CMakeFiles/mmwave_video.dir/scalable.cpp.o" "gcc" "src/video/CMakeFiles/mmwave_video.dir/scalable.cpp.o.d"
  "/root/repo/src/video/trace.cpp" "src/video/CMakeFiles/mmwave_video.dir/trace.cpp.o" "gcc" "src/video/CMakeFiles/mmwave_video.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmwave_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
