file(REMOVE_RECURSE
  "libmmwave_video.a"
)
