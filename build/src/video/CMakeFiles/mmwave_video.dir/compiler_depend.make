# Empty compiler generated dependencies file for mmwave_video.
# This may be replaced when dependencies are built.
