file(REMOVE_RECURSE
  "CMakeFiles/mmwave_common.dir/cli.cpp.o"
  "CMakeFiles/mmwave_common.dir/cli.cpp.o.d"
  "CMakeFiles/mmwave_common.dir/log.cpp.o"
  "CMakeFiles/mmwave_common.dir/log.cpp.o.d"
  "CMakeFiles/mmwave_common.dir/matrix.cpp.o"
  "CMakeFiles/mmwave_common.dir/matrix.cpp.o.d"
  "CMakeFiles/mmwave_common.dir/rng.cpp.o"
  "CMakeFiles/mmwave_common.dir/rng.cpp.o.d"
  "CMakeFiles/mmwave_common.dir/stats.cpp.o"
  "CMakeFiles/mmwave_common.dir/stats.cpp.o.d"
  "CMakeFiles/mmwave_common.dir/table.cpp.o"
  "CMakeFiles/mmwave_common.dir/table.cpp.o.d"
  "libmmwave_common.a"
  "libmmwave_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
