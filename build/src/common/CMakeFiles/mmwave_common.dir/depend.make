# Empty dependencies file for mmwave_common.
# This may be replaced when dependencies are built.
