file(REMOVE_RECURSE
  "libmmwave_common.a"
)
