# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--links=5" "--channels=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_streaming "/root/repo/build/examples/video_streaming" "--links=6" "--channels=3")
set_tests_properties(example_video_streaming PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_convergence "/root/repo/build/examples/convergence_demo" "--links=5" "--channels=2")
set_tests_properties(example_convergence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_indoor "/root/repo/build/examples/indoor_geometric" "--links=5" "--channels=2")
set_tests_properties(example_indoor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_blockage "/root/repo/build/examples/streaming_with_blockage" "--links=5" "--gops=4")
set_tests_properties(example_blockage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
