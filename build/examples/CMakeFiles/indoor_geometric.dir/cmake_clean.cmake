file(REMOVE_RECURSE
  "CMakeFiles/indoor_geometric.dir/indoor_geometric.cpp.o"
  "CMakeFiles/indoor_geometric.dir/indoor_geometric.cpp.o.d"
  "indoor_geometric"
  "indoor_geometric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indoor_geometric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
