# Empty compiler generated dependencies file for indoor_geometric.
# This may be replaced when dependencies are built.
