# Empty compiler generated dependencies file for streaming_with_blockage.
# This may be replaced when dependencies are built.
