file(REMOVE_RECURSE
  "CMakeFiles/streaming_with_blockage.dir/streaming_with_blockage.cpp.o"
  "CMakeFiles/streaming_with_blockage.dir/streaming_with_blockage.cpp.o.d"
  "streaming_with_blockage"
  "streaming_with_blockage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_with_blockage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
