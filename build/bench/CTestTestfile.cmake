# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig1_smoke "/root/repo/build/bench/fig1_sched_time" "--seeds=2" "--links=5,6" "--gamma-scale=1")
set_tests_properties(bench_fig1_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig2_smoke "/root/repo/build/bench/fig2_avg_delay" "--seeds=2" "--links=5,6" "--gamma-scale=1")
set_tests_properties(bench_fig2_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig3_smoke "/root/repo/build/bench/fig3_fairness" "--seeds=2" "--links=5,6" "--gamma-scale=1")
set_tests_properties(bench_fig3_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig4_smoke "/root/repo/build/bench/fig4_convergence" "--links=5" "--channels=2" "--levels=2" "--milp-time=2")
set_tests_properties(bench_fig4_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl_optimality_smoke "/root/repo/build/bench/abl_optimality" "--links=3" "--seeds=3")
set_tests_properties(bench_abl_optimality_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl_power_channels_smoke "/root/repo/build/bench/abl_power_channels" "--seeds=2" "--links=6")
set_tests_properties(bench_abl_power_channels_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl_pricing_smoke "/root/repo/build/bench/abl_pricing" "--seeds=2" "--links=5")
set_tests_properties(bench_abl_pricing_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl_blockage_smoke "/root/repo/build/bench/abl_blockage" "--seeds=2" "--gops=3" "--links=5")
set_tests_properties(bench_abl_blockage_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl_layer_split_smoke "/root/repo/build/bench/abl_layer_split" "--seeds=2" "--links=4")
set_tests_properties(bench_abl_layer_split_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl_beamwidth_smoke "/root/repo/build/bench/abl_beamwidth" "--seeds=2" "--links=6")
set_tests_properties(bench_abl_beamwidth_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl_quantization_smoke "/root/repo/build/bench/abl_quantization" "--seeds=2" "--links=5")
set_tests_properties(bench_abl_quantization_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
