# Empty dependencies file for fig1_sched_time.
# This may be replaced when dependencies are built.
