# Empty compiler generated dependencies file for abl_beamwidth.
# This may be replaced when dependencies are built.
