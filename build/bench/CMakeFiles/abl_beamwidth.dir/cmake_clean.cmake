file(REMOVE_RECURSE
  "CMakeFiles/abl_beamwidth.dir/abl_beamwidth.cpp.o"
  "CMakeFiles/abl_beamwidth.dir/abl_beamwidth.cpp.o.d"
  "abl_beamwidth"
  "abl_beamwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_beamwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
