file(REMOVE_RECURSE
  "CMakeFiles/abl_power_channels.dir/abl_power_channels.cpp.o"
  "CMakeFiles/abl_power_channels.dir/abl_power_channels.cpp.o.d"
  "abl_power_channels"
  "abl_power_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_power_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
