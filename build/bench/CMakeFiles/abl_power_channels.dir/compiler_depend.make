# Empty compiler generated dependencies file for abl_power_channels.
# This may be replaced when dependencies are built.
