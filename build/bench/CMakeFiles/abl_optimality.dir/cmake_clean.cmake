file(REMOVE_RECURSE
  "CMakeFiles/abl_optimality.dir/abl_optimality.cpp.o"
  "CMakeFiles/abl_optimality.dir/abl_optimality.cpp.o.d"
  "abl_optimality"
  "abl_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
