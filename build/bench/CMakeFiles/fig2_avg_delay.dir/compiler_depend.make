# Empty compiler generated dependencies file for fig2_avg_delay.
# This may be replaced when dependencies are built.
