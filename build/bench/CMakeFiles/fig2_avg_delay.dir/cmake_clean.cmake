file(REMOVE_RECURSE
  "CMakeFiles/fig2_avg_delay.dir/fig2_avg_delay.cpp.o"
  "CMakeFiles/fig2_avg_delay.dir/fig2_avg_delay.cpp.o.d"
  "fig2_avg_delay"
  "fig2_avg_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_avg_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
