# Empty dependencies file for abl_pricing.
# This may be replaced when dependencies are built.
