file(REMOVE_RECURSE
  "CMakeFiles/abl_pricing.dir/abl_pricing.cpp.o"
  "CMakeFiles/abl_pricing.dir/abl_pricing.cpp.o.d"
  "abl_pricing"
  "abl_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
