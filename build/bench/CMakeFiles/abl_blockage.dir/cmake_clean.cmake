file(REMOVE_RECURSE
  "CMakeFiles/abl_blockage.dir/abl_blockage.cpp.o"
  "CMakeFiles/abl_blockage.dir/abl_blockage.cpp.o.d"
  "abl_blockage"
  "abl_blockage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_blockage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
