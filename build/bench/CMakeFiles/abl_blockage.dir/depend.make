# Empty dependencies file for abl_blockage.
# This may be replaced when dependencies are built.
