# Empty dependencies file for fig3_fairness.
# This may be replaced when dependencies are built.
