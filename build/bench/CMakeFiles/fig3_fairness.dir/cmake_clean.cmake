file(REMOVE_RECURSE
  "CMakeFiles/fig3_fairness.dir/fig3_fairness.cpp.o"
  "CMakeFiles/fig3_fairness.dir/fig3_fairness.cpp.o.d"
  "fig3_fairness"
  "fig3_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
