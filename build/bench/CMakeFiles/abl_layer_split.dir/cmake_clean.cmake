file(REMOVE_RECURSE
  "CMakeFiles/abl_layer_split.dir/abl_layer_split.cpp.o"
  "CMakeFiles/abl_layer_split.dir/abl_layer_split.cpp.o.d"
  "abl_layer_split"
  "abl_layer_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_layer_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
