# Empty compiler generated dependencies file for abl_layer_split.
# This may be replaced when dependencies are built.
