# Empty dependencies file for mmwave_cli.
# This may be replaced when dependencies are built.
