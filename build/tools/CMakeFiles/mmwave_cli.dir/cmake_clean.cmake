file(REMOVE_RECURSE
  "CMakeFiles/mmwave_cli.dir/mmwave_cli.cpp.o"
  "CMakeFiles/mmwave_cli.dir/mmwave_cli.cpp.o.d"
  "mmwave_cli"
  "mmwave_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmwave_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
