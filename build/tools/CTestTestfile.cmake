# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_solve "/root/repo/build/tools/mmwave_cli" "solve" "--links=5" "--channels=2")
set_tests_properties(cli_solve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/tools/mmwave_cli" "compare" "--links=5" "--channels=2" "--pricing=heuristic")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stream "/root/repo/build/tools/mmwave_cli" "stream" "--links=5" "--channels=2" "--gops=3" "--p-block=0.2" "--pricing=heuristic")
set_tests_properties(cli_stream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/tools/mmwave_cli" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
