file(REMOVE_RECURSE
  "CMakeFiles/test_mmwave.dir/mmwave/antenna_test.cpp.o"
  "CMakeFiles/test_mmwave.dir/mmwave/antenna_test.cpp.o.d"
  "CMakeFiles/test_mmwave.dir/mmwave/blockage_test.cpp.o"
  "CMakeFiles/test_mmwave.dir/mmwave/blockage_test.cpp.o.d"
  "CMakeFiles/test_mmwave.dir/mmwave/channel_test.cpp.o"
  "CMakeFiles/test_mmwave.dir/mmwave/channel_test.cpp.o.d"
  "CMakeFiles/test_mmwave.dir/mmwave/geometry_test.cpp.o"
  "CMakeFiles/test_mmwave.dir/mmwave/geometry_test.cpp.o.d"
  "CMakeFiles/test_mmwave.dir/mmwave/power_control_test.cpp.o"
  "CMakeFiles/test_mmwave.dir/mmwave/power_control_test.cpp.o.d"
  "test_mmwave"
  "test_mmwave.pdb"
  "test_mmwave[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
