# Empty dependencies file for test_mmwave.
# This may be replaced when dependencies are built.
