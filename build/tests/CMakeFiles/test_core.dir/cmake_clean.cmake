file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/ablation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ablation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/cg_sweep_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cg_sweep_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/column_generation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/column_generation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dual_sensitivity_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dual_sensitivity_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/layer_split_test.cpp.o"
  "CMakeFiles/test_core.dir/core/layer_split_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/master_test.cpp.o"
  "CMakeFiles/test_core.dir/core/master_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pricing_greedy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pricing_greedy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pricing_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pricing_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
