
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/baselines_test.cpp.o.d"
  "/root/repo/tests/baselines/channel_alloc_test.cpp" "tests/CMakeFiles/test_baselines.dir/baselines/channel_alloc_test.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baselines/channel_alloc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/mmwave_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mmwave_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mmwave_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mmwave_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/mmwave_video.dir/DependInfo.cmake"
  "/root/repo/build/src/mmwave/CMakeFiles/mmwave_mmwave.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/mmwave_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mmwave_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmwave_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
