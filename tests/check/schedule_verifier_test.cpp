#include "check/schedule_verifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/column_generation.h"
#include "video/demand.h"

namespace mmwave::check {
namespace {

/// Deterministic channel table so every SINR in these tests is exact:
/// direct gain 1 on every channel, uniform cross gain, common noise floor.
class FixedChannelModel : public net::ChannelModel {
 public:
  FixedChannelModel(std::vector<net::Link> links, int num_channels,
                    double cross_gain, double noise_watts)
      : links_(std::move(links)),
        num_channels_(num_channels),
        cross_gain_(cross_gain),
        noise_watts_(noise_watts) {}

  int num_links() const override { return static_cast<int>(links_.size()); }
  int num_channels() const override { return num_channels_; }
  double direct_gain(int, int) const override { return 1.0; }
  double cross_gain(int, int, int) const override { return cross_gain_; }
  double noise(int) const override { return noise_watts_; }
  const std::vector<net::Link>& links() const override { return links_; }

 private:
  std::vector<net::Link> links_;
  int num_channels_;
  double cross_gain_;
  double noise_watts_;
};

/// L links on dedicated node pairs (2l, 2l+1); thresholds {0.5, 1.0};
/// noise 0.1; Pmax 1.  Solo SINR at power p is p / 0.1 = 10 p.
net::Network make_net(int num_links = 3, double cross_gain = 0.0) {
  std::vector<net::Link> links;
  for (int l = 0; l < num_links; ++l)
    links.push_back({l, 2 * l, 2 * l + 1});
  net::NetworkParams params;
  params.num_links = num_links;
  params.num_channels = 2;
  params.sinr_thresholds = {0.5, 1.0};
  return net::Network(params, std::make_unique<FixedChannelModel>(
                                  std::move(links), params.num_channels,
                                  cross_gain, params.noise_watts));
}

bool has(const VerifyReport& report, ViolationKind kind) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [kind](const Violation& v) { return v.kind == kind; });
}

TEST(ScheduleVerifier, AcceptsFeasibleSoloSchedule) {
  const auto net = make_net();
  // SINR = 10 * 0.06 = 0.6 >= gamma^0 = 0.5.
  sched::Schedule s{{{0, net::Layer::Hp, 0, 0, 0.06}}};
  const ScheduleVerifier verifier(net);
  EXPECT_TRUE(verifier.verify(s).ok()) << verifier.verify(s).to_string();
}

TEST(ScheduleVerifier, RejectsSinrBelowThreshold) {
  const auto net = make_net();
  // SINR = 10 * 0.04 = 0.4 < gamma^0 = 0.5.
  sched::Schedule s{{{0, net::Layer::Hp, 0, 0, 0.04}}};
  const VerifyReport report = ScheduleVerifier(net).verify(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has(report, ViolationKind::SinrBelowThreshold));
  EXPECT_NEAR(report.violations[0].measured, 0.4, 1e-12);
  EXPECT_NEAR(report.violations[0].limit, 0.5, 1e-12);
}

TEST(ScheduleVerifier, RejectsCoChannelInterferenceViolation) {
  // Cross gain 0.5: with both links at Pmax on one channel,
  // SINR = 1 / (0.1 + 0.5) < 1.67 -> fails gamma^1 = 1.0 ... actually
  // 1/0.6 = 1.67 passes; use gamma^1 with power 0.5:
  // SINR = 0.5 / (0.1 + 0.5 * 1.0) = 0.833 < 1.0.
  const auto net = make_net(2, 0.5);
  sched::Schedule s;
  s.add({0, net::Layer::Hp, 1, 0, 0.5});
  s.add({1, net::Layer::Hp, 0, 0, 1.0});
  const VerifyReport report = ScheduleVerifier(net).verify(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has(report, ViolationKind::SinrBelowThreshold));
  // Link 1 alone: SINR = 1 / (0.1 + 0.5 * 0.5) = 2.86 >= 0.5 — only link 0
  // must be flagged.
  for (const Violation& v : report.violations) EXPECT_EQ(v.link, 0);
}

TEST(ScheduleVerifier, SeparateChannelsDoNotInterfere) {
  const auto net = make_net(2, 10.0);  // brutal cross gain, but cross-channel
  sched::Schedule s;
  s.add({0, net::Layer::Hp, 1, 0, 0.1});  // SINR = 1.0 exactly
  s.add({1, net::Layer::Hp, 1, 1, 0.1});
  EXPECT_TRUE(ScheduleVerifier(net).verify(s).ok());
}

TEST(ScheduleVerifier, RejectsDuplicateLinkUse) {
  const auto net = make_net();
  sched::Schedule s;
  s.add({0, net::Layer::Hp, 0, 0, 0.06});
  s.add({0, net::Layer::Lp, 0, 1, 0.06});
  const VerifyReport report = ScheduleVerifier(net).verify(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has(report, ViolationKind::DuplicateLink));

  // The same schedule is legal in layer-split mode (distinct channels,
  // summed power within Pmax).
  VerifyOptions opts;
  opts.allow_layer_split = true;
  EXPECT_TRUE(ScheduleVerifier(net, opts).verify(s).ok());
}

TEST(ScheduleVerifier, RejectsLayerSplitOnOneChannel) {
  const auto net = make_net();
  sched::Schedule s;
  s.add({0, net::Layer::Hp, 0, 0, 0.06});
  s.add({0, net::Layer::Lp, 0, 0, 0.06});
  VerifyOptions opts;
  opts.allow_layer_split = true;
  const VerifyReport report = ScheduleVerifier(net, opts).verify(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has(report, ViolationKind::LayerSplitChannel));
}

TEST(ScheduleVerifier, RejectsDuplicateNodeUse) {
  // Links 0 (nodes 0->1) and 1 (nodes 1->2) share node 1: half-duplex.
  std::vector<net::Link> links = {{0, 0, 1}, {1, 1, 2}};
  net::NetworkParams params;
  params.num_links = 2;
  params.num_channels = 2;
  params.sinr_thresholds = {0.5};
  net::Network net(params,
                   std::make_unique<FixedChannelModel>(std::move(links), 2,
                                                       0.0, 0.1));
  sched::Schedule s;
  s.add({0, net::Layer::Hp, 0, 0, 0.06});
  s.add({1, net::Layer::Hp, 0, 1, 0.06});
  const VerifyReport report = ScheduleVerifier(net).verify(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has(report, ViolationKind::HalfDuplex));
}

TEST(ScheduleVerifier, RejectsPowerOverCap) {
  const auto net = make_net();
  sched::Schedule s{{{0, net::Layer::Hp, 0, 0, 1.5}}};  // Pmax = 1
  const VerifyReport report = ScheduleVerifier(net).verify(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has(report, ViolationKind::PowerOutOfRange));
}

TEST(ScheduleVerifier, RejectsSummedLinkPowerOverCap) {
  const auto net = make_net();
  sched::Schedule s;
  s.add({0, net::Layer::Hp, 0, 0, 0.7});
  s.add({0, net::Layer::Lp, 0, 1, 0.7});  // 1.4 total > Pmax
  VerifyOptions opts;
  opts.allow_layer_split = true;
  const VerifyReport report = ScheduleVerifier(net, opts).verify(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has(report, ViolationKind::LinkPowerCap));
}

TEST(ScheduleVerifier, RejectsOutOfRangeIndices) {
  const auto net = make_net();
  sched::Schedule s;
  s.add({99, net::Layer::Hp, 0, 0, 0.06});
  s.add({0, net::Layer::Hp, 7, 9, 0.06});
  const VerifyReport report = ScheduleVerifier(net).verify(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has(report, ViolationKind::LinkOutOfRange));
  EXPECT_TRUE(has(report, ViolationKind::ChannelOutOfRange));
  EXPECT_TRUE(has(report, ViolationKind::RateLevelOutOfRange));
}

TEST(ScheduleVerifier, CollectsAllViolationsNotJustTheFirst) {
  const auto net = make_net();
  sched::Schedule s;
  s.add({0, net::Layer::Hp, 0, 0, 1.5});   // power over cap
  s.add({0, net::Layer::Lp, 0, 1, 0.04});  // duplicate link + low SINR
  const VerifyReport report = ScheduleVerifier(net).verify(s);
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.violations.size(), 3u);
}

TEST(ScheduleVerifier, TimelineDemandShortfallAndNegativeDuration) {
  const auto net = make_net(1);
  // Level 0 delivers rate_bps * slot_seconds bits per slot.
  const double bits_per_slot = net.bits_per_slot(0);
  sched::Schedule s{{{0, net::Layer::Hp, 0, 0, 0.06}}};
  std::vector<video::LinkDemand> demands(1);
  demands[0].hp_bits = 10.0 * bits_per_slot;

  const ScheduleVerifier verifier(net);
  // Exactly covering: 10 slots.
  EXPECT_TRUE(verifier.verify_timeline({{s, 10.0}}, demands).ok());
  // Undershoot: 8 slots.
  VerifyReport short_report = verifier.verify_timeline({{s, 8.0}}, demands);
  ASSERT_FALSE(short_report.ok());
  EXPECT_TRUE(has(short_report, ViolationKind::DemandShortfall));
  // Negative duration.
  VerifyReport neg_report = verifier.verify_timeline({{s, -1.0}}, demands);
  EXPECT_TRUE(has(neg_report, ViolationKind::NegativeDuration));
}

TEST(ScheduleVerifier, UnservedLinksAreExemptFromCoverage) {
  const auto net = make_net(2);
  std::vector<video::LinkDemand> demands(2);
  demands[0].hp_bits = net.bits_per_slot(0);
  demands[1].hp_bits = 1e9;  // never served
  sched::Schedule s{{{0, net::Layer::Hp, 0, 0, 0.06}}};
  const ScheduleVerifier verifier(net);
  EXPECT_FALSE(verifier.verify_timeline({{s, 1.0}}, demands).ok());
  EXPECT_TRUE(verifier.verify_timeline({{s, 1.0}}, demands, {1}).ok());
}

/// Cross-validation against the production column-generation pipeline: the
/// referee must agree with the optimizer's own gate on every emitted column.
TEST(ScheduleVerifier, AcceptsEveryColumnOfACgSolve) {
  common::Rng rng(7);
  net::NetworkParams params;
  params.num_links = 6;
  params.num_channels = 2;
  net::Network net = net::Network::table_i(params, rng);
  video::DemandConfig dcfg;
  dcfg.demand_scale = 1e-3;
  common::Rng drng = rng.fork(0x5EED);
  const auto demands = video::make_link_demands(6, dcfg, drng);

  const auto result = core::solve_column_generation(net, demands);
  ASSERT_FALSE(result.timeline.empty());
  const ScheduleVerifier verifier(net);
  for (const auto& ts : result.timeline) {
    const VerifyReport report = verifier.verify(ts.schedule);
    EXPECT_TRUE(report.ok()) << report.to_string();
    // And the first-failure gate agrees.
    EXPECT_TRUE(sched::validate_schedule(net, ts.schedule).ok);
  }
}

}  // namespace
}  // namespace mmwave::check
