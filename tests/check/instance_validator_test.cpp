#include "check/instance_validator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mmwave/channel.h"
#include "mmwave/network.h"
#include "video/demand.h"

namespace mmwave::check {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Channel model whose gain/noise tables the test can corrupt at will
/// (Network's constructor only checks counts, so this is the way to feed
/// the validator NaN gains or dead noise floors).
class ScriptedModel : public net::ChannelModel {
 public:
  ScriptedModel(int links, int channels)
      : links_count_(links),
        channels_(channels),
        direct_(static_cast<std::size_t>(links) * channels, 0.5),
        cross_(static_cast<std::size_t>(links) * links * channels, 0.01),
        noise_(links, 0.1) {
    for (int l = 0; l < links; ++l) links_.push_back({l, 2 * l, 2 * l + 1});
  }

  int num_links() const override { return links_count_; }
  int num_channels() const override { return channels_; }
  double direct_gain(int l, int k) const override {
    return direct_[static_cast<std::size_t>(l) * channels_ + k];
  }
  double cross_gain(int from, int to, int k) const override {
    return cross_[(static_cast<std::size_t>(from) * links_count_ + to) *
                      channels_ +
                  k];
  }
  double noise(int l) const override { return noise_[l]; }
  const std::vector<net::Link>& links() const override { return links_; }

  double& direct(int l, int k) {
    return direct_[static_cast<std::size_t>(l) * channels_ + k];
  }
  double& cross(int from, int to, int k) {
    return cross_[(static_cast<std::size_t>(from) * links_count_ + to) *
                      channels_ +
                  k];
  }
  double& noise_ref(int l) { return noise_[l]; }

 private:
  int links_count_;
  int channels_;
  std::vector<net::Link> links_;
  std::vector<double> direct_;
  std::vector<double> cross_;
  std::vector<double> noise_;
};

struct TestInstance {
  net::Network net;
  std::vector<video::LinkDemand> demands;
};

/// Builds a well-formed 3-link / 2-channel instance around a ScriptedModel;
/// `corrupt` gets a chance to poison the tables (and params) first.
TestInstance make_instance(
    const std::function<void(ScriptedModel&, net::NetworkParams&)>& corrupt =
        {}) {
  const int links = 3, channels = 2;
  net::NetworkParams params;
  params.num_links = links;
  params.num_channels = channels;
  params.sinr_thresholds = {0.1, 0.2};
  auto model = std::make_unique<ScriptedModel>(links, channels);
  if (corrupt) corrupt(*model, params);
  net::Network net(params, std::move(model));
  std::vector<video::LinkDemand> demands(links);
  for (auto& d : demands) {
    d.hp_bits = 1000.0;
    d.lp_bits = 500.0;
  }
  return {std::move(net), std::move(demands)};
}

bool has_issue(const InstanceReport& report, const std::string& needle) {
  for (const InstanceIssue& issue : report.issues) {
    if (issue.to_string().find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(InstanceValidator, WellFormedInstancePasses) {
  const TestInstance t = make_instance();
  const InstanceReport report = validate_instance(t.net, t.demands);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.to_string(), "instance OK");
}

TEST(InstanceValidator, PaperTableIInstancePasses) {
  common::Rng rng(17);
  net::NetworkParams params;
  params.num_links = 8;
  const net::Network net = net::Network::table_i(params, rng);
  std::vector<video::LinkDemand> demands(8, {1e4, 5e3});
  EXPECT_TRUE(validate_instance(net, demands).ok());
}

TEST(InstanceValidator, NanDirectGainIsLocalized) {
  const TestInstance t = make_instance(
      [](ScriptedModel& m, net::NetworkParams&) { m.direct(1, 0) = kNan; });
  const InstanceReport report = validate_instance(t.net, t.demands);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].link, 1);
  EXPECT_EQ(report.issues[0].channel, 0);
  EXPECT_TRUE(has_issue(report, "direct gain")) << report.to_string();
}

TEST(InstanceValidator, NegativeCrossGainIsLocalized) {
  const TestInstance t = make_instance(
      [](ScriptedModel& m, net::NetworkParams&) { m.cross(0, 2, 1) = -0.5; });
  const InstanceReport report = validate_instance(t.net, t.demands);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].link, 2);  // the poisoned *receiver*
  EXPECT_EQ(report.issues[0].channel, 1);
  EXPECT_TRUE(has_issue(report, "cross gain from link 0"))
      << report.to_string();
}

TEST(InstanceValidator, NonPositiveNoiseRejected) {
  const TestInstance t = make_instance(
      [](ScriptedModel& m, net::NetworkParams&) { m.noise_ref(2) = 0.0; });
  const InstanceReport report = validate_instance(t.net, t.demands);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "noise power")) << report.to_string();
  EXPECT_EQ(report.issues[0].link, 2);
}

TEST(InstanceValidator, BadParametersRejected) {
  const TestInstance t = make_instance([](ScriptedModel&,
                                          net::NetworkParams& p) {
    p.p_max_watts = -1.0;
    p.slot_seconds = 0.0;
    p.bandwidth_hz = kNan;
  });
  const InstanceReport report = validate_instance(t.net, t.demands);
  EXPECT_TRUE(has_issue(report, "Pmax")) << report.to_string();
  EXPECT_TRUE(has_issue(report, "slot length"));
  EXPECT_TRUE(has_issue(report, "bandwidth"));
}

TEST(InstanceValidator, DemandVectorSizeMismatch) {
  TestInstance t = make_instance();
  t.demands.pop_back();
  const InstanceReport report = validate_instance(t.net, t.demands);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "demand vector has 2 entries"))
      << report.to_string();
}

TEST(InstanceValidator, BadDemandsRejectedPerLink) {
  TestInstance t = make_instance();
  t.demands[0].hp_bits = kNan;
  t.demands[1].lp_bits = -10.0;
  t.demands[2].hp_bits = 1e19;  // above the sanity cap
  const InstanceReport report = validate_instance(t.net, t.demands);
  ASSERT_EQ(report.issues.size(), 3u) << report.to_string();
  EXPECT_TRUE(has_issue(report, "not finite"));
  EXPECT_TRUE(has_issue(report, "negative"));
  EXPECT_TRUE(has_issue(report, "sanity cap"));
}

TEST(InstanceValidator, AllZeroDemandsFlaggedAsUnitMixup) {
  TestInstance t = make_instance();
  for (auto& d : t.demands) d = {};
  const InstanceReport report = validate_instance(t.net, t.demands);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_issue(report, "all demands are zero"))
      << report.to_string();
}

TEST(InstanceValidator, IssueCapCountsSuppressedFindings) {
  const TestInstance t = make_instance([](ScriptedModel& m,
                                          net::NetworkParams&) {
    for (int l = 0; l < 3; ++l)
      for (int k = 0; k < 2; ++k) m.direct(l, k) = kNan;
  });
  InstanceValidatorOptions options;
  options.max_issues = 4;
  const InstanceReport report = validate_instance(t.net, t.demands, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.size(), 4u);
  EXPECT_EQ(report.suppressed, 2);
  EXPECT_NE(report.to_string().find("and 2 more"), std::string::npos);
}

// ---------------------------------------------------------------------------
// parse_instance_spec
// ---------------------------------------------------------------------------

TEST(ParseInstanceSpec, EmptyTextYieldsDefaults) {
  const auto spec = parse_instance_spec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().links, 10);
  EXPECT_EQ(spec.value().channels, 5);
  EXPECT_DOUBLE_EQ(spec.value().demand_scale, 1e-3);
}

TEST(ParseInstanceSpec, ParsesAllKeysWithCommentsAndAliases) {
  const auto spec = parse_instance_spec(
      "# Table-I instance\n"
      "links = 20\n"
      "channels=3   # inline comment\n"
      "\n"
      "levels = 4\n"
      "gamma-scale = 2.5\n"
      "demand_scale = 1e-4\n"
      "seed = 42\n");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().links, 20);
  EXPECT_EQ(spec.value().channels, 3);
  EXPECT_EQ(spec.value().levels, 4);
  EXPECT_DOUBLE_EQ(spec.value().gamma_scale, 2.5);
  EXPECT_DOUBLE_EQ(spec.value().demand_scale, 1e-4);
  EXPECT_EQ(spec.value().seed, 42u);
}

/// Every malformed input maps to a structured error naming the line.
struct BadSpec {
  const char* text;
  const char* expect;  // substring of the diagnosis
};

TEST(ParseInstanceSpec, MalformedInputsNameTheLine) {
  const BadSpec cases[] = {
      {"links 20", "expected 'key = value'"},
      {"links =", "empty value"},
      {"= 20", "empty key"},
      {"links = twenty", "expected an integer"},
      {"links = 20.5", "expected an integer"},
      {"links = 0", "out of range"},
      {"links = 100000", "out of range"},
      {"channels = -1", "out of range"},
      {"levels = 65", "out of range"},
      {"gamma_scale = -1", "finite and positive"},
      {"gamma_scale = 1e999", "expected a number"},  // ERANGE overflow
      {"demand_scale = nope", "expected a number"},
      {"seed = -1", "non-negative"},
      {"bogus_key = 1", "unknown key"},
      {"links = 10\nlinks = bad", "line 2"},
  };
  for (const BadSpec& c : cases) {
    const auto spec = parse_instance_spec(c.text);
    ASSERT_FALSE(spec.ok()) << "accepted: " << c.text;
    EXPECT_EQ(spec.status().code(), common::ErrorCode::kInvalidInput);
    EXPECT_NE(spec.status().message().find("instance spec line"),
              std::string::npos)
        << spec.status().message();
    EXPECT_NE(spec.status().message().find(c.expect), std::string::npos)
        << "for input '" << c.text << "' got: " << spec.status().message();
  }
}

TEST(ParseInstanceSpec, NeverThrowsOnArbitraryBytes) {
  const std::string garbage[] = {
      std::string("\x00\xff\xfe=\x01", 5),
      "==========",
      "links = 99999999999999999999999999\n",
      "seed = 999999999999999999999999999999\n",
      std::string(4096, '='),
      "#",
  };
  for (const std::string& g : garbage) {
    EXPECT_NO_THROW({ auto r = parse_instance_spec(g); (void)r; });
  }
}

}  // namespace
}  // namespace mmwave::check
