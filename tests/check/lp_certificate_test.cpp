#include "check/lp_certificate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/column_generation.h"
#include "core/master.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "video/demand.h"

namespace mmwave::check {
namespace {

bool mentions(const LpCertReport& report, const std::string& needle) {
  return std::any_of(report.errors.begin(), report.errors.end(),
                     [&](const std::string& e) {
                       return e.find(needle) != std::string::npos;
                     });
}

/// min x + 2y  s.t.  x + y >= 2,  x <= 3,  y <= 3.  Optimum (2, 0), obj 2.
/// The x <= 3 row is slack at the optimum — perfect for dual perturbation.
lp::LpModel covering_model() {
  lp::LpModel model;
  const int x = model.add_variable(0.0, lp::kInfinity, 1.0, "x");
  const int y = model.add_variable(0.0, lp::kInfinity, 2.0, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Sense::Ge, 2.0, "cover");
  model.add_constraint({{x, 1.0}}, lp::Sense::Le, 3.0, "cap_x");
  return model;
}

TEST(LpCertificate, AcceptsOptimalCertificate) {
  const lp::LpModel model = covering_model();
  const lp::LpSolution sol = lp::solve_lp(model);
  ASSERT_TRUE(sol.optimal());
  const LpCertReport report = check_lp_certificate(model, sol);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NEAR(report.primal_objective, 2.0, 1e-9);
  // l = 0, u = inf: strong duality degenerates to c'x* = y'b exactly.
  EXPECT_NEAR(report.dual_objective, report.primal_objective, 1e-9);
  EXPECT_LT(report.duality_gap, 1e-9);
}

TEST(LpCertificate, PerturbedDualFailsComplementarySlackness) {
  const lp::LpModel model = covering_model();
  lp::LpSolution sol = lp::solve_lp(model);
  ASSERT_TRUE(sol.optimal());

  // The cap_x row is slack (x* = 2 < 3), so its dual must be 0.  Claiming
  // a nonzero dual for it is exactly a complementary-slackness violation
  // (sign-legal for a Le row in a Minimize problem, so only the slackness
  // check can catch it).
  lp::LpSolution corrupted = sol;
  corrupted.duals[1] = -0.5;
  const LpCertReport report = check_lp_certificate(model, corrupted);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "complementary slackness"))
      << report.to_string();
  EXPECT_GT(report.max_slackness_violation, 1e-3);
}

TEST(LpCertificate, PerturbedBindingDualFailsDuality) {
  const lp::LpModel model = covering_model();
  lp::LpSolution sol = lp::solve_lp(model);
  ASSERT_TRUE(sol.optimal());
  lp::LpSolution corrupted = sol;
  corrupted.duals[0] += 0.25;  // binding row: breaks z_x >= 0 or the gap
  EXPECT_FALSE(check_lp_certificate(model, corrupted).ok());
}

TEST(LpCertificate, WrongDualSignRejected) {
  const lp::LpModel model = covering_model();
  lp::LpSolution sol = lp::solve_lp(model);
  ASSERT_TRUE(sol.optimal());
  lp::LpSolution corrupted = sol;
  corrupted.duals[0] = -1.0;  // Ge row in a Minimize problem: y >= 0
  const LpCertReport report = check_lp_certificate(model, corrupted);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "wrong sign")) << report.to_string();
}

TEST(LpCertificate, PerturbedPrimalRejected) {
  const lp::LpModel model = covering_model();
  lp::LpSolution sol = lp::solve_lp(model);
  ASSERT_TRUE(sol.optimal());
  lp::LpSolution corrupted = sol;
  corrupted.x[0] -= 1.0;  // violates the covering row
  EXPECT_FALSE(check_lp_certificate(model, corrupted).ok());
}

TEST(LpCertificate, NonOptimalStatusRejected) {
  const lp::LpModel model = covering_model();
  lp::LpSolution sol = lp::solve_lp(model);
  sol.status = lp::SolveStatus::IterationLimit;
  const LpCertReport report = check_lp_certificate(model, sol);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "not Optimal"));
}

TEST(LpCertificate, MaximizeSenseHandled) {
  // max 3x + y  s.t.  x + y <= 4, x <= 2.  Optimum (2, 2), obj 8.
  lp::LpModel model;
  const int x = model.add_variable(0.0, lp::kInfinity, 3.0, "x");
  const int y = model.add_variable(0.0, lp::kInfinity, 1.0, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Sense::Le, 4.0);
  model.add_constraint({{x, 1.0}}, lp::Sense::Le, 2.0);
  model.set_objective_sense(lp::ObjSense::Maximize);
  const lp::LpSolution sol = lp::solve_lp(model);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 8.0, 1e-9);
  const LpCertReport report = check_lp_certificate(model, sol);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(LpCertificate, BoundTermsEnterTheDualObjective) {
  // min -x  s.t.  x + y <= 10  with x <= 4: x* = 4 rests on its own upper
  // bound, so the dual objective needs the z_x * u_x term to close the gap.
  lp::LpModel model;
  const int x = model.add_variable(0.0, 4.0, -1.0, "x");
  const int y = model.add_variable(0.0, lp::kInfinity, 0.0, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, lp::Sense::Le, 10.0);
  const lp::LpSolution sol = lp::solve_lp(model);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -4.0, 1e-9);
  const LpCertReport report = check_lp_certificate(model, sol);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NEAR(report.dual_objective, -4.0, 1e-9);
}

TEST(LpCertificate, BoundOverridesRespected) {
  // Same model, but a branch & bound node pins x to [0, 1].
  lp::LpModel model;
  const int x = model.add_variable(0.0, 4.0, -1.0, "x");
  model.add_constraint({{x, 1.0}}, lp::Sense::Le, 10.0);
  const std::vector<double> lb = {0.0}, ub = {1.0};
  const lp::LpSolution sol = lp::solve_lp_with_bounds(model, lb, ub);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -1.0, 1e-9);
  // Certified against the node bounds it was solved under...
  EXPECT_TRUE(check_lp_certificate(model, lb, ub, sol).ok());
  // ...but x* = 1 strictly inside [0, 4] with reduced cost -1 is NOT a
  // valid certificate for the root model.
  EXPECT_FALSE(check_lp_certificate(model, sol).ok());
}

/// The production use: every master-problem solve of the column generation
/// must carry a valid certificate, and its duality identity is exactly
/// c'x* = lambda' d (Theorem 1's engine).
TEST(LpCertificate, MasterProblemCertificateHolds) {
  common::Rng rng(11);
  net::NetworkParams params;
  params.num_links = 5;
  params.num_channels = 2;
  net::Network net = net::Network::table_i(params, rng);
  video::DemandConfig dcfg;
  dcfg.demand_scale = 1e-3;
  common::Rng drng = rng.fork(0x5EED);
  const auto demands = video::make_link_demands(5, dcfg, drng);

  core::MasterProblem master(net, demands);
  for (const auto& s : core::tdma_initial_columns(net)) master.add_column(s);

  core::MasterCertificate cert;
  const core::MasterSolution mp = master.solve(&cert);
  ASSERT_TRUE(mp.ok);
  const LpCertReport report = check_lp_certificate(cert.model, cert.solution);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // lambda' d == objective (all variables have l = 0, u = inf).
  double dual_value = 0.0;
  for (std::size_t l = 0; l < demands.size(); ++l) {
    dual_value += mp.lambda_hp[l] * demands[l].hp_bits +
                  mp.lambda_lp[l] * demands[l].lp_bits;
  }
  EXPECT_NEAR(dual_value, mp.objective_slots,
              1e-6 * (1.0 + mp.objective_slots));
}

}  // namespace
}  // namespace mmwave::check
